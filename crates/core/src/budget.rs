//! Budget division among nominated algorithms.
//!
//! Paper §2: "this budget is divided among all the selected algorithms
//! according to the number of hyper-parameters to tune in each algorithm
//! (Table 3)" — more parameters, more budget. The same proportional rule
//! reallocates budget freed by a tripped circuit breaker to the surviving
//! algorithms.

use crate::options::Budget;
use smartml_classifiers::Algorithm;

/// Splits `total` across `algorithms` proportionally to each algorithm's
/// hyperparameter count. Every algorithm receives a non-zero floor share
/// (3 trials / 50 ms) so even one-parameter models get tuned.
pub fn divide_budget(total: Budget, algorithms: &[Algorithm]) -> Vec<(Algorithm, Budget)> {
    let weights: Vec<f64> = algorithms
        .iter()
        .map(|a| a.param_space().n_params() as f64)
        .collect();
    let sum: f64 = weights.iter().sum::<f64>().max(1.0);
    algorithms
        .iter()
        .zip(&weights)
        .map(|(&a, &w)| (a, total.share(w / sum)))
        .collect()
}

/// Apportions `freed` trials among `survivors` proportionally to their
/// hyperparameter counts using the largest-remainder method, so the shares
/// sum to exactly `freed` — nothing a tripped breaker released is lost to
/// rounding. Deterministic: ties break by position.
pub fn apportion_trials(freed: usize, survivors: &[Algorithm]) -> Vec<(Algorithm, usize)> {
    if survivors.is_empty() || freed == 0 {
        return survivors.iter().map(|&a| (a, 0)).collect();
    }
    let weights: Vec<f64> = survivors
        .iter()
        .map(|a| a.param_space().n_params().max(1) as f64)
        .collect();
    let sum: f64 = weights.iter().sum();
    let exact: Vec<f64> = weights.iter().map(|w| freed as f64 * w / sum).collect();
    let mut shares: Vec<usize> = exact.iter().map(|e| e.floor() as usize).collect();
    let assigned: usize = shares.iter().sum();
    // Hand the leftover trials to the largest fractional remainders.
    let mut order: Vec<usize> = (0..survivors.len()).collect();
    order.sort_by(|&a, &b| {
        let ra = exact[a] - exact[a].floor();
        let rb = exact[b] - exact[b].floor();
        rb.partial_cmp(&ra).unwrap_or(std::cmp::Ordering::Equal).then(a.cmp(&b))
    });
    for &i in order.iter().take(freed.saturating_sub(assigned)) {
        shares[i] += 1;
    }
    survivors.iter().copied().zip(shares).collect()
}

/// Apportions `freed` wall-clock seconds among `survivors` proportionally
/// to their hyperparameter counts (the serial-time analogue of
/// [`apportion_trials`]; no rounding to repair).
pub fn apportion_secs(freed: f64, survivors: &[Algorithm]) -> Vec<(Algorithm, f64)> {
    if survivors.is_empty() || !freed.is_finite() || freed <= 0.0 {
        return survivors.iter().map(|&a| (a, 0.0)).collect();
    }
    let weights: Vec<f64> = survivors
        .iter()
        .map(|a| a.param_space().n_params().max(1) as f64)
        .collect();
    let sum: f64 = weights.iter().sum();
    survivors
        .iter()
        .zip(&weights)
        .map(|(&a, &w)| (a, freed * w / sum))
        .collect()
}

/// Outcome of charging one job's requested budget against a tenant's
/// remaining quota (the job service's admission-control path).
#[derive(Debug, Clone, PartialEq)]
pub enum QuotaCharge {
    /// The full request fits; charge exactly what was asked.
    Granted(Budget),
    /// The request exceeds the remaining quota but the remainder is
    /// still above the tuning floors: admit with the clamped budget and
    /// drain the quota.
    Clamped(Budget),
    /// The remaining quota is below the floors a meaningful tuning
    /// round needs (3 trials / 50 ms — the same floors
    /// [`divide_budget`] guarantees per algorithm); admission must
    /// reject with a typed `quota_exhausted`.
    Exhausted,
}

/// Charges `requested` against a tenant's remaining quota. Trial budgets
/// draw on `remaining_trials`, time budgets on `remaining_secs`; the
/// other axis is untouched. Deterministic and side-effect free — the
/// caller applies the charge it gets back.
pub fn charge_quota(requested: &Budget, remaining_trials: usize, remaining_secs: f64) -> QuotaCharge {
    const MIN_TRIALS: usize = 3;
    const MIN_SECS: f64 = 0.05;
    match *requested {
        Budget::Trials(t) => {
            if remaining_trials >= t {
                QuotaCharge::Granted(Budget::Trials(t))
            } else if remaining_trials >= MIN_TRIALS {
                QuotaCharge::Clamped(Budget::Trials(remaining_trials))
            } else {
                QuotaCharge::Exhausted
            }
        }
        Budget::Time(d) => {
            let secs = d.as_secs_f64();
            if remaining_secs >= secs {
                QuotaCharge::Granted(Budget::Time(d))
            } else if remaining_secs >= MIN_SECS {
                QuotaCharge::Clamped(Budget::Time(std::time::Duration::from_secs_f64(
                    remaining_secs,
                )))
            } else {
                QuotaCharge::Exhausted
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proportional_to_param_counts() {
        // SVM has 5 params, KNN has 1: SVM gets 5x the trials (before floor).
        let shares = divide_budget(Budget::Trials(60), &[Algorithm::Svm, Algorithm::Knn]);
        assert_eq!(shares[0].1.trials(), Some(50));
        assert_eq!(shares[1].1.trials(), Some(10));
    }

    #[test]
    fn floor_guarantees_minimum() {
        let shares = divide_budget(
            Budget::Trials(6),
            &[Algorithm::Svm, Algorithm::Knn, Algorithm::NeuralNet],
        );
        for (_, b) in shares {
            let t = b.trials().expect("trial budgets divide into trial budgets");
            assert!(t >= 3);
        }
    }

    #[test]
    fn single_algorithm_gets_everything() {
        let shares = divide_budget(Budget::Trials(40), &[Algorithm::Rpart]);
        assert_eq!(shares.len(), 1);
        assert_eq!(shares[0].1, Budget::Trials(40));
    }

    #[test]
    fn equal_param_counts_split_evenly() {
        // J48 and part both have 3 params.
        let shares = divide_budget(Budget::Trials(20), &[Algorithm::J48, Algorithm::Part]);
        assert_eq!(shares[0].1, shares[1].1);
    }

    #[test]
    fn apportioned_trials_sum_exactly() {
        for freed in [0usize, 1, 7, 23, 100] {
            let shares = apportion_trials(
                freed,
                &[Algorithm::Svm, Algorithm::Knn, Algorithm::RandomForest],
            );
            let total: usize = shares.iter().map(|(_, t)| t).sum();
            assert_eq!(total, freed, "freed={freed} must be fully reassigned");
        }
    }

    #[test]
    fn apportionment_follows_param_counts() {
        // SVM (5 params) outweighs KNN (1 param).
        let shares = apportion_trials(12, &[Algorithm::Svm, Algorithm::Knn]);
        assert_eq!(shares[0].0, Algorithm::Svm);
        assert_eq!(shares[0].1, 10);
        assert_eq!(shares[1].1, 2);
    }

    #[test]
    fn apportionment_handles_empty_survivors() {
        assert!(apportion_trials(10, &[]).is_empty());
        assert!(apportion_secs(10.0, &[]).is_empty());
    }

    #[test]
    fn apportioned_secs_sum_and_ignore_degenerate_inputs() {
        let shares = apportion_secs(9.0, &[Algorithm::J48, Algorithm::Part]);
        let total: f64 = shares.iter().map(|(_, s)| s).sum();
        assert!((total - 9.0).abs() < 1e-9);
        assert!((shares[0].1 - shares[1].1).abs() < 1e-9);
        for (_, s) in apportion_secs(f64::NAN, &[Algorithm::Knn]) {
            assert_eq!(s, 0.0);
        }
        for (_, s) in apportion_secs(-1.0, &[Algorithm::Knn]) {
            assert_eq!(s, 0.0);
        }
    }

    #[test]
    fn apportionment_is_deterministic() {
        let algorithms = [Algorithm::Svm, Algorithm::Knn, Algorithm::NeuralNet];
        let a = apportion_trials(17, &algorithms);
        let b = apportion_trials(17, &algorithms);
        assert_eq!(a, b);
    }

    // ---- edge cases exposed by the job service's per-tenant quotas ----

    #[test]
    fn zero_survivor_reallocation_frees_without_panicking() {
        // Every breaker tripped: the freed budget has nowhere to go. The
        // apportioners must return an empty share list (not panic, not
        // divide by a zero weight sum) for any freed amount.
        for freed in [0usize, 1, 97] {
            assert!(apportion_trials(freed, &[]).is_empty());
        }
        for freed in [0.0f64, 0.3, 1e6, f64::NAN, f64::INFINITY] {
            assert!(apportion_secs(freed, &[]).is_empty());
        }
    }

    #[test]
    fn single_trial_budget_apportions_to_exactly_one_survivor() {
        // One freed trial cannot be split: largest-remainder hands it to
        // the heaviest-weighted algorithm, deterministically, and the
        // total still sums exactly.
        let shares = apportion_trials(1, &[Algorithm::Knn, Algorithm::Svm]);
        let total: usize = shares.iter().map(|(_, t)| t).sum();
        assert_eq!(total, 1);
        assert_eq!(shares.iter().find(|(a, _)| *a == Algorithm::Svm).unwrap().1, 1);
        assert_eq!(shares.iter().find(|(a, _)| *a == Algorithm::Knn).unwrap().1, 0);
    }

    #[test]
    fn single_trial_total_budget_still_meets_the_floor() {
        // A Trials(1) request divided across algorithms inflates to the
        // 3-trial floor per algorithm rather than starving everyone —
        // the documented floor semantics, pinned here because quota
        // clamping can hand the pipeline degenerate totals.
        let shares = divide_budget(Budget::Trials(1), &[Algorithm::Svm, Algorithm::Knn]);
        for (_, b) in shares {
            assert!(b.trials().unwrap() >= 3);
        }
    }

    #[test]
    fn quota_charges_grant_clamp_then_exhaust() {
        // A tenant with a 10-trial quota submitting 6-trial jobs: the
        // first is granted in full, the second is clamped to the 4
        // remaining trials (still above the floor), the third is
        // rejected outright.
        let mut remaining = 10usize;
        match charge_quota(&Budget::Trials(6), remaining, 0.0) {
            QuotaCharge::Granted(Budget::Trials(6)) => remaining -= 6,
            other => panic!("expected full grant, got {other:?}"),
        }
        match charge_quota(&Budget::Trials(6), remaining, 0.0) {
            QuotaCharge::Clamped(Budget::Trials(4)) => remaining -= 4,
            other => panic!("expected clamp to 4, got {other:?}"),
        }
        assert_eq!(charge_quota(&Budget::Trials(6), remaining, 0.0), QuotaCharge::Exhausted);
    }

    #[test]
    fn quota_exhausted_mid_round_respects_the_floors() {
        // 2 trials left is below the 3-trial floor: reject rather than
        // admit a job whose tuning round cannot do anything useful.
        assert_eq!(charge_quota(&Budget::Trials(5), 2, 1e9), QuotaCharge::Exhausted);
        // Same for time budgets below the 50 ms floor.
        assert_eq!(
            charge_quota(&Budget::Time(std::time::Duration::from_secs(1)), 0, 0.01),
            QuotaCharge::Exhausted
        );
        // Time budgets clamp on the seconds axis without touching trials.
        match charge_quota(&Budget::Time(std::time::Duration::from_secs(2)), 0, 0.5) {
            QuotaCharge::Clamped(Budget::Time(d)) => {
                assert!((d.as_secs_f64() - 0.5).abs() < 1e-9);
            }
            other => panic!("expected time clamp, got {other:?}"),
        }
    }
}
