//! `smartml-cli` — the command-line face of SmartML (the package/API
//! access path of the paper; the Shiny UI is substituted by text output).
//!
//! ```text
//! smartml-cli run <data.csv|data.arff> [--target COL] [--budget N]
//!                 [--kb SPEC] [--ensemble] [--interpret] [--top-n N]
//!                 [--preprocess op1,op2] [--seed N] [--markdown] [--json]
//!                 [--trial-timeout SECS] [--breaker-threshold K]
//!                 [--optimizer smac|grid|random|tpe|halving|hyperband|asha]
//!                 [--halving-eta N] [--trace-out FILE] [--metrics]
//! smartml-cli metafeatures <data.csv|data.arff>
//! smartml-cli describe <data.csv|data.arff>
//! smartml-cli algorithms
//! smartml-cli bootstrap --kb PATH [--fast]
//! smartml-cli api < request.json
//! smartml-cli kb serve --dir DIR [--addr HOST:PORT] [--io blocking|epoll]
//!                      [--shards N] [--no-fsync]
//! smartml-cli kb stats|snapshot|metrics --kb SPEC
//! smartml-cli kb query <data> --kb SPEC [--top-n N]
//! smartml-cli kb query --batch FILE --kb SPEC [--top-n N]
//! smartml-cli kb record <data> --kb SPEC --algorithm NAME --accuracy X
//! smartml-cli synth <family> [--rows N] [--seed N] [--out FILE] [--spec JSON]
//! ```
//!
//! `--trace-out FILE` records structured spans for the run, writes them
//! as a Chrome-trace JSON file (open in `chrome://tracing` or Perfetto),
//! and adds a "Where the time went" section to the report. `--metrics`
//! enables the process metrics registry and dumps it to stderr after the
//! run.
//!
//! `--kb SPEC` accepts a plain JSON path, `wal:DIR` for the durable
//! write-ahead-logged store, or `tcp:HOST:PORT` for a running `smartmld`.

use smartml::bootstrap::{bootstrap_kb, BootstrapProfile};
use smartml::{api, Budget, KbSource, KnowledgeBase, Op, OptimizerChoice, SmartML, SmartMlOptions};
use smartml_classifiers::{Algorithm, ParamConfig};
use smartml_data::io::{parse_arff, parse_csv, write_csv};
use smartml_data::synth::SynthSpec;
use smartml_data::Dataset;
use smartml_kb::{AlgorithmRun, KbBackend, QueryOptions};
use smartml_kbd::{
    BatchQuery, DurableKb, DurableOptions, EventServer, EventServerOptions, KbClient, Server,
    ServerOptions,
};
use std::io::Read;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("metafeatures") => cmd_metafeatures(&args[1..]),
        Some("describe") => cmd_describe(&args[1..]),
        Some("algorithms") => cmd_algorithms(),
        Some("bootstrap") => cmd_bootstrap(&args[1..]),
        Some("api") => cmd_api(&args[1..]),
        Some("kb") => cmd_kb(&args[1..]),
        Some("synth") => cmd_synth(&args[1..]),
        _ => {
            eprintln!(
                "usage: smartml-cli <run|metafeatures|describe|algorithms|bootstrap|api|kb|synth> ..."
            );
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

fn load_dataset(path: &str, target: Option<&str>) -> Result<Dataset, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let name = Path::new(path)
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| path.to_string());
    if path.ends_with(".arff") {
        parse_arff(&name, &text).map_err(|e| e.to_string())
    } else {
        parse_csv(&name, &text, target).map_err(|e| e.to_string())
    }
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("run: missing dataset path")?;
    let data = load_dataset(path, flag_value(args, "--target"))?;
    let mut options = SmartMlOptions::default();
    if let Some(budget) = flag_value(args, "--budget") {
        let trials: usize = budget.parse().map_err(|_| "--budget expects a number")?;
        options.budget = Budget::Trials(trials.max(3));
    }
    if let Some(secs) = flag_value(args, "--budget-seconds") {
        let s: f64 = secs.parse().map_err(|_| "--budget-seconds expects a number")?;
        if !s.is_finite() {
            return Err("--budget-seconds expects a finite number".into());
        }
        options.budget = Budget::Time(std::time::Duration::from_secs_f64(s.max(0.1)));
    }
    if let Some(secs) = flag_value(args, "--trial-timeout") {
        let s: f64 = secs.parse().map_err(|_| "--trial-timeout expects a number")?;
        if !s.is_finite() || s <= 0.0 {
            return Err("--trial-timeout expects a positive finite number of seconds".into());
        }
        options.trial_timeout = Some(std::time::Duration::from_secs_f64(s));
    }
    if let Some(k) = flag_value(args, "--breaker-threshold") {
        options.breaker_threshold =
            k.parse().map_err(|_| "--breaker-threshold expects a number (0 disables)")?;
    }
    if let Some(name) = flag_value(args, "--optimizer") {
        options.optimizer = OptimizerChoice::parse(name)?;
    }
    if let Some(eta) = flag_value(args, "--halving-eta") {
        options.halving_eta =
            eta.parse().map_err(|_| "--halving-eta expects a number >= 2")?;
        if options.halving_eta < 2 {
            return Err(format!(
                "--halving-eta must be at least 2, got {}",
                options.halving_eta
            ));
        }
    }
    if let Some(n) = flag_value(args, "--top-n") {
        options.top_n_algorithms = n.parse().map_err(|_| "--top-n expects a number")?;
    }
    if let Some(seed) = flag_value(args, "--seed") {
        options.seed = seed.parse().map_err(|_| "--seed expects a number")?;
    }
    if let Some(ops) = flag_value(args, "--preprocess") {
        let mut parsed = Vec::new();
        for name in ops.split(',') {
            parsed.push(Op::parse(name).ok_or_else(|| format!("unknown op '{name}'"))?);
        }
        options.preprocessing = parsed;
    }
    options.ensembling = has_flag(args, "--ensemble");
    options.interpretability = has_flag(args, "--interpret");
    options.trace = flag_value(args, "--trace-out").is_some() || has_flag(args, "--trace");
    if has_flag(args, "--metrics") {
        smartml_obs::enable_metrics();
    }

    let kb_spec = flag_value(args, "--kb").map(KbSource::parse).transpose()?;
    match kb_spec {
        None => {
            run_engine(KnowledgeBase::new(), options, &data, args)?;
        }
        Some(KbSource::File(p)) => {
            let kb = KnowledgeBase::load(&p).map_err(|e| e.to_string())?;
            let kb = run_engine(kb, options, &data, args)?;
            kb.save(&p).map_err(|e| e.to_string())?;
            println!("knowledge base saved to {}", p.display());
        }
        Some(KbSource::Wal(d)) => {
            let kb = DurableKb::open(&d).map_err(|e| e.to_string())?;
            let kb = run_engine(kb, options, &data, args)?;
            println!(
                "knowledge base WAL at {} (active segment {})",
                kb.dir().display(),
                kb.active_segment()
            );
        }
        Some(KbSource::Remote(addr)) => {
            let client = KbClient::connect(addr);
            client.ping().map_err(|e| e.to_string())?;
            run_engine(client, options, &data, args)?;
        }
    }
    Ok(())
}

/// Runs the pipeline against any KB backend and prints the report.
fn run_engine<B: KbBackend>(
    kb: B,
    options: SmartMlOptions,
    data: &Dataset,
    args: &[String],
) -> Result<B, String> {
    println!(
        "knowledge base: {} ({} datasets / {} runs)",
        kb.kb_describe(),
        kb.kb_len(),
        kb.kb_n_runs()
    );
    let mut engine = SmartML::with_backend(kb, options);
    let outcome = engine.run(data).map_err(|e| e.to_string())?;
    if has_flag(args, "--json") {
        println!(
            "{}",
            serde_json::to_string_pretty(&outcome.report).map_err(|e| e.to_string())?
        );
    } else if has_flag(args, "--markdown") {
        print!("{}", outcome.report.render_markdown());
    } else {
        print!("{}", outcome.report.render());
    }
    if let Some(path) = flag_value(args, "--trace-out") {
        let trace = outcome
            .trace
            .as_ref()
            .ok_or("--trace-out: run produced no trace (tracing was not enabled)")?;
        std::fs::write(path, trace.to_chrome_trace()).map_err(|e| format!("{path}: {e}"))?;
        eprintln!(
            "trace: {} spans written to {path} (open in chrome://tracing){}",
            trace.spans.len(),
            if trace.dropped > 0 {
                format!("; {} spans dropped to the ring-buffer cap", trace.dropped)
            } else {
                String::new()
            }
        );
    }
    if has_flag(args, "--metrics") {
        eprint!("{}", smartml_obs::snapshot().render_text());
    }
    Ok(engine.into_kb())
}

fn cmd_metafeatures(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("metafeatures: missing dataset path")?;
    let data = load_dataset(path, flag_value(args, "--target"))?;
    let mf = smartml_metafeatures::extract(&data, &data.all_rows());
    for (name, value) in mf.named() {
        println!("{name:<32} {value:.6}");
    }
    Ok(())
}

fn cmd_describe(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("describe: missing dataset path")?;
    let data = load_dataset(path, flag_value(args, "--target"))?;
    print!("{}", data.describe());
    Ok(())
}

fn cmd_algorithms() -> Result<(), String> {
    println!("{:<14} {:>11} {:>9}  R package (paper)", "Algorithm", "categorical", "numeric");
    for alg in Algorithm::ALL {
        let spec = alg.spec();
        println!(
            "{:<14} {:>11} {:>9}  {}",
            alg.paper_name(),
            spec.n_categorical,
            spec.n_numeric,
            alg.paper_package()
        );
    }
    Ok(())
}

fn cmd_bootstrap(args: &[String]) -> Result<(), String> {
    let kb_path = flag_value(args, "--kb").ok_or("bootstrap: --kb PATH required")?;
    let profile = if has_flag(args, "--fast") {
        BootstrapProfile::fast()
    } else {
        BootstrapProfile::default()
    };
    println!(
        "bootstrapping knowledge base over the 50-dataset corpus ({} algorithms x {} configs)…",
        profile.algorithms.len(),
        profile.configs_per_algorithm
    );
    let kb = bootstrap_kb(&profile);
    println!("bootstrapped: {} datasets / {} runs", kb.len(), kb.n_runs());
    kb.save(Path::new(kb_path)).map_err(|e| e.to_string())?;
    println!("saved to {kb_path}");
    Ok(())
}

fn cmd_kb(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("serve") => kb_serve(&args[1..]),
        Some("stats") => kb_stats(&args[1..]),
        Some("query") => kb_query(&args[1..]),
        Some("record") => kb_record(&args[1..]),
        Some("snapshot") => kb_snapshot(&args[1..]),
        Some("metrics") => kb_metrics(&args[1..]),
        Some("promote") => kb_promote(&args[1..]),
        _ => {
            Err("usage: smartml-cli kb <serve|stats|query|record|snapshot|metrics|promote> ..."
                .into())
        }
    }
}

fn parse_kb_spec(args: &[String]) -> Result<KbSource, String> {
    KbSource::parse(flag_value(args, "--kb").ok_or("--kb SPEC required")?)
}

/// `kb serve`: host a durable KB over TCP (same engine as `smartmld`),
/// on either backend: `--io epoll` (default; sharded, pipelined) or
/// `--io blocking` (thread per connection).
fn kb_serve(args: &[String]) -> Result<(), String> {
    let dir = PathBuf::from(flag_value(args, "--dir").ok_or("kb serve: --dir DIR required")?);
    let addr = flag_value(args, "--addr").unwrap_or("127.0.0.1:7878").to_string();
    let mut durable = DurableOptions::default();
    if has_flag(args, "--no-fsync") {
        durable.fsync_writes = false;
    }
    let report = |r: &smartml_kbd::RecoveryReport, datasets: usize, runs: usize| {
        println!(
            "recovered {datasets} datasets / {runs} runs (snapshot {:?}, {} WAL records replayed{})",
            r.snapshot_seq,
            r.records_replayed,
            if r.truncated_tail { ", torn tail truncated" } else { "" }
        );
    };
    match flag_value(args, "--io").unwrap_or("epoll") {
        "blocking" => {
            let server = Server::bind(ServerOptions {
                dir,
                addr,
                durable,
                ..ServerOptions::default()
            })
            .map_err(|e| e.to_string())?;
            report(server.recovery(), server.shared().len(), server.shared().n_runs());
            println!(
                "smartmld: listening on {}",
                server.local_addr().map_err(|e| e.to_string())?
            );
            server.run().map_err(|e| e.to_string())
        }
        "epoll" => {
            let shards = match flag_value(args, "--shards") {
                Some(n) => n.parse().map_err(|_| "--shards expects a number")?,
                None => 0,
            };
            let server = EventServer::bind(EventServerOptions {
                dir,
                addr,
                durable,
                n_loops: shards,
                ..EventServerOptions::default()
            })
            .map_err(|e| e.to_string())?;
            report(server.recovery(), server.store().len(), server.store().n_runs());
            println!(
                "smartmld: epoll backend, {} event loop(s) / shard(s)",
                server.store().n_shards()
            );
            println!(
                "smartmld: listening on {}",
                server.local_addr().map_err(|e| e.to_string())?
            );
            server.run().map_err(|e| e.to_string())
        }
        other => Err(format!("--io expects `blocking` or `epoll`, got `{other}`")),
    }
}

fn kb_stats(args: &[String]) -> Result<(), String> {
    match parse_kb_spec(args)? {
        KbSource::File(p) => {
            let kb = KnowledgeBase::load(&p).map_err(|e| e.to_string())?;
            println!("{}: {} datasets / {} runs", p.display(), kb.len(), kb.n_runs());
        }
        KbSource::Wal(d) => {
            let kb = DurableKb::open(&d).map_err(|e| e.to_string())?;
            let r = kb.recovery();
            println!(
                "wal:{}: {} datasets / {} runs (snapshot {:?}, active segment {}, \
                 applied seq {}, {} records replayed{})",
                d.display(),
                kb.kb().len(),
                kb.kb().n_runs(),
                r.snapshot_seq,
                kb.active_segment(),
                kb.applied_seq(),
                r.records_replayed,
                if r.truncated_tail { ", torn tail truncated" } else { "" }
            );
        }
        KbSource::Remote(addr) => {
            let stats = KbClient::connect(&*addr).stats().map_err(|e| e.to_string())?;
            println!(
                "tcp:{addr}: {} datasets / {} runs ({} WAL segments, active {}, \
                 snapshot {:?}, applied seq {})",
                stats.datasets,
                stats.runs,
                stats.wal_segments,
                stats.active_segment,
                stats.snapshot_seq,
                stats.applied_seq
            );
        }
    }
    Ok(())
}

/// `kb query`: extract meta-features from a dataset (or, with `--batch
/// FILE`, from every dataset listed in FILE) and ask the KB for
/// algorithm nominations without running the pipeline. Against a live
/// `tcp:` server, a batch goes out as one `recommend_batch` round trip.
fn kb_query(args: &[String]) -> Result<(), String> {
    let mut options = QueryOptions::default();
    if let Some(n) = flag_value(args, "--top-n") {
        options.top_n = n.parse().map_err(|_| "--top-n expects a number")?;
    }
    if let Some(n) = flag_value(args, "--neighbors") {
        options.n_neighbors = n.parse().map_err(|_| "--neighbors expects a number")?;
    }

    // Collect the datasets to query: one positional path, or a --batch
    // manifest with one dataset path per line (# comments allowed).
    let paths: Vec<String> = match flag_value(args, "--batch") {
        Some(manifest) => std::fs::read_to_string(manifest)
            .map_err(|e| format!("kb query: cannot read batch file {manifest}: {e}"))?
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .map(String::from)
            .collect(),
        None => vec![args
            .first()
            .filter(|a| !a.starts_with("--"))
            .ok_or("kb query: missing dataset path (or --batch FILE)")?
            .clone()],
    };
    if paths.is_empty() {
        return Err("kb query: batch file lists no datasets".into());
    }
    let target = flag_value(args, "--target");
    let queries: Vec<(String, smartml_metafeatures::MetaFeatures)> = paths
        .iter()
        .map(|p| {
            let data = load_dataset(p, target)?;
            let mf = smartml_metafeatures::extract(&data, &data.all_rows());
            Ok((p.clone(), mf))
        })
        .collect::<Result<_, String>>()?;

    let recs = match parse_kb_spec(args)? {
        KbSource::File(p) => {
            let kb = KnowledgeBase::load(&p).map_err(|e| e.to_string())?;
            queries
                .iter()
                .map(|(_, mf)| kb.kb_recommend(mf, None, &options))
                .collect::<Result<Vec<_>, _>>()
        }
        KbSource::Wal(d) => {
            let kb = DurableKb::open(&d).map_err(|e| e.to_string())?;
            queries
                .iter()
                .map(|(_, mf)| kb.kb_recommend(mf, None, &options))
                .collect::<Result<Vec<_>, _>>()
        }
        KbSource::Remote(addr) => {
            let client = KbClient::connect(addr);
            if queries.len() == 1 {
                client.recommend(&queries[0].1, None, &options).map(|r| vec![r])
            } else {
                // The point of the batch verb: all answers, one round trip.
                client.recommend_batch(
                    queries
                        .iter()
                        .map(|(_, mf)| BatchQuery {
                            meta_features: mf.clone(),
                            landmarkers: None,
                            options: Some(options.clone()),
                        })
                        .collect(),
                )
            }
        }
    }
    .map_err(|e| e.to_string())?;

    for (i, ((path, _), rec)) in queries.iter().zip(&recs).enumerate() {
        if queries.len() > 1 {
            if i > 0 {
                println!();
            }
            println!("== {path}");
        }
        if rec.algorithms.is_empty() {
            println!("knowledge base has no experience yet — no nominations");
            continue;
        }
        println!("{:<14} {:>8}  warm starts", "Algorithm", "score");
        for a in &rec.algorithms {
            println!(
                "{:<14} {:>8.4}  {}",
                a.algorithm.paper_name(),
                a.score,
                a.warm_starts.len()
            );
        }
        println!("nearest datasets:");
        for (id, d) in &rec.neighbors {
            println!("  {id} (distance {d:.4})");
        }
    }
    Ok(())
}

/// `kb record`: append one observed run to the KB.
fn kb_record(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("kb record: missing dataset path")?;
    let data = load_dataset(path, flag_value(args, "--target"))?;
    let mf = smartml_metafeatures::extract(&data, &data.all_rows());
    let name = flag_value(args, "--algorithm").ok_or("kb record: --algorithm NAME required")?;
    let algorithm = Algorithm::parse(name).ok_or_else(|| format!("unknown algorithm '{name}'"))?;
    let accuracy: f64 = flag_value(args, "--accuracy")
        .ok_or("kb record: --accuracy X required")?
        .parse()
        .map_err(|_| "--accuracy expects a number")?;
    let run = AlgorithmRun { algorithm, config: ParamConfig::default(), accuracy };
    match parse_kb_spec(args)? {
        KbSource::File(p) => {
            let mut kb = match KnowledgeBase::load(&p) {
                Ok(kb) => kb,
                Err(_) if !p.exists() => KnowledgeBase::new(),
                Err(e) => return Err(e.to_string()),
            };
            kb.record_run(&data.name, &mf, run);
            kb.save(&p).map_err(|e| e.to_string())?;
            println!("recorded; {}: {} datasets / {} runs", p.display(), kb.len(), kb.n_runs());
        }
        KbSource::Wal(d) => {
            let mut kb = DurableKb::open(&d).map_err(|e| e.to_string())?;
            kb.record_run(&data.name, &mf, run).map_err(|e| e.to_string())?;
            println!(
                "recorded; wal:{}: {} datasets / {} runs",
                d.display(),
                kb.kb().len(),
                kb.kb().n_runs()
            );
        }
        KbSource::Remote(addr) => {
            let (datasets, runs) = KbClient::connect(&*addr)
                .record_run(&data.name, &mf, run)
                .map_err(|e| e.to_string())?;
            println!("recorded; tcp:{addr}: {datasets} datasets / {runs} runs");
        }
    }
    Ok(())
}

/// `kb metrics`: fetch a live server's request/latency/WAL metrics over
/// the `metrics` protocol verb.
fn kb_metrics(args: &[String]) -> Result<(), String> {
    let KbSource::Remote(addr) = parse_kb_spec(args)? else {
        return Err("kb metrics applies to tcp: knowledge bases (a live smartmld)".into());
    };
    let m = KbClient::connect(&*addr).metrics().map_err(|e| e.to_string())?;
    println!("smartmld at {addr}:");
    println!("  requests        {}", m.requests);
    println!("  errors          {}", m.errors);
    println!("  bytes in/out    {} / {}", m.bytes_in, m.bytes_out);
    println!(
        "  latency (us)    p50 {} / p99 {} / max {} / mean {:.1}",
        m.request_us_p50, m.request_us_p99, m.request_us_max, m.request_us_mean
    );
    println!("  wal fsyncs      {}", m.wal_fsyncs);
    println!("  wal rotations   {}", m.wal_rotations);
    println!("  applied seq     {}", m.applied_seq);
    if let Some(lag) = m.replication_lag {
        println!("  replica lag     {lag} record(s)");
    }
    println!("  by verb:");
    for (op, count) in &m.ops {
        println!("    {op:<16} {count}");
    }
    Ok(())
}

/// `kb snapshot`: compact a durable KB (local WAL dir or live server).
fn kb_snapshot(args: &[String]) -> Result<(), String> {
    match parse_kb_spec(args)? {
        KbSource::File(_) => {
            Err("kb snapshot applies to wal: and tcp: knowledge bases only".into())
        }
        KbSource::Wal(d) => {
            let mut kb = DurableKb::open(&d).map_err(|e| e.to_string())?;
            let seq = kb.snapshot().map_err(|e| e.to_string())?;
            println!("snapshotted wal:{} at segment {seq}", d.display());
            Ok(())
        }
        KbSource::Remote(addr) => {
            let seq = KbClient::connect(&*addr).snapshot().map_err(|e| e.to_string())?;
            println!("snapshotted tcp:{addr} at segment {seq}");
            Ok(())
        }
    }
}

fn kb_promote(args: &[String]) -> Result<(), String> {
    let KbSource::Remote(addr) = parse_kb_spec(args)? else {
        return Err("kb promote applies to tcp: knowledge bases (a live smartmld)".into());
    };
    let was_replica = KbClient::connect(&*addr).promote().map_err(|e| e.to_string())?;
    if was_replica {
        println!("promoted tcp:{addr} from replica to primary");
    } else {
        println!("tcp:{addr} was already a primary (no-op)");
    }
    Ok(())
}

fn cmd_api(args: &[String]) -> Result<(), String> {
    let mut request = String::new();
    std::io::stdin()
        .read_to_string(&mut request)
        .map_err(|e| e.to_string())?;
    let kb_path = flag_value(args, "--kb").map(PathBuf::from);
    let mut kb = match &kb_path {
        Some(p) => KnowledgeBase::load(p).map_err(|e| e.to_string())?,
        None => KnowledgeBase::new(),
    };
    println!("{}", api::handle_json(&mut kb, &request));
    if let Some(p) = kb_path {
        kb.save(&p).map_err(|e| e.to_string())?;
    }
    Ok(())
}

/// Default parameter choices for `synth <family>` — the same generator
/// space the KB bootstrap corpus draws from, at paper-scale defaults.
/// `--rows` rescales any family up to the 10^5-row range.
fn synth_family(family: &str) -> Option<SynthSpec> {
    Some(match family {
        "blobs" => SynthSpec::Blobs { n: 600, d: 8, k: 3, spread: 1.0 },
        "xor_parity" => SynthSpec::XorParity { n: 600, informative: 3, noise: 12, flip: 0.02 },
        "prototype_noise" => SynthSpec::PrototypeNoise { n: 600, d: 24, k: 4, snr: 1.0 },
        "sparse_counts" => SynthSpec::SparseCounts { n: 600, d: 40, k: 3, doc_len: 60 },
        "kinematics" => SynthSpec::Kinematics { n: 600, d: 8, noise: 0.05 },
        "imbalanced_mixture" => {
            SynthSpec::ImbalancedMixture { n: 600, d: 8, k: 4, overlap: 1.0 }
        }
        "sensor_drift" => SynthSpec::SensorDrift { n: 600, d: 6, drift: 0.3 },
        "two_spirals" => SynthSpec::TwoSpirals { n: 600, noise: 0.05 },
        "categorical_mixture" => {
            SynthSpec::CategoricalMixture { n: 600, d_cat: 4, d_num: 4, k: 3, cardinality: 4 }
        }
        _ => return None,
    })
}

fn cmd_synth(args: &[String]) -> Result<(), String> {
    let spec = if let Some(json) = flag_value(args, "--spec") {
        serde_json::from_str::<SynthSpec>(json).map_err(|e| format!("--spec: {e}"))?
    } else {
        let family = args
            .iter()
            .find(|a| !a.starts_with("--"))
            .ok_or("synth: name a generator family or pass --spec JSON")?;
        synth_family(family).ok_or_else(|| {
            format!(
                "synth: unknown family {family:?} (try blobs, xor_parity, prototype_noise, \
                 sparse_counts, kinematics, imbalanced_mixture, sensor_drift, two_spirals, \
                 categorical_mixture, or pass --spec JSON)"
            )
        })?
    };
    let spec = match flag_value(args, "--rows") {
        Some(r) => {
            let rows: usize = r.parse().map_err(|_| "--rows expects a number")?;
            if rows == 0 {
                return Err("--rows expects a positive number".into());
            }
            spec.with_rows(rows)
        }
        None => spec,
    };
    let seed: u64 = match flag_value(args, "--seed") {
        Some(s) => s.parse().map_err(|_| "--seed expects a number")?,
        None => 0,
    };
    let name = flag_value(args, "--name").unwrap_or("synth");
    let data = spec.generate(name, seed);
    let csv = write_csv(&data);
    match flag_value(args, "--out") {
        Some(path) => {
            std::fs::write(path, &csv).map_err(|e| format!("{path}: {e}"))?;
            eprintln!(
                "wrote {} rows x {} features to {path}",
                data.n_rows(),
                data.n_features()
            );
        }
        None => print!("{csv}"),
    }
    Ok(())
}
