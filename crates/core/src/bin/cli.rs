//! `smartml-cli` — the command-line face of SmartML (the package/API
//! access path of the paper; the Shiny UI is substituted by text output).
//!
//! ```text
//! smartml-cli run <data.csv|data.arff> [--target COL] [--budget N]
//!                 [--kb PATH] [--ensemble] [--interpret] [--top-n N]
//!                 [--preprocess op1,op2] [--seed N] [--markdown] [--json]
//! smartml-cli metafeatures <data.csv|data.arff>
//! smartml-cli describe <data.csv|data.arff>
//! smartml-cli algorithms
//! smartml-cli bootstrap --kb PATH [--fast]
//! smartml-cli api < request.json
//! ```

use smartml::bootstrap::{bootstrap_kb, BootstrapProfile};
use smartml::{api, Budget, KnowledgeBase, Op, SmartML, SmartMlOptions};
use smartml_classifiers::Algorithm;
use smartml_data::io::{parse_arff, parse_csv};
use smartml_data::Dataset;
use std::io::Read;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("metafeatures") => cmd_metafeatures(&args[1..]),
        Some("describe") => cmd_describe(&args[1..]),
        Some("algorithms") => cmd_algorithms(),
        Some("bootstrap") => cmd_bootstrap(&args[1..]),
        Some("api") => cmd_api(&args[1..]),
        _ => {
            eprintln!(
                "usage: smartml-cli <run|metafeatures|describe|algorithms|bootstrap|api> ..."
            );
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

fn load_dataset(path: &str, target: Option<&str>) -> Result<Dataset, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let name = Path::new(path)
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| path.to_string());
    if path.ends_with(".arff") {
        parse_arff(&name, &text).map_err(|e| e.to_string())
    } else {
        parse_csv(&name, &text, target).map_err(|e| e.to_string())
    }
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("run: missing dataset path")?;
    let data = load_dataset(path, flag_value(args, "--target"))?;
    let mut options = SmartMlOptions::default();
    if let Some(budget) = flag_value(args, "--budget") {
        let trials: usize = budget.parse().map_err(|_| "--budget expects a number")?;
        options.budget = Budget::Trials(trials.max(3));
    }
    if let Some(secs) = flag_value(args, "--budget-seconds") {
        let s: f64 = secs.parse().map_err(|_| "--budget-seconds expects a number")?;
        options.budget = Budget::Time(std::time::Duration::from_secs_f64(s.max(0.1)));
    }
    if let Some(n) = flag_value(args, "--top-n") {
        options.top_n_algorithms = n.parse().map_err(|_| "--top-n expects a number")?;
    }
    if let Some(seed) = flag_value(args, "--seed") {
        options.seed = seed.parse().map_err(|_| "--seed expects a number")?;
    }
    if let Some(ops) = flag_value(args, "--preprocess") {
        let mut parsed = Vec::new();
        for name in ops.split(',') {
            parsed.push(Op::parse(name).ok_or_else(|| format!("unknown op '{name}'"))?);
        }
        options.preprocessing = parsed;
    }
    options.ensembling = has_flag(args, "--ensemble");
    options.interpretability = has_flag(args, "--interpret");

    let kb_path = flag_value(args, "--kb").map(PathBuf::from);
    let kb = match &kb_path {
        Some(p) => KnowledgeBase::load(p).map_err(|e| e.to_string())?,
        None => KnowledgeBase::new(),
    };
    println!(
        "knowledge base: {} datasets / {} runs",
        kb.len(),
        kb.n_runs()
    );
    let mut engine = SmartML::with_kb(kb, options);
    let outcome = engine.run(&data).map_err(|e| e.to_string())?;
    if has_flag(args, "--json") {
        println!(
            "{}",
            serde_json::to_string_pretty(&outcome.report).map_err(|e| e.to_string())?
        );
    } else if has_flag(args, "--markdown") {
        print!("{}", outcome.report.render_markdown());
    } else {
        print!("{}", outcome.report.render());
    }
    if let Some(p) = kb_path {
        engine.into_kb().save(&p).map_err(|e| e.to_string())?;
        println!("knowledge base saved to {}", p.display());
    }
    Ok(())
}

fn cmd_metafeatures(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("metafeatures: missing dataset path")?;
    let data = load_dataset(path, flag_value(args, "--target"))?;
    let mf = smartml_metafeatures::extract(&data, &data.all_rows());
    for (name, value) in mf.named() {
        println!("{name:<32} {value:.6}");
    }
    Ok(())
}

fn cmd_describe(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("describe: missing dataset path")?;
    let data = load_dataset(path, flag_value(args, "--target"))?;
    print!("{}", data.describe());
    Ok(())
}

fn cmd_algorithms() -> Result<(), String> {
    println!("{:<14} {:>11} {:>9}  R package (paper)", "Algorithm", "categorical", "numeric");
    for alg in Algorithm::ALL {
        let spec = alg.spec();
        println!(
            "{:<14} {:>11} {:>9}  {}",
            alg.paper_name(),
            spec.n_categorical,
            spec.n_numeric,
            alg.paper_package()
        );
    }
    Ok(())
}

fn cmd_bootstrap(args: &[String]) -> Result<(), String> {
    let kb_path = flag_value(args, "--kb").ok_or("bootstrap: --kb PATH required")?;
    let profile = if has_flag(args, "--fast") {
        BootstrapProfile::fast()
    } else {
        BootstrapProfile::default()
    };
    println!(
        "bootstrapping knowledge base over the 50-dataset corpus ({} algorithms x {} configs)…",
        profile.algorithms.len(),
        profile.configs_per_algorithm
    );
    let kb = bootstrap_kb(&profile);
    println!("bootstrapped: {} datasets / {} runs", kb.len(), kb.n_runs());
    kb.save(Path::new(kb_path)).map_err(|e| e.to_string())?;
    println!("saved to {kb_path}");
    Ok(())
}

fn cmd_api(args: &[String]) -> Result<(), String> {
    let mut request = String::new();
    std::io::stdin()
        .read_to_string(&mut request)
        .map_err(|e| e.to_string())?;
    let kb_path = flag_value(args, "--kb").map(PathBuf::from);
    let mut kb = match &kb_path {
        Some(p) => KnowledgeBase::load(p).map_err(|e| e.to_string())?,
        None => KnowledgeBase::new(),
    };
    println!("{}", api::handle_json(&mut kb, &request));
    if let Some(p) = kb_path {
        kb.save(&p).map_err(|e| e.to_string())?;
    }
    Ok(())
}
