//! Schema validator for Chrome-trace files written by `--trace-out`.
//!
//! CI runs this against a real traced run; it exits non-zero with a loud
//! message if the file is not the trace the docs promise:
//!
//! 1. parses as a JSON array of complete-duration events;
//! 2. every event carries `name`/`cat` strings, `ph == "X"`, and numeric
//!    `ts`/`dur`/`pid`/`tid`;
//! 3. the span hierarchy is present: a root `run` span, the pipeline
//!    phases, per-algorithm `phase4.tune`, `smac.trial`, `smac.fold`;
//! 4. phase durations nest inside the root span: their sum must not
//!    exceed the `run` duration by more than 1%.
//!
//! Usage: `trace_check FILE`

use serde_json::Value;

fn fail(msg: &str) -> ! {
    eprintln!("trace_check FAILED: {msg}");
    std::process::exit(1);
}

fn num(event: &Value, key: &str, idx: usize) -> f64 {
    event
        .get(key)
        .and_then(Value::as_f64)
        .unwrap_or_else(|| fail(&format!("event {idx}: missing or non-numeric {key:?}: {event}")))
}

fn main() {
    let path = match std::env::args().nth(1) {
        Some(p) => p,
        None => fail("usage: trace_check FILE"),
    };
    let raw = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
    let parsed: Value = serde_json::from_str(&raw)
        .unwrap_or_else(|e| fail(&format!("{path} is not valid JSON: {e}")));
    let events = parsed
        .as_array()
        .unwrap_or_else(|| fail(&format!("{path}: top level must be a JSON array of events")));
    if events.is_empty() {
        fail(&format!("{path}: trace contains no events"));
    }

    let mut run_dur: Option<f64> = None;
    let mut phase_dur_sum = 0.0;
    let mut seen = std::collections::BTreeSet::new();
    for (idx, event) in events.iter().enumerate() {
        let name = event
            .get("name")
            .and_then(Value::as_str)
            .unwrap_or_else(|| fail(&format!("event {idx}: missing string \"name\": {event}")));
        if event.get("cat").and_then(Value::as_str).is_none() {
            fail(&format!("event {idx}: missing string \"cat\": {event}"));
        }
        match event.get("ph").and_then(Value::as_str) {
            Some("X") => {}
            other => fail(&format!("event {idx}: ph must be \"X\", got {other:?}: {event}")),
        }
        num(event, "ts", idx);
        let dur = num(event, "dur", idx);
        num(event, "pid", idx);
        num(event, "tid", idx);

        seen.insert(name.to_string());
        if name == "run" {
            if run_dur.is_some() {
                fail("more than one root \"run\" span");
            }
            run_dur = Some(dur);
        } else if name.starts_with("phase") && name != "phase4.tune" {
            // Top-level pipeline phases; phase4.tune is per-algorithm work
            // *inside* phase4.tune_all and would double-count.
            phase_dur_sum += dur;
        }
    }

    for required in ["run", "phase2.preprocess", "phase3.select", "phase4.tune_all", "phase4.tune", "smac.trial", "smac.fold"] {
        if !seen.contains(required) {
            fail(&format!(
                "span {required:?} missing — the phase/algorithm/trial/fold hierarchy is incomplete (saw: {seen:?})"
            ));
        }
    }

    let run_dur = run_dur.unwrap_or_else(|| fail("no root \"run\" span"));
    if run_dur <= 0.0 {
        fail("root \"run\" span has zero duration");
    }
    if phase_dur_sum > run_dur * 1.01 {
        fail(&format!(
            "phase durations sum to {phase_dur_sum:.0}us > 101% of the run span ({run_dur:.0}us) — phases must nest inside the run"
        ));
    }

    println!(
        "trace ok: {} events, {} distinct spans, phases cover {:.1}% of the {:.3}s run",
        events.len(),
        seen.len(),
        100.0 * phase_dur_sum / run_dur,
        run_dur / 1e6
    );
}
