//! # SmartML
//!
//! A meta-learning based framework for automated algorithm selection and
//! hyperparameter tuning of machine-learning classifiers — a from-scratch
//! Rust reproduction of Maher & Sakr, *SmartML*, EDBT 2019.
//!
//! The pipeline (paper Figure 1) runs five phases:
//!
//! 1. **Input definition** — a [`Dataset`] (CSV/ARFF
//!    readers in `smartml-data`) plus [`SmartMlOptions`].
//! 2. **Dataset preprocessing** — feature preprocessing (paper Table 2),
//!    stratified train/validation split, 25 meta-features extracted from the
//!    training split.
//! 3. **Algorithm selection** — the knowledge base nominates the top-n
//!    classifiers by weighted nearest-neighbour meta-feature similarity.
//! 4. **Hyper-parameter tuning** — the time/trial budget is divided among
//!    the nominated algorithms proportionally to their hyperparameter counts
//!    (paper Table 3) and each is tuned with SMAC, warm-started from the
//!    knowledge base's stored configurations.
//! 5. **Output & KB update** — finalists are compared on the validation
//!    split; optionally a validation-weighted soft-vote ensemble is built
//!    and permutation feature importance (the `iml` substitute) computed;
//!    every result is recorded back into the knowledge base.
//!
//! ```no_run
//! use smartml::{SmartML, SmartMlOptions};
//! use smartml_data::synth::gaussian_blobs;
//!
//! let data = gaussian_blobs("demo", 300, 4, 3, 1.0, 42);
//! let mut smartml = SmartML::new(SmartMlOptions::default());
//! let outcome = smartml.run(&data).unwrap();
//! println!("best: {} ({:.1}% validation accuracy)",
//!          outcome.report.best.algorithm,
//!          outcome.report.best.validation_accuracy * 100.0);
//! ```

pub mod api;
pub mod bootstrap;
mod budget;
mod ensemble;
mod interpret;
mod options;
mod pipeline;
mod report;

pub use budget::{charge_quota, divide_budget, QuotaCharge};
pub use ensemble::WeightedEnsemble;
pub use interpret::{
    explain_prediction, permutation_importance, permutation_importance_with, FeatureImportance,
};
pub use options::{Budget, KbSource, OptimizerChoice, SmartMlOptions};
pub use pipeline::{RunOutcome, SmartML, SmartMlError};
pub use report::{
    AlgorithmFailures, AlgorithmTuning, BestModel, EnsembleReport, FailureReport, PhaseTrace,
    RunReport,
};

// Re-export the workspace surface a downstream user needs.
pub use smartml_classifiers::{Algorithm, ParamConfig, ParamValue};
pub use smartml_data::Dataset;
pub use smartml_kb::KnowledgeBase;
pub use smartml_preprocess::Op;
