//! Weighted ensembling of the tuned finalists (paper §2: "a weighted
//! ensembling output of the top performing algorithms can be recommended
//! to the end user", citing Dietterich 2000).

use smartml_classifiers::TrainedModel;
use smartml_data::Dataset;

/// A soft-vote ensemble: members' probability vectors are averaged with
/// validation-accuracy-derived weights.
pub struct WeightedEnsemble {
    members: Vec<(Box<dyn TrainedModel>, f64)>,
    n_classes: usize,
}

impl WeightedEnsemble {
    /// Builds an ensemble from `(model, validation_accuracy)` pairs.
    /// Weights are the accuracies normalised to sum to 1; non-positive
    /// accuracies contribute nothing.
    ///
    /// # Panics
    /// Panics if `members` is empty.
    pub fn new(members: Vec<(Box<dyn TrainedModel>, f64)>, n_classes: usize) -> Self {
        assert!(!members.is_empty(), "ensemble needs at least one member");
        let total: f64 = members.iter().map(|(_, a)| a.max(0.0)).sum();
        let members = if total > 1e-12 {
            members
                .into_iter()
                .map(|(m, a)| (m, a.max(0.0) / total))
                .collect()
        } else {
            let n = members.len() as f64;
            members.into_iter().map(|(m, _)| (m, 1.0 / n)).collect()
        };
        WeightedEnsemble { members, n_classes }
    }

    /// Number of member models.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when the ensemble has no members (never constructible).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The normalised member weights.
    pub fn weights(&self) -> Vec<f64> {
        self.members.iter().map(|(_, w)| *w).collect()
    }
}

impl TrainedModel for WeightedEnsemble {
    fn predict_proba(&self, data: &Dataset, rows: &[usize]) -> Vec<Vec<f64>> {
        let mut combined = vec![vec![0.0; self.n_classes]; rows.len()];
        for (model, weight) in &self.members {
            let proba = model.predict_proba(data, rows);
            for (acc, p) in combined.iter_mut().zip(proba) {
                for (a, v) in acc.iter_mut().zip(p) {
                    *a += weight * v;
                }
            }
        }
        // Weights sum to 1, so rows are already distributions; renormalise
        // defensively against member rounding.
        for row in &mut combined {
            let s: f64 = row.iter().sum();
            if s > 1e-12 {
                for v in row.iter_mut() {
                    *v /= s;
                }
            }
        }
        combined
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartml_classifiers::{Algorithm, ParamConfig};
    use smartml_data::accuracy;
    use smartml_data::synth::gaussian_blobs;

    #[test]
    fn ensemble_at_least_matches_weak_members() {
        let d = gaussian_blobs("b", 240, 4, 3, 1.2, 1);
        let (train, test): (Vec<usize>, Vec<usize>) = (0..240).partition(|i| i % 2 == 0);
        let members: Vec<(Box<dyn TrainedModel>, f64)> = [Algorithm::Knn, Algorithm::Rpart, Algorithm::Lda]
            .iter()
            .map(|a| {
                let model = a.build(&ParamConfig::default()).fit(&d, &train).unwrap();
                let acc = accuracy(&d.labels_for(&train), &model.predict(&d, &train));
                (model, acc)
            })
            .collect();
        let worst = members
            .iter()
            .map(|(m, _)| accuracy(&d.labels_for(&test), &m.predict(&d, &test)))
            .fold(f64::INFINITY, f64::min);
        let ensemble = WeightedEnsemble::new(members, d.n_classes());
        let ens_acc = accuracy(&d.labels_for(&test), &ensemble.predict(&d, &test));
        assert!(ens_acc >= worst - 0.02, "ensemble {ens_acc} vs worst member {worst}");
    }

    #[test]
    fn weights_normalised() {
        let d = gaussian_blobs("b", 60, 2, 2, 1.0, 2);
        let rows = d.all_rows();
        let m1 = Algorithm::Knn.build(&ParamConfig::default()).fit(&d, &rows).unwrap();
        let m2 = Algorithm::Rpart.build(&ParamConfig::default()).fit(&d, &rows).unwrap();
        let ens = WeightedEnsemble::new(vec![(m1, 0.9), (m2, 0.3)], 2);
        let w = ens.weights();
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(w[0] > w[1]);
        assert_eq!(ens.len(), 2);
    }

    #[test]
    fn zero_accuracy_members_get_uniform_weights() {
        let d = gaussian_blobs("b", 40, 2, 2, 1.0, 3);
        let rows = d.all_rows();
        let m1 = Algorithm::Knn.build(&ParamConfig::default()).fit(&d, &rows).unwrap();
        let m2 = Algorithm::Rpart.build(&ParamConfig::default()).fit(&d, &rows).unwrap();
        let ens = WeightedEnsemble::new(vec![(m1, 0.0), (m2, 0.0)], 2);
        assert_eq!(ens.weights(), vec![0.5, 0.5]);
    }

    #[test]
    fn proba_rows_are_distributions() {
        let d = gaussian_blobs("b", 80, 3, 3, 1.0, 4);
        let rows = d.all_rows();
        let m1 = Algorithm::NaiveBayes.build(&ParamConfig::default()).fit(&d, &rows).unwrap();
        let ens = WeightedEnsemble::new(vec![(m1, 1.0)], 3);
        for p in ens.predict_proba(&d, &rows) {
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }
}
