//! The Auto-Weka simulation: joint-space Bayesian optimisation.

use smartml_classifiers::{Algorithm, ParamConfig, ParamSpace, ParamSpec};
use smartml_data::{accuracy, Dataset};
use smartml_runtime::Pool;
use smartml_smac::{ClassifierObjective, Objective, OptOptions, Optimizer, RandomSearch, Smac, Tpe, Trial};
use std::sync::Arc;
use std::time::Duration;

/// Which optimiser drives the joint search (Auto-Weka supports both).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JointOptimizer {
    /// Sequential model-based algorithm configuration.
    Smac,
    /// Tree-structured Parzen estimator.
    Tpe,
    /// Uniform random (for ablations).
    Random,
}

/// Result of a baseline AutoML run.
#[derive(Debug, Clone)]
pub struct BaselineOutcome {
    /// The winning algorithm.
    pub algorithm: Algorithm,
    /// Its configuration (algorithm-selector key removed).
    pub config: ParamConfig,
    /// Inner-CV score of the winner.
    pub cv_accuracy: f64,
    /// Accuracy on the held-out validation rows.
    pub validation_accuracy: f64,
    /// Full trial history (anytime curve).
    pub history: Vec<Trial>,
}

/// Auto-Weka 2.0 strategy over SmartML's 15 classifiers.
pub struct AutoWekaSim {
    /// The optimiser flavour.
    pub optimizer: JointOptimizer,
    /// Inner CV folds.
    pub cv_folds: usize,
    /// Seed.
    pub seed: u64,
    /// Worker threads (`0` = all cores, `1` = serial); the outcome is
    /// identical for any count.
    pub n_threads: usize,
}

impl Default for AutoWekaSim {
    fn default() -> Self {
        AutoWekaSim { optimizer: JointOptimizer::Smac, cv_folds: 3, seed: 0, n_threads: 1 }
    }
}

/// Key of the synthetic algorithm-selector dimension.
const ALGO_KEY: &str = "__algorithm";

/// Builds the joint space: one categorical selector over all 15 algorithm
/// names plus the union of every algorithm's parameters, prefixed to avoid
/// collisions (Auto-Weka's hierarchical space, flattened).
pub(crate) fn joint_space() -> ParamSpace {
    let mut params = vec![ParamSpec::Cat {
        name: ALGO_KEY.into(),
        choices: Algorithm::ALL.iter().map(|a| a.paper_name().to_string()).collect(),
    }];
    for alg in Algorithm::ALL {
        for spec in alg.param_space().params {
            params.push(prefix_spec(alg, spec));
        }
    }
    ParamSpace::new(params)
}

fn prefix_spec(alg: Algorithm, spec: ParamSpec) -> ParamSpec {
    let prefixed = |name: &str| format!("{}::{name}", alg.paper_name());
    match spec {
        ParamSpec::Real { name, lo, hi, log } => {
            ParamSpec::Real { name: prefixed(&name), lo, hi, log }
        }
        ParamSpec::Int { name, lo, hi, log } => {
            ParamSpec::Int { name: prefixed(&name), lo, hi, log }
        }
        ParamSpec::Cat { name, choices } => ParamSpec::Cat { name: prefixed(&name), choices },
    }
}

/// Extracts (algorithm, its own config) from a joint configuration.
pub(crate) fn split_joint(config: &ParamConfig) -> (Algorithm, ParamConfig) {
    let name = config.str_or(ALGO_KEY, "RandomForest");
    let algorithm = Algorithm::parse(name).unwrap_or(Algorithm::RandomForest);
    let prefix = format!("{}::", algorithm.paper_name());
    let mut own = ParamConfig::default();
    for (key, value) in &config.values {
        if let Some(stripped) = key.strip_prefix(&prefix) {
            own.values.insert(stripped.to_string(), value.clone());
        }
    }
    (algorithm, own)
}

/// Joint objective: dispatch each configuration to the selected algorithm's
/// per-algorithm CV objective.
struct JointObjective {
    objectives: Vec<ClassifierObjective>,
    cv_folds: usize,
}

impl Objective for JointObjective {
    fn n_folds(&self) -> usize {
        self.cv_folds
    }

    fn evaluate_fold(&self, config: &ParamConfig, fold: usize) -> Result<f64, String> {
        let (algorithm, own) = split_joint(config);
        let idx = Algorithm::ALL
            .iter()
            .position(|&a| a == algorithm)
            .expect("algorithm from registry");
        self.objectives[idx].evaluate_fold(&own, fold)
    }
}

impl AutoWekaSim {
    /// Runs the joint optimisation on the train rows and scores the winner
    /// on the validation rows. `max_trials`/`wall_clock` mirror SmartML's
    /// budget so comparisons are budget-equal.
    pub fn run(
        &self,
        data: &Dataset,
        train_rows: &[usize],
        valid_rows: &[usize],
        max_trials: usize,
        wall_clock: Option<Duration>,
    ) -> BaselineOutcome {
        let space = joint_space();
        let shared = Arc::new(data.clone());
        let objective = JointObjective {
            objectives: Algorithm::ALL
                .iter()
                .map(|&a| {
                    ClassifierObjective::new_shared(
                        a,
                        Arc::clone(&shared),
                        train_rows,
                        self.cv_folds,
                        self.seed,
                    )
                })
                .collect(),
            cv_folds: self.cv_folds,
        };
        let options = OptOptions {
            max_trials,
            wall_clock,
            seed: self.seed,
            initial_configs: Vec::new(), // no meta-learning, no warm starts
            pool: Pool::new(self.n_threads),
            ..Default::default()
        };
        let result = match self.optimizer {
            JointOptimizer::Smac => Smac::default().optimize(&space, &objective, &options),
            JointOptimizer::Tpe => Tpe::default().optimize(&space, &objective, &options),
            JointOptimizer::Random => RandomSearch.optimize(&space, &objective, &options),
        };
        let (algorithm, config) = split_joint(&result.best_config);
        let validation_accuracy = match algorithm.build(&config).fit(data, train_rows) {
            Ok(model) => accuracy(
                &data.labels_for(valid_rows),
                &model.predict(data, valid_rows),
            ),
            Err(_) => 0.0,
        };
        BaselineOutcome {
            algorithm,
            config,
            cv_accuracy: result.best_score,
            validation_accuracy,
            history: result.history,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartml_data::synth::gaussian_blobs;
    use smartml_data::train_valid_split;

    #[test]
    fn joint_space_covers_all_algorithms() {
        let space = joint_space();
        // 1 selector + 44 algorithm parameters (sum of the Table 3
        // categorical+numeric counts: 5+2+1+5+3+3+3+5+4+2+2+1+2+1+5).
        let total_params: usize =
            Algorithm::ALL.iter().map(|a| a.param_space().n_params()).sum();
        assert_eq!(space.n_params(), 1 + total_params);
        assert_eq!(total_params, 44);
    }

    #[test]
    fn split_joint_roundtrip() {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(1);
        let space = joint_space();
        for _ in 0..20 {
            let joint = space.sample(&mut rng);
            let (alg, own) = split_joint(&joint);
            assert!(alg.param_space().validates(&own), "{alg}: {own}");
        }
    }

    #[test]
    fn autoweka_finds_a_decent_model() {
        let d = gaussian_blobs("aw", 160, 3, 2, 0.8, 1);
        let (train, valid) = train_valid_split(&d, 0.3, 5);
        let outcome = AutoWekaSim { cv_folds: 2, ..Default::default() }
            .run(&d, &train, &valid, 8, None);
        assert!(outcome.validation_accuracy > 0.6, "{}", outcome.validation_accuracy);
        assert!(!outcome.history.is_empty());
    }

    #[test]
    fn random_flavour_runs() {
        let d = gaussian_blobs("awr", 140, 3, 2, 1.0, 2);
        let (train, valid) = train_valid_split(&d, 0.3, 5);
        let outcome = AutoWekaSim {
            optimizer: JointOptimizer::Random,
            cv_folds: 2,
            seed: 3,
            ..Default::default()
        }
        .run(&d, &train, &valid, 6, None);
        assert!(outcome.validation_accuracy > 0.4);
    }
}
