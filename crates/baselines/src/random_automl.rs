//! Vizier-style AutoML: uniform random search over (algorithm, config).

use crate::autoweka::{AutoWekaSim, BaselineOutcome, JointOptimizer};
use smartml_data::Dataset;
use std::time::Duration;

/// Random-search AutoML (paper Table 1 lists Google Vizier as "grid or
/// random search"). A thin preset over the joint space.
pub struct RandomSearchAutoML {
    /// Inner CV folds.
    pub cv_folds: usize,
    /// Seed.
    pub seed: u64,
}

impl Default for RandomSearchAutoML {
    fn default() -> Self {
        RandomSearchAutoML { cv_folds: 3, seed: 0 }
    }
}

impl RandomSearchAutoML {
    /// Runs random AutoML with the given budget.
    pub fn run(
        &self,
        data: &Dataset,
        train_rows: &[usize],
        valid_rows: &[usize],
        max_trials: usize,
        wall_clock: Option<Duration>,
    ) -> BaselineOutcome {
        AutoWekaSim {
            optimizer: JointOptimizer::Random,
            cv_folds: self.cv_folds,
            seed: self.seed,
            ..Default::default()
        }
        .run(data, train_rows, valid_rows, max_trials, wall_clock)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartml_data::synth::gaussian_blobs;
    use smartml_data::train_valid_split;

    #[test]
    fn runs_and_reports() {
        let d = gaussian_blobs("rs", 140, 3, 2, 0.8, 1);
        let (train, valid) = train_valid_split(&d, 0.3, 2);
        let out = RandomSearchAutoML { cv_folds: 2, seed: 1 }.run(&d, &train, &valid, 6, None);
        assert!(out.validation_accuracy > 0.4);
        assert_eq!(out.history.len(), 6);
    }
}
