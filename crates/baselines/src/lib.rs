//! AutoML baselines — the comparison systems of paper Tables 1 and 4.
//!
//! - [`AutoWekaSim`] — the Auto-Weka 2.0 strategy: Bayesian optimisation
//!   (SMAC or TPE) over the **joint** space {algorithm} × {hyperparameters},
//!   treating algorithm selection "as one of the parameters to be tuned"
//!   (paper §1), with **no** meta-learning and **no** warm starts. The
//!   classifier zoo is held equal to SmartML's 15 so Table 4 isolates the
//!   meta-learning effect (`DESIGN.md`, substitution 6).
//! - [`RandomSearchAutoML`] — the Google-Vizier-style strategy: uniform
//!   random (algorithm, configuration) draws.
//! - [`TpotLite`] — a TPOT-flavoured genetic programme over
//!   (preprocessing, algorithm, configuration) pipelines: tournament
//!   selection, mutation, crossover.
//!
//! All baselines share SmartML's evaluation protocol: tuning on the train
//! split (inner CV), final score on the held-out validation split.

mod autoweka;
mod random_automl;
mod tpot;

pub use autoweka::{AutoWekaSim, BaselineOutcome, JointOptimizer};
pub use random_automl::RandomSearchAutoML;
pub use tpot::{TpotLite, TpotPipeline};
