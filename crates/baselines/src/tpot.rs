//! TPOT-lite: genetic programming over (preprocessing, classifier, config)
//! pipelines — the paper's Table-1 TPOT row ("Genetic Programming and
//! Pareto Optimization", no meta-learning, no preprocessing in the original;
//! this lite version evolves an optional preprocessing op as part of the
//! genome, which is TPOT's pipeline-search spirit).

use smartml_classifiers::{Algorithm, ParamConfig};
use smartml_data::{accuracy, Dataset};
use smartml_preprocess::{fit_apply, Op};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

/// One genome: an optional preprocessing op, an algorithm, a configuration.
#[derive(Debug, Clone)]
pub struct TpotPipeline {
    /// Optional preprocessing op applied before the classifier.
    pub preprocess: Option<Op>,
    /// The classifier.
    pub algorithm: Algorithm,
    /// Its configuration.
    pub config: ParamConfig,
}

/// TPOT-lite: generational GP with tournament selection.
pub struct TpotLite {
    /// Individuals per generation.
    pub population: usize,
    /// Tournament size.
    pub tournament: usize,
    /// Per-individual mutation probability.
    pub mutation_prob: f64,
    /// Per-individual crossover probability.
    pub crossover_prob: f64,
    /// Seed.
    pub seed: u64,
}

impl Default for TpotLite {
    fn default() -> Self {
        TpotLite {
            population: 12,
            tournament: 3,
            mutation_prob: 0.7,
            crossover_prob: 0.3,
            seed: 0,
        }
    }
}

/// Preprocessing genes TPOT-lite may evolve (cheap, always-applicable ops).
const PREPROCESS_GENES: [Option<Op>; 4] = [None, Some(Op::Zv), Some(Op::Scale), Some(Op::Range)];

impl TpotLite {
    /// Evolves pipelines for at most `max_evaluations` fitness evaluations
    /// (budget-equal with the other systems) and scores the champion on the
    /// validation rows. Returns `(champion, validation_accuracy, evaluations)`.
    pub fn run(
        &self,
        data: &Dataset,
        train_rows: &[usize],
        valid_rows: &[usize],
        max_evaluations: usize,
        wall_clock: Option<Duration>,
    ) -> (TpotPipeline, f64, usize) {
        let start = Instant::now();
        let mut rng = StdRng::seed_from_u64(self.seed);
        // Inner split of the training rows for fitness (no validation leak).
        let half = train_rows.len() / 2;
        let (fit_rows, score_rows) = train_rows.split_at(half.max(1));
        let mut evaluations = 0usize;
        let fitness_of = |p: &TpotPipeline, evaluations: &mut usize| -> f64 {
            *evaluations += 1;
            let working = match p.preprocess {
                Some(op) => match fit_apply(data, fit_rows, &[op]) {
                    Ok(d) => d,
                    Err(_) => return 0.0,
                },
                None => data.clone(),
            };
            match p.algorithm.build(&p.config).fit(&working, fit_rows) {
                Ok(model) => accuracy(
                    &working.labels_for(score_rows),
                    &model.predict(&working, score_rows),
                ),
                Err(_) => 0.0,
            }
        };

        let mut population: Vec<(TpotPipeline, f64)> = Vec::with_capacity(self.population);
        for _ in 0..self.population {
            if evaluations >= max_evaluations {
                break;
            }
            let p = random_pipeline(&mut rng);
            let f = fitness_of(&p, &mut evaluations);
            population.push((p, f));
        }
        while evaluations < max_evaluations
            && wall_clock.is_none_or(|b| start.elapsed() < b)
        {
            // Tournament-select a parent.
            let parent = tournament_pick(&population, self.tournament, &mut rng).clone();
            let mut child = parent.0.clone();
            if rng.gen_bool(self.crossover_prob) && population.len() >= 2 {
                let mate = tournament_pick(&population, self.tournament, &mut rng);
                child = crossover(&child, &mate.0, &mut rng);
            }
            if rng.gen_bool(self.mutation_prob) {
                child = mutate(child, &mut rng);
            }
            let f = fitness_of(&child, &mut evaluations);
            // Steady-state replacement: replace the worst individual.
            if let Some(worst) = population
                .iter_mut()
                .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            {
                if f > worst.1 {
                    *worst = (child, f);
                }
            }
        }
        let champion = population
            .into_iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .map(|(p, _)| p)
            .unwrap_or_else(|| random_pipeline(&mut rng));
        // Final: refit champion on all training rows, score on validation.
        let working = match champion.preprocess {
            Some(op) => fit_apply(data, train_rows, &[op]).unwrap_or_else(|_| data.clone()),
            None => data.clone(),
        };
        let valid_acc = match champion.algorithm.build(&champion.config).fit(&working, train_rows)
        {
            Ok(model) => accuracy(
                &working.labels_for(valid_rows),
                &model.predict(&working, valid_rows),
            ),
            Err(_) => 0.0,
        };
        (champion, valid_acc, evaluations)
    }
}

fn random_pipeline(rng: &mut StdRng) -> TpotPipeline {
    let algorithm = Algorithm::ALL[rng.gen_range(0..Algorithm::ALL.len())];
    TpotPipeline {
        preprocess: PREPROCESS_GENES[rng.gen_range(0..PREPROCESS_GENES.len())],
        config: algorithm.param_space().sample(rng),
        algorithm,
    }
}

fn tournament_pick<'a>(
    population: &'a [(TpotPipeline, f64)],
    k: usize,
    rng: &mut StdRng,
) -> &'a (TpotPipeline, f64) {
    let mut best: Option<&(TpotPipeline, f64)> = None;
    for _ in 0..k.max(1) {
        let cand = &population[rng.gen_range(0..population.len())];
        if best.is_none_or(|b| cand.1 > b.1) {
            best = Some(cand);
        }
    }
    best.expect("population nonempty")
}

fn mutate(mut p: TpotPipeline, rng: &mut StdRng) -> TpotPipeline {
    match rng.gen_range(0..3) {
        // Swap the preprocessing gene.
        0 => p.preprocess = PREPROCESS_GENES[rng.gen_range(0..PREPROCESS_GENES.len())],
        // Perturb the configuration.
        1 => p.config = p.algorithm.param_space().neighbor(&p.config, 0.5, rng),
        // Swap the algorithm entirely (fresh configuration).
        _ => {
            p.algorithm = Algorithm::ALL[rng.gen_range(0..Algorithm::ALL.len())];
            p.config = p.algorithm.param_space().sample(rng);
        }
    }
    p
}

/// Crossover: child keeps one parent's algorithm+config and may take the
/// other's preprocessing gene.
fn crossover(a: &TpotPipeline, b: &TpotPipeline, rng: &mut StdRng) -> TpotPipeline {
    TpotPipeline {
        preprocess: if rng.gen_bool(0.5) { a.preprocess } else { b.preprocess },
        algorithm: a.algorithm,
        config: a.config.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartml_data::synth::gaussian_blobs;
    use smartml_data::train_valid_split;

    #[test]
    fn evolves_a_working_pipeline() {
        let d = gaussian_blobs("tpot", 160, 3, 2, 0.8, 1);
        let (train, valid) = train_valid_split(&d, 0.3, 2);
        let (champion, acc, evals) =
            TpotLite { population: 6, ..Default::default() }.run(&d, &train, &valid, 12, None);
        assert!(acc > 0.5, "champion acc {acc} ({champion:?})");
        assert!(evals <= 12);
    }

    #[test]
    fn respects_evaluation_budget() {
        let d = gaussian_blobs("tpot2", 120, 2, 2, 1.0, 2);
        let (train, valid) = train_valid_split(&d, 0.3, 3);
        let (_, _, evals) =
            TpotLite { population: 4, ..Default::default() }.run(&d, &train, &valid, 7, None);
        assert!(evals <= 7);
    }

    #[test]
    fn deterministic_given_seed() {
        let d = gaussian_blobs("tpot3", 120, 2, 2, 1.0, 3);
        let (train, valid) = train_valid_split(&d, 0.3, 4);
        let run = || {
            let (c, a, _) = TpotLite { population: 4, seed: 9, ..Default::default() }
                .run(&d, &train, &valid, 8, None);
            (c.algorithm, a)
        };
        assert_eq!(run(), run());
    }
}
