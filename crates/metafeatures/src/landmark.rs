//! Landmarker meta-features: accuracies of two extremely cheap models,
//! evaluated by a 2-fold split of the training rows. Landmarkers capture
//! *how learnable* a dataset is along two axes — axis-aligned separability
//! (decision stump) and centroid separability (nearest centroid) — which the
//! simple statistics of the canonical 25 can miss. Used by the
//! extended-similarity ablation.

use serde::{Deserialize, Serialize};
use smartml_classifiers::common::tree::{DecisionTree, Pruning, SplitCriterion, TreeConfig};
use smartml_data::{accuracy, Dataset};
use smartml_linalg::vecops;

/// The two landmarker accuracies.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Landmarkers {
    /// Accuracy of the best single-feature threshold split.
    pub decision_stump: f64,
    /// Accuracy of nearest-class-centroid classification.
    pub nearest_centroid: f64,
}

/// Computes the landmarkers on `rows` of `data` with a half/half split.
pub fn landmarkers(data: &Dataset, rows: &[usize]) -> Landmarkers {
    let mid = rows.len() / 2;
    if mid == 0 || rows.len() - mid == 0 {
        return Landmarkers { decision_stump: 0.0, nearest_centroid: 0.0 };
    }
    let (train, test) = rows.split_at(mid);
    let (x_train, _) = data.to_numeric_matrix(train);
    let (x_test, _) = data.to_numeric_matrix(test);
    let y_train = data.labels_for(train);
    let y_test = data.labels_for(test);
    let k = data.n_classes();

    // Decision stump: a depth-1 Gini tree on the shared presorted kernel,
    // replacing the old hand-rolled quantile scan (exact best cut, and one
    // less split-finding implementation to maintain).
    let stump_pred = fit_predict_stump(data, train, test);
    let decision_stump = accuracy(&y_test, &stump_pred);

    // Nearest centroid.
    let centroid_pred = fit_predict_centroid(&x_train, &y_train, &x_test, k);
    let nearest_centroid = accuracy(&y_test, &centroid_pred);

    Landmarkers { decision_stump, nearest_centroid }
}

fn fit_predict_stump(data: &Dataset, train: &[usize], test: &[usize]) -> Vec<u32> {
    let config = TreeConfig {
        criterion: SplitCriterion::Gini,
        max_depth: 1,
        min_split: 2.0,
        min_leaf: 1.0,
        cp: 0.0,
        mtry: None,
        seed: 0,
        pruning: Pruning::None,
        max_bins: 0,
    };
    let stump = DecisionTree::fit(data, train, &config);
    test.iter()
        .map(|&r| vecops::argmax(&stump.row_proba(data, r)).unwrap_or(0) as u32)
        .collect()
}

fn fit_predict_centroid(
    x_train: &smartml_linalg::Matrix,
    y_train: &[u32],
    x_test: &smartml_linalg::Matrix,
    n_classes: usize,
) -> Vec<u32> {
    let d = x_train.cols();
    let mut centroids = vec![vec![0.0; d]; n_classes];
    let mut counts = vec![0usize; n_classes];
    for r in 0..x_train.rows() {
        let c = y_train[r] as usize;
        counts[c] += 1;
        for (j, v) in centroids[c].iter_mut().enumerate() {
            *v += x_train[(r, j)];
        }
    }
    for (c, centroid) in centroids.iter_mut().enumerate() {
        if counts[c] > 0 {
            for v in centroid.iter_mut() {
                *v /= counts[c] as f64;
            }
        }
    }
    (0..x_test.rows())
        .map(|r| {
            let row: Vec<f64> = (0..d).map(|j| x_test[(r, j)]).collect();
            let mut best = (0u32, f64::INFINITY);
            for (c, centroid) in centroids.iter().enumerate() {
                if counts[c] == 0 {
                    continue;
                }
                let dist = vecops::euclidean_distance(&row, centroid);
                if dist < best.1 {
                    best = (c as u32, dist);
                }
            }
            best.0
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartml_data::synth::{gaussian_blobs, two_spirals};

    #[test]
    fn separable_blobs_score_high() {
        let d = gaussian_blobs("b", 200, 4, 2, 0.3, 1);
        let lm = landmarkers(&d, &d.all_rows());
        assert!(lm.nearest_centroid > 0.9, "centroid {}", lm.nearest_centroid);
        assert!(lm.decision_stump > 0.7, "stump {}", lm.decision_stump);
    }

    #[test]
    fn spirals_defeat_both_landmarkers() {
        let d = two_spirals("s", 300, 0.05, 2);
        let lm = landmarkers(&d, &d.all_rows());
        // Spirals wrap around each other: both simple models stay weak.
        assert!(lm.nearest_centroid < 0.75, "centroid {}", lm.nearest_centroid);
        assert!(lm.decision_stump < 0.75, "stump {}", lm.decision_stump);
    }

    #[test]
    fn degenerate_input_is_safe() {
        let d = gaussian_blobs("b", 4, 2, 2, 0.5, 3);
        let lm = landmarkers(&d, &[0]);
        assert_eq!(lm.decision_stump, 0.0);
        assert_eq!(lm.nearest_centroid, 0.0);
    }

    #[test]
    fn scores_are_probabilities() {
        let d = gaussian_blobs("b", 100, 3, 3, 2.0, 4);
        let lm = landmarkers(&d, &d.all_rows());
        assert!((0.0..=1.0).contains(&lm.decision_stump));
        assert!((0.0..=1.0).contains(&lm.nearest_centroid));
    }
}
