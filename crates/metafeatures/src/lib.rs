//! Meta-feature extraction — the knowledge-base key of SmartML.
//!
//! The paper: "a list of 25 meta-features are extracted from the training
//! split describing the dataset characteristics. Examples of these features
//! include number of instances, number of classes, skewness and kurtosis of
//! numerical features, and symbols of categorical features." The paper lists
//! examples rather than the full set; the 25 here follow the conventions of
//! Reif et al. 2012 and auto-sklearn: simple counts and ratios, class
//! distribution statistics, numeric moment aggregates, categorical symbol
//! statistics, correlation and PCA structure.
//!
//! [`extract`] computes the canonical 25-vector; [`landmarkers`] adds two
//! cheap landmarker accuracies (decision stump, nearest centroid) used by the
//! extended-similarity ablation.

//! ```
//! use smartml_metafeatures::{extract, N_META_FEATURES};
//! use smartml_data::synth::gaussian_blobs;
//!
//! let data = gaussian_blobs("demo", 150, 6, 3, 1.0, 5);
//! let mf = extract(&data, &data.all_rows());
//! assert_eq!(mf.values.len(), N_META_FEATURES);
//! assert_eq!(mf.get("n_classes"), Some(3.0));
//! ```

mod extract;
mod landmark;

pub use extract::{extract, MetaFeatures, N_META_FEATURES, NAMES};
pub use landmark::{landmarkers, Landmarkers};
