//! The canonical 25 meta-features.

use serde::{Deserialize, Serialize};
use smartml_data::dataset::MISSING_CODE;
use smartml_data::{Dataset, Feature};
use smartml_linalg::{covariance_matrix, eigh, pearson_correlation, vecops, Matrix};

/// Number of meta-features (fixed by the paper).
pub const N_META_FEATURES: usize = 25;

/// Names of the 25 meta-features, in vector order.
pub const NAMES: [&str; N_META_FEATURES] = [
    "n_instances",
    "log_n_instances",
    "n_features",
    "log_n_features",
    "n_classes",
    "n_numeric_features",
    "n_categorical_features",
    "categorical_ratio",
    "dimensionality",
    "missing_fraction",
    "class_entropy",
    "majority_class_fraction",
    "minority_class_fraction",
    "skewness_mean",
    "skewness_sd",
    "skewness_min",
    "skewness_max",
    "kurtosis_mean",
    "kurtosis_sd",
    "kurtosis_min",
    "kurtosis_max",
    "categorical_cardinality_mean",
    "categorical_cardinality_max",
    "mean_abs_correlation",
    "pca_first_component_fraction",
];

/// A dataset's meta-feature vector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetaFeatures {
    /// The 25 values, ordered as [`NAMES`].
    pub values: Vec<f64>,
}

impl MetaFeatures {
    /// `(name, value)` pairs for display.
    pub fn named(&self) -> Vec<(&'static str, f64)> {
        NAMES.iter().copied().zip(self.values.iter().copied()).collect()
    }

    /// Value by meta-feature name.
    pub fn get(&self, name: &str) -> Option<f64> {
        NAMES.iter().position(|&n| n == name).map(|i| self.values[i])
    }
}

/// Extracts the 25 meta-features from the training rows of a dataset.
///
/// Only `rows` participate — the paper extracts meta-features "from the
/// training split" so the validation partition never influences the KB key.
pub fn extract(data: &Dataset, rows: &[usize]) -> MetaFeatures {
    assert!(!rows.is_empty(), "meta-features need at least one row");
    let n = rows.len() as f64;
    let n_features = data.n_features() as f64;
    let numeric_idx = data.numeric_feature_indices();
    let categorical_idx = data.categorical_feature_indices();

    // Class distribution.
    let class_counts = data.class_counts_for(rows);
    let class_entropy = vecops::entropy_from_counts(&class_counts);
    let present: Vec<f64> = class_counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| c as f64 / n)
        .collect();
    let majority = present.iter().copied().fold(0.0, f64::max);
    let minority = present.iter().copied().fold(1.0, f64::min);

    // Missing fraction over the training rows.
    let total_cells = rows.len() * data.n_features();
    let missing = count_missing(data, rows);
    let missing_fraction = if total_cells > 0 { missing as f64 / total_cells as f64 } else { 0.0 };

    // Numeric moment aggregates.
    let mut skews = Vec::with_capacity(numeric_idx.len());
    let mut kurts = Vec::with_capacity(numeric_idx.len());
    let mut numeric_cols: Vec<Vec<f64>> = Vec::with_capacity(numeric_idx.len());
    for &i in &numeric_idx {
        if let Feature::Numeric { values, .. } = data.feature(i) {
            let col: Vec<f64> =
                rows.iter().map(|&r| values[r]).filter(|v| !v.is_nan()).collect();
            skews.push(vecops::skewness(&col));
            kurts.push(vecops::kurtosis(&col));
            numeric_cols.push(col);
        }
    }
    let agg = |xs: &[f64]| -> (f64, f64, f64, f64) {
        if xs.is_empty() {
            (0.0, 0.0, 0.0, 0.0)
        } else {
            (vecops::mean(xs), vecops::std_dev(xs), vecops::min(xs), vecops::max(xs))
        }
    };
    let (skew_mean, skew_sd, skew_min, skew_max) = agg(&skews);
    let (kurt_mean, kurt_sd, kurt_min, kurt_max) = agg(&kurts);

    // Categorical symbol statistics.
    let mut cards: Vec<f64> = Vec::with_capacity(categorical_idx.len());
    for &i in &categorical_idx {
        if let Feature::Categorical { codes, levels, .. } = data.feature(i) {
            // Observed cardinality over the training rows, not the schema.
            let mut seen = vec![false; levels.len()];
            for &r in rows {
                let c = codes[r];
                if c != MISSING_CODE {
                    seen[c as usize] = true;
                }
            }
            cards.push(seen.iter().filter(|&&s| s).count() as f64);
        }
    }
    let card_mean = vecops::mean(&cards);
    let card_max = if cards.is_empty() { 0.0 } else { vecops::max(&cards) };

    // Correlation structure: mean |pearson| over numeric column pairs.
    // Capped at 40 columns (first 40) — O(d²·n) gets heavy on wide data and
    // the aggregate is stable under this truncation.
    let mean_abs_corr = mean_abs_correlation(&numeric_cols, rows.len());

    // PCA landmark: fraction of total variance on the first principal axis.
    let pca_fraction = pca_first_fraction(data, rows, &numeric_idx);

    let values = vec![
        n,
        n.ln(),
        n_features,
        (n_features.max(1.0)).ln(),
        data.n_classes() as f64,
        numeric_idx.len() as f64,
        categorical_idx.len() as f64,
        if n_features > 0.0 { categorical_idx.len() as f64 / n_features } else { 0.0 },
        if n > 0.0 { n_features / n } else { 0.0 },
        missing_fraction,
        class_entropy,
        majority,
        minority,
        skew_mean,
        skew_sd,
        skew_min,
        skew_max,
        kurt_mean,
        kurt_sd,
        kurt_min,
        kurt_max,
        card_mean,
        card_max,
        mean_abs_corr,
        pca_fraction,
    ];
    debug_assert_eq!(values.len(), N_META_FEATURES);
    MetaFeatures { values }
}

fn count_missing(data: &Dataset, rows: &[usize]) -> usize {
    let mut missing = 0usize;
    for feat in data.features() {
        match feat {
            Feature::Numeric { values, .. } => {
                missing += rows.iter().filter(|&&r| values[r].is_nan()).count();
            }
            Feature::Categorical { codes, .. } => {
                missing += rows.iter().filter(|&&r| codes[r] == MISSING_CODE).count();
            }
        }
    }
    missing
}

fn mean_abs_correlation(numeric_cols: &[Vec<f64>], n_rows: usize) -> f64 {
    let usable: Vec<&Vec<f64>> = numeric_cols
        .iter()
        .filter(|c| c.len() == n_rows) // skip columns that had missing values
        .take(40)
        .collect();
    if usable.len() < 2 {
        return 0.0;
    }
    let mut total = 0.0;
    let mut pairs = 0usize;
    for i in 0..usable.len() {
        for j in (i + 1)..usable.len() {
            total += pearson_correlation(usable[i], usable[j]).abs();
            pairs += 1;
        }
    }
    total / pairs as f64
}

fn pca_first_fraction(data: &Dataset, rows: &[usize], numeric_idx: &[usize]) -> f64 {
    if numeric_idx.is_empty() || rows.len() < 3 {
        return 0.0;
    }
    // Cap at 40 columns for the same cost reason as correlations.
    let cols: Vec<&Vec<f64>> = numeric_idx
        .iter()
        .take(40)
        .filter_map(|&i| match data.feature(i) {
            Feature::Numeric { values, .. } => Some(values),
            _ => None,
        })
        .collect();
    let d = cols.len();
    let mut m = Matrix::zeros(rows.len(), d);
    for (c, colv) in cols.iter().enumerate() {
        // NaN → 0 contribution; meta-extraction runs pre-imputation.
        let mean = {
            let vals: Vec<f64> =
                rows.iter().map(|&r| colv[r]).filter(|v| !v.is_nan()).collect();
            vecops::mean(&vals)
        };
        for (i, &r) in rows.iter().enumerate() {
            let v = colv[r];
            m[(i, c)] = if v.is_nan() { mean } else { v };
        }
    }
    let cov = covariance_matrix(&m);
    let (vals, _) = eigh(&cov);
    let total: f64 = vals.iter().map(|v| v.max(0.0)).sum();
    if total <= 1e-300 {
        0.0
    } else {
        vals[0].max(0.0) / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartml_data::synth::{gaussian_blobs, SynthSpec};

    #[test]
    fn names_and_length_consistent() {
        assert_eq!(NAMES.len(), N_META_FEATURES);
        let d = gaussian_blobs("b", 100, 4, 3, 1.0, 1);
        let mf = extract(&d, &d.all_rows());
        assert_eq!(mf.values.len(), N_META_FEATURES);
        assert_eq!(mf.named().len(), N_META_FEATURES);
    }

    #[test]
    fn simple_counts_correct() {
        let d = gaussian_blobs("b", 120, 6, 4, 1.0, 2);
        let mf = extract(&d, &d.all_rows());
        assert_eq!(mf.get("n_instances"), Some(120.0));
        assert_eq!(mf.get("n_features"), Some(6.0));
        assert_eq!(mf.get("n_classes"), Some(4.0));
        assert_eq!(mf.get("n_numeric_features"), Some(6.0));
        assert_eq!(mf.get("n_categorical_features"), Some(0.0));
        assert_eq!(mf.get("categorical_ratio"), Some(0.0));
        assert!((mf.get("log_n_instances").unwrap() - 120f64.ln()).abs() < 1e-12);
        assert!((mf.get("dimensionality").unwrap() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn restricted_rows_change_counts() {
        let d = gaussian_blobs("b", 100, 3, 2, 1.0, 3);
        let mf = extract(&d, &[0, 1, 2, 3]);
        assert_eq!(mf.get("n_instances"), Some(4.0));
    }

    #[test]
    fn class_stats_for_balanced_data() {
        let d = gaussian_blobs("b", 100, 3, 2, 1.0, 4);
        let mf = extract(&d, &d.all_rows());
        assert!((mf.get("class_entropy").unwrap() - 2f64.ln()).abs() < 1e-9);
        assert!((mf.get("majority_class_fraction").unwrap() - 0.5).abs() < 1e-9);
        assert!((mf.get("minority_class_fraction").unwrap() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn imbalanced_data_has_lower_entropy() {
        let spec = SynthSpec::ImbalancedMixture { n: 300, d: 4, k: 6, overlap: 1.0 };
        let d = spec.generate("imb", 5);
        let mf = extract(&d, &d.all_rows());
        let max_entropy = 6f64.ln();
        assert!(mf.get("class_entropy").unwrap() < max_entropy - 0.1);
        assert!(mf.get("majority_class_fraction").unwrap() > 1.0 / 6.0 + 0.05);
    }

    #[test]
    fn categorical_statistics() {
        let spec = SynthSpec::CategoricalMixture { n: 200, d_cat: 3, d_num: 2, k: 2, cardinality: 4 };
        let d = spec.generate("cat", 6);
        let mf = extract(&d, &d.all_rows());
        assert_eq!(mf.get("n_categorical_features"), Some(3.0));
        assert!((mf.get("categorical_ratio").unwrap() - 0.6).abs() < 1e-12);
        assert!(mf.get("categorical_cardinality_mean").unwrap() > 1.0);
        assert!(mf.get("categorical_cardinality_max").unwrap() <= 4.0);
    }

    #[test]
    fn missing_fraction_counts() {
        use smartml_data::Feature;
        let d = Dataset::new(
            "m",
            vec![Feature::Numeric { name: "x".into(), values: vec![1.0, f64::NAN, 3.0, f64::NAN] }],
            vec![0, 0, 1, 1],
            vec!["a".into(), "b".into()],
        )
        .unwrap();
        let mf = extract(&d, &d.all_rows());
        assert!((mf.get("missing_fraction").unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn correlated_columns_raise_mean_abs_correlation() {
        use smartml_data::Feature;
        let base: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let d_corr = Dataset::new(
            "c",
            vec![
                Feature::Numeric { name: "a".into(), values: base.clone() },
                Feature::Numeric { name: "b".into(), values: base.iter().map(|v| v * 2.0).collect() },
            ],
            vec![0; 100],
            vec!["x".into()],
        )
        .unwrap();
        let mf = extract(&d_corr, &d_corr.all_rows());
        assert!((mf.get("mean_abs_correlation").unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pca_fraction_in_unit_interval() {
        let d = gaussian_blobs("b", 80, 5, 2, 1.5, 7);
        let mf = extract(&d, &d.all_rows());
        let f = mf.get("pca_first_component_fraction").unwrap();
        assert!((0.0..=1.0 + 1e-9).contains(&f), "{f}");
    }

    #[test]
    fn all_values_finite_across_generators() {
        for (i, spec) in [
            SynthSpec::Blobs { n: 60, d: 3, k: 2, spread: 1.0 },
            SynthSpec::XorParity { n: 80, informative: 2, noise: 5, flip: 0.05 },
            SynthSpec::SparseCounts { n: 60, d: 30, k: 3, doc_len: 20 },
            SynthSpec::CategoricalMixture { n: 60, d_cat: 8, d_num: 0, k: 3, cardinality: 3 },
            SynthSpec::TwoSpirals { n: 60, noise: 0.1 },
        ]
        .into_iter()
        .enumerate()
        {
            let d = spec.generate(&format!("g{i}"), 11);
            let mf = extract(&d, &d.all_rows());
            assert!(
                mf.values.iter().all(|v| v.is_finite()),
                "non-finite meta-feature for generator {i}: {:?}",
                mf.named()
            );
        }
    }

    #[test]
    fn serde_roundtrip() {
        let d = gaussian_blobs("b", 50, 3, 2, 1.0, 8);
        let mf = extract(&d, &d.all_rows());
        let json = serde_json::to_string(&mf).unwrap();
        let back: MetaFeatures = serde_json::from_str(&json).unwrap();
        // JSON float formatting may perturb the last ULP.
        for (a, b) in back.values.iter().zip(&mf.values) {
            assert!((a - b).abs() <= 1e-12 * (1.0 + b.abs()), "{a} vs {b}");
        }
    }
}
