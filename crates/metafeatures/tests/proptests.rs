//! Property tests for meta-feature extraction: structural invariants that
//! must hold for any dataset the generators can produce.

use proptest::prelude::*;
use smartml_metafeatures::{extract, landmarkers, N_META_FEATURES};
use smartml_data::synth::SynthSpec;

fn any_spec() -> impl Strategy<Value = (SynthSpec, u64)> {
    let blobs = (40usize..120, 2usize..8, 2usize..5, 0.3f64..2.5)
        .prop_map(|(n, d, k, spread)| SynthSpec::Blobs { n, d, k, spread });
    let xor = (40usize..120, 1usize..3, 0usize..6, 0.0f64..0.2)
        .prop_map(|(n, informative, noise, flip)| SynthSpec::XorParity {
            n,
            informative,
            noise,
            flip,
        });
    let cats = (40usize..120, 1usize..4, 0usize..3, 2usize..4, 2usize..5)
        .prop_map(|(n, d_cat, d_num, k, cardinality)| SynthSpec::CategoricalMixture {
            n,
            d_cat,
            d_num,
            k,
            cardinality,
        });
    (prop_oneof![blobs, xor, cats], 0u64..10_000)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn always_25_finite_features((spec, seed) in any_spec()) {
        let data = spec.generate("prop", seed);
        let mf = extract(&data, &data.all_rows());
        prop_assert_eq!(mf.values.len(), N_META_FEATURES);
        prop_assert!(mf.values.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn count_features_match_dataset((spec, seed) in any_spec()) {
        let data = spec.generate("prop", seed);
        let mf = extract(&data, &data.all_rows());
        prop_assert_eq!(mf.get("n_instances"), Some(data.n_rows() as f64));
        prop_assert_eq!(mf.get("n_features"), Some(data.n_features() as f64));
        prop_assert_eq!(mf.get("n_classes"), Some(data.n_classes() as f64));
        let n_num = mf.get("n_numeric_features").unwrap();
        let n_cat = mf.get("n_categorical_features").unwrap();
        prop_assert_eq!(n_num + n_cat, data.n_features() as f64);
    }

    #[test]
    fn bounded_features_stay_in_bounds((spec, seed) in any_spec()) {
        let data = spec.generate("prop", seed);
        let mf = extract(&data, &data.all_rows());
        for name in [
            "categorical_ratio",
            "missing_fraction",
            "majority_class_fraction",
            "minority_class_fraction",
            "mean_abs_correlation",
            "pca_first_component_fraction",
        ] {
            let v = mf.get(name).unwrap();
            prop_assert!((-1e-9..=1.0 + 1e-9).contains(&v), "{name} = {v}");
        }
        // Entropy bounded by ln(k); majority >= minority.
        let h = mf.get("class_entropy").unwrap();
        prop_assert!(h >= -1e-12);
        prop_assert!(h <= (data.n_classes() as f64).ln() + 1e-9);
        prop_assert!(
            mf.get("majority_class_fraction").unwrap()
                >= mf.get("minority_class_fraction").unwrap() - 1e-12
        );
    }

    #[test]
    fn subset_extraction_uses_only_given_rows((spec, seed) in any_spec()) {
        let data = spec.generate("prop", seed);
        let half: Vec<usize> = (0..data.n_rows() / 2).collect();
        let mf = extract(&data, &half);
        prop_assert_eq!(mf.get("n_instances"), Some(half.len() as f64));
    }

    #[test]
    fn extraction_is_deterministic((spec, seed) in any_spec()) {
        let data = spec.generate("prop", seed);
        let a = extract(&data, &data.all_rows());
        let b = extract(&data, &data.all_rows());
        prop_assert_eq!(a, b);
    }

    #[test]
    fn landmarkers_are_probabilities((spec, seed) in any_spec()) {
        let data = spec.generate("prop", seed);
        let lm = landmarkers(&data, &data.all_rows());
        prop_assert!((0.0..=1.0).contains(&lm.decision_stump));
        prop_assert!((0.0..=1.0).contains(&lm.nearest_centroid));
    }
}
