//! [`KbClient`]: a small blocking client for `smartmld`.
//!
//! One TCP connection per endpoint, reused across requests and
//! transparently re-established after a server restart (a
//! stale-connection failure is retried once on a fresh socket, for
//! free). Beyond that, every request — including the connect — gets a
//! bounded number of attempts separated by deterministic exponential
//! backoff with jitter ([`RetryPolicy`]), and every retry is logged so
//! the run report can surface the backoff schedule via
//! [`KbClient::health_warnings`]. All calls block; timeouts come from a
//! [`Deadline`] per attempt.
//!
//! ## Replica failover
//!
//! The address may name a replica set: `primary,replica1,replica2`.
//! Reads (`recommend`, `recommend_batch`, `stats`, `metrics`, `ping`)
//! try each endpoint in that fixed order, exhausting one endpoint's
//! retry budget before failing over to the next — deterministic, so two
//! runs against the same dying fleet take the same path. Writes
//! (`record_run`, `set_landmarkers`, `snapshot`, `sync`, `shutdown`)
//! only ever go to the first endpoint — the primary — and queue behind
//! its retry budget; a replica answering a misdirected write with a
//! `not_primary` redirect surfaces as a typed error naming the primary,
//! never as a silent write to the wrong node. Each endpoint's jitter
//! stream is salted with a hash of its address, so endpoints sharing a
//! policy never back off in lockstep.
//!
//! Writes (`record_run`, `set_landmarkers`) are retried too, so they are
//! at-least-once under a mid-response server death: the server may have
//! applied a write whose acknowledgement was lost. KB records are
//! observations, not ledger entries — a duplicate is harmless.

use crate::protocol::{BatchQuery, KbStats, Request, Response, ServerMetrics};
use crate::wal::fnv1a;
use smartml_kb::{
    AlgorithmRun, KbBackend, KbError, QueryOptions, Recommendation,
};
use smartml_metafeatures::{Landmarkers, MetaFeatures};
use smartml_runtime::Deadline;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::Mutex;
use std::time::Duration;

/// Bounded retry with deterministic exponential backoff plus jitter.
///
/// The jitter is a pure function of `(seed, retry index)`, so a given
/// policy always produces the same backoff schedule — reproducible runs,
/// no thundering-herd alignment between clients with different seeds.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts per request, including the first (`1` = no retries).
    pub max_attempts: usize,
    /// Backoff before the first retry; doubles on each further retry.
    pub base_delay: Duration,
    /// Cap applied to every backoff.
    pub max_delay: Duration,
    /// Jitter fraction: each delay is stretched by `[0, jitter)` of
    /// itself, deterministically.
    pub jitter: f64,
    /// Seed of the jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_delay: Duration::from_millis(50),
            max_delay: Duration::from_secs(2),
            jitter: 0.25,
            seed: 0x5eed_cafe,
        }
    }
}

impl RetryPolicy {
    /// No retries: every failure surfaces immediately.
    pub fn none() -> RetryPolicy {
        RetryPolicy { max_attempts: 1, ..RetryPolicy::default() }
    }

    /// The same policy with its jitter stream salted by `addr`, so every
    /// endpoint of a replica set walks its own deterministic schedule
    /// instead of all backing off in lockstep.
    pub fn salted_for(&self, addr: &str) -> RetryPolicy {
        let salt = (fnv1a(addr.as_bytes()) as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        RetryPolicy { seed: self.seed ^ salt, ..self.clone() }
    }

    /// The backoff before retry number `retry` (1-based): exponential in
    /// `retry`, jittered, capped at `max_delay`. Pure — same inputs, same
    /// delay.
    pub fn backoff(&self, retry: usize) -> Duration {
        let doublings = retry.saturating_sub(1).min(20) as i32;
        let exp = self.base_delay.as_secs_f64() * 2f64.powi(doublings);
        let jitter = unit(self.seed, retry as u64) * self.jitter.clamp(0.0, 1.0);
        let secs = (exp * (1.0 + jitter)).min(self.max_delay.as_secs_f64());
        Duration::from_secs_f64(secs.max(0.0))
    }
}

/// SplitMix64-style hash of `(seed, n)` folded into `[0, 1)`.
fn unit(seed: u64, n: u64) -> f64 {
    let mut z = seed ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    ((z ^ (z >> 31)) >> 11) as f64 / (1u64 << 53) as f64
}

struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

/// One member of the replica set: its address, its salted retry policy,
/// and its cached connection.
struct Endpoint {
    addr: String,
    retry: RetryPolicy,
    conn: Mutex<Option<Conn>>,
}

/// A blocking `smartmld` client; safe to share behind per-endpoint
/// `Mutex`-guarded connections (each request holds one endpoint's lock
/// for its round trip).
pub struct KbClient {
    /// Primary first, then read replicas in failover order.
    endpoints: Vec<Endpoint>,
    timeout: Option<Duration>,
    events: Mutex<Vec<String>>,
}

/// Retry-log entries kept before older ones are dropped.
const MAX_EVENTS: usize = 64;

impl KbClient {
    /// A client for `host:port` (or a comma-separated replica set
    /// `primary,replica1,...`) with a 10-second per-request timeout and
    /// the default retry policy (3 attempts, 50 ms base backoff).
    pub fn connect(addr: impl Into<String>) -> KbClient {
        KbClient::with_timeout(addr, Some(Duration::from_secs(10)))
    }

    /// A client with an explicit per-attempt timeout (`None` = wait
    /// forever). No I/O happens until the first request.
    pub fn with_timeout(addr: impl Into<String>, timeout: Option<Duration>) -> KbClient {
        let addr = addr.into();
        let retry = RetryPolicy::default();
        let endpoints = addr
            .split(',')
            .map(str::trim)
            .filter(|a| !a.is_empty())
            .map(|a| Endpoint {
                addr: a.to_string(),
                retry: retry.salted_for(a),
                conn: Mutex::new(None),
            })
            .collect::<Vec<_>>();
        assert!(!endpoints.is_empty(), "KbClient needs at least one endpoint address");
        KbClient { endpoints, timeout, events: Mutex::new(Vec::new()) }
    }

    /// Replaces the retry policy (builder style). Each endpoint gets the
    /// policy with its jitter stream re-salted by its own address.
    pub fn with_retry(mut self, retry: RetryPolicy) -> KbClient {
        for ep in &mut self.endpoints {
            ep.retry = retry.salted_for(&ep.addr);
        }
        self
    }

    /// The primary's address (the first endpoint).
    pub fn addr(&self) -> &str {
        &self.endpoints[0].addr
    }

    /// Every endpoint address, primary first.
    pub fn endpoints(&self) -> Vec<&str> {
        self.endpoints.iter().map(|e| e.addr.as_str()).collect()
    }

    /// Drains the retry/degradation log: one entry per backed-off retry
    /// or exhausted request since the last call. The pipeline folds these
    /// into the run report's `failures.kb_warnings`.
    pub fn health_warnings(&self) -> Vec<String> {
        std::mem::take(&mut *self.events.lock().expect("client event log poisoned"))
    }

    fn note(&self, message: String) {
        let mut events = self.events.lock().expect("client event log poisoned");
        if events.len() < MAX_EVENTS {
            events.push(message);
        }
    }

    fn open(&self, endpoint: &Endpoint, deadline: Deadline) -> Result<Conn, KbError> {
        let mut last_err: Option<std::io::Error> = None;
        let addrs = endpoint
            .addr
            .to_socket_addrs()
            .map_err(|e| KbError::Backend(format!("cannot resolve `{}`: {e}", endpoint.addr)))?;
        for addr in addrs {
            let attempt = match deadline.io_timeout() {
                Some(t) => TcpStream::connect_timeout(&addr, t),
                None => TcpStream::connect(addr),
            };
            match attempt {
                Ok(stream) => {
                    // Request/response ping-pong: Nagle + delayed ACK
                    // would add ~40ms per round trip.
                    let _ = stream.set_nodelay(true);
                    let reader = BufReader::new(stream.try_clone().map_err(|e| {
                        KbError::Backend(format!("cannot clone socket: {e}"))
                    })?);
                    return Ok(Conn { reader, writer: stream });
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(KbError::Backend(format!(
            "cannot connect to smartmld at {}: {}",
            endpoint.addr,
            last_err.map_or_else(|| "no addresses".to_string(), |e| e.to_string())
        )))
    }

    fn round_trip(conn: &mut Conn, line: &str, deadline: Deadline) -> std::io::Result<String> {
        conn.writer.set_write_timeout(deadline.io_timeout())?;
        conn.writer.write_all(line.as_bytes())?;
        conn.writer.write_all(b"\n")?;
        conn.writer.flush()?;
        conn.reader.get_ref().set_read_timeout(deadline.io_timeout())?;
        let mut response = String::new();
        if conn.reader.read_line(&mut response)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        // A line without its terminating '\n' means the server died
        // mid-response (read_line hit EOF partway through). Surfacing it
        // as I/O — not as a JSON parse error later — keeps it retryable.
        if !response.ends_with('\n') {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                format!("server died mid-response ({} bytes of partial reply)", response.len()),
            ));
        }
        Ok(response)
    }

    /// Sends one request, routing it by kind.
    ///
    /// Mutating verbs (and `sync`/`shutdown`) go to the primary only:
    /// replicas would reject them with a redirect, and silently writing
    /// to the wrong node is exactly what the fixed routing prevents.
    /// Reads fail over: each endpoint's retry budget is exhausted in
    /// order (primary, then replicas) until one answers; the failover
    /// hop is logged to the health log.
    pub fn request(&self, request: &Request) -> Result<Response, KbError> {
        let line = serde_json::to_string(request)
            .map_err(|e| KbError::Backend(format!("request serialisation failed: {e}")))?;
        // `promote` routes like a write: it must land on the addressed
        // endpoint (the replica being promoted), never fail over.
        let write = matches!(
            request,
            Request::RecordRun { .. }
                | Request::SetLandmarkers { .. }
                | Request::Snapshot
                | Request::Sync { .. }
                | Request::Promote
                | Request::Shutdown
        );
        if write {
            return Self::check(self.request_on(0, &line)?);
        }
        let mut last_err = None;
        for ix in 0..self.endpoints.len() {
            match self.request_on(ix, &line) {
                Ok(response) => return Self::check(response),
                Err(e) => {
                    if ix + 1 < self.endpoints.len() {
                        self.note(format!(
                            "failing over from {} to {} for a read: {e}",
                            self.endpoints[ix].addr,
                            self.endpoints[ix + 1].addr
                        ));
                    }
                    last_err = Some(e);
                }
            }
        }
        Err(last_err.expect("at least one endpoint"))
    }

    /// Converts answered-but-negative responses into typed errors: an
    /// `error` reply, or a replica's `not_primary` redirect.
    fn check(response: Response) -> Result<Response, KbError> {
        match response {
            Response::Error { message } => Err(KbError::Backend(message)),
            Response::NotPrimary { primary } => Err(KbError::Backend(format!(
                "endpoint is a read replica; writes must go to the primary at {primary}"
            ))),
            other => Ok(other),
        }
    }

    /// The per-endpoint retry loop.
    ///
    /// Failures are handled in two layers. A failure on a *reused*
    /// connection (e.g. the server restarted between requests) is retried
    /// once on a fresh socket for free — that is a stale socket, not a
    /// sick server. Beyond that, connect and round-trip failures consume
    /// the endpoint's [`RetryPolicy`] budget: up to `max_attempts` tries
    /// separated by deterministic backoff, each retry logged to the
    /// health log. A *parseable* reply or malformed JSON is never retried
    /// — the server answered; asking again won't change its mind.
    fn request_on(&self, ix: usize, line: &str) -> Result<Response, KbError> {
        let endpoint = &self.endpoints[ix];
        let mut guard = endpoint.conn.lock().expect("client connection poisoned");
        let max_attempts = endpoint.retry.max_attempts.max(1);
        let mut stale_retry_spent = false;
        let mut last_err = String::new();
        let mut attempt = 1;
        while attempt <= max_attempts {
            let deadline = match self.timeout {
                Some(t) => Deadline::after(t),
                None => Deadline::none(),
            };
            let reused = guard.is_some();
            let sent = match guard.as_mut() {
                Some(conn) => Self::round_trip(conn, line, deadline).map_err(|e| e.to_string()),
                None => match self.open(endpoint, deadline) {
                    Ok(mut fresh) => {
                        let sent = Self::round_trip(&mut fresh, line, deadline)
                            .map_err(|e| e.to_string());
                        if sent.is_ok() {
                            *guard = Some(fresh);
                        }
                        sent
                    }
                    Err(e) => Err(e.to_string()),
                },
            };
            match sent {
                Ok(text) => {
                    return serde_json::from_str(text.trim()).map_err(|e| {
                        KbError::Backend(format!("bad response from server: {e}"))
                    });
                }
                Err(e) => {
                    *guard = None; // drop the broken socket
                    if reused && !stale_retry_spent {
                        // Server restart between requests: one immediate
                        // reconnect is free, outside the retry budget.
                        stale_retry_spent = true;
                        last_err = format!("{e} (stale connection)");
                        continue;
                    }
                    last_err = e;
                    if attempt < max_attempts {
                        let delay = endpoint.retry.backoff(attempt);
                        self.note(format!(
                            "smartmld at {} failed (attempt {attempt}/{max_attempts}): \
                             {last_err}; backing off {delay:?}",
                            endpoint.addr
                        ));
                        std::thread::sleep(delay);
                    }
                    attempt += 1;
                }
            }
        }
        self.note(format!(
            "smartmld at {} unreachable, gave up after {max_attempts} attempt(s): {last_err}",
            endpoint.addr
        ));
        Err(KbError::Backend(format!(
            "smartmld request failed after {max_attempts} attempt(s): {last_err}"
        )))
    }

    /// Nominate algorithms for a meta-feature vector.
    pub fn recommend(
        &self,
        meta_features: &MetaFeatures,
        landmarkers: Option<Landmarkers>,
        options: &QueryOptions,
    ) -> Result<Recommendation, KbError> {
        match self.request(&Request::Recommend {
            meta_features: meta_features.clone(),
            landmarkers,
            options: Some(options.clone()),
        })? {
            Response::Recommendation { recommendation } => Ok(recommendation),
            other => Err(unexpected("recommendation", &other)),
        }
    }

    /// Nominate algorithms for many meta-feature vectors in one round
    /// trip (`recommend_batch`): one request line, one response line,
    /// answers in query order — exactly what N sequential
    /// [`KbClient::recommend`] calls would return, minus N−1 round
    /// trips. Inherits the full [`RetryPolicy`] treatment; batches are
    /// read-only, so a retry after a mid-response failure is safe.
    pub fn recommend_batch(
        &self,
        queries: Vec<BatchQuery>,
    ) -> Result<Vec<Recommendation>, KbError> {
        let n = queries.len();
        match self.request(&Request::RecommendBatch { queries })? {
            Response::Recommendations { recommendations } if recommendations.len() == n => {
                Ok(recommendations)
            }
            Response::Recommendations { recommendations } => Err(KbError::Backend(format!(
                "batch answer count mismatch: sent {n} queries, got {} recommendations",
                recommendations.len()
            ))),
            other => Err(unexpected("recommendations", &other)),
        }
    }

    /// Record one run; returns `(datasets, runs)` after the write.
    pub fn record_run(
        &self,
        dataset_id: &str,
        meta_features: &MetaFeatures,
        run: AlgorithmRun,
    ) -> Result<(usize, usize), KbError> {
        match self.request(&Request::RecordRun {
            dataset_id: dataset_id.to_string(),
            meta_features: meta_features.clone(),
            run,
        })? {
            Response::Recorded { datasets, runs } => Ok((datasets, runs)),
            other => Err(unexpected("recorded", &other)),
        }
    }

    /// Attach landmarkers; returns `(datasets, runs)` after the write.
    pub fn set_landmarkers(
        &self,
        dataset_id: &str,
        landmarkers: Landmarkers,
    ) -> Result<(usize, usize), KbError> {
        match self.request(&Request::SetLandmarkers {
            dataset_id: dataset_id.to_string(),
            landmarkers,
        })? {
            Response::Recorded { datasets, runs } => Ok((datasets, runs)),
            other => Err(unexpected("recorded", &other)),
        }
    }

    /// Fetch store/WAL statistics.
    pub fn stats(&self) -> Result<KbStats, KbError> {
        match self.request(&Request::Stats)? {
            Response::Stats { stats } => Ok(stats),
            other => Err(unexpected("stats", &other)),
        }
    }

    /// Fetch live service metrics (request counts/latency, wire bytes,
    /// WAL fsync and rotation counters).
    pub fn metrics(&self) -> Result<ServerMetrics, KbError> {
        match self.request(&Request::Metrics)? {
            Response::Metrics { metrics } => Ok(metrics),
            other => Err(unexpected("metrics", &other)),
        }
    }

    /// Ask the server to fold the WAL into a snapshot.
    pub fn snapshot(&self) -> Result<u64, KbError> {
        match self.request(&Request::Snapshot)? {
            Response::Snapshotted { snapshot_seq } => Ok(snapshot_seq),
            other => Err(unexpected("snapshotted", &other)),
        }
    }

    /// One replication pull against the primary: ship WAL bytes from
    /// `(segment, offset)` onward, or a snapshot when that position has
    /// been compacted away (or `segment` is `0`, the bootstrap probe).
    /// Returns the raw [`Response::SyncChunk`] / [`Response::SyncSnapshot`]
    /// for the caller (the replica tailer) to apply.
    pub fn sync(&self, segment: u64, offset: u64) -> Result<Response, KbError> {
        match self.request(&Request::Sync { segment, offset })? {
            r @ (Response::SyncChunk { .. } | Response::SyncSnapshot { .. }) => Ok(r),
            other => Err(unexpected("sync_chunk or sync_snapshot", &other)),
        }
    }

    /// Promote the addressed server (the first endpoint) from replica
    /// to primary. Returns whether it actually *was* a replica — false
    /// means the call was an idempotent no-op on an existing primary.
    pub fn promote(&self) -> Result<bool, KbError> {
        match self.request(&Request::Promote)? {
            Response::Promoted { was_replica } => Ok(was_replica),
            other => Err(unexpected("promoted", &other)),
        }
    }

    /// Liveness probe.
    pub fn ping(&self) -> Result<(), KbError> {
        match self.request(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(unexpected("pong", &other)),
        }
    }

    /// Ask the server to exit its serve loop.
    pub fn shutdown(&self) -> Result<(), KbError> {
        match self.request(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(unexpected("shutting_down", &other)),
        }
    }
}

fn unexpected(wanted: &str, got: &Response) -> KbError {
    KbError::Backend(format!("expected `{wanted}` response, got {got:?}"))
}

/// A remote `smartmld` is a [`KbBackend`], so `SmartML::with_backend`
/// can run the whole pipeline against a shared KB service. The size
/// accessors are best-effort (0 when the server is unreachable) because
/// they only feed progress traces.
impl KbBackend for KbClient {
    fn kb_recommend(
        &self,
        meta_features: &MetaFeatures,
        query_landmarkers: Option<Landmarkers>,
        options: &QueryOptions,
    ) -> Result<Recommendation, KbError> {
        self.recommend(meta_features, query_landmarkers, options)
    }

    fn kb_record_run(
        &mut self,
        dataset_id: &str,
        meta_features: &MetaFeatures,
        run: AlgorithmRun,
    ) -> Result<(), KbError> {
        KbClient::record_run(self, dataset_id, meta_features, run).map(|_| ())
    }

    fn kb_set_landmarkers(
        &mut self,
        dataset_id: &str,
        landmarkers: Landmarkers,
    ) -> Result<(), KbError> {
        KbClient::set_landmarkers(self, dataset_id, landmarkers).map(|_| ())
    }

    fn kb_len(&self) -> usize {
        self.stats().map(|s| s.datasets).unwrap_or(0)
    }

    fn kb_n_runs(&self) -> usize {
        self.stats().map(|s| s.runs).unwrap_or(0)
    }

    fn kb_describe(&self) -> String {
        format!("smartmld@{}", self.endpoints().join(","))
    }

    fn kb_health_warnings(&self) -> Vec<String> {
        self.health_warnings()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpListener;
    use std::thread;

    fn fast_retry(max_attempts: usize) -> RetryPolicy {
        RetryPolicy {
            max_attempts,
            base_delay: Duration::from_millis(5),
            max_delay: Duration::from_millis(50),
            ..RetryPolicy::default()
        }
    }

    #[test]
    fn backoff_schedule_is_deterministic_exponential_and_capped() {
        let policy = RetryPolicy::default();
        let first: Vec<Duration> = (1..=6).map(|r| policy.backoff(r)).collect();
        let again: Vec<Duration> = (1..=6).map(|r| policy.backoff(r)).collect();
        assert_eq!(first, again, "same policy must yield the same schedule");
        for (i, delay) in first.iter().enumerate() {
            let retry = i + 1;
            let floor = policy.base_delay.as_secs_f64() * 2f64.powi(i as i32);
            assert!(
                delay.as_secs_f64() >= floor.min(policy.max_delay.as_secs_f64()) - 1e-9,
                "retry {retry} below its exponential floor: {delay:?}"
            );
            assert!(*delay <= policy.max_delay, "retry {retry} above the cap: {delay:?}");
        }
        assert!(first[1] > first[0], "backoff must grow before the cap");
        assert_ne!(
            policy.backoff(1),
            RetryPolicy { seed: 7, ..policy.clone() }.backoff(1),
            "different seeds must de-align their jitter"
        );
        assert_eq!(RetryPolicy::none().max_attempts, 1);
    }

    /// The kill -9 moment: the server emits part of a reply, then its
    /// process dies and the socket closes without the trailing newline.
    /// The client must treat that as a retryable failure, back off, and
    /// succeed against the restarted server — with the schedule logged.
    #[test]
    fn mid_response_server_death_is_retried_with_backoff_logged() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        let server = thread::spawn(move || {
            // Connection 1: read the request, die mid-response. Both the
            // stream and its reader clone must drop for the FIN to go out.
            {
                let (mut stream, _) = listener.accept().expect("accept 1");
                let mut reader = BufReader::new(stream.try_clone().expect("clone"));
                let mut line = String::new();
                reader.read_line(&mut line).expect("read request");
                stream.write_all(b"{\"status\":\"po").expect("partial write");
                stream.flush().expect("flush");
            }
            // Connection 2: the restarted server answers properly.
            let (mut stream, _) = listener.accept().expect("accept 2");
            let mut reader = BufReader::new(stream.try_clone().expect("clone"));
            let mut line = String::new();
            reader.read_line(&mut line).expect("read request");
            stream.write_all(b"{\"status\":\"pong\"}\n").expect("full write");
        });

        let client = KbClient::with_timeout(&addr, Some(Duration::from_secs(5)))
            .with_retry(fast_retry(3));
        client.ping().expect("retry must recover from a mid-response death");
        server.join().expect("server thread");

        let warnings = client.health_warnings();
        assert_eq!(warnings.len(), 1, "one backed-off retry expected: {warnings:?}");
        assert!(
            warnings[0].contains("mid-response") && warnings[0].contains("backing off"),
            "warning must name the failure and the backoff: {}",
            warnings[0]
        );
        assert!(client.health_warnings().is_empty(), "draining must clear the log");
    }

    #[test]
    fn per_endpoint_jitter_streams_are_salted_and_deterministic() {
        let base = RetryPolicy::default();
        let a = base.salted_for("127.0.0.1:7001");
        let b = base.salted_for("127.0.0.1:7002");
        assert_ne!(a.seed, b.seed, "different addresses must salt differently");
        assert_eq!(
            a.backoff(1),
            base.salted_for("127.0.0.1:7001").backoff(1),
            "salting must be a pure function of the address"
        );
        assert_ne!(
            (a.backoff(1), a.backoff(2)),
            (b.backoff(1), b.backoff(2)),
            "two endpoints sharing a policy must not back off in lockstep"
        );
    }

    #[test]
    fn reads_fail_over_to_the_replica_when_the_primary_is_down() {
        // Primary: bind then drop — nothing listens there.
        let dead = TcpListener::bind("127.0.0.1:0").expect("bind");
        let dead_addr = dead.local_addr().expect("addr").to_string();
        drop(dead);
        // Replica: answers one ping.
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let live_addr = listener.local_addr().expect("addr").to_string();
        let server = thread::spawn(move || {
            let (mut stream, _) = listener.accept().expect("accept");
            let mut reader = BufReader::new(stream.try_clone().expect("clone"));
            let mut line = String::new();
            reader.read_line(&mut line).expect("read request");
            stream.write_all(b"{\"status\":\"pong\"}\n").expect("write");
        });

        let client =
            KbClient::with_timeout(format!("{dead_addr},{live_addr}"), Some(Duration::from_millis(250)))
                .with_retry(fast_retry(2));
        assert_eq!(client.endpoints(), vec![dead_addr.as_str(), live_addr.as_str()]);
        client.ping().expect("the read must succeed on the replica");
        server.join().expect("server thread");
        let warnings = client.health_warnings();
        assert!(
            warnings.iter().any(|w| w.contains("failing over")),
            "the failover hop must be logged: {warnings:?}"
        );
    }

    #[test]
    fn writes_stay_on_the_primary_and_never_fail_over() {
        let dead = TcpListener::bind("127.0.0.1:0").expect("bind");
        let dead_addr = dead.local_addr().expect("addr").to_string();
        drop(dead);
        // A live replica that would happily answer — but must never be
        // asked to snapshot.
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let live_addr = listener.local_addr().expect("addr").to_string();

        let client =
            KbClient::with_timeout(format!("{dead_addr},{live_addr}"), Some(Duration::from_millis(250)))
                .with_retry(fast_retry(2));
        let err = client.snapshot().expect_err("the write must fail with the primary down");
        assert!(
            err.to_string().contains("after 2 attempt"),
            "the write must exhaust the primary's budget only: {err}"
        );
        let warnings = client.health_warnings();
        assert!(
            !warnings.iter().any(|w| w.contains("failing over")),
            "a write must never hop to a replica: {warnings:?}"
        );
        // The replica listener saw no connection: accept would block, so
        // probe it non-blockingly.
        listener.set_nonblocking(true).expect("nonblocking");
        assert!(
            listener.accept().is_err(),
            "the replica must never have been contacted for a write"
        );
    }

    #[test]
    fn not_primary_redirect_surfaces_as_a_typed_error() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        let server = thread::spawn(move || {
            let (mut stream, _) = listener.accept().expect("accept");
            let mut reader = BufReader::new(stream.try_clone().expect("clone"));
            let mut line = String::new();
            reader.read_line(&mut line).expect("read request");
            stream
                .write_all(b"{\"status\":\"not_primary\",\"primary\":\"10.0.0.1:7777\"}\n")
                .expect("write");
        });
        let client = KbClient::with_timeout(&addr, Some(Duration::from_secs(5)))
            .with_retry(fast_retry(1));
        let err = client.snapshot().expect_err("a redirect is not a success");
        assert!(
            err.to_string().contains("primary at 10.0.0.1:7777"),
            "the redirect must name the primary: {err}"
        );
        server.join().expect("server thread");
    }

    #[test]
    fn dead_server_exhausts_bounded_attempts() {
        // Bind then drop: a port with (almost certainly) no listener.
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        drop(listener);

        let client = KbClient::with_timeout(&addr, Some(Duration::from_millis(250)))
            .with_retry(fast_retry(2));
        let err = client.ping().expect_err("no server must mean an error");
        assert!(
            err.to_string().contains("after 2 attempt"),
            "error must report the attempt budget: {err}"
        );
        let warnings = client.health_warnings();
        assert!(
            warnings.iter().any(|w| w.contains("gave up")),
            "exhaustion must be logged: {warnings:?}"
        );
    }
}
