//! [`KbClient`]: a small blocking client for `smartmld`.
//!
//! One TCP connection, reused across requests and transparently
//! re-established after a server restart (a stale-connection failure is
//! retried exactly once on a fresh socket). All calls block; timeouts
//! come from a [`Deadline`] per request.

use crate::protocol::{KbStats, Request, Response};
use smartml_kb::{
    AlgorithmRun, KbBackend, KbError, QueryOptions, Recommendation,
};
use smartml_metafeatures::{Landmarkers, MetaFeatures};
use smartml_runtime::Deadline;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::Mutex;
use std::time::Duration;

struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

/// A blocking `smartmld` client; safe to share behind a `Mutex`-guarded
/// connection (each request holds the lock for its round trip).
pub struct KbClient {
    addr: String,
    timeout: Option<Duration>,
    conn: Mutex<Option<Conn>>,
}

impl KbClient {
    /// A client for `host:port` with a 10-second per-request timeout.
    pub fn connect(addr: impl Into<String>) -> KbClient {
        KbClient::with_timeout(addr, Some(Duration::from_secs(10)))
    }

    /// A client with an explicit per-request timeout (`None` = wait
    /// forever). No I/O happens until the first request.
    pub fn with_timeout(addr: impl Into<String>, timeout: Option<Duration>) -> KbClient {
        KbClient { addr: addr.into(), timeout, conn: Mutex::new(None) }
    }

    /// The server address this client talks to.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    fn open(&self, deadline: Deadline) -> Result<Conn, KbError> {
        let mut last_err: Option<std::io::Error> = None;
        let addrs = self
            .addr
            .to_socket_addrs()
            .map_err(|e| KbError::Backend(format!("cannot resolve `{}`: {e}", self.addr)))?;
        for addr in addrs {
            let attempt = match deadline.io_timeout() {
                Some(t) => TcpStream::connect_timeout(&addr, t),
                None => TcpStream::connect(addr),
            };
            match attempt {
                Ok(stream) => {
                    // Request/response ping-pong: Nagle + delayed ACK
                    // would add ~40ms per round trip.
                    let _ = stream.set_nodelay(true);
                    let reader = BufReader::new(stream.try_clone().map_err(|e| {
                        KbError::Backend(format!("cannot clone socket: {e}"))
                    })?);
                    return Ok(Conn { reader, writer: stream });
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(KbError::Backend(format!(
            "cannot connect to smartmld at {}: {}",
            self.addr,
            last_err.map_or_else(|| "no addresses".to_string(), |e| e.to_string())
        )))
    }

    fn round_trip(conn: &mut Conn, line: &str, deadline: Deadline) -> std::io::Result<String> {
        conn.writer.set_write_timeout(deadline.io_timeout())?;
        conn.writer.write_all(line.as_bytes())?;
        conn.writer.write_all(b"\n")?;
        conn.writer.flush()?;
        conn.reader.get_ref().set_read_timeout(deadline.io_timeout())?;
        let mut response = String::new();
        if conn.reader.read_line(&mut response)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(response)
    }

    /// Sends one request and parses the response. A failure on a *reused*
    /// connection (e.g. the server restarted) is retried once on a fresh
    /// one; failures on a fresh connection surface immediately.
    pub fn request(&self, request: &Request) -> Result<Response, KbError> {
        let line = serde_json::to_string(request)
            .map_err(|e| KbError::Backend(format!("request serialisation failed: {e}")))?;
        let deadline = match self.timeout {
            Some(t) => Deadline::after(t),
            None => Deadline::none(),
        };
        let mut guard = self.conn.lock().expect("client connection poisoned");
        let reused = guard.is_some();
        if guard.is_none() {
            *guard = Some(self.open(deadline)?);
        }
        let conn = guard.as_mut().expect("connection just ensured");
        let text = match Self::round_trip(conn, &line, deadline) {
            Ok(text) => text,
            Err(first) => {
                *guard = None; // drop the stale socket
                if !reused {
                    return Err(KbError::Backend(format!(
                        "smartmld request failed: {first}"
                    )));
                }
                let mut fresh = self.open(deadline)?;
                let text = Self::round_trip(&mut fresh, &line, deadline).map_err(|e| {
                    KbError::Backend(format!("smartmld request failed after retry: {e}"))
                })?;
                *guard = Some(fresh);
                text
            }
        };
        let response: Response = serde_json::from_str(text.trim())
            .map_err(|e| KbError::Backend(format!("bad response from server: {e}")))?;
        if let Response::Error { message } = response {
            return Err(KbError::Backend(message));
        }
        Ok(response)
    }

    /// Nominate algorithms for a meta-feature vector.
    pub fn recommend(
        &self,
        meta_features: &MetaFeatures,
        landmarkers: Option<Landmarkers>,
        options: &QueryOptions,
    ) -> Result<Recommendation, KbError> {
        match self.request(&Request::Recommend {
            meta_features: meta_features.clone(),
            landmarkers,
            options: Some(options.clone()),
        })? {
            Response::Recommendation { recommendation } => Ok(recommendation),
            other => Err(unexpected("recommendation", &other)),
        }
    }

    /// Record one run; returns `(datasets, runs)` after the write.
    pub fn record_run(
        &self,
        dataset_id: &str,
        meta_features: &MetaFeatures,
        run: AlgorithmRun,
    ) -> Result<(usize, usize), KbError> {
        match self.request(&Request::RecordRun {
            dataset_id: dataset_id.to_string(),
            meta_features: meta_features.clone(),
            run,
        })? {
            Response::Recorded { datasets, runs } => Ok((datasets, runs)),
            other => Err(unexpected("recorded", &other)),
        }
    }

    /// Attach landmarkers; returns `(datasets, runs)` after the write.
    pub fn set_landmarkers(
        &self,
        dataset_id: &str,
        landmarkers: Landmarkers,
    ) -> Result<(usize, usize), KbError> {
        match self.request(&Request::SetLandmarkers {
            dataset_id: dataset_id.to_string(),
            landmarkers,
        })? {
            Response::Recorded { datasets, runs } => Ok((datasets, runs)),
            other => Err(unexpected("recorded", &other)),
        }
    }

    /// Fetch store/WAL statistics.
    pub fn stats(&self) -> Result<KbStats, KbError> {
        match self.request(&Request::Stats)? {
            Response::Stats { stats } => Ok(stats),
            other => Err(unexpected("stats", &other)),
        }
    }

    /// Ask the server to fold the WAL into a snapshot.
    pub fn snapshot(&self) -> Result<u64, KbError> {
        match self.request(&Request::Snapshot)? {
            Response::Snapshotted { snapshot_seq } => Ok(snapshot_seq),
            other => Err(unexpected("snapshotted", &other)),
        }
    }

    /// Liveness probe.
    pub fn ping(&self) -> Result<(), KbError> {
        match self.request(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(unexpected("pong", &other)),
        }
    }

    /// Ask the server to exit its serve loop.
    pub fn shutdown(&self) -> Result<(), KbError> {
        match self.request(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(unexpected("shutting_down", &other)),
        }
    }
}

fn unexpected(wanted: &str, got: &Response) -> KbError {
    KbError::Backend(format!("expected `{wanted}` response, got {got:?}"))
}

/// A remote `smartmld` is a [`KbBackend`], so `SmartML::with_backend`
/// can run the whole pipeline against a shared KB service. The size
/// accessors are best-effort (0 when the server is unreachable) because
/// they only feed progress traces.
impl KbBackend for KbClient {
    fn kb_recommend(
        &self,
        meta_features: &MetaFeatures,
        query_landmarkers: Option<Landmarkers>,
        options: &QueryOptions,
    ) -> Result<Recommendation, KbError> {
        self.recommend(meta_features, query_landmarkers, options)
    }

    fn kb_record_run(
        &mut self,
        dataset_id: &str,
        meta_features: &MetaFeatures,
        run: AlgorithmRun,
    ) -> Result<(), KbError> {
        KbClient::record_run(self, dataset_id, meta_features, run).map(|_| ())
    }

    fn kb_set_landmarkers(
        &mut self,
        dataset_id: &str,
        landmarkers: Landmarkers,
    ) -> Result<(), KbError> {
        KbClient::set_landmarkers(self, dataset_id, landmarkers).map(|_| ())
    }

    fn kb_len(&self) -> usize {
        self.stats().map(|s| s.datasets).unwrap_or(0)
    }

    fn kb_n_runs(&self) -> usize {
        self.stats().map(|s| s.runs).unwrap_or(0)
    }

    fn kb_describe(&self) -> String {
        format!("smartmld@{}", self.addr)
    }
}
