//! [`DurableKb`]: a crash-safe knowledge base directory.
//!
//! Layout of a KB directory:
//!
//! ```text
//! kb-dir/
//!   snapshot-000007.json   # full KB as of segment 7 (atomic write)
//!   wal-000008.log         # sealed segment
//!   wal-000009.log         # active segment (appends go here)
//! ```
//!
//! Opening replays the latest snapshot, then every segment with a higher
//! sequence number in order — truncating a torn final record instead of
//! failing — and resumes appending to the highest segment. `snapshot()`
//! folds the current state into a new snapshot and deletes the segments
//! (and older snapshots) it covers.

use crate::wal::{
    list_seqs, meta_name, parse_meta_name, parse_segment_name, parse_snapshot_name, scan_frames,
    segment_name, snapshot_name, WalRecord, WalWriter,
};
use serde::{Deserialize, Serialize};
use smartml_kb::{
    AlgorithmRun, KbBackend, KbError, KnowledgeBase, QueryOptions, Recommendation,
};
use smartml_metafeatures::{Landmarkers, MetaFeatures};
use std::fs::{File, OpenOptions};
use std::io::Read;
use std::path::{Path, PathBuf};

/// Tuning knobs for a [`DurableKb`].
#[derive(Debug, Clone)]
pub struct DurableOptions {
    /// Rotate the active segment once it exceeds this many bytes.
    pub segment_bytes: u64,
    /// `fsync` after every append (durable against power loss, slower).
    /// Off, appends still reach the OS immediately and survive process
    /// crashes — only a machine crash can lose the last few records.
    pub fsync_writes: bool,
}

impl Default for DurableOptions {
    fn default() -> Self {
        DurableOptions { segment_bytes: 1 << 20, fsync_writes: true }
    }
}

/// What recovery found when opening a directory.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Sequence of the snapshot that seeded the state, if any.
    pub snapshot_seq: Option<u64>,
    /// Segments replayed over the snapshot.
    pub segments_replayed: usize,
    /// Records applied from those segments.
    pub records_replayed: usize,
    /// True when a torn tail was truncated somewhere during replay.
    pub truncated_tail: bool,
    /// Total WAL records ever applied in this directory's lineage: the
    /// snapshot sidecar's count plus the records replayed this open. The
    /// replication sequence number — a replica is caught up when its
    /// applied sequence equals the primary's.
    pub applied_seq: u64,
}

/// Sidecar payload stored next to each snapshot (`snapshot-NNNNNN.meta.json`).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct SnapshotMeta {
    applied_seq: u64,
}

/// Reads a snapshot's sidecar applied-record count. A missing or
/// unparseable sidecar (directories written before replication existed)
/// counts as zero — the sidecar is advisory lag metadata, not a
/// correctness input.
pub(crate) fn read_snapshot_meta(dir: &Path, seq: u64) -> u64 {
    std::fs::read_to_string(dir.join(meta_name(seq)))
        .ok()
        .and_then(|s| serde_json::from_str::<SnapshotMeta>(&s).ok())
        .map(|m| m.applied_seq)
        .unwrap_or(0)
}

/// Writes a snapshot's sidecar atomically (tmp + rename).
pub(crate) fn write_snapshot_meta(dir: &Path, seq: u64, applied_seq: u64) -> Result<(), KbError> {
    let body = serde_json::to_string(&SnapshotMeta { applied_seq })
        .expect("sidecar serialisation cannot fail");
    let tmp = dir.join(format!("{}.tmp", meta_name(seq)));
    std::fs::write(&tmp, body)?;
    std::fs::rename(&tmp, dir.join(meta_name(seq)))?;
    Ok(())
}

/// Replays a KB directory: latest snapshot, then every newer segment in
/// order (truncating a torn tail), and opens the writer positioned on
/// the highest segment. Shared by [`DurableKb`] and the sharded index,
/// so both recover byte-identical state from the same directory.
pub(crate) fn recover_dir(
    dir: &Path,
    options: &DurableOptions,
) -> Result<(KnowledgeBase, WalWriter, RecoveryReport), KbError> {
    std::fs::create_dir_all(dir)?;
    let snapshots = list_seqs(dir, parse_snapshot_name)?;
    let snapshot_seq = snapshots.last().copied();
    let mut kb = match snapshot_seq {
        Some(seq) => KnowledgeBase::load(&dir.join(snapshot_name(seq)))?,
        None => KnowledgeBase::new(),
    };
    let mut recovery = RecoveryReport { snapshot_seq, ..Default::default() };
    recovery.applied_seq = snapshot_seq.map(|s| read_snapshot_meta(dir, s)).unwrap_or(0);
    let floor = snapshot_seq.unwrap_or(0);
    let segments: Vec<u64> =
        list_seqs(dir, parse_segment_name)?.into_iter().filter(|&s| s > floor).collect();
    for (ix, &seq) in segments.iter().enumerate() {
        let path = dir.join(segment_name(seq));
        let mut bytes = Vec::new();
        File::open(&path)?.read_to_end(&mut bytes)?;
        let scan = scan_frames(&bytes, &path)?;
        if let Some(torn_at) = scan.torn_at {
            // A torn tail is only legal on the *final* segment — the one
            // the crash interrupted. A tear behind a sealed rotation
            // boundary is a hole in acknowledged history: replaying past
            // it would silently drop records that later segments assume
            // exist, so refuse to open instead.
            if ix + 1 != segments.len() {
                return Err(KbError::Corrupt {
                    path: Some(path),
                    detail: format!(
                        "segment {seq} torn at byte {torn_at} with later segment(s) \
                         present — mid-rotation history hole, refusing to replay past it"
                    ),
                });
            }
            // Drop the torn tail so future appends start on a boundary.
            let f = OpenOptions::new().write(true).open(&path)?;
            f.set_len(torn_at)?;
            f.sync_all()?;
            recovery.truncated_tail = true;
        }
        for record in &scan.records {
            record.apply_to(&mut kb);
        }
        recovery.segments_replayed += 1;
        recovery.records_replayed += scan.records.len();
    }
    recovery.applied_seq += recovery.records_replayed as u64;
    // Resume on the highest segment, or start the one after the
    // snapshot so sequence numbers never move backwards.
    let active = segments.last().copied().unwrap_or(floor + 1);
    let writer = WalWriter::open(dir, active, options.segment_bytes, options.fsync_writes)?;
    Ok((kb, writer, recovery))
}

/// A [`KnowledgeBase`] whose every mutation is WAL-logged to a directory.
pub struct DurableKb {
    dir: PathBuf,
    kb: KnowledgeBase,
    writer: WalWriter,
    options: DurableOptions,
    recovery: RecoveryReport,
    applied_seq: u64,
}

impl DurableKb {
    /// Opens (creating if needed) a KB directory with default options.
    pub fn open(dir: &Path) -> Result<DurableKb, KbError> {
        DurableKb::open_with(dir, DurableOptions::default())
    }

    /// Opens (creating if needed) a KB directory.
    pub fn open_with(dir: &Path, options: DurableOptions) -> Result<DurableKb, KbError> {
        let (kb, writer, recovery) = recover_dir(dir, &options)?;
        let applied_seq = recovery.applied_seq;
        Ok(DurableKb { dir: dir.to_path_buf(), kb, writer, options, recovery, applied_seq })
    }

    /// The directory this KB lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Borrow the in-memory index (always reflects every logged record).
    pub fn kb(&self) -> &KnowledgeBase {
        &self.kb
    }

    /// What recovery found when this handle was opened.
    pub fn recovery(&self) -> &RecoveryReport {
        &self.recovery
    }

    /// Sequence number of the active WAL segment.
    pub fn active_segment(&self) -> u64 {
        self.writer.seq()
    }

    /// Total WAL records applied in this directory's lineage (survives
    /// snapshots via the sidecar). The replication position.
    pub fn applied_seq(&self) -> u64 {
        self.applied_seq
    }

    /// `(active segment, bytes in it)` — the authoritative frame
    /// boundary a `SYNC` chunk of the active segment may ship up to.
    pub(crate) fn wal_position(&self) -> (u64, u64) {
        (self.writer.seq(), self.writer.len())
    }

    /// Number of WAL segment files currently on disk.
    pub fn n_segments(&self) -> Result<usize, KbError> {
        Ok(list_seqs(&self.dir, parse_segment_name)?.len())
    }

    /// Logs then applies one run observation (WAL discipline: the record
    /// is on disk before the in-memory index admits it).
    pub fn record_run(
        &mut self,
        dataset_id: &str,
        meta_features: &MetaFeatures,
        run: AlgorithmRun,
    ) -> Result<(), KbError> {
        let record = WalRecord::Run {
            dataset_id: dataset_id.to_string(),
            meta_features: meta_features.clone(),
            run,
        };
        self.writer.append(&record)?;
        record.apply_to(&mut self.kb);
        self.applied_seq += 1;
        Ok(())
    }

    /// Logs then applies landmarker accuracies for a dataset.
    pub fn set_landmarkers(
        &mut self,
        dataset_id: &str,
        landmarkers: Landmarkers,
    ) -> Result<(), KbError> {
        let record =
            WalRecord::Landmarkers { dataset_id: dataset_id.to_string(), landmarkers };
        self.writer.append(&record)?;
        record.apply_to(&mut self.kb);
        self.applied_seq += 1;
        Ok(())
    }

    /// Folds the current state into a snapshot file and compacts: the
    /// snapshot is written atomically, then every segment it covers and
    /// every older snapshot are deleted, and appends continue on a fresh
    /// segment. Returns the new snapshot's sequence number.
    pub fn snapshot(&mut self) -> Result<u64, KbError> {
        self.writer.sync()?;
        let covered = self.writer.seq();
        // Atomic write via the single-file KB path (tmp + fsync + rename).
        self.kb.save(&self.dir.join(snapshot_name(covered)))?;
        write_snapshot_meta(&self.dir, covered, self.applied_seq)?;
        // The snapshot now owns everything up to `covered`: drop the
        // segments it folded and the snapshots (with sidecars) it
        // supersedes.
        for seq in list_seqs(&self.dir, parse_segment_name)? {
            if seq <= covered {
                std::fs::remove_file(self.dir.join(segment_name(seq)))?;
            }
        }
        for seq in list_seqs(&self.dir, parse_snapshot_name)? {
            if seq < covered {
                std::fs::remove_file(self.dir.join(snapshot_name(seq)))?;
            }
        }
        for seq in list_seqs(&self.dir, parse_meta_name)? {
            if seq < covered {
                std::fs::remove_file(self.dir.join(meta_name(seq)))?;
            }
        }
        self.writer =
            WalWriter::open(&self.dir, covered + 1, self.options.segment_bytes, self.options.fsync_writes)?;
        Ok(covered)
    }
}

impl KbBackend for DurableKb {
    fn kb_recommend(
        &self,
        meta_features: &MetaFeatures,
        query_landmarkers: Option<Landmarkers>,
        options: &QueryOptions,
    ) -> Result<Recommendation, KbError> {
        Ok(self.kb.recommend_extended(meta_features, query_landmarkers, options))
    }

    fn kb_record_run(
        &mut self,
        dataset_id: &str,
        meta_features: &MetaFeatures,
        run: AlgorithmRun,
    ) -> Result<(), KbError> {
        self.record_run(dataset_id, meta_features, run)
    }

    fn kb_set_landmarkers(
        &mut self,
        dataset_id: &str,
        landmarkers: Landmarkers,
    ) -> Result<(), KbError> {
        self.set_landmarkers(dataset_id, landmarkers)
    }

    fn kb_len(&self) -> usize {
        self.kb.len()
    }

    fn kb_n_runs(&self) -> usize {
        self.kb.n_runs()
    }

    fn kb_describe(&self) -> String {
        format!("wal:{}", self.dir.display())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartml_classifiers::{Algorithm, ParamConfig};
    use smartml_data::synth::gaussian_blobs;
    use smartml_metafeatures::extract;

    fn mf(seed: u64) -> MetaFeatures {
        let d = gaussian_blobs("m", 40 + seed as usize, 3, 2, 1.0, seed);
        extract(&d, &d.all_rows())
    }

    fn run(acc: f64) -> AlgorithmRun {
        AlgorithmRun { algorithm: Algorithm::Svm, config: ParamConfig::default(), accuracy: acc }
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(name);
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn reopen_recovers_all_records() {
        let dir = tmp("smartml-durable-reopen");
        {
            let mut kb = DurableKb::open(&dir).unwrap();
            for i in 0..5u64 {
                kb.record_run(&format!("d{i}"), &mf(i), run(0.6 + i as f64 / 100.0)).unwrap();
            }
            kb.set_landmarkers("d0", Landmarkers { decision_stump: 0.4, nearest_centroid: 0.5 })
                .unwrap();
        } // dropped without snapshot: the WAL is the only persistence
        let kb = DurableKb::open(&dir).unwrap();
        assert_eq!(kb.kb().len(), 5);
        assert_eq!(kb.kb().n_runs(), 5);
        assert!(kb.kb().get("d0").unwrap().landmarkers.is_some());
        assert_eq!(kb.recovery().records_replayed, 6);
        assert!(!kb.recovery().truncated_tail);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_recovered_and_matches_in_memory_build() {
        let dir = tmp("smartml-durable-torn");
        let mut reference = KnowledgeBase::new();
        {
            let mut kb = DurableKb::open(&dir).unwrap();
            for i in 0..4u64 {
                kb.record_run(&format!("d{i}"), &mf(i), run(0.7)).unwrap();
                reference.record_run(&format!("d{i}"), &mf(i), run(0.7));
            }
        }
        // Tear the active segment mid-record: append half a frame.
        let seq = list_seqs(&dir, parse_segment_name).unwrap();
        let active = dir.join(segment_name(*seq.last().unwrap()));
        let torn = crate::wal::encode_frame(&WalRecord::Run {
            dataset_id: "torn".into(),
            meta_features: mf(9),
            run: run(0.9),
        });
        {
            use std::io::Write;
            let mut f = std::fs::OpenOptions::new().append(true).open(&active).unwrap();
            f.write_all(&torn[..torn.len() - 7]).unwrap();
        }
        let kb = DurableKb::open(&dir).unwrap();
        assert!(kb.recovery().truncated_tail);
        assert_eq!(kb.kb().len(), 4, "complete records survive, torn one is dropped");
        // A recommend against the recovered KB matches one against the
        // same runs applied in memory (ISSUE acceptance criterion).
        let q = mf(2);
        let opts = QueryOptions::default();
        let recovered = kb.kb().recommend_extended(&q, None, &opts);
        let fresh = reference.recommend_extended(&q, None, &opts);
        assert_eq!(recovered, fresh);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_compacts_and_preserves_state() {
        let dir = tmp("smartml-durable-snapshot");
        let small = DurableOptions { segment_bytes: 512, fsync_writes: false };
        let mut kb = DurableKb::open_with(&dir, small.clone()).unwrap();
        for i in 0..8u64 {
            kb.record_run(&format!("d{i}"), &mf(i), run(0.8)).unwrap();
        }
        assert!(kb.n_segments().unwrap() > 1, "tiny threshold must rotate");
        let covered = kb.snapshot().unwrap();
        // All covered segments are gone; one fresh segment remains.
        let segs = list_seqs(&dir, parse_segment_name).unwrap();
        assert_eq!(segs, vec![covered + 1]);
        let snaps = list_seqs(&dir, parse_snapshot_name).unwrap();
        assert_eq!(snaps, vec![covered]);
        // Post-snapshot writes land in the WAL; reopen sees everything.
        kb.record_run("after", &mf(20), run(0.9)).unwrap();
        drop(kb);
        let kb = DurableKb::open_with(&dir, small).unwrap();
        assert_eq!(kb.kb().len(), 9);
        assert_eq!(kb.recovery().snapshot_seq, Some(covered));
        assert_eq!(kb.recovery().records_replayed, 1);
        // A second snapshot supersedes the first.
        let mut kb = kb;
        let covered2 = kb.snapshot().unwrap();
        assert!(covered2 > covered);
        assert_eq!(list_seqs(&dir, parse_snapshot_name).unwrap(), vec![covered2]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mid_rotation_tear_refuses_to_open() {
        let dir = tmp("smartml-durable-midrot-tear");
        let small = DurableOptions { segment_bytes: 256, fsync_writes: false };
        {
            let mut kb = DurableKb::open_with(&dir, small.clone()).unwrap();
            for i in 0..8u64 {
                kb.record_run(&format!("d{i}"), &mf(i), run(0.7)).unwrap();
            }
        }
        let segs = list_seqs(&dir, parse_segment_name).unwrap();
        assert!(segs.len() >= 2, "tiny threshold must rotate: {segs:?}");
        // Tear a SEALED segment — one with later segments behind it. That
        // is a hole in acknowledged history, not a crash-interrupted
        // append, and replaying past it would silently lose records.
        let sealed = dir.join(segment_name(segs[0]));
        let len = std::fs::metadata(&sealed).unwrap().len();
        let f = OpenOptions::new().write(true).open(&sealed).unwrap();
        f.set_len(len - 5).unwrap();
        drop(f);
        match DurableKb::open_with(&dir, small) {
            Err(KbError::Corrupt { path: Some(p), detail }) => {
                assert!(p.ends_with(segment_name(segs[0])), "{p:?}");
                assert!(detail.contains("history hole"), "{detail}");
            }
            Ok(_) => panic!("mid-rotation tear must refuse to open"),
            other => panic!("expected Corrupt, got {:?}", other.err()),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_plus_empty_tail_recovers_cleanly() {
        // Snapshot, then reopen with no post-snapshot writes: the active
        // segment exists on disk but holds zero frames. The sidecar must
        // carry the applied count across the compaction.
        let dir = tmp("smartml-durable-empty-tail");
        let opts = DurableOptions { fsync_writes: false, ..Default::default() };
        let mut kb = DurableKb::open_with(&dir, opts.clone()).unwrap();
        for i in 0..3u64 {
            kb.record_run(&format!("d{i}"), &mf(i), run(0.8)).unwrap();
        }
        assert_eq!(kb.applied_seq(), 3);
        let covered = kb.snapshot().unwrap();
        drop(kb);
        let kb = DurableKb::open_with(&dir, opts).unwrap();
        assert_eq!(kb.kb().len(), 3);
        assert_eq!(kb.recovery().snapshot_seq, Some(covered));
        assert_eq!(kb.recovery().segments_replayed, 1);
        assert_eq!(kb.recovery().records_replayed, 0);
        assert!(!kb.recovery().truncated_tail);
        assert_eq!(kb.applied_seq(), 3, "sidecar must survive the snapshot");
        assert_eq!(kb.active_segment(), covered + 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_snapshot_surfaces_with_path() {
        let dir = tmp("smartml-durable-corrupt-snap");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(snapshot_name(3)), "{broken").unwrap();
        match DurableKb::open(&dir) {
            Err(KbError::Corrupt { path: Some(p), .. }) => {
                assert!(p.ends_with(snapshot_name(3)));
            }
            Ok(_) => panic!("expected corrupt snapshot error, got a KB"),
            other => panic!("expected corrupt snapshot error, got {:?}", other.err()),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn backend_trait_roundtrip() {
        let dir = tmp("smartml-durable-backend");
        let mut kb = DurableKb::open(&dir).unwrap();
        kb.kb_record_run("d", &mf(1), run(0.66)).unwrap();
        assert_eq!(kb.kb_len(), 1);
        assert_eq!(kb.kb_n_runs(), 1);
        assert!(kb.kb_describe().starts_with("wal:"));
        let rec = kb.kb_recommend(&mf(1), None, &QueryOptions::default()).unwrap();
        assert!(!rec.algorithms.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
