//! [`ShardedKb`]: the KB index split across N shards for the
//! event-driven server.
//!
//! A recommendation is a global nearest-neighbour scan, so sharding
//! cannot partition *queries* — every query touches every shard. What
//! it partitions is **write contention** and **per-query recompute**:
//!
//! - each dataset lives in exactly one shard, chosen by an FNV hash of
//!   its meta-features at first insertion (sticky thereafter, so
//!   overwritten meta-features never migrate an entry mid-flight);
//! - a write locks the WAL, the registry, and *one* shard — concurrent
//!   readers of other shards never queue behind it for entry access;
//! - each shard caches its z-score-normalised entries per write
//!   generation, so the steady-state query does no per-entry
//!   normalisation allocations at all — just distance arithmetic.
//!
//! ## Byte-identity with the monolithic [`KnowledgeBase`]
//!
//! The blocking server remains the retained oracle, so the sharded
//! answer must be byte-identical to the monolithic one. Three ordering
//! facts make that hold by construction:
//!
//! 1. **Statistics order.** Normalisation stats sum floats in entry
//!    order. The registry keeps every dataset's current meta-features
//!    in a global insertion-order table, and stats are computed over it
//!    with the same [`smartml_kb::normalisation_stats_over`] loop the
//!    monolithic path uses.
//! 2. **Tie-breaking.** The monolithic path stable-sorts by distance
//!    over insertion order. Each entry carries its global insertion
//!    sequence; merging shards by `(distance, sequence)` reproduces the
//!    stable sort's permutation exactly.
//! 3. **Vote order.** The two-factor vote is the shared
//!    [`smartml_kb::vote_ranked`], fed the same entries in the same
//!    order, so every float operation runs in the same sequence.
//!
//! Durability reuses the PR 2 machinery unchanged: same WAL framing,
//! same segment rotation, same snapshot files. A directory written by a
//! sharded server opens under [`crate::DurableKb`] and vice versa.

use crate::durable::{recover_dir, write_snapshot_meta, DurableOptions, RecoveryReport};
use crate::wal::{
    list_seqs, meta_name, parse_meta_name, parse_segment_name, parse_snapshot_name, scan_frames,
    segment_name, snapshot_name, WalRecord, WalWriter,
};
use smartml_kb::{
    entry_distance, normalisation_stats_over, normalise, vote_ranked, AlgorithmRun, KbEntry,
    KbError, KnowledgeBase, NormStats, QueryOptions, Recommendation,
};
use smartml_metafeatures::{Landmarkers, MetaFeatures};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock, RwLockReadGuard};

/// Where one dataset lives.
#[derive(Debug, Clone, Copy)]
struct Slot {
    shard: usize,
    /// Global insertion sequence — the entry's index in the monolithic
    /// ordering, and into [`Registry::features`].
    seq: u64,
}

/// Global bookkeeping: dataset → shard routing and the insertion-order
/// meta-feature table that normalisation statistics are computed over.
#[derive(Default)]
struct Registry {
    assign: HashMap<String, Slot>,
    /// Current meta-features of every dataset, indexed by sequence.
    /// Overwrites update in place, exactly like the monolithic KB.
    features: Vec<Vec<f64>>,
}

/// One shard: a plain [`KnowledgeBase`] plus each entry's global
/// sequence (parallel to `kb.entries()`).
#[derive(Default)]
struct Shard {
    kb: KnowledgeBase,
    seqs: Vec<u64>,
}

/// Per-generation cache: global stats plus every entry z-scored, so
/// steady-state queries skip the O(entries × features) normalisation
/// pass *and* its allocations.
struct ZCache {
    generation: u64,
    stats: NormStats,
    /// `z[shard][entry]` — parallel to each shard's entries.
    z: Vec<Vec<Vec<f64>>>,
}

/// FNV-1a over the meta-feature bytes: deterministic shard routing that
/// needs no coordination and spreads adjacent datasets.
fn shard_of(values: &[f64], n_shards: usize) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for v in values {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    (h % n_shards as u64) as usize
}

/// A WAL-durable, shard-partitioned KB index. All methods take `&self`;
/// share it behind an `Arc` across event loops.
pub struct ShardedKb {
    dir: PathBuf,
    options: DurableOptions,
    /// Writers serialise here first: WAL append order defines the
    /// global apply order (and therefore recovery order).
    wal: Mutex<WalWriter>,
    registry: RwLock<Registry>,
    shards: Vec<RwLock<Shard>>,
    /// Bumped under the registry write lock after each applied
    /// mutation; stable while any registry read guard is held.
    generation: AtomicU64,
    zcache: Mutex<Option<Arc<ZCache>>>,
    recovery: RecoveryReport,
    /// Total WAL records applied in this directory's lineage — the
    /// replication position (see [`RecoveryReport::applied_seq`]).
    applied_seq: AtomicU64,
}

impl ShardedKb {
    /// Opens a KB directory (same layout and recovery semantics as
    /// [`crate::DurableKb`]) and partitions the recovered entries into
    /// `n_shards` shards, preserving global insertion order.
    pub fn open_with(
        dir: &Path,
        options: DurableOptions,
        n_shards: usize,
    ) -> Result<ShardedKb, KbError> {
        let n_shards = n_shards.max(1);
        let (kb, writer, recovery) = recover_dir(dir, &options)?;
        let mut registry = Registry::default();
        let mut partitions: Vec<(Vec<KbEntry>, Vec<u64>)> =
            (0..n_shards).map(|_| (Vec::new(), Vec::new())).collect();
        for (seq, entry) in kb.into_entries().into_iter().enumerate() {
            let shard = shard_of(&entry.meta_features.values, n_shards);
            registry.assign.insert(
                entry.dataset_id.clone(),
                Slot { shard, seq: seq as u64 },
            );
            registry.features.push(entry.meta_features.values.clone());
            partitions[shard].1.push(seq as u64);
            partitions[shard].0.push(entry);
        }
        let shards: Vec<Shard> = partitions
            .into_iter()
            .map(|(entries, seqs)| Shard { kb: KnowledgeBase::from_entries(entries), seqs })
            .collect();
        let applied_seq = AtomicU64::new(recovery.applied_seq);
        Ok(ShardedKb {
            dir: dir.to_path_buf(),
            options,
            wal: Mutex::new(writer),
            registry: RwLock::new(registry),
            shards: shards.into_iter().map(RwLock::new).collect(),
            generation: AtomicU64::new(0),
            zcache: Mutex::new(None),
            recovery,
            applied_seq,
        })
    }

    /// What WAL recovery found when this index was opened.
    pub fn recovery(&self) -> &RecoveryReport {
        &self.recovery
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Current write generation (diagnostics / tests).
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Datasets known.
    pub fn len(&self) -> usize {
        self.registry.read().expect("registry poisoned").features.len()
    }

    /// True when no datasets are known.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total recorded runs.
    pub fn n_runs(&self) -> usize {
        let _reg = self.registry.read().expect("registry poisoned");
        self.shards
            .iter()
            .map(|s| s.read().expect("shard poisoned").kb.n_runs())
            .sum()
    }

    /// Sequence number of the active WAL segment.
    pub fn active_segment(&self) -> u64 {
        self.wal.lock().expect("wal poisoned").seq()
    }

    /// Total WAL records applied in this directory's lineage (the
    /// replication position).
    pub fn applied_seq(&self) -> u64 {
        self.applied_seq.load(Ordering::Acquire)
    }

    /// Number of WAL segment files currently on disk.
    pub fn n_segments(&self) -> Result<usize, KbError> {
        Ok(list_seqs(&self.dir, parse_segment_name)?.len())
    }

    /// Directory this store journals into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Runs `f` with the active WAL position `(segment seq, byte len)`
    /// while holding the WAL mutex, so the position cannot move (and
    /// compaction cannot run) for the duration of the call.
    pub(crate) fn with_wal_position<T>(&self, f: impl FnOnce((u64, u64)) -> T) -> T {
        let wal = self.wal.lock().expect("wal poisoned");
        f((wal.seq(), wal.len()))
    }

    /// Logs then applies one run observation. WAL discipline: the
    /// record is on disk before any reader can observe it. The WAL
    /// mutex is held across the apply so WAL order equals apply order —
    /// recovery replays the exact in-memory history.
    pub fn record_run(
        &self,
        dataset_id: &str,
        meta_features: &MetaFeatures,
        run: AlgorithmRun,
    ) -> Result<(), KbError> {
        let record = WalRecord::Run {
            dataset_id: dataset_id.to_string(),
            meta_features: meta_features.clone(),
            run,
        };
        let mut wal = self.wal.lock().expect("wal poisoned");
        wal.append(&record)?;
        self.apply_record(&record);
        self.applied_seq.fetch_add(1, Ordering::Release);
        Ok(())
    }

    /// Logs then applies landmarker accuracies for a dataset (a no-op
    /// for unknown ids, like the monolithic KB — but still logged).
    pub fn set_landmarkers(
        &self,
        dataset_id: &str,
        landmarkers: Landmarkers,
    ) -> Result<(), KbError> {
        let record =
            WalRecord::Landmarkers { dataset_id: dataset_id.to_string(), landmarkers };
        let mut wal = self.wal.lock().expect("wal poisoned");
        wal.append(&record)?;
        self.apply_record(&record);
        self.applied_seq.fetch_add(1, Ordering::Release);
        drop(wal);
        Ok(())
    }

    /// Nominates algorithms — byte-identical to the monolithic
    /// [`KnowledgeBase::recommend_extended`] over the same history (see
    /// the module docs for why).
    pub fn recommend(
        &self,
        meta_features: &MetaFeatures,
        query_landmarkers: Option<Landmarkers>,
        options: &QueryOptions,
    ) -> Recommendation {
        let reg = self.registry.read().expect("registry poisoned");
        if reg.features.is_empty() {
            return Recommendation { algorithms: Vec::new(), neighbors: Vec::new() };
        }
        let guards: Vec<RwLockReadGuard<'_, Shard>> =
            self.shards.iter().map(|s| s.read().expect("shard poisoned")).collect();
        // Stable while we hold the registry read guard: writers bump it
        // only under the registry write lock.
        let generation = self.generation.load(Ordering::Acquire);
        let cache = self.cached_z(generation, &reg, &guards);

        let query = normalise(&meta_features.values, &cache.stats.means, &cache.stats.stds);
        let mut scored: Vec<(f64, u64, &KbEntry)> = Vec::with_capacity(reg.features.len());
        for (shard_ix, guard) in guards.iter().enumerate() {
            let zs = &cache.z[shard_ix];
            for (entry_ix, entry) in guard.kb.entries().iter().enumerate() {
                let dist = entry_distance(
                    &query,
                    &zs[entry_ix],
                    entry.landmarkers,
                    query_landmarkers,
                    options,
                );
                scored.push((dist, guard.seqs[entry_ix], entry));
            }
        }
        // (distance, sequence) reproduces the monolithic stable sort.
        // (distance, insertion seq) is a strict total order, so a
        // partial select of the top k followed by a sort of just that
        // prefix is identical to sorting everything and truncating —
        // but O(n + k log k) instead of O(n log n).
        let cmp = |a: &(f64, u64, &KbEntry), b: &(f64, u64, &KbEntry)| {
            a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1))
        };
        let k = options.n_neighbors.max(1);
        if k < scored.len() {
            scored.select_nth_unstable_by(k - 1, cmp);
            scored.truncate(k);
        }
        scored.sort_by(cmp);
        let ranked: Vec<(&KbEntry, f64)> = scored.iter().map(|&(d, _, e)| (e, d)).collect();
        vote_ranked(&ranked, options)
    }

    /// Returns the z-cache for `generation`, rebuilding it if a write
    /// invalidated it. Called with the registry and all shard guards
    /// held, so the rebuild is consistent with what the query scans.
    fn cached_z(
        &self,
        generation: u64,
        reg: &Registry,
        guards: &[RwLockReadGuard<'_, Shard>],
    ) -> Arc<ZCache> {
        if let Some(cache) = self.zcache.lock().expect("zcache poisoned").as_ref() {
            if cache.generation == generation {
                return Arc::clone(cache);
            }
        }
        // Global stats in insertion order — the same float summation
        // sequence as the monolithic normalisation pass.
        let features: Vec<&[f64]> = reg.features.iter().map(|f| f.as_slice()).collect();
        let stats = normalisation_stats_over(&features);
        let z: Vec<Vec<Vec<f64>>> = guards
            .iter()
            .map(|g| {
                g.kb.entries()
                    .iter()
                    .map(|e| normalise(&e.meta_features.values, &stats.means, &stats.stds))
                    .collect()
            })
            .collect();
        let fresh = Arc::new(ZCache { generation, stats, z });
        *self.zcache.lock().expect("zcache poisoned") = Some(Arc::clone(&fresh));
        fresh
    }

    /// Reassembles the monolithic KB (global insertion order) from the
    /// shards. Used by snapshotting and the equivalence tests.
    pub fn to_monolithic(&self) -> KnowledgeBase {
        let _reg = self.registry.read().expect("registry poisoned");
        let guards: Vec<RwLockReadGuard<'_, Shard>> =
            self.shards.iter().map(|s| s.read().expect("shard poisoned")).collect();
        let mut entries: Vec<(u64, KbEntry)> = Vec::new();
        for guard in &guards {
            for (ix, entry) in guard.kb.entries().iter().enumerate() {
                entries.push((guard.seqs[ix], entry.clone()));
            }
        }
        entries.sort_by_key(|&(seq, _)| seq);
        KnowledgeBase::from_entries(entries.into_iter().map(|(_, e)| e).collect())
    }

    /// Folds the current state into a snapshot and compacts — identical
    /// on-disk result to [`crate::DurableKb::snapshot`]. Writers are
    /// blocked for the duration (the WAL mutex is held); readers only
    /// briefly while the shards are folded.
    pub fn snapshot(&self) -> Result<u64, KbError> {
        let mut wal = self.wal.lock().expect("wal poisoned");
        wal.sync()?;
        let covered = wal.seq();
        let kb = self.to_monolithic();
        kb.save(&self.dir.join(snapshot_name(covered)))?;
        write_snapshot_meta(&self.dir, covered, self.applied_seq())?;
        for seq in list_seqs(&self.dir, parse_segment_name)? {
            if seq <= covered {
                std::fs::remove_file(self.dir.join(segment_name(seq)))?;
            }
        }
        for seq in list_seqs(&self.dir, parse_snapshot_name)? {
            if seq < covered {
                std::fs::remove_file(self.dir.join(snapshot_name(seq)))?;
            }
        }
        for seq in list_seqs(&self.dir, parse_meta_name)? {
            if seq < covered {
                std::fs::remove_file(self.dir.join(meta_name(seq)))?;
            }
        }
        *wal = WalWriter::open(
            &self.dir,
            covered + 1,
            self.options.segment_bytes,
            self.options.fsync_writes,
        )?;
        Ok(covered)
    }

    /// Applies one already-logged WAL record to the registry and shards,
    /// bumping the write generation. Shared by the local write path and
    /// the replication apply path so both produce identical state.
    fn apply_record(&self, record: &WalRecord) {
        match record {
            WalRecord::Run { dataset_id, meta_features, run } => {
                // Lock order: registry before shard (readers use the same
                // order). The generation is published while the registry
                // write lock is still held, so a reader holding a registry
                // read guard always sees a fully applied generation.
                let mut reg = self.registry.write().expect("registry poisoned");
                let slot = match reg.assign.get(dataset_id).copied() {
                    Some(slot) => {
                        // Existing dataset: meta-features overwritten in
                        // place; the shard assignment is sticky.
                        reg.features[slot.seq as usize] = meta_features.values.clone();
                        slot
                    }
                    None => {
                        let slot = Slot {
                            shard: shard_of(&meta_features.values, self.shards.len()),
                            seq: reg.features.len() as u64,
                        };
                        reg.assign.insert(dataset_id.to_string(), slot);
                        reg.features.push(meta_features.values.clone());
                        slot
                    }
                };
                {
                    let mut shard = self.shards[slot.shard].write().expect("shard poisoned");
                    let was = shard.kb.len();
                    shard.kb.record_run(dataset_id, meta_features, run.clone());
                    if shard.kb.len() > was {
                        shard.seqs.push(slot.seq);
                    }
                }
                self.generation.fetch_add(1, Ordering::Release);
            }
            WalRecord::Landmarkers { dataset_id, landmarkers } => {
                let reg = self.registry.write().expect("registry poisoned");
                if let Some(slot) = reg.assign.get(dataset_id).copied() {
                    let mut shard = self.shards[slot.shard].write().expect("shard poisoned");
                    shard.kb.set_landmarkers(dataset_id, *landmarkers);
                }
                self.generation.fetch_add(1, Ordering::Release);
            }
        }
    }

    /// Replication apply: mirrors `data` (whole WAL frames shipped by the
    /// primary) onto the local active segment byte-for-byte, then applies
    /// each record through the same path local writes use. The chunk must
    /// start exactly at the local WAL frontier — anything else means this
    /// replica diverged and must resync from a snapshot. Returns the new
    /// local applied sequence.
    pub fn apply_sync_chunk(
        &self,
        segment: u64,
        offset: u64,
        data: &str,
    ) -> Result<u64, KbError> {
        let mut wal = self.wal.lock().expect("wal poisoned");
        if wal.seq() != segment || wal.len() != offset {
            return Err(KbError::Backend(format!(
                "sync position mismatch: chunk is for segment {segment} offset {offset}, \
                 local WAL is at segment {} offset {} — resync required",
                wal.seq(),
                wal.len()
            )));
        }
        let bytes = data.as_bytes();
        let scan = scan_frames(bytes, &self.dir.join(segment_name(segment)))?;
        if scan.torn_at.is_some() {
            return Err(KbError::Backend(
                "sync chunk is not a whole number of frames — refusing a torn prefix".into(),
            ));
        }
        // Disk before memory, exactly like a local write: after a crash
        // here, recovery replays the mirrored frames.
        wal.append_raw(bytes)?;
        for record in &scan.records {
            self.apply_record(record);
        }
        let n = scan.records.len() as u64;
        Ok(self.applied_seq.fetch_add(n, Ordering::AcqRel) + n)
    }

    /// Replication segment advance: the primary sealed `current` and
    /// moved on; mirror its rotation by opening segment `next` locally.
    pub fn advance_segment(&self, next: u64) -> Result<(), KbError> {
        let mut wal = self.wal.lock().expect("wal poisoned");
        if next <= wal.seq() {
            return Err(KbError::Backend(format!(
                "sync segment advance must move forward: at {}, asked for {next}",
                wal.seq()
            )));
        }
        *wal = WalWriter::open(
            &self.dir,
            next,
            self.options.segment_bytes,
            self.options.fsync_writes,
        )?;
        Ok(())
    }

    /// Replication reset: installs a full snapshot shipped by the
    /// primary, replacing every local segment and snapshot. The replica's
    /// directory afterwards is exactly what a primary compacted at
    /// `snapshot_seq` would hold, so a restart recovers from it normally.
    pub fn install_snapshot(
        &self,
        snapshot_seq: u64,
        kb_json: &str,
        applied_seq: u64,
    ) -> Result<(), KbError> {
        let kb: KnowledgeBase = serde_json::from_str(kb_json).map_err(|e| KbError::Corrupt {
            path: None,
            detail: format!("sync snapshot failed to parse: {e}"),
        })?;
        let mut wal = self.wal.lock().expect("wal poisoned");
        let mut reg = self.registry.write().expect("registry poisoned");
        let mut guards: Vec<_> =
            self.shards.iter().map(|s| s.write().expect("shard poisoned")).collect();
        // Persist first (disk before memory): snapshot + sidecar, then
        // drop every local segment (diverged or superseded history) and
        // every other snapshot.
        kb.save(&self.dir.join(snapshot_name(snapshot_seq)))?;
        write_snapshot_meta(&self.dir, snapshot_seq, applied_seq)?;
        for seq in list_seqs(&self.dir, parse_segment_name)? {
            std::fs::remove_file(self.dir.join(segment_name(seq)))?;
        }
        for seq in list_seqs(&self.dir, parse_snapshot_name)? {
            if seq != snapshot_seq {
                std::fs::remove_file(self.dir.join(snapshot_name(seq)))?;
            }
        }
        for seq in list_seqs(&self.dir, parse_meta_name)? {
            if seq != snapshot_seq {
                std::fs::remove_file(self.dir.join(meta_name(seq)))?;
            }
        }
        // Rebuild the in-memory index from the snapshot, preserving the
        // snapshot's entry order as the global insertion order — the same
        // partitioning open_with performs.
        *reg = Registry::default();
        let n_shards = self.shards.len();
        let mut partitions: Vec<(Vec<KbEntry>, Vec<u64>)> =
            (0..n_shards).map(|_| (Vec::new(), Vec::new())).collect();
        for (seq, entry) in kb.into_entries().into_iter().enumerate() {
            let shard = shard_of(&entry.meta_features.values, n_shards);
            reg.assign
                .insert(entry.dataset_id.clone(), Slot { shard, seq: seq as u64 });
            reg.features.push(entry.meta_features.values.clone());
            partitions[shard].1.push(seq as u64);
            partitions[shard].0.push(entry);
        }
        for (guard, (entries, seqs)) in guards.iter_mut().zip(partitions) {
            guard.kb = KnowledgeBase::from_entries(entries);
            guard.seqs = seqs;
        }
        self.applied_seq.store(applied_seq, Ordering::Release);
        self.generation.fetch_add(1, Ordering::Release);
        *wal = WalWriter::open(
            &self.dir,
            snapshot_seq + 1,
            self.options.segment_bytes,
            self.options.fsync_writes,
        )?;
        Ok(())
    }

    /// Replication reset without a snapshot: drops every local segment,
    /// snapshot, and in-memory entry and reopens the WAL at segment 1.
    /// A replica whose history diverged from a primary that never
    /// compacted (so there is no snapshot to ship) falls back to this
    /// before re-tailing the primary's retained segments from zero.
    pub fn reset_for_resync(&self) -> Result<(), KbError> {
        let mut wal = self.wal.lock().expect("wal poisoned");
        let mut reg = self.registry.write().expect("registry poisoned");
        let mut guards: Vec<_> =
            self.shards.iter().map(|s| s.write().expect("shard poisoned")).collect();
        for seq in list_seqs(&self.dir, parse_segment_name)? {
            std::fs::remove_file(self.dir.join(segment_name(seq)))?;
        }
        for seq in list_seqs(&self.dir, parse_snapshot_name)? {
            std::fs::remove_file(self.dir.join(snapshot_name(seq)))?;
        }
        for seq in list_seqs(&self.dir, parse_meta_name)? {
            std::fs::remove_file(self.dir.join(meta_name(seq)))?;
        }
        *reg = Registry::default();
        for guard in guards.iter_mut() {
            guard.kb = KnowledgeBase::from_entries(Vec::new());
            guard.seqs = Vec::new();
        }
        self.applied_seq.store(0, Ordering::Release);
        self.generation.fetch_add(1, Ordering::Release);
        *wal = WalWriter::open(&self.dir, 1, self.options.segment_bytes, self.options.fsync_writes)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::durable::DurableKb;
    use smartml_classifiers::{Algorithm, ParamConfig};
    use smartml_data::synth::gaussian_blobs;
    use smartml_metafeatures::extract;

    fn mf(seed: u64) -> MetaFeatures {
        let d = gaussian_blobs("m", 40 + seed as usize, 3, 2, 1.0, seed);
        extract(&d, &d.all_rows())
    }

    fn run(alg: Algorithm, acc: f64) -> AlgorithmRun {
        AlgorithmRun { algorithm: alg, config: ParamConfig::default(), accuracy: acc }
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(name);
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// Applies the same history to a monolithic KB and a sharded one.
    fn twin_histories(dir: &Path, n_shards: usize) -> (KnowledgeBase, ShardedKb) {
        let sharded = ShardedKb::open_with(
            dir,
            DurableOptions { fsync_writes: false, ..Default::default() },
            n_shards,
        )
        .unwrap();
        let mut mono = KnowledgeBase::new();
        let algs = [Algorithm::Knn, Algorithm::Lda, Algorithm::RandomForest, Algorithm::Svm];
        for i in 0..20u64 {
            let id = format!("d{}", i % 12); // revisits overwrite meta-features
            let m = mf(i);
            let r = run(algs[(i % 4) as usize], 0.5 + (i as f64) / 50.0);
            mono.record_run(&id, &m, r.clone());
            sharded.record_run(&id, &m, r).unwrap();
        }
        mono.set_landmarkers("d3", Landmarkers { decision_stump: 0.7, nearest_centroid: 0.6 });
        sharded
            .set_landmarkers("d3", Landmarkers { decision_stump: 0.7, nearest_centroid: 0.6 })
            .unwrap();
        (mono, sharded)
    }

    #[test]
    fn recommendations_identical_to_monolithic_kb() {
        let dir = tmp("smartml-sharded-equiv");
        for n_shards in [1, 3, 8] {
            let _ = std::fs::remove_dir_all(&dir);
            let (mono, sharded) = twin_histories(&dir, n_shards);
            assert_eq!(sharded.len(), mono.len());
            assert_eq!(sharded.n_runs(), mono.n_runs());
            for q in 0..6u64 {
                for opts in [
                    QueryOptions::default(),
                    QueryOptions { top_n: 2, n_neighbors: 3, ..Default::default() },
                    QueryOptions { use_landmarkers: true, ..Default::default() },
                    QueryOptions { performance_weight: 0.0, n_neighbors: 50, ..Default::default() },
                ] {
                    let lm = (q % 2 == 0)
                        .then_some(Landmarkers { decision_stump: 0.6, nearest_centroid: 0.8 });
                    let want = mono.recommend_extended(&mf(100 + q), lm, &opts);
                    let got = sharded.recommend(&mf(100 + q), lm, &opts);
                    assert_eq!(
                        serde_json::to_string(&got).unwrap(),
                        serde_json::to_string(&want).unwrap(),
                        "shards={n_shards} q={q} opts={opts:?}"
                    );
                }
            }
            // The reassembled monolithic view matches entry for entry.
            assert_eq!(
                serde_json::to_string(&sharded.to_monolithic().entries()).unwrap(),
                serde_json::to_string(&mono.entries()).unwrap(),
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn zcache_survives_reads_and_invalidates_on_write() {
        let dir = tmp("smartml-sharded-zcache");
        let (_mono, sharded) = twin_histories(&dir, 4);
        let q = mf(200);
        let opts = QueryOptions::default();
        let g = sharded.generation();
        let first = sharded.recommend(&q, None, &opts);
        let second = sharded.recommend(&q, None, &opts);
        assert_eq!(first, second);
        assert_eq!(sharded.generation(), g, "reads do not bump the generation");
        sharded.record_run("fresh", &mf(300), run(Algorithm::Knn, 0.9)).unwrap();
        assert!(sharded.generation() > g);
        let third = sharded.recommend(&q, None, &opts);
        // The new entry participates (stats shifted or neighbour set grew).
        assert_ne!(serde_json::to_string(&third).unwrap(), serde_json::to_string(&first).unwrap());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wal_recovery_reopens_under_either_store() {
        let dir = tmp("smartml-sharded-recovery");
        {
            let (_, sharded) = twin_histories(&dir, 4);
            drop(sharded); // no snapshot: WAL is the only persistence
        }
        // Reopen sharded.
        let reopened =
            ShardedKb::open_with(&dir, DurableOptions::default(), 4).unwrap();
        assert_eq!(reopened.len(), 12);
        assert_eq!(reopened.recovery().records_replayed, 21);
        // The same directory opens under the monolithic durable store
        // with identical contents (cross-store compatibility).
        let durable = DurableKb::open(&dir).unwrap();
        assert_eq!(
            serde_json::to_string(&reopened.to_monolithic().entries()).unwrap(),
            serde_json::to_string(&durable.kb().entries()).unwrap(),
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_compacts_and_preserves_state() {
        let dir = tmp("smartml-sharded-snapshot");
        let (mono, sharded) = twin_histories(&dir, 3);
        let covered = sharded.snapshot().unwrap();
        assert_eq!(list_seqs(&dir, parse_snapshot_name).unwrap(), vec![covered]);
        assert_eq!(list_seqs(&dir, parse_segment_name).unwrap(), vec![covered + 1]);
        // Post-snapshot writes land on the fresh segment.
        sharded.record_run("after", &mf(400), run(Algorithm::Svm, 0.8)).unwrap();
        drop(sharded);
        let reopened = ShardedKb::open_with(&dir, DurableOptions::default(), 3).unwrap();
        assert_eq!(reopened.len(), mono.len() + 1);
        assert_eq!(reopened.recovery().snapshot_seq, Some(covered));
        assert_eq!(reopened.recovery().records_replayed, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_index_recommends_nothing() {
        let dir = tmp("smartml-sharded-empty");
        let sharded = ShardedKb::open_with(&dir, DurableOptions::default(), 2).unwrap();
        let rec = sharded.recommend(&mf(1), None, &QueryOptions::default());
        assert!(rec.algorithms.is_empty() && rec.neighbors.is_empty());
        assert!(sharded.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_writers_and_readers_converge() {
        let dir = tmp("smartml-sharded-concurrent");
        let sharded = Arc::new(
            ShardedKb::open_with(
                &dir,
                DurableOptions { fsync_writes: false, ..Default::default() },
                4,
            )
            .unwrap(),
        );
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let s = Arc::clone(&sharded);
            handles.push(std::thread::spawn(move || {
                for i in 0..25u64 {
                    let id = format!("w{t}-{i}");
                    s.record_run(&id, &mf(t * 100 + i), run(Algorithm::Knn, 0.7)).unwrap();
                    // Interleave reads; must never panic or deadlock.
                    let _ = s.recommend(&mf(t), None, &QueryOptions::default());
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(sharded.len(), 100);
        assert_eq!(sharded.n_runs(), 100);
        // Recovery replays the concurrent history exactly.
        drop(sharded);
        let reopened = ShardedKb::open_with(&dir, DurableOptions::default(), 4).unwrap();
        assert_eq!(reopened.len(), 100);
        assert_eq!(reopened.n_runs(), 100);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
