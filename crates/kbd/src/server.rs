//! The blocking `smartmld` serve loop: a TCP JSON-lines server over a
//! [`SharedKb<DurableKb>`], one thread per connection.
//!
//! This is the retained oracle backend (`--io blocking`): simple,
//! obviously correct, and byte-identical in its responses to the
//! event-driven backend in [`crate::event_server`] — both execute
//! requests through [`crate::service::dispatch`]. Readers (recommend,
//! stats) share the `RwLock` read side; writers serialise through the
//! WAL, so every acknowledged `record_run` is on disk before the client
//! sees the `recorded` response.

use crate::durable::{DurableKb, DurableOptions, RecoveryReport};
use crate::protocol::{
    oversized_frame_message, read_frame, FrameStatus, Response, MAX_FRAME_BYTES,
};
use crate::service::{
    self, encode, RoleCell, ServeRole, BYTES_IN, BYTES_OUT, REQUEST_US, REQ_ERRORS, REQ_TOTAL,
};
use crate::shared::SharedKb;
use smartml_kb::KbError;
use smartml_runtime::{available_parallelism, Deadline};
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Configuration for [`Server::bind`].
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Directory of the WAL-backed store (created if missing).
    pub dir: PathBuf,
    /// Bind address; port `0` picks an ephemeral port.
    pub addr: String,
    /// Maximum concurrent connections (`0` = 4 × available cores);
    /// excess connections get one `error` line and are closed.
    pub max_connections: usize,
    /// Per-request deadline; also bounds how long an idle connection is
    /// kept open. `None` never times out.
    pub request_timeout: Option<Duration>,
    /// Store tuning (segment size, fsync policy).
    pub durable: DurableOptions,
    /// Primary (read-write, serves `SYNC`) or replica (read-only,
    /// redirects writes to the named primary).
    pub role: ServeRole,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions {
            dir: PathBuf::from("kb-data"),
            addr: "127.0.0.1:0".to_string(),
            max_connections: 0,
            request_timeout: Some(Duration::from_secs(10)),
            durable: DurableOptions::default(),
            role: ServeRole::default(),
        }
    }
}

/// A bound (not yet serving) blocking `smartmld` instance.
pub struct Server {
    listener: TcpListener,
    shared: Arc<SharedKb<DurableKb>>,
    recovery: RecoveryReport,
    options: ServerOptions,
    shutdown: Arc<AtomicBool>,
    role: Arc<RoleCell>,
}

impl Server {
    /// Opens the store (replaying the WAL) and binds the listener.
    pub fn bind(options: ServerOptions) -> Result<Server, KbError> {
        // The server is the natural metrics boundary: one process, one
        // registry, reported verbatim by the `metrics` verb.
        smartml_obs::enable_metrics();
        let store = DurableKb::open_with(&options.dir, options.durable.clone())?;
        let recovery = store.recovery().clone();
        let listener = TcpListener::bind(&options.addr)?;
        let role = Arc::new(RoleCell::new(options.role.clone()));
        Ok(Server {
            listener,
            shared: Arc::new(SharedKb::new(store)),
            recovery,
            options,
            shutdown: Arc::new(AtomicBool::new(false)),
            role,
        })
    }

    /// The address actually bound (resolves ephemeral ports).
    pub fn local_addr(&self) -> Result<SocketAddr, KbError> {
        Ok(self.listener.local_addr()?)
    }

    /// The shared store (e.g. to pre-load data before serving).
    pub fn shared(&self) -> &Arc<SharedKb<DurableKb>> {
        &self.shared
    }

    /// What WAL recovery found when the store was opened.
    pub fn recovery(&self) -> &RecoveryReport {
        &self.recovery
    }

    /// A flag that makes [`Server::run`] exit; flip it, then poke the
    /// listener with a TCP connect (or send a `shutdown` request).
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// The live role cell (swapped by the `PROMOTE` verb); the process
    /// hooks replica teardown — stopping its tailer — here.
    pub fn role_cell(&self) -> Arc<RoleCell> {
        Arc::clone(&self.role)
    }

    /// Serves until a `shutdown` request arrives. Blocks the caller.
    pub fn run(self) -> Result<(), KbError> {
        let Server { listener, shared, recovery, options, shutdown, role } = self;
        let local = listener.local_addr()?;
        let cap = if options.max_connections == 0 {
            available_parallelism() * 4
        } else {
            options.max_connections
        };
        let active = Arc::new(AtomicUsize::new(0));
        for stream in listener.incoming() {
            if shutdown.load(Ordering::Acquire) {
                break;
            }
            let Ok(stream) = stream else { continue };
            if active.load(Ordering::Acquire) >= cap {
                let mut s = stream;
                let _ = writeln!(
                    s,
                    "{}",
                    encode(&Response::Error {
                        message: format!("server at capacity ({cap} connections)"),
                    })
                );
                continue;
            }
            let ctx = ConnCtx {
                shared: Arc::clone(&shared),
                recovery: recovery.clone(),
                timeout: options.request_timeout,
                shutdown: Arc::clone(&shutdown),
                local,
                role: Arc::clone(&role),
            };
            active.fetch_add(1, Ordering::AcqRel);
            let active = Arc::clone(&active);
            std::thread::spawn(move || {
                let _ = handle_connection(stream, ctx);
                active.fetch_sub(1, Ordering::AcqRel);
            });
        }
        // Give in-flight requests a moment to drain before the store (and
        // its WAL handle) is dropped.
        let drain = Deadline::after(Duration::from_secs(5));
        while active.load(Ordering::Acquire) > 0 && !drain.expired() {
            std::thread::sleep(Duration::from_millis(5));
        }
        Ok(())
    }
}

struct ConnCtx {
    shared: Arc<SharedKb<DurableKb>>,
    recovery: RecoveryReport,
    timeout: Option<Duration>,
    shutdown: Arc<AtomicBool>,
    local: SocketAddr,
    role: Arc<RoleCell>,
}

fn handle_connection(stream: TcpStream, ctx: ConnCtx) -> std::io::Result<()> {
    // One-line responses to one-line requests: disable Nagle so each
    // response leaves immediately instead of waiting on a delayed ACK.
    let _ = stream.set_nodelay(true);
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut frame = Vec::new();
    loop {
        // One deadline per request: it bounds waiting for the line, and
        // whatever remains after dispatch bounds writing the response.
        let deadline = match ctx.timeout {
            Some(t) => Deadline::after(t),
            None => Deadline::none(),
        };
        reader.get_ref().set_read_timeout(deadline.io_timeout())?;
        match read_frame(&mut reader, &mut frame, MAX_FRAME_BYTES)? {
            FrameStatus::Eof | FrameStatus::Truncated => return Ok(()),
            FrameStatus::TooBig => {
                // The stream cannot be resynchronised mid-frame: one
                // protocol error, then the connection is dropped.
                REQ_TOTAL.inc();
                REQ_ERRORS.inc();
                let encoded = encode(&Response::Error { message: oversized_frame_message() });
                BYTES_OUT.add(encoded.len() as u64 + 1);
                writer.set_write_timeout(deadline.io_timeout())?;
                writeln!(writer, "{encoded}")?;
                return Ok(());
            }
            FrameStatus::Frame => {}
        }
        let line = String::from_utf8_lossy(&frame);
        if line.trim().is_empty() {
            continue;
        }
        BYTES_IN.add(frame.len() as u64 + 1);
        let started = Instant::now();
        let (response, stop) = service::dispatch(&line, &*ctx.shared, &ctx.recovery, &ctx.role);
        // Latency covers dispatch (store work) only, not the socket write
        // — a slow client must not inflate the server's percentiles.
        REQUEST_US.record_duration(started.elapsed());
        REQ_TOTAL.inc();
        if matches!(response, Response::Error { .. }) {
            REQ_ERRORS.inc();
        }
        let encoded = encode(&response);
        BYTES_OUT.add(encoded.len() as u64 + 1);
        writer.set_write_timeout(deadline.io_timeout())?;
        writeln!(writer, "{encoded}")?;
        if stop {
            // Wake the accept loop so `run` observes the flag.
            ctx.shutdown.store(true, Ordering::Release);
            let _ = TcpStream::connect(ctx.local);
            return Ok(());
        }
    }
}
