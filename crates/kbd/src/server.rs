//! The `smartmld` serve loop: a TCP JSON-lines server over a
//! [`SharedKb<DurableKb>`].
//!
//! Dependency-free by design: `std::net` sockets, one thread per
//! connection capped at a configurable limit, and the `smartml-runtime`
//! [`Deadline`] shaping per-request socket timeouts. Readers (recommend,
//! stats) share the `RwLock` read side; writers serialise through the
//! WAL, so every acknowledged `record_run` is on disk before the client
//! sees the `recorded` response.

use crate::durable::{DurableKb, DurableOptions, RecoveryReport};
use crate::protocol::{KbStats, Request, Response, ServerMetrics};
use crate::shared::SharedKb;
use crate::wal::{WAL_FSYNCS, WAL_ROTATIONS};
use smartml_kb::{KbError, QueryOptions};
use smartml_obs::{Counter, Histogram};
use smartml_runtime::{available_parallelism, Deadline};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

// Per-request service metrics (`crate.component.name` convention). The
// server enables the global registry when it binds, so embedded library
// use of the same code paths stays a single relaxed load per site.
static REQ_TOTAL: Counter = Counter::new("kbd.req.total");
static REQ_ERRORS: Counter = Counter::new("kbd.req.errors");
static BYTES_IN: Counter = Counter::new("kbd.bytes_in");
static BYTES_OUT: Counter = Counter::new("kbd.bytes_out");
static REQUEST_US: Histogram = Histogram::new("kbd.request_us");
static REQ_RECOMMEND: Counter = Counter::new("kbd.req.recommend");
static REQ_RECORD_RUN: Counter = Counter::new("kbd.req.record_run");
static REQ_SET_LANDMARKERS: Counter = Counter::new("kbd.req.set_landmarkers");
static REQ_STATS: Counter = Counter::new("kbd.req.stats");
static REQ_SNAPSHOT: Counter = Counter::new("kbd.req.snapshot");
static REQ_METRICS: Counter = Counter::new("kbd.req.metrics");
static REQ_PING: Counter = Counter::new("kbd.req.ping");
static REQ_SHUTDOWN: Counter = Counter::new("kbd.req.shutdown");

/// Builds the [`ServerMetrics`] wire struct from the live registry.
fn collect_metrics() -> ServerMetrics {
    let lat = REQUEST_US.summary();
    let mut ops: Vec<(String, u64)> = [
        ("metrics", &REQ_METRICS),
        ("ping", &REQ_PING),
        ("recommend", &REQ_RECOMMEND),
        ("record_run", &REQ_RECORD_RUN),
        ("set_landmarkers", &REQ_SET_LANDMARKERS),
        ("shutdown", &REQ_SHUTDOWN),
        ("snapshot", &REQ_SNAPSHOT),
        ("stats", &REQ_STATS),
    ]
    .iter()
    .map(|(name, c)| (name.to_string(), c.value()))
    .collect();
    ops.sort();
    ServerMetrics {
        requests: REQ_TOTAL.value(),
        errors: REQ_ERRORS.value(),
        bytes_in: BYTES_IN.value(),
        bytes_out: BYTES_OUT.value(),
        request_us_p50: lat.p50,
        request_us_p99: lat.p99,
        request_us_max: lat.max,
        request_us_mean: lat.mean,
        wal_fsyncs: WAL_FSYNCS.value(),
        wal_rotations: WAL_ROTATIONS.value(),
        ops,
    }
}

/// Configuration for [`Server::bind`].
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Directory of the WAL-backed store (created if missing).
    pub dir: PathBuf,
    /// Bind address; port `0` picks an ephemeral port.
    pub addr: String,
    /// Maximum concurrent connections (`0` = 4 × available cores);
    /// excess connections get one `error` line and are closed.
    pub max_connections: usize,
    /// Per-request deadline; also bounds how long an idle connection is
    /// kept open. `None` never times out.
    pub request_timeout: Option<Duration>,
    /// Store tuning (segment size, fsync policy).
    pub durable: DurableOptions,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions {
            dir: PathBuf::from("kb-data"),
            addr: "127.0.0.1:0".to_string(),
            max_connections: 0,
            request_timeout: Some(Duration::from_secs(10)),
            durable: DurableOptions::default(),
        }
    }
}

/// A bound (not yet serving) `smartmld` instance.
pub struct Server {
    listener: TcpListener,
    shared: Arc<SharedKb<DurableKb>>,
    recovery: RecoveryReport,
    options: ServerOptions,
    shutdown: Arc<AtomicBool>,
}

impl Server {
    /// Opens the store (replaying the WAL) and binds the listener.
    pub fn bind(options: ServerOptions) -> Result<Server, KbError> {
        // The server is the natural metrics boundary: one process, one
        // registry, reported verbatim by the `metrics` verb.
        smartml_obs::enable_metrics();
        let store = DurableKb::open_with(&options.dir, options.durable.clone())?;
        let recovery = store.recovery().clone();
        let listener = TcpListener::bind(&options.addr)?;
        Ok(Server {
            listener,
            shared: Arc::new(SharedKb::new(store)),
            recovery,
            options,
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The address actually bound (resolves ephemeral ports).
    pub fn local_addr(&self) -> Result<SocketAddr, KbError> {
        Ok(self.listener.local_addr()?)
    }

    /// The shared store (e.g. to pre-load data before serving).
    pub fn shared(&self) -> &Arc<SharedKb<DurableKb>> {
        &self.shared
    }

    /// What WAL recovery found when the store was opened.
    pub fn recovery(&self) -> &RecoveryReport {
        &self.recovery
    }

    /// A flag that makes [`Server::run`] exit; flip it, then poke the
    /// listener with a TCP connect (or send a `shutdown` request).
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// Serves until a `shutdown` request arrives. Blocks the caller.
    pub fn run(self) -> Result<(), KbError> {
        let Server { listener, shared, recovery, options, shutdown } = self;
        let local = listener.local_addr()?;
        let cap = if options.max_connections == 0 {
            available_parallelism() * 4
        } else {
            options.max_connections
        };
        let active = Arc::new(AtomicUsize::new(0));
        for stream in listener.incoming() {
            if shutdown.load(Ordering::Acquire) {
                break;
            }
            let Ok(stream) = stream else { continue };
            if active.load(Ordering::Acquire) >= cap {
                let mut s = stream;
                let _ = writeln!(
                    s,
                    "{}",
                    encode(&Response::Error {
                        message: format!("server at capacity ({cap} connections)"),
                    })
                );
                continue;
            }
            let ctx = ConnCtx {
                shared: Arc::clone(&shared),
                recovery: recovery.clone(),
                timeout: options.request_timeout,
                shutdown: Arc::clone(&shutdown),
                local,
            };
            active.fetch_add(1, Ordering::AcqRel);
            let active = Arc::clone(&active);
            std::thread::spawn(move || {
                let _ = handle_connection(stream, ctx);
                active.fetch_sub(1, Ordering::AcqRel);
            });
        }
        // Give in-flight requests a moment to drain before the store (and
        // its WAL handle) is dropped.
        let drain = Deadline::after(Duration::from_secs(5));
        while active.load(Ordering::Acquire) > 0 && !drain.expired() {
            std::thread::sleep(Duration::from_millis(5));
        }
        Ok(())
    }
}

struct ConnCtx {
    shared: Arc<SharedKb<DurableKb>>,
    recovery: RecoveryReport,
    timeout: Option<Duration>,
    shutdown: Arc<AtomicBool>,
    local: SocketAddr,
}

fn encode(response: &Response) -> String {
    serde_json::to_string(response).expect("response serialisation cannot fail")
}

fn handle_connection(stream: TcpStream, ctx: ConnCtx) -> std::io::Result<()> {
    // One-line responses to one-line requests: disable Nagle so each
    // response leaves immediately instead of waiting on a delayed ACK.
    let _ = stream.set_nodelay(true);
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        // One deadline per request: it bounds waiting for the line, and
        // whatever remains after dispatch bounds writing the response.
        let deadline = match ctx.timeout {
            Some(t) => Deadline::after(t),
            None => Deadline::none(),
        };
        reader.get_ref().set_read_timeout(deadline.io_timeout())?;
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Ok(()); // client closed
        }
        if line.trim().is_empty() {
            continue;
        }
        BYTES_IN.add(line.len() as u64);
        let started = Instant::now();
        let (response, stop) = dispatch(&line, &ctx);
        // Latency covers dispatch (store work) only, not the socket write
        // — a slow client must not inflate the server's percentiles.
        REQUEST_US.record_duration(started.elapsed());
        REQ_TOTAL.inc();
        if matches!(response, Response::Error { .. }) {
            REQ_ERRORS.inc();
        }
        let encoded = encode(&response);
        BYTES_OUT.add(encoded.len() as u64 + 1);
        writer.set_write_timeout(deadline.io_timeout())?;
        writeln!(writer, "{encoded}")?;
        if stop {
            // Wake the accept loop so `run` observes the flag.
            ctx.shutdown.store(true, Ordering::Release);
            let _ = TcpStream::connect(ctx.local);
            return Ok(());
        }
    }
}

/// Executes one request line. Returns the response and whether the
/// server should stop.
fn dispatch(line: &str, ctx: &ConnCtx) -> (Response, bool) {
    let request: Request = match serde_json::from_str(line.trim()) {
        Ok(r) => r,
        Err(e) => {
            return (Response::Error { message: format!("bad request: {e}") }, false);
        }
    };
    let response = match request {
        Request::Recommend { meta_features, landmarkers, options } => {
            REQ_RECOMMEND.inc();
            let opts = options.unwrap_or_else(QueryOptions::default);
            let recommendation = ctx.shared.recommend(&meta_features, landmarkers, &opts);
            Response::Recommendation { recommendation }
        }
        Request::RecordRun { dataset_id, meta_features, run } => {
            REQ_RECORD_RUN.inc();
            match ctx.shared.record_run(&dataset_id, &meta_features, run) {
                Ok(()) => Response::Recorded {
                    datasets: ctx.shared.len(),
                    runs: ctx.shared.n_runs(),
                },
                Err(e) => Response::Error { message: e.to_string() },
            }
        }
        Request::SetLandmarkers { dataset_id, landmarkers } => {
            REQ_SET_LANDMARKERS.inc();
            match ctx.shared.set_landmarkers(&dataset_id, landmarkers) {
                Ok(()) => Response::Recorded {
                    datasets: ctx.shared.len(),
                    runs: ctx.shared.n_runs(),
                },
                Err(e) => Response::Error { message: e.to_string() },
            }
        }
        Request::Stats => ctx.shared.read(|store| {
            REQ_STATS.inc();
            let wal_segments = store.n_segments().unwrap_or(0);
            Response::Stats {
                stats: KbStats {
                    datasets: store.kb().len(),
                    runs: store.kb().n_runs(),
                    wal_segments,
                    active_segment: store.active_segment(),
                    snapshot_seq: ctx.recovery.snapshot_seq,
                    recovered_records: ctx.recovery.records_replayed,
                    recovered_torn_tail: ctx.recovery.truncated_tail,
                },
            }
        }),
        Request::Snapshot => {
            REQ_SNAPSHOT.inc();
            match ctx.shared.write(|store| store.snapshot()) {
                Ok(seq) => Response::Snapshotted { snapshot_seq: seq },
                Err(e) => Response::Error { message: e.to_string() },
            }
        }
        Request::Metrics => {
            REQ_METRICS.inc();
            Response::Metrics { metrics: collect_metrics() }
        }
        Request::Ping => {
            REQ_PING.inc();
            Response::Pong
        }
        Request::Shutdown => {
            REQ_SHUTDOWN.inc();
            return (Response::ShuttingDown, true);
        }
    };
    (response, false)
}
