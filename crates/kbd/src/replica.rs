//! [`ReplicaTailer`]: the catch-up loop that mirrors a primary's WAL.
//!
//! A replica is a second `smartmld` process pointed at its own (empty or
//! previously-synced) directory with `--replica-of PRIMARY`. This module
//! is its write path: a background thread that repeatedly pulls the
//! `sync` verb against the primary and applies what comes back to the
//! local [`ShardedKb`] — through the same WAL-append-then-apply path a
//! primary's own writes take, so a caught-up replica's directory is
//! *byte-identical* to the primary's and its query answers are
//! byte-identical too (the store's determinism guarantees carry over
//! unchanged).
//!
//! ## The catch-up state machine
//!
//! ```text
//!         ┌──────────────┐   sync(0,0) → snapshot    ┌───────────┐
//!  start ─▶  bootstrap    ├──────────────────────────▶ install    │
//!         │ (empty dir or │   sync(0,0) → chunk       │ snapshot  │
//!         │  behind a     ├────────────┐              └─────┬─────┘
//!         │  compaction)  │            ▼                    │
//!         └──────────────┘        ┌─────────┐               │
//!                                 │ tailing  ◀──────────────┘
//!                                 │ (seg,off)│──▶ apply chunk, advance
//!                                 └────┬────┘    segment on rotation
//!                                      │ caught_up
//!                                      ▼
//!                                 idle poll (backs off, snaps back)
//! ```
//!
//! Every pull names the replica's *own* WAL position `(segment, offset)`
//! — the protocol is stateless on the primary side. Three answers are
//! possible: a chunk of WAL bytes starting exactly there (applied and
//! fsync'd before the position advances), a snapshot (the position has
//! been compacted away on the primary — local state is wiped and rebuilt
//! from the shipped image), or an error. A chunk is always a whole
//! number of frames; a torn prefix — the primary dying mid-`sync` write
//! — is refused by [`ShardedKb::apply_sync_chunk`] and simply retried,
//! so a half-shipped chunk can never enter the replica's WAL.
//!
//! Because the replica's own crash-recovery truncates a torn tail back
//! to a frame boundary, a replica killed mid-catch-up re-spawns, reopens
//! its directory, and resumes from exactly the position it had durably
//! reached — no operator reset, no full re-ship unless the primary has
//! compacted past it.
//!
//! Lag — primary `applied_seq` minus local `applied_seq`, in records —
//! is exported through the `kbd.replica.lag_records` gauge, which the
//! serving loops report out via the `metrics` verb.

use crate::client::{KbClient, RetryPolicy};
use crate::durable::DurableOptions;
use crate::protocol::Response;
use crate::service::REPLICA_LAG;
use crate::sharded::ShardedKb;
use smartml_kb::KbError;
use smartml_netio::CatchUpPacer;
use smartml_obs::Counter;
use smartml_runtime::faults::fail;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Chunks applied to the local WAL.
static SYNC_CHUNKS: Counter = Counter::new("kbd.replica.chunks");
/// Snapshots installed (bootstrap or post-compaction resets).
static SYNC_SNAPSHOTS: Counter = Counter::new("kbd.replica.snapshots");
/// Pull or apply failures (each backed off and retried).
static SYNC_ERRORS: Counter = Counter::new("kbd.replica.errors");

/// Configuration for [`ReplicaTailer::spawn`].
#[derive(Debug, Clone)]
pub struct ReplicaOptions {
    /// The primary's `host:port`.
    pub primary: String,
    /// Floor of the idle poll delay once caught up; backs off
    /// geometrically to 16× this while the primary stays quiet.
    pub poll_interval: Duration,
    /// Bound on one catch-up round: if the replica cannot reach
    /// `caught_up` within this, the round is abandoned (lag stays
    /// reported) and a fresh round starts after an idle poll. `None`
    /// never abandons.
    pub round_deadline: Option<Duration>,
    /// Per-pull timeout and retry policy of the tailer's client.
    pub timeout: Option<Duration>,
    /// Retry policy for pulls (salted per-address like any client).
    pub retry: RetryPolicy,
    /// Local store tuning — must match what the serving side opened
    /// with; only used by documentation-level assertions today.
    pub durable: DurableOptions,
}

impl Default for ReplicaOptions {
    fn default() -> Self {
        ReplicaOptions {
            primary: String::new(),
            poll_interval: Duration::from_millis(20),
            round_deadline: Some(Duration::from_secs(30)),
            timeout: Some(Duration::from_secs(10)),
            retry: RetryPolicy::default(),
            durable: DurableOptions::default(),
        }
    }
}

/// Spawns and owns the catch-up thread.
pub struct ReplicaTailer;

/// Handle to a running tailer: progress signals and shutdown.
pub struct ReplicaHandle {
    stop: Arc<AtomicBool>,
    caught_up: Arc<AtomicBool>,
    rounds: Arc<AtomicU64>,
    last_error: Arc<Mutex<Option<String>>>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl ReplicaHandle {
    /// Did the most recent pull leave the replica at the primary's
    /// frontier?
    pub fn is_caught_up(&self) -> bool {
        self.caught_up.load(Ordering::Acquire)
    }

    /// Completed pulls (successful or not) — a liveness signal for tests.
    pub fn rounds(&self) -> u64 {
        self.rounds.load(Ordering::Acquire)
    }

    /// The most recent pull/apply failure, if any (cleared on success).
    pub fn last_error(&self) -> Option<String> {
        self.last_error.lock().expect("replica error slot poisoned").clone()
    }

    /// Signals the tailer to stop without joining it — the promote
    /// hook's path, which runs on a serving thread and must not block
    /// behind the tailer's current pull round. The thread is joined
    /// later when the handle is dropped (or [`ReplicaHandle::stop`]ed).
    /// At most the in-flight pull still applies after this returns;
    /// that apply and any post-promotion writes serialise through the
    /// store's WAL lock, so the transition cannot tear a record.
    pub fn request_stop(&self) {
        self.stop.store(true, Ordering::Release);
    }

    /// Stops the tailer and joins its thread.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for ReplicaHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl ReplicaTailer {
    /// Starts tailing `options.primary` into `store` on a background
    /// thread. The store is shared with the serving loops: reads observe
    /// every applied record through the store's ordinary locking.
    pub fn spawn(options: ReplicaOptions, store: Arc<ShardedKb>) -> ReplicaHandle {
        let stop = Arc::new(AtomicBool::new(false));
        let caught_up = Arc::new(AtomicBool::new(false));
        let rounds = Arc::new(AtomicU64::new(0));
        let last_error = Arc::new(Mutex::new(None));
        let thread = {
            let stop = Arc::clone(&stop);
            let caught_up = Arc::clone(&caught_up);
            let rounds = Arc::clone(&rounds);
            let last_error = Arc::clone(&last_error);
            std::thread::Builder::new()
                .name("kbd-replica-tail".to_string())
                .spawn(move || {
                    tail_loop(&options, &store, &stop, &caught_up, &rounds, &last_error);
                })
                .expect("spawn replica tailer")
        };
        ReplicaHandle { stop, caught_up, rounds, last_error, thread: Some(thread) }
    }
}

fn tail_loop(
    options: &ReplicaOptions,
    store: &Arc<ShardedKb>,
    stop: &AtomicBool,
    caught_up: &AtomicBool,
    rounds: &AtomicU64,
    last_error: &Mutex<Option<String>>,
) {
    let client =
        KbClient::with_timeout(options.primary.clone(), options.timeout).with_retry(options.retry.clone());
    let mut pacer = CatchUpPacer::new(
        Instant::now(),
        options.round_deadline,
        options.poll_interval,
        options.poll_interval * 16,
    );
    // `0` requests a bootstrap: the primary decides between shipping its
    // snapshot and starting at its oldest retained segment.
    let mut bootstrap = store.applied_seq() == 0 && store.active_segment() == 1;
    while !stop.load(Ordering::Acquire) {
        if pacer.expired(Instant::now()) {
            // Round abandoned: the lag gauge keeps reporting how far
            // behind we are; a fresh round gets a fresh deadline.
            pacer = CatchUpPacer::new(
                Instant::now(),
                options.round_deadline,
                options.poll_interval,
                options.poll_interval * 16,
            );
        }
        let (segment, offset) =
            if bootstrap { (0, 0) } else { store.with_wal_position(|p| p) };
        // A panic inside a pull (including an injected one from the
        // fault harness) must not kill the tailer: it is contained to
        // this attempt and handled like any other pull failure. The
        // fail points fire before any store lock is taken, so no lock
        // is poisoned by the unwind.
        let attempt = rounds.fetch_add(1, Ordering::Release);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pull_once(&client, store, segment, offset, bootstrap, attempt)
        }))
        .unwrap_or_else(|payload| {
            let site = payload
                .downcast_ref::<fail::InjectedPanic>()
                .map_or("unknown site", |p| p.site);
            Err(KbError::Backend(format!("replication pull panicked ({site})")))
        });
        match outcome {
            Ok(PullOutcome { progressed, at_frontier, primary_applied }) => {
                bootstrap = false;
                last_error.lock().expect("replica error slot poisoned").take();
                let local = store.applied_seq();
                REPLICA_LAG.set(primary_applied.saturating_sub(local) as i64);
                caught_up.store(at_frontier, Ordering::Release);
                if progressed {
                    pacer.progressed();
                }
                if at_frontier {
                    match pacer.idle_delay(Instant::now()) {
                        Some(delay) if !stop.load(Ordering::Acquire) => {
                            std::thread::sleep(delay)
                        }
                        _ => {}
                    }
                }
            }
            Err(e) => {
                SYNC_ERRORS.inc();
                caught_up.store(false, Ordering::Release);
                let message = e.to_string();
                // A position the primary no longer holds (or a local
                // position the primary never wrote, after divergence)
                // is only recoverable through a snapshot ship: fall
                // back to the bootstrap probe.
                if message.contains("resync required") {
                    bootstrap = true;
                }
                *last_error.lock().expect("replica error slot poisoned") = Some(message);
                if let Some(delay) = pacer.idle_delay(Instant::now()) {
                    if !stop.load(Ordering::Acquire) {
                        std::thread::sleep(delay);
                    }
                }
            }
        }
    }
}

struct PullOutcome {
    /// Did this pull apply anything new?
    progressed: bool,
    /// Is the replica now at the primary's write frontier?
    at_frontier: bool,
    /// The primary's applied sequence as of this pull.
    primary_applied: u64,
}

fn pull_once(
    client: &KbClient,
    store: &Arc<ShardedKb>,
    segment: u64,
    offset: u64,
    bootstrap: bool,
    attempt: u64,
) -> Result<PullOutcome, KbError> {
    // The fault seed mixes the attempt counter so a position that draws
    // a fault is retried under a fresh draw — faults slow the tailer
    // down, they never wedge it at one position forever.
    fail::trigger("replica.pull", segment ^ offset.rotate_left(17) ^ attempt);
    match client.sync(segment, offset)? {
        Response::SyncSnapshot { snapshot_seq, applied_seq, next_segment: _, kb_json } => {
            fail::trigger("replica.install_snapshot", snapshot_seq ^ attempt);
            store.install_snapshot(snapshot_seq, &kb_json, applied_seq)?;
            SYNC_SNAPSHOTS.inc();
            // The frontier is unknown from a snapshot alone; the next
            // pull (now positioned after it) reports it.
            Ok(PullOutcome { progressed: true, at_frontier: false, primary_applied: applied_seq })
        }
        Response::SyncChunk {
            segment: chunk_segment,
            offset: chunk_offset,
            data,
            next_segment,
            next_offset: _,
            caught_up,
            applied_seq,
        } => {
            if bootstrap && store.with_wal_position(|p| p) != (chunk_segment, chunk_offset) {
                // Bootstrapping over diverged local state against a
                // primary that has never compacted: there is no snapshot
                // to reset from, so the reset is local — wipe and
                // re-tail the primary's retained history from zero.
                store.reset_for_resync()?;
                if chunk_segment > 1 {
                    store.advance_segment(chunk_segment)?;
                }
            }
            let mut progressed = false;
            if !data.is_empty() {
                fail::trigger("replica.apply_chunk", chunk_segment ^ chunk_offset.rotate_left(17) ^ attempt);
                store.apply_sync_chunk(chunk_segment, chunk_offset, &data)?;
                SYNC_CHUNKS.inc();
                progressed = true;
            }
            if next_segment > chunk_segment {
                // The primary sealed this segment: mirror the rotation
                // at the identical boundary.
                store.advance_segment(next_segment)?;
                progressed = true;
            }
            Ok(PullOutcome { progressed, at_frontier: caught_up, primary_applied: applied_seq })
        }
        other => Err(KbError::Backend(format!("unexpected sync response: {other:?}"))),
    }
}
