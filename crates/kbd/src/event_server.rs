//! The event-driven `smartmld` backend: one acceptor, N shard event
//! loops, non-blocking framed I/O with pipelining and backpressure.
//!
//! ## Architecture
//!
//! ```text
//! acceptor (blocking accept)
//!    │ round-robin + eventfd wake
//!    ├──▶ loop 0: epoll ── conns… ──┐
//!    ├──▶ loop 1: epoll ── conns… ──┼──▶ Arc<ShardedKb> (shard 0..N)
//!    └──▶ loop N: epoll ── conns… ──┘
//! ```
//!
//! Each loop owns a [`Poller`], a [`Waker`] the acceptor pokes when it
//! hands over a fresh connection, and a [`TimerWheel`] for idle
//! deadlines. Loop *i* is the preferred home of shard *i*'s writes (the
//! store routes by meta-feature hash internally), but any loop can
//! serve any request — reads scan all shards regardless.
//!
//! ## Connection state machine
//!
//! A connection's epoll interest is derived from two buffers:
//!
//! - **readable** while the connection is open for requests and the
//!   response backlog is below the high-water mark (64 KiB × 4);
//! - **writable** only while the write buffer is non-empty — under
//!   level-triggered epoll a permanently-armed `EPOLLOUT` would busy-
//!   spin, so it is registered exactly when there are bytes to flush.
//!
//! Reads drain the socket until `WouldBlock`, then every complete
//! newline-terminated frame in the buffer is dispatched in order and
//! its response appended to the write buffer — that is request
//! pipelining: k requests arriving in one TCP segment cost one
//! `epoll_wait`, one `read`, and (typically) one `write` for all k
//! responses. A frame longer than [`MAX_FRAME_BYTES`] gets one protocol
//! error and the connection is closed, bounding per-connection memory.
//! A slow reader that never drains its responses trips the high-water
//! mark: the loop stops reading from it (shedding the pipeline) until
//! the backlog flushes, and its unread requests sit in the kernel
//! socket buffer applying TCP backpressure to the sender.

use crate::durable::{DurableOptions, RecoveryReport};
use crate::protocol::{oversized_frame_message, Response, MAX_FRAME_BYTES};
use crate::service::{
    self, RoleCell, ServeRole, BYTES_IN, BYTES_OUT, REQUEST_US, REQ_ERRORS, REQ_TOTAL,
};
use crate::sharded::ShardedKb;
use smartml_kb::KbError;
use smartml_netio::{Events, Interest, Poller, TimerId, TimerWheel, Token, Waker};
use smartml_obs::Counter;
use smartml_runtime::available_parallelism;
use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// The waker's reserved token; connections start above it.
const WAKER_TOKEN: Token = Token(0);
/// Pause reading from a connection whose response backlog exceeds this.
const HIGH_WATER: usize = 256 * 1024;
/// Resume reading once the backlog flushes below this.
const LOW_WATER: usize = HIGH_WATER / 2;
/// Per-read scratch size; also the largest single read per syscall.
const READ_CHUNK: usize = 64 * 1024;

/// Configuration for [`EventServer::bind`].
#[derive(Debug, Clone)]
pub struct EventServerOptions {
    /// Directory of the WAL-backed store (created if missing).
    pub dir: PathBuf,
    /// Bind address; port `0` picks an ephemeral port.
    pub addr: String,
    /// Event loops to run — also the store's shard count (`0` = number
    /// of available cores).
    pub n_loops: usize,
    /// Maximum concurrent connections across all loops (`0` = 1024);
    /// excess connections get one `error` line and are closed.
    pub max_connections: usize,
    /// Idle deadline: a connection with no complete request for this
    /// long is closed. `None` keeps idle connections forever.
    pub request_timeout: Option<Duration>,
    /// Store tuning (segment size, fsync policy).
    pub durable: DurableOptions,
    /// Primary (read-write, serves `SYNC`) or replica (read-only,
    /// redirects writes to the named primary).
    pub role: ServeRole,
}

impl Default for EventServerOptions {
    fn default() -> Self {
        EventServerOptions {
            dir: PathBuf::from("kb-data"),
            addr: "127.0.0.1:0".to_string(),
            n_loops: 0,
            max_connections: 0,
            request_timeout: Some(Duration::from_secs(10)),
            durable: DurableOptions::default(),
            role: ServeRole::default(),
        }
    }
}

/// Live per-loop counters, readable while the server runs (the
/// misbehaving-client tests assert on these; the same values feed the
/// obs registry as `kbd.loop.<i>.*`).
#[derive(Default)]
pub struct LoopStats {
    /// `epoll_wait` returns — the busy-spin canary: an idle or blocked
    /// connection must not inflate this.
    pub wakeups: AtomicU64,
    /// Requests dispatched by this loop.
    pub dispatches: AtomicU64,
    /// Connections this loop has accepted ownership of (lifetime total).
    pub accepted: AtomicU64,
}

/// A bound (not yet serving) event-driven `smartmld` instance.
pub struct EventServer {
    listener: TcpListener,
    store: Arc<ShardedKb>,
    recovery: RecoveryReport,
    options: EventServerOptions,
    shutdown: Arc<AtomicBool>,
    stats: Arc<Vec<LoopStats>>,
    role: Arc<RoleCell>,
}

impl EventServer {
    /// Opens the sharded store (replaying the WAL) and binds.
    pub fn bind(options: EventServerOptions) -> Result<EventServer, KbError> {
        let n_loops = if options.n_loops == 0 {
            available_parallelism()
        } else {
            options.n_loops
        };
        let store = Arc::new(ShardedKb::open_with(&options.dir, options.durable.clone(), n_loops)?);
        EventServer::bind_with_store(options, store)
    }

    /// Binds over a store the caller already opened — the replica
    /// process shares one [`ShardedKb`] between its catch-up tailer and
    /// its serving loops.
    pub fn bind_with_store(
        options: EventServerOptions,
        store: Arc<ShardedKb>,
    ) -> Result<EventServer, KbError> {
        smartml_obs::enable_metrics();
        let n_loops = if options.n_loops == 0 {
            available_parallelism()
        } else {
            options.n_loops
        };
        let options = EventServerOptions { n_loops, ..options };
        let recovery = store.recovery().clone();
        let listener = TcpListener::bind(&options.addr)?;
        let stats = Arc::new((0..n_loops).map(|_| LoopStats::default()).collect::<Vec<_>>());
        let role = Arc::new(RoleCell::new(options.role.clone()));
        Ok(EventServer {
            listener,
            store,
            recovery,
            options,
            shutdown: Arc::new(AtomicBool::new(false)),
            stats,
            role,
        })
    }

    /// The address actually bound (resolves ephemeral ports).
    pub fn local_addr(&self) -> Result<SocketAddr, KbError> {
        Ok(self.listener.local_addr()?)
    }

    /// The sharded store (e.g. to pre-load data before serving).
    pub fn store(&self) -> &Arc<ShardedKb> {
        &self.store
    }

    /// What WAL recovery found when the store was opened.
    pub fn recovery(&self) -> &RecoveryReport {
        &self.recovery
    }

    /// A flag that makes [`EventServer::run`] exit; flip it, then poke
    /// the listener with a TCP connect (or send a `shutdown` request).
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// Per-loop counters, alive for as long as the caller keeps the Arc.
    pub fn loop_stats(&self) -> Arc<Vec<LoopStats>> {
        Arc::clone(&self.stats)
    }

    /// The live role cell (swapped by the `PROMOTE` verb); the process
    /// hooks replica teardown — stopping its tailer — here.
    pub fn role_cell(&self) -> Arc<RoleCell> {
        Arc::clone(&self.role)
    }

    /// Serves until a `shutdown` request arrives. Blocks the caller
    /// (which becomes the acceptor thread).
    pub fn run(self) -> Result<(), KbError> {
        let EventServer { listener, store, recovery, options, shutdown, stats, role } = self;
        let local = listener.local_addr()?;
        let cap = if options.max_connections == 0 { 1024 } else { options.max_connections };
        let active = Arc::new(AtomicUsize::new(0));

        // One inbox + waker handle per loop; loops own their poller.
        let mut handles = Vec::new();
        let mut inboxes = Vec::new();
        let mut wakers = Vec::new();
        for i in 0..options.n_loops {
            let inbox: Arc<Mutex<VecDeque<TcpStream>>> = Arc::new(Mutex::new(VecDeque::new()));
            let poller = Poller::new().map_err(KbError::Io)?;
            let waker = Arc::new(Waker::new(&poller, WAKER_TOKEN).map_err(KbError::Io)?);
            let mut lp = EventLoop::new(
                i,
                poller,
                Arc::clone(&waker),
                Arc::clone(&inbox),
                Arc::clone(&store),
                recovery.clone(),
                Arc::clone(&shutdown),
                Arc::clone(&active),
                Arc::clone(&stats),
                options.request_timeout,
                local,
                Arc::clone(&role),
            );
            inboxes.push(inbox);
            wakers.push(waker);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("kbd-loop-{i}"))
                    .spawn(move || lp.run())
                    .expect("spawn event loop"),
            );
        }

        // The acceptor: blocking accept, round-robin hand-off.
        let mut next = 0usize;
        for stream in listener.incoming() {
            if shutdown.load(Ordering::Acquire) {
                break;
            }
            let Ok(stream) = stream else { continue };
            if active.load(Ordering::Acquire) >= cap {
                let mut s = stream;
                let _ = writeln!(
                    s,
                    "{}",
                    service::encode(&Response::Error {
                        message: format!("server at capacity ({cap} connections)"),
                    })
                );
                continue;
            }
            active.fetch_add(1, Ordering::AcqRel);
            inboxes[next].lock().expect("inbox poisoned").push_back(stream);
            let _ = wakers[next].wake();
            next = (next + 1) % inboxes.len();
        }

        // Shutdown: wake every loop so it observes the flag, then join.
        shutdown.store(true, Ordering::Release);
        for w in &wakers {
            let _ = w.wake();
        }
        for h in handles {
            let _ = h.join();
        }
        Ok(())
    }
}

/// One connection's buffers and registration state.
struct Conn {
    stream: TcpStream,
    /// Partial-frame buffer: bytes read but not yet newline-terminated.
    rbuf: Vec<u8>,
    /// Response backlog (always UTF-8 JSON lines, so a `String`:
    /// responses stream straight into it); `wpos..` is unsent.
    wbuf: String,
    wpos: usize,
    interest: Interest,
    timer: Option<TimerId>,
    /// Stop reading, flush what is queued, then close.
    close_after_flush: bool,
    /// Protocol-error mode: the input stream cannot be resynchronised,
    /// so remaining input is read and dropped (no memory growth, no
    /// parsing) until the peer closes — closing *before* the peer has
    /// read the error line would RST it away. Bounded by the idle
    /// deadline.
    discarding: bool,
    /// After flushing, initiate server shutdown (a SHUTDOWN request was
    /// answered on this connection).
    shutdown_after_flush: bool,
}

impl Conn {
    fn pending(&self) -> usize {
        self.wbuf.len() - self.wpos
    }
}

struct EventLoop {
    ix: usize,
    poller: Poller,
    waker: Arc<Waker>,
    inbox: Arc<Mutex<VecDeque<TcpStream>>>,
    store: Arc<ShardedKb>,
    recovery: RecoveryReport,
    shutdown: Arc<AtomicBool>,
    active: Arc<AtomicUsize>,
    stats: Arc<Vec<LoopStats>>,
    timeout: Option<Duration>,
    local: SocketAddr,
    role: Arc<RoleCell>,
    conns: HashMap<u64, Conn>,
    timers: TimerWheel,
    next_token: u64,
    scratch: Vec<u8>,
    // Mirrors of the LoopStats counters in the obs registry.
    obs_wakeups: Counter,
    obs_dispatches: Counter,
    obs_accepted: Counter,
}

impl EventLoop {
    #[allow(clippy::too_many_arguments)]
    fn new(
        ix: usize,
        poller: Poller,
        waker: Arc<Waker>,
        inbox: Arc<Mutex<VecDeque<TcpStream>>>,
        store: Arc<ShardedKb>,
        recovery: RecoveryReport,
        shutdown: Arc<AtomicBool>,
        active: Arc<AtomicUsize>,
        stats: Arc<Vec<LoopStats>>,
        timeout: Option<Duration>,
        local: SocketAddr,
        role: Arc<RoleCell>,
    ) -> EventLoop {
        EventLoop {
            ix,
            poller,
            waker,
            inbox,
            store,
            recovery,
            shutdown,
            active,
            stats,
            timeout,
            local,
            role,
            conns: HashMap::new(),
            timers: TimerWheel::new(Duration::from_millis(10), 512),
            next_token: WAKER_TOKEN.0 + 1,
            scratch: vec![0u8; READ_CHUNK],
            obs_wakeups: Counter::new_owned(format!("kbd.loop.{ix}.wakeups")),
            obs_dispatches: Counter::new_owned(format!("kbd.loop.{ix}.dispatches")),
            obs_accepted: Counter::new_owned(format!("kbd.loop.{ix}.accepted")),
        }
    }

    fn run(&mut self) {
        let mut events = Events::with_capacity(256);
        let mut fired: Vec<Token> = Vec::new();
        loop {
            let timeout = self
                .timers
                .next_deadline()
                .map(|dl| dl.saturating_duration_since(Instant::now()));
            if self.poller.wait(&mut events, timeout).is_err() {
                break;
            }
            self.stats[self.ix].wakeups.fetch_add(1, Ordering::Relaxed);
            self.obs_wakeups.inc();

            for ev in events.iter().collect::<Vec<_>>() {
                if ev.token == WAKER_TOKEN {
                    let _ = self.waker.drain();
                    self.adopt_new_connections();
                    continue;
                }
                self.handle_conn_event(ev.token, ev.readable, ev.writable, ev.closed);
            }

            // Deadlines: idle connections (or ones stuck mid-frame).
            fired.clear();
            self.timers.expire(Instant::now(), &mut fired);
            for token in fired.drain(..) {
                if self.conns.contains_key(&token.0) {
                    self.teardown(token.0);
                }
            }

            if self.shutdown.load(Ordering::Acquire) {
                // Best-effort final flush so in-flight responses (the
                // SHUTTING_DOWN line in particular) reach their peers.
                let tokens: Vec<u64> = self.conns.keys().copied().collect();
                for t in tokens {
                    if let Some(conn) = self.conns.get_mut(&t) {
                        let _ = flush(conn);
                    }
                    self.teardown(t);
                }
                break;
            }
        }
    }

    /// Pulls accepted connections out of the inbox and registers them.
    fn adopt_new_connections(&mut self) {
        loop {
            let stream = self.inbox.lock().expect("inbox poisoned").pop_front();
            let Some(stream) = stream else { break };
            if stream.set_nonblocking(true).is_err() {
                self.active.fetch_sub(1, Ordering::AcqRel);
                continue;
            }
            let _ = stream.set_nodelay(true);
            let token = Token(self.next_token);
            self.next_token += 1;
            if self.poller.register(&stream, token, Interest::READABLE).is_err() {
                self.active.fetch_sub(1, Ordering::AcqRel);
                continue;
            }
            let timer = self.timeout.map(|t| self.timers.schedule(Instant::now() + t, token));
            self.conns.insert(
                token.0,
                Conn {
                    stream,
                    rbuf: Vec::new(),
                    wbuf: String::new(),
                    wpos: 0,
                    interest: Interest::READABLE,
                    timer,
                    close_after_flush: false,
                    discarding: false,
                    shutdown_after_flush: false,
                },
            );
            self.stats[self.ix].accepted.fetch_add(1, Ordering::Relaxed);
            self.obs_accepted.inc();
        }
    }

    fn handle_conn_event(&mut self, token: Token, readable: bool, writable: bool, closed: bool) {
        let Some(conn) = self.conns.get_mut(&token.0) else { return };

        let mut dead = false;
        if readable && !conn.close_after_flush {
            dead = self.read_and_dispatch(token);
        }
        let Some(conn) = self.conns.get_mut(&token.0) else { return };
        if writable && !dead {
            dead = flush(conn).is_err();
        }
        if !dead && closed {
            // Peer hangup: anything already dispatched gets a flush
            // attempt, but there is no one left to read new requests
            // from.
            conn.close_after_flush = true;
            let _ = flush(conn);
            dead = true;
        }
        if dead {
            self.teardown(token.0);
            return;
        }
        self.after_io(token);
    }

    /// Post-I/O bookkeeping for one connection: interest transitions,
    /// flush-completion actions, shutdown propagation.
    fn after_io(&mut self, token: Token) {
        let Some(conn) = self.conns.get_mut(&token.0) else { return };
        if conn.pending() == 0 {
            conn.wbuf.clear();
            conn.wpos = 0;
            if conn.shutdown_after_flush {
                self.shutdown.store(true, Ordering::Release);
                // Poke the acceptor so it stops accepting and wakes
                // every loop (including this one) for teardown.
                let _ = TcpStream::connect(self.local);
                self.teardown(token.0);
                return;
            }
            if conn.close_after_flush {
                self.teardown(token.0);
                return;
            }
        }
        let desired = Interest {
            // A discarding connection keeps reading (and dropping) so it
            // observes the peer's EOF; backpressure does not apply to
            // bytes that never get buffered.
            readable: !conn.close_after_flush
                && (conn.discarding || conn.pending() < HIGH_WATER),
            writable: conn.pending() > 0,
        };
        // Hysteresis: once paused, stay paused until LOW_WATER.
        let desired = if !conn.discarding
            && !conn.interest.readable
            && conn.pending() >= LOW_WATER
        {
            Interest { readable: false, ..desired }
        } else {
            desired
        };
        if desired != conn.interest
            && self.poller.reregister(&conn.stream, token, desired).is_ok()
        {
            conn.interest = desired;
        }
    }

    /// Drains the socket, dispatches every complete frame, queues the
    /// responses. Returns true when the connection is dead.
    fn read_and_dispatch(&mut self, token: Token) -> bool {
        loop {
            let conn = self.conns.get_mut(&token.0).expect("conn exists");
            if conn.close_after_flush {
                return flush(conn).is_err();
            }
            match conn.stream.read(&mut self.scratch) {
                Ok(0) => {
                    // Peer closed its write half; serve what is
                    // buffered, flush, then close.
                    self.dispatch_frames(token);
                    if let Some(conn) = self.conns.get_mut(&token.0) {
                        conn.close_after_flush = true;
                        return flush(conn).is_err();
                    }
                    return false;
                }
                Ok(n) => {
                    if conn.discarding {
                        continue; // post-error junk: dropped on the floor
                    }
                    conn.rbuf.extend_from_slice(&self.scratch[..n]);
                    self.dispatch_frames(token);
                    let Some(conn) = self.conns.get_mut(&token.0) else { return false };
                    if conn.close_after_flush
                        || (!conn.discarding && conn.pending() >= HIGH_WATER)
                    {
                        // Shutdown or backpressure: stop pulling more
                        // requests off the wire.
                        return flush(conn).is_err();
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    let conn = self.conns.get_mut(&token.0).expect("conn exists");
                    return flush(conn).is_err();
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return true,
            }
        }
    }

    /// Dispatches every complete newline-terminated frame in `rbuf`, in
    /// order (pipelining), and enforces the frame-size bound. The read
    /// buffer is taken out of the connection for the duration so frames
    /// can be borrowed in place (no per-line copy) while responses
    /// stream straight into the write buffer.
    fn dispatch_frames(&mut self, token: Token) {
        // Both buffers are taken out of the connection for the duration:
        // frames are borrowed straight from `rbuf` (no per-line copy)
        // while responses stream into `wbuf`, and the hot loop does no
        // per-frame connection lookups. Counters are batched per call;
        // only the latency histogram records per request.
        let (mut rbuf, mut wbuf) = {
            let Some(conn) = self.conns.get_mut(&token.0) else { return };
            (std::mem::take(&mut conn.rbuf), std::mem::take(&mut conn.wbuf))
        };
        let mut consumed = 0usize;
        let mut stopped = false;
        let mut oversized = false;
        let mut lossy = String::new();
        let (mut n_req, mut n_err) = (0u64, 0u64);
        let (mut bytes_in, mut bytes_out) = (0u64, 0u64);
        loop {
            let Some(rel) = rbuf[consumed..].iter().position(|&b| b == b'\n') else {
                break;
            };
            let end = consumed + rel;
            let frame = &rbuf[consumed..end];
            consumed = end + 1;
            if frame.len() > MAX_FRAME_BYTES {
                oversized = true;
                break;
            }
            // Parse in place; invalid UTF-8 (rare) takes a lossy copy so
            // the parse error can still quote the offending text.
            let line: &str = match std::str::from_utf8(frame) {
                Ok(s) => s,
                Err(_) => {
                    lossy.clear();
                    lossy.push_str(&String::from_utf8_lossy(frame));
                    &lossy
                }
            };
            if line.trim().is_empty() {
                continue;
            }
            bytes_in += line.len() as u64 + 1;
            let started = Instant::now();
            let (response, stop) = service::dispatch(line, &*self.store, &self.recovery, &self.role);
            REQUEST_US.record_duration(started.elapsed());
            n_req += 1;
            if matches!(response, Response::Error { .. }) {
                n_err += 1;
            }
            let before = wbuf.len();
            service::encode_into(&response, &mut wbuf);
            wbuf.push('\n');
            bytes_out += (wbuf.len() - before) as u64;
            if stop {
                stopped = true;
                break;
            }
        }
        if n_req > 0 {
            BYTES_IN.add(bytes_in);
            BYTES_OUT.add(bytes_out);
            REQ_TOTAL.add(n_req);
            REQ_ERRORS.add(n_err);
            self.stats[self.ix].dispatches.fetch_add(n_req, Ordering::Relaxed);
            self.obs_dispatches.add(n_req);
        }
        // Put the buffers back before the rare-path handling below (it
        // appends to the connection's write buffer).
        {
            let Some(conn) = self.conns.get_mut(&token.0) else { return };
            conn.wbuf = wbuf;
            if !conn.discarding {
                if consumed > 0 {
                    rbuf.drain(..consumed);
                }
                conn.rbuf = rbuf;
            } // else: buffered junk is dropped with the taken buffer
            if stopped {
                conn.close_after_flush = true;
                conn.shutdown_after_flush = true;
            }
        }
        if n_req > 0 {
            // Complete requests arrived: the connection is live, push
            // its idle deadline out (once per batch, not per frame).
            self.rearm_timer(token);
        }
        if oversized {
            // The offending frame and everything after it are dropped.
            self.enqueue_error(token, oversized_frame_message());
            if let Some(conn) = self.conns.get_mut(&token.0) {
                conn.rbuf = Vec::new();
            }
            return;
        }
        let Some(conn) = self.conns.get_mut(&token.0) else { return };
        if !conn.discarding && conn.rbuf.len() > MAX_FRAME_BYTES {
            // A frame is still growing past the cap without a newline.
            self.enqueue_error(token, oversized_frame_message());
            if let Some(conn) = self.conns.get_mut(&token.0) {
                conn.rbuf = Vec::new();
            }
        }
    }

    fn enqueue_error(&mut self, token: Token, message: String) {
        REQ_TOTAL.inc();
        REQ_ERRORS.inc();
        let response = Response::Error { message };
        let Some(conn) = self.conns.get_mut(&token.0) else { return };
        let before = conn.wbuf.len();
        service::encode_into(&response, &mut conn.wbuf);
        conn.wbuf.push('\n');
        BYTES_OUT.add((conn.wbuf.len() - before) as u64);
        conn.discarding = true;
    }

    fn rearm_timer(&mut self, token: Token) {
        let Some(timeout) = self.timeout else { return };
        let Some(conn) = self.conns.get_mut(&token.0) else { return };
        if let Some(old) = conn.timer.take() {
            self.timers.cancel(old);
        }
        conn.timer = Some(self.timers.schedule(Instant::now() + timeout, token));
    }

    fn teardown(&mut self, token: u64) {
        if let Some(conn) = self.conns.remove(&token) {
            if let Some(timer) = conn.timer {
                self.timers.cancel(timer);
            }
            let _ = self.poller.deregister(&conn.stream);
            self.active.fetch_sub(1, Ordering::AcqRel);
        }
    }
}

/// Writes as much of the backlog as the socket accepts. `Err` means the
/// connection is dead.
fn flush(conn: &mut Conn) -> Result<(), ()> {
    while conn.wpos < conn.wbuf.len() {
        match conn.stream.write(&conn.wbuf.as_bytes()[conn.wpos..]) {
            Ok(0) => return Err(()),
            Ok(n) => conn.wpos += n,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return Err(()),
        }
    }
    conn.wbuf.clear();
    conn.wpos = 0;
    Ok(())
}
