//! The `smartmld` wire protocol: JSON lines over TCP.
//!
//! One request per line, one response per line, in order. The framing is
//! trivial on purpose — any language with a JSON library and a socket
//! can speak it (`nc` included), mirroring the paper's "programming-
//! language agnostic" REST surface without pulling in an HTTP stack.
//!
//! ```text
//! → {"op":"record_run","dataset_id":"iris","meta_features":{...},"run":{...}}
//! ← {"status":"recorded","datasets":1,"runs":1}
//! → {"op":"recommend","meta_features":{...}}
//! ← {"status":"recommendation","recommendation":{...}}
//! ```

use serde::{Deserialize, Serialize};
use smartml_kb::{AlgorithmRun, QueryOptions, Recommendation};
use smartml_metafeatures::{Landmarkers, MetaFeatures};
use std::io::BufRead;

/// Hard cap on one frame (request or response line), both directions.
/// A peer that streams more than this without a newline gets one
/// [`Response::Error`] and the connection is closed — the stream cannot
/// be resynchronised once a frame is abandoned mid-line.
pub const MAX_FRAME_BYTES: usize = 8 * 1024 * 1024;

/// The error message sent before closing an over-limit connection.
/// One exact string, shared by both server backends, so the
/// byte-identity tests cover the failure path too.
pub fn oversized_frame_message() -> String {
    format!("frame exceeds {MAX_FRAME_BYTES} byte limit")
}

/// Cap on the raw WAL bytes carried by one [`Response::SyncChunk`].
/// Conservative against [`MAX_FRAME_BYTES`]: the chunk travels inside a
/// JSON string, and escaping can roughly double it in the worst case.
pub const SYNC_CHUNK_BYTES: usize = 1 << 20;

/// Outcome of one bounded frame read.
#[derive(Debug, PartialEq, Eq)]
pub enum FrameStatus {
    /// Clean end of stream (no partial frame pending).
    Eof,
    /// One complete line is in the buffer (newline stripped).
    Frame,
    /// The stream ended mid-frame (peer died before the newline). The
    /// partial bytes are undeliverable; close without responding.
    Truncated,
    /// The peer exceeded `max` bytes without sending a newline. The
    /// buffer holds the truncated prefix; the connection must be closed
    /// after reporting the error.
    TooBig,
}

/// Reads one newline-terminated frame into `buf` (cleared first),
/// never buffering more than `max` bytes — the fix for the unbounded
/// `read_line` growth a hostile or broken client could trigger.
pub fn read_frame(
    reader: &mut impl BufRead,
    buf: &mut Vec<u8>,
    max: usize,
) -> std::io::Result<FrameStatus> {
    buf.clear();
    loop {
        let available = reader.fill_buf()?;
        if available.is_empty() {
            return Ok(if buf.is_empty() { FrameStatus::Eof } else { FrameStatus::Truncated });
        }
        match available.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                if buf.len() + pos > max {
                    return Ok(FrameStatus::TooBig);
                }
                buf.extend_from_slice(&available[..pos]);
                reader.consume(pos + 1);
                return Ok(FrameStatus::Frame);
            }
            None => {
                let take = available.len();
                if buf.len() + take > max {
                    return Ok(FrameStatus::TooBig);
                }
                buf.extend_from_slice(available);
                reader.consume(take);
            }
        }
    }
}

/// One query inside a [`Request::RecommendBatch`] — the same fields as
/// [`Request::Recommend`] minus the op tag.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BatchQuery {
    /// The query dataset's meta-features.
    pub meta_features: MetaFeatures,
    /// Optional landmarker accuracies (extended-similarity mode).
    #[serde(default)]
    pub landmarkers: Option<Landmarkers>,
    /// Query knobs; omit for server defaults.
    #[serde(default)]
    pub options: Option<QueryOptions>,
}

/// A client → server message.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(tag = "op", rename_all = "snake_case")]
pub enum Request {
    /// Nominate algorithms for a dataset's meta-features (Phase 3).
    Recommend {
        /// The query dataset's meta-features.
        meta_features: MetaFeatures,
        /// Optional landmarker accuracies (extended-similarity mode).
        #[serde(default)]
        landmarkers: Option<Landmarkers>,
        /// Query knobs; omit for server defaults.
        #[serde(default)]
        options: Option<QueryOptions>,
    },
    /// N recommendations in one round-trip. Each query is answered
    /// exactly as the equivalent sequence of [`Request::Recommend`]s
    /// would be, in order — one `recommendations` response carries all
    /// answers, amortising the framing and syscall cost.
    RecommendBatch {
        /// The queries, answered in order.
        queries: Vec<BatchQuery>,
    },
    /// Record one `(algorithm, config) → accuracy` observation (Phase 5).
    RecordRun {
        /// Dataset identifier.
        dataset_id: String,
        /// The dataset's meta-features.
        meta_features: MetaFeatures,
        /// The observation.
        run: AlgorithmRun,
    },
    /// Attach landmarker accuracies to a dataset's entry.
    SetLandmarkers {
        /// Dataset identifier.
        dataset_id: String,
        /// The landmarker accuracies.
        landmarkers: Landmarkers,
    },
    /// Knowledge-base and WAL statistics.
    Stats,
    /// Fold the WAL into a snapshot and compact.
    Snapshot,
    /// Per-process service metrics: request counts and latency
    /// percentiles, bytes on the wire, WAL fsync/rotation counters.
    Metrics,
    /// Liveness probe.
    Ping,
    /// Replication pull: "I hold everything up to byte `offset` of
    /// segment `segment`; send me what comes next." `segment` 0 means
    /// the replica has nothing. The primary answers with a
    /// [`Response::SyncSnapshot`] (position is behind the compaction
    /// floor, or bootstrap with a snapshot on disk) or a
    /// [`Response::SyncChunk`] of raw WAL frames.
    Sync {
        /// Segment the replica is positioned in (0 = nothing yet).
        segment: u64,
        /// Bytes of that segment the replica already holds.
        offset: u64,
    },
    /// Operator verb: turn a `--replica-of` replica into a primary —
    /// the tailer stops and writes are accepted from the next request
    /// on. Idempotent; a server that is already a primary answers
    /// `promoted` with `was_replica: false`.
    Promote,
    /// Stop accepting connections and exit the serve loop.
    Shutdown,
}

/// Store/WAL statistics reported by [`Response::Stats`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KbStats {
    /// Datasets known.
    pub datasets: usize,
    /// Total recorded runs.
    pub runs: usize,
    /// WAL segment files on disk.
    pub wal_segments: usize,
    /// Sequence number of the active segment.
    pub active_segment: u64,
    /// Sequence of the snapshot recovery started from, if any.
    pub snapshot_seq: Option<u64>,
    /// Records replayed from the WAL when the server opened its store.
    pub recovered_records: usize,
    /// True when recovery truncated a torn tail record.
    pub recovered_torn_tail: bool,
    /// Total WAL records ever applied in this store's lineage — the
    /// replication position. Defaults for responses from servers that
    /// predate replication.
    #[serde(default)]
    pub applied_seq: u64,
}

/// Live service metrics reported by [`Response::Metrics`]. All values are
/// process-lifetime totals since the server started (the server enables
/// the metrics registry when it binds).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServerMetrics {
    /// Requests dispatched (all verbs, including malformed lines).
    pub requests: u64,
    /// Requests answered with an `error` response (bad JSON included).
    pub errors: u64,
    /// Request bytes read off sockets.
    pub bytes_in: u64,
    /// Response bytes written to sockets.
    pub bytes_out: u64,
    /// Median request latency, microseconds (power-of-two bucket upper
    /// bound — coarse by design).
    pub request_us_p50: u64,
    /// 99th-percentile request latency, microseconds.
    pub request_us_p99: u64,
    /// Worst request latency, microseconds.
    pub request_us_max: u64,
    /// Mean request latency, microseconds.
    pub request_us_mean: f64,
    /// WAL `sync_data` calls (durability fsyncs).
    pub wal_fsyncs: u64,
    /// WAL segment rotations.
    pub wal_rotations: u64,
    /// Total WAL records applied by this store's lineage (the
    /// replication position; see [`KbStats::applied_seq`]).
    #[serde(default)]
    pub applied_seq: u64,
    /// On a replica: primary applied sequence minus local applied
    /// sequence as of the last sync round. `None` on a primary.
    #[serde(default)]
    pub replication_lag: Option<u64>,
    /// Per-verb request counts, `(verb, count)` sorted by verb name.
    pub ops: Vec<(String, u64)>,
}

/// A server → client message.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(tag = "status", rename_all = "snake_case")]
pub enum Response {
    /// Answer to [`Request::Recommend`].
    Recommendation {
        /// Nominations, best first.
        recommendation: Recommendation,
    },
    /// Answer to [`Request::RecommendBatch`]: one entry per query, in
    /// query order.
    Recommendations {
        /// The per-query answers.
        recommendations: Vec<Recommendation>,
    },
    /// Answer to [`Request::RecordRun`] / [`Request::SetLandmarkers`]:
    /// the mutation is on the WAL and visible to readers.
    Recorded {
        /// Datasets known after the write.
        datasets: usize,
        /// Total runs after the write.
        runs: usize,
    },
    /// Answer to [`Request::Stats`].
    Stats {
        /// The statistics.
        stats: KbStats,
    },
    /// Answer to [`Request::Snapshot`].
    Snapshotted {
        /// Sequence number of the snapshot file that was written.
        snapshot_seq: u64,
    },
    /// Answer to [`Request::Metrics`].
    Metrics {
        /// The live service metrics.
        metrics: ServerMetrics,
    },
    /// Answer to [`Request::Ping`].
    Pong,
    /// Answer to [`Request::Sync`] when the requested position is behind
    /// the primary's compaction floor (or the replica is bootstrapping
    /// and a snapshot exists): the full KB state to install, replacing
    /// everything the replica holds.
    SyncSnapshot {
        /// Sequence of the snapshot (the replica's new compaction floor).
        snapshot_seq: u64,
        /// Applied-record count as of this snapshot.
        applied_seq: u64,
        /// Segment the replica should request next, from offset 0.
        next_segment: u64,
        /// The snapshot body: serialised `KnowledgeBase` JSON.
        kb_json: String,
    },
    /// Answer to [`Request::Sync`]: raw WAL frames from the requested
    /// position, always cut on a frame boundary.
    SyncChunk {
        /// Segment these bytes belong to.
        segment: u64,
        /// Byte offset within `segment` where `data` starts.
        offset: u64,
        /// Whole WAL frames, verbatim from the primary's segment file.
        data: String,
        /// Segment to request next (> `segment` when this chunk finishes
        /// a sealed segment).
        next_segment: u64,
        /// Offset to request next within `next_segment`.
        next_offset: u64,
        /// True when the replica holds everything the primary has after
        /// applying this chunk.
        caught_up: bool,
        /// The primary's applied-record count (for lag accounting).
        applied_seq: u64,
    },
    /// Typed write rejection from a read-only replica: retry against the
    /// primary it names.
    NotPrimary {
        /// Address of the primary this replica tails.
        primary: String,
    },
    /// Answer to [`Request::Promote`]: this server now accepts writes.
    Promoted {
        /// True when the request actually flipped a replica; false when
        /// the server was already a primary (the call was a no-op).
        was_replica: bool,
    },
    /// Answer to [`Request::Shutdown`]; the server exits after sending it.
    ShuttingDown,
    /// Any failure; the connection stays usable.
    Error {
        /// What went wrong.
        message: String,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartml_metafeatures::N_META_FEATURES;

    #[test]
    fn request_roundtrip_and_optional_fields() {
        let mf = MetaFeatures { values: vec![0.5; N_META_FEATURES] };
        let req = Request::Recommend { meta_features: mf, landmarkers: None, options: None };
        let json = serde_json::to_string(&req).unwrap();
        let back: Request = serde_json::from_str(&json).unwrap();
        match back {
            Request::Recommend { meta_features, landmarkers, options } => {
                assert_eq!(meta_features.values.len(), N_META_FEATURES);
                assert!(landmarkers.is_none());
                assert!(options.is_none());
            }
            other => panic!("unexpected {other:?}"),
        }
        // A hand-written minimal request parses: optional fields default.
        let minimal = format!(
            "{{\"op\":\"recommend\",\"meta_features\":{{\"values\":{:?}}}}}",
            vec![0.0; N_META_FEATURES]
        );
        assert!(matches!(
            serde_json::from_str::<Request>(&minimal).unwrap(),
            Request::Recommend { .. }
        ));
        // Unit ops are bare tags.
        assert!(matches!(
            serde_json::from_str::<Request>("{\"op\":\"ping\"}").unwrap(),
            Request::Ping
        ));
    }

    #[test]
    fn metrics_roundtrip() {
        // The METRICS verb is a bare tag like ping.
        assert!(matches!(
            serde_json::from_str::<Request>("{\"op\":\"metrics\"}").unwrap(),
            Request::Metrics
        ));
        let resp = Response::Metrics {
            metrics: ServerMetrics {
                requests: 10,
                errors: 1,
                bytes_in: 2048,
                bytes_out: 4096,
                request_us_p50: 255,
                request_us_p99: 1023,
                request_us_max: 900,
                request_us_mean: 301.5,
                wal_fsyncs: 7,
                wal_rotations: 2,
                applied_seq: 6,
                replication_lag: Some(1),
                ops: vec![("ping".to_string(), 3), ("record_run".to_string(), 6)],
            },
        };
        let json = serde_json::to_string(&resp).unwrap();
        assert!(json.contains("\"status\":\"metrics\""));
        match serde_json::from_str::<Response>(&json).unwrap() {
            Response::Metrics { metrics } => {
                assert_eq!(metrics.requests, 10);
                assert_eq!(metrics.wal_fsyncs, 7);
                assert_eq!(metrics.ops.len(), 2);
                assert_eq!(metrics.ops[0], ("ping".to_string(), 3));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn batch_roundtrip() {
        let mf = MetaFeatures { values: vec![0.25; N_META_FEATURES] };
        let req = Request::RecommendBatch {
            queries: vec![
                BatchQuery { meta_features: mf.clone(), landmarkers: None, options: None },
                BatchQuery {
                    meta_features: mf,
                    landmarkers: None,
                    options: Some(QueryOptions { top_n: 1, ..Default::default() }),
                },
            ],
        };
        let json = serde_json::to_string(&req).unwrap();
        assert!(json.contains("\"op\":\"recommend_batch\""));
        match serde_json::from_str::<Request>(&json).unwrap() {
            Request::RecommendBatch { queries } => {
                assert_eq!(queries.len(), 2);
                assert!(queries[0].options.is_none());
                assert_eq!(queries[1].options.as_ref().unwrap().top_n, 1);
            }
            other => panic!("unexpected {other:?}"),
        }
        let resp = Response::Recommendations {
            recommendations: vec![Recommendation { algorithms: vec![], neighbors: vec![] }],
        };
        let json = serde_json::to_string(&resp).unwrap();
        assert!(json.contains("\"status\":\"recommendations\""));
        assert!(matches!(
            serde_json::from_str::<Response>(&json).unwrap(),
            Response::Recommendations { recommendations } if recommendations.len() == 1
        ));
    }

    #[test]
    fn read_frame_bounds_and_splits_lines() {
        use std::io::BufReader;
        let mut buf = Vec::new();
        // Two frames, then EOF.
        let mut r = BufReader::new(&b"alpha\nbeta\n"[..]);
        assert_eq!(read_frame(&mut r, &mut buf, 64).unwrap(), FrameStatus::Frame);
        assert_eq!(buf, b"alpha");
        assert_eq!(read_frame(&mut r, &mut buf, 64).unwrap(), FrameStatus::Frame);
        assert_eq!(buf, b"beta");
        assert_eq!(read_frame(&mut r, &mut buf, 64).unwrap(), FrameStatus::Eof);

        // A frame exactly at the cap passes; one byte over fails.
        let line = vec![b'x'; 16];
        let mut framed = line.clone();
        framed.push(b'\n');
        let mut r = BufReader::new(&framed[..]);
        assert_eq!(read_frame(&mut r, &mut buf, 16).unwrap(), FrameStatus::Frame);
        let mut r = BufReader::new(&framed[..]);
        assert_eq!(read_frame(&mut r, &mut buf, 15).unwrap(), FrameStatus::TooBig);

        // An endless unterminated stream stops at the cap instead of
        // buffering everything (tiny BufReader capacity forces many
        // fill_buf rounds, the worst case for the accounting).
        let torrent = vec![b'y'; 4096];
        let mut r = BufReader::with_capacity(8, &torrent[..]);
        assert_eq!(read_frame(&mut r, &mut buf, 100).unwrap(), FrameStatus::TooBig);
        assert!(buf.len() <= 100, "buffer stayed bounded: {}", buf.len());

        // A final frame cut off by EOF (peer died mid-line) is
        // distinguished from an oversized one.
        let mut r = BufReader::new(&b"partial"[..]);
        assert_eq!(read_frame(&mut r, &mut buf, 64).unwrap(), FrameStatus::Truncated);
    }

    #[test]
    fn sync_and_not_primary_roundtrip() {
        // The SYNC verb and its two answers are ordinary tagged frames.
        let req: Request =
            serde_json::from_str("{\"op\":\"sync\",\"segment\":3,\"offset\":128}").unwrap();
        assert!(matches!(req, Request::Sync { segment: 3, offset: 128 }));
        let chunk = Response::SyncChunk {
            segment: 3,
            offset: 128,
            data: "00000001 00000000 x\n".into(),
            next_segment: 4,
            next_offset: 0,
            caught_up: false,
            applied_seq: 17,
        };
        let json = serde_json::to_string(&chunk).unwrap();
        assert!(json.contains("\"status\":\"sync_chunk\""));
        match serde_json::from_str::<Response>(&json).unwrap() {
            Response::SyncChunk { next_segment, caught_up, applied_seq, .. } => {
                assert_eq!(next_segment, 4);
                assert!(!caught_up);
                assert_eq!(applied_seq, 17);
            }
            other => panic!("unexpected {other:?}"),
        }
        let snap = Response::SyncSnapshot {
            snapshot_seq: 7,
            applied_seq: 40,
            next_segment: 8,
            kb_json: "{\"entries\":[]}".into(),
        };
        let json = serde_json::to_string(&snap).unwrap();
        assert!(json.contains("\"status\":\"sync_snapshot\""));
        let redirect = Response::NotPrimary { primary: "127.0.0.1:7001".into() };
        let json = serde_json::to_string(&redirect).unwrap();
        assert!(json.contains("\"status\":\"not_primary\""));
        assert!(matches!(
            serde_json::from_str::<Response>(&json).unwrap(),
            Response::NotPrimary { primary } if primary == "127.0.0.1:7001"
        ));
    }

    #[test]
    fn promote_roundtrip() {
        // PROMOTE is a bare tag; its answer carries the was_replica flag.
        assert!(matches!(
            serde_json::from_str::<Request>("{\"op\":\"promote\"}").unwrap(),
            Request::Promote
        ));
        let json = serde_json::to_string(&Response::Promoted { was_replica: true }).unwrap();
        assert!(json.contains("\"status\":\"promoted\""));
        assert!(matches!(
            serde_json::from_str::<Response>(&json).unwrap(),
            Response::Promoted { was_replica: true }
        ));
    }

    #[test]
    fn stats_and_metrics_tolerate_pre_replication_peers() {
        // Responses recorded before applied_seq existed must still parse.
        let old = "{\"status\":\"stats\",\"stats\":{\"datasets\":1,\"runs\":2,\
                   \"wal_segments\":1,\"active_segment\":1,\"snapshot_seq\":null,\
                   \"recovered_records\":0,\"recovered_torn_tail\":false}}";
        match serde_json::from_str::<Response>(old).unwrap() {
            Response::Stats { stats } => {
                assert_eq!(stats.applied_seq, 0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn response_roundtrip() {
        let resp = Response::Stats {
            stats: KbStats {
                datasets: 3,
                runs: 9,
                wal_segments: 2,
                active_segment: 5,
                snapshot_seq: Some(3),
                recovered_records: 4,
                recovered_torn_tail: true,
                applied_seq: 9,
            },
        };
        let json = serde_json::to_string(&resp).unwrap();
        assert!(json.contains("\"status\":"));
        match serde_json::from_str::<Response>(&json).unwrap() {
            Response::Stats { stats } => {
                assert_eq!(stats.runs, 9);
                assert_eq!(stats.snapshot_seq, Some(3));
                assert!(stats.recovered_torn_tail);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
