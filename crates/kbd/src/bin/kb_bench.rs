//! `kb_bench` — recommend-request throughput / latency against a live
//! `smartmld` over a bootstrap-sized KB (50 datasets, as in the paper's
//! corpus). Spins the server in-process on an ephemeral port, then
//! drives it from 1 and 4 client threads and reports p50/p99 latency and
//! requests/second as JSON (recorded in `BENCH_kb_service.json`).
//!
//! ```text
//! cargo run --release -p smartml-kbd --bin kb_bench [REQUESTS_PER_THREAD]
//! ```

use smartml_classifiers::{Algorithm, ParamConfig};
use smartml_data::synth::gaussian_blobs;
use smartml_kb::QueryOptions;
use smartml_kbd::{DurableOptions, KbClient, Server, ServerOptions};
use smartml_metafeatures::{extract, MetaFeatures};
use std::time::Instant;

const N_DATASETS: usize = 50;

fn main() {
    let requests: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(2000);

    let dir = std::env::temp_dir().join(format!("smartml-kb-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let server = Server::bind(ServerOptions {
        dir: dir.clone(),
        durable: DurableOptions { fsync_writes: false, ..Default::default() },
        // Seed connection + up to 4 bench workers, regardless of cores.
        max_connections: 16,
        ..ServerOptions::default()
    })
    .expect("server binds");
    let addr = server.local_addr().expect("bound address").to_string();
    let handle = std::thread::spawn(move || server.run().expect("serve loop"));

    // Populate: 50 datasets x 3 runs, like a paper-scale bootstrap.
    let seed_client = KbClient::connect(addr.clone());
    let mut queries: Vec<MetaFeatures> = Vec::new();
    for i in 0..N_DATASETS {
        let d = gaussian_blobs(
            &format!("bench-{i}"),
            80 + (i % 7) * 20,
            3 + i % 5,
            2 + i % 3,
            0.6 + (i % 4) as f64 * 0.2,
            i as u64,
        );
        let mf = extract(&d, &d.all_rows());
        for (j, alg) in [Algorithm::RandomForest, Algorithm::Svm, Algorithm::Knn]
            .into_iter()
            .enumerate()
        {
            let run = smartml_kb::AlgorithmRun {
                algorithm: alg,
                config: ParamConfig::default(),
                accuracy: 0.6 + (i * 3 + j) as f64 % 35.0 / 100.0,
            };
            seed_client.record_run(&format!("bench-{i}"), &mf, run).expect("record");
        }
        queries.push(mf);
    }
    let stats = seed_client.stats().expect("stats");
    assert_eq!(stats.datasets, N_DATASETS);

    let mut results = Vec::new();
    for &threads in &[1usize, 4] {
        // Warm the normalisation-stats cache out of band.
        seed_client
            .recommend(&queries[0], None, &QueryOptions::default())
            .expect("warmup");
        let started = Instant::now();
        let lat: Vec<Vec<u64>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let addr = addr.clone();
                    let queries = &queries;
                    scope.spawn(move || {
                        let client = KbClient::connect(addr);
                        let mut micros = Vec::with_capacity(requests);
                        for r in 0..requests {
                            let q = &queries[(t * 31 + r) % queries.len()];
                            let begin = Instant::now();
                            let rec = client
                                .recommend(q, None, &QueryOptions::default())
                                .expect("recommend");
                            assert!(!rec.algorithms.is_empty());
                            micros.push(begin.elapsed().as_micros() as u64);
                        }
                        micros
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("bench thread")).collect()
        });
        let elapsed = started.elapsed().as_secs_f64();
        let mut all: Vec<u64> = lat.into_iter().flatten().collect();
        all.sort_unstable();
        let total = all.len();
        let pct = |p: f64| all[((total as f64 * p) as usize).min(total - 1)];
        results.push(format!(
            "    {{\"client_threads\": {threads}, \"requests\": {total}, \
             \"throughput_rps\": {:.1}, \"p50_us\": {}, \"p99_us\": {}, \
             \"mean_us\": {:.1}}}",
            total as f64 / elapsed,
            pct(0.50),
            pct(0.99),
            all.iter().sum::<u64>() as f64 / total as f64,
        ));
    }

    seed_client.shutdown().expect("shutdown");
    handle.join().expect("server thread");
    let _ = std::fs::remove_dir_all(&dir);

    println!(
        "{{\n  \"bench\": \"kb_service_recommend\",\n  \"kb\": {{\"datasets\": {}, \"runs\": {}}},\n  \"results\": [\n{}\n  ]\n}}",
        stats.datasets,
        stats.runs,
        results.join(",\n")
    );
}
