//! `kb_bench` — recommend-request throughput / latency for both
//! `smartmld` backends over a bootstrap-sized KB (50 datasets, as in the
//! paper's corpus). Spins each server in-process on an ephemeral port
//! and drives it with a raw pipelined JSON-lines driver across a matrix
//! of client counts and pipeline depths.
//!
//! ```text
//! kb_bench [--quick] [--out FILE] [--check FILE]
//!   --quick   fewer requests per cell (CI smoke)
//!   --out     write the results JSON to FILE
//!   --check   regression gate: at 64 connections, epoll must stay >= 4x
//!             over the committed blocking baseline and >= 2x over the
//!             live blocking oracle, keep dispatch p99 <= 300us, and
//!             stay within 5x of the committed epoll throughput
//! ```
//!
//! Two latency views are reported per cell. `client_*_us` is what a
//! caller sees per request, amortised over its pipeline burst — on a
//! box with fewer cores than clients it is dominated by queueing, so it
//! grows linearly with the client count no matter how fast the server
//! is. `server_dispatch_*_us` is the store-side cost of one request
//! (the `kbd.request_us` histogram, reset per cell) — that is the
//! number the "p99 under load" acceptance gate reads, because it
//! measures the serving stack rather than the host's scheduler.

use smartml_classifiers::{Algorithm, ParamConfig};
use smartml_data::synth::gaussian_blobs;
use smartml_kbd::{
    DurableOptions, EventServer, EventServerOptions, KbClient, Request, Server, ServerOptions,
};
use smartml_metafeatures::{extract, MetaFeatures};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Instant;

const N_DATASETS: usize = 50;

/// The serving stack the event backend replaced: the blocking `smartmld`
/// as it first shipped, measured by that PR's bench on this host class
/// (4 synchronous clients — its best cell). A fixed historical
/// comparator, so the 4x gate does not inherit the noise of scheduling
/// 128 live blocking threads on a small box. The live blocking oracle is
/// still measured and reported in every run alongside it.
const BASELINE_BLOCKING_RPS: f64 = 19_130.7;
const BASELINE_SOURCE: &str =
    "blocking smartmld as first shipped (pre event-loop), best cell: 4 synchronous clients";

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("smartml-kb-bench-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// 50 bootstrap-scale datasets worth of meta-features.
fn corpus() -> Vec<MetaFeatures> {
    (0..N_DATASETS)
        .map(|i| {
            let d = gaussian_blobs(
                &format!("bench-{i}"),
                80 + (i % 7) * 20,
                3 + i % 5,
                2 + i % 3,
                0.6 + (i % 4) as f64 * 0.2,
                i as u64,
            );
            extract(&d, &d.all_rows())
        })
        .collect()
}

fn seed_kb(client: &KbClient, queries: &[MetaFeatures]) {
    for (i, mf) in queries.iter().enumerate() {
        for (j, alg) in [Algorithm::RandomForest, Algorithm::Svm, Algorithm::Knn]
            .into_iter()
            .enumerate()
        {
            let run = smartml_kb::AlgorithmRun {
                algorithm: alg,
                config: ParamConfig::default(),
                accuracy: 0.6 + (i * 3 + j) as f64 % 35.0 / 100.0,
            };
            client.record_run(&format!("bench-{i}"), mf, run).expect("record");
        }
    }
    let stats = client.stats().expect("stats");
    assert_eq!(stats.datasets, N_DATASETS);
}

struct CellResult {
    backend: &'static str,
    conns: usize,
    depth: usize,
    requests: usize,
    throughput_rps: f64,
    client_p50_us: u64,
    client_p99_us: u64,
    server_p50_us: u64,
    server_p99_us: u64,
}

impl CellResult {
    fn to_json(&self) -> String {
        format!(
            "    {{\"backend\": \"{}\", \"connections\": {}, \"pipeline_depth\": {}, \
             \"requests\": {}, \"throughput_rps\": {:.1}, \"client_p50_us\": {}, \
             \"client_p99_us\": {}, \"server_dispatch_p50_us\": {}, \
             \"server_dispatch_p99_us\": {}}}",
            self.backend,
            self.conns,
            self.depth,
            self.requests,
            self.throughput_rps,
            self.client_p50_us,
            self.client_p99_us,
            self.server_p50_us,
            self.server_p99_us,
        )
    }
}

/// Drives one cell: `conns` concurrent connections carrying bursts of
/// `depth` pipelined `recommend` lines each.
///
/// The client model follows the depth. Depth 1 means synchronous
/// request-response clients, so those cells run one thread per
/// connection — the canonical blocking-RPC client, and what `KbClient`
/// itself is. Depth > 1 means pipelining clients, which an application
/// would multiplex; those cells drive all connections from at most four
/// threads so the cell measures the server architecture, not how well
/// the bench host schedules 64 client threads.
fn run_cell(
    backend: &'static str,
    addr: &str,
    conns: usize,
    depth: usize,
    total_requests: usize,
    queries: &[MetaFeatures],
) -> CellResult {
    // Pre-encode the request lines and burst buffers once, outside the
    // timed loop. Indices cycle the corpus, so a (thread, burst) pair
    // only ever needs one of `lines.len()` distinct burst buffers.
    let lines: Vec<String> = queries
        .iter()
        .map(|mf| {
            serde_json::to_string(&Request::Recommend {
                meta_features: mf.clone(),
                landmarkers: None,
                options: None,
            })
            .expect("encode")
        })
        .collect();
    let bursts: Vec<Vec<u8>> = (0..lines.len())
        .map(|s| {
            let mut burst = Vec::with_capacity(depth * 300);
            for k in 0..depth {
                burst.extend_from_slice(lines[(s + k) % lines.len()].as_bytes());
                burst.push(b'\n');
            }
            burst
        })
        .collect();
    let check_line: Vec<u8> = {
        let mut v = lines[0].as_bytes().to_vec();
        v.push(b'\n');
        v
    };
    let driver_threads = if depth == 1 { conns } else { conns.min(4) };
    let conns_per_thread = conns / driver_threads;
    let per_conn_bursts = (total_requests / conns / depth).max(1);

    // Per-cell server-side latency: reset the process-wide histogram,
    // read it back through the METRICS verb after the cell.
    smartml_obs::reset_metrics();

    let started = Instant::now();
    let burst_us: Vec<Vec<u64>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..driver_threads)
            .map(|t| {
                let bursts = &bursts;
                let check_line = &check_line;
                scope.spawn(move || {
                    let mut streams: Vec<TcpStream> = (0..conns_per_thread)
                        .map(|_| {
                            let s = TcpStream::connect(addr).expect("bench connect");
                            s.set_nodelay(true).expect("nodelay");
                            s
                        })
                        .collect();
                    let mut rb = vec![0u8; 64 * 1024];

                    // One validated round per connection outside the
                    // timing: proves each connection gets real
                    // recommendations back, so the timed loop can just
                    // count response newlines (JSON lines contain none
                    // internally).
                    for stream in &mut streams {
                        stream.write_all(check_line).expect("send check");
                        let mut got = Vec::new();
                        while !got.contains(&b'\n') {
                            let n = stream.read(&mut rb).expect("read check");
                            assert!(n > 0, "server closed during check");
                            got.extend_from_slice(&rb[..n]);
                        }
                        let resp = String::from_utf8_lossy(&got);
                        assert!(
                            resp.contains("\"status\":\"recommendation\""),
                            "unexpected response: {resp}"
                        );
                    }

                    // Each round: burst every connection, then drain every
                    // connection — so this thread keeps `conns_per_thread`
                    // bursts in flight at once.
                    let mut samples = Vec::with_capacity(per_conn_bursts);
                    for b in 0..per_conn_bursts {
                        let begin = Instant::now();
                        for (c, stream) in streams.iter_mut().enumerate() {
                            let ix =
                                ((t * conns_per_thread + c) * 31 + b * depth) % bursts.len();
                            stream.write_all(&bursts[ix]).expect("send burst");
                        }
                        for stream in streams.iter_mut() {
                            let mut responses = 0usize;
                            while responses < depth {
                                let n = stream.read(&mut rb).expect("read burst");
                                assert!(n > 0, "server closed mid-burst");
                                responses += rb[..n].iter().filter(|&&c| c == b'\n').count();
                            }
                        }
                        // Round time amortised over this thread's conns;
                        // the depth division happens below.
                        samples
                            .push(begin.elapsed().as_micros() as u64 / conns_per_thread as u64);
                    }
                    samples
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("bench thread")).collect()
    });
    let elapsed = started.elapsed().as_secs_f64();

    let requests = conns * per_conn_bursts * depth;
    // Client-side per-request latency, amortised over each burst.
    let mut amortised: Vec<u64> = burst_us
        .into_iter()
        .flatten()
        .map(|burst| burst / depth as u64)
        .collect();
    amortised.sort_unstable();
    let pct = |p: f64| amortised[((amortised.len() as f64 * p) as usize).min(amortised.len() - 1)];

    let server = KbClient::connect(addr.to_string()).metrics().expect("metrics");

    CellResult {
        backend,
        conns,
        depth,
        requests,
        throughput_rps: requests as f64 / elapsed,
        client_p50_us: pct(0.50),
        client_p99_us: pct(0.99),
        server_p50_us: server.request_us_p50,
        server_p99_us: server.request_us_p99,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let flag_value = |flag: &str| {
        args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).cloned()
    };
    let out_path = flag_value("--out");
    let check_path = flag_value("--check");
    let per_cell = if quick { 6_000 } else { 48_000 };

    let queries = corpus();
    let mut results: Vec<CellResult> = Vec::new();

    // --- Blocking backend (the oracle): classic one-thread-per-client,
    // no pipelining — the baseline the event backend is gated against.
    {
        let dir = temp_dir("blocking");
        let server = Server::bind(ServerOptions {
            dir: dir.clone(),
            durable: DurableOptions { fsync_writes: false, ..Default::default() },
            max_connections: 128,
            ..ServerOptions::default()
        })
        .expect("blocking server binds");
        let addr = server.local_addr().expect("addr").to_string();
        let handle = std::thread::spawn(move || server.run().expect("blocking serve"));
        let seed = KbClient::connect(addr.clone());
        seed_kb(&seed, &queries);
        seed.recommend(&queries[0], None, &Default::default()).expect("warmup");
        for &threads in &[1usize, 4, 16, 64] {
            let cell = run_cell("blocking", &addr, threads, 1, per_cell, &queries);
            eprintln!(
                "blocking c{threads:<3} d1   {:>9.1} rps  client p50/p99 {}/{}us  dispatch p50/p99 {}/{}us",
                cell.throughput_rps,
                cell.client_p50_us,
                cell.client_p99_us,
                cell.server_p50_us,
                cell.server_p99_us
            );
            results.push(cell);
        }
        seed.shutdown().expect("blocking shutdown");
        handle.join().expect("blocking thread");
        let _ = std::fs::remove_dir_all(&dir);
    }

    // --- Event-driven backend: same KB, same verbs, pipelined.
    {
        let dir = temp_dir("epoll");
        let server = EventServer::bind(EventServerOptions {
            dir: dir.clone(),
            durable: DurableOptions { fsync_writes: false, ..Default::default() },
            max_connections: 128,
            ..EventServerOptions::default()
        })
        .expect("event server binds");
        let addr = server.local_addr().expect("addr").to_string();
        let handle = std::thread::spawn(move || server.run().expect("event serve"));
        let seed = KbClient::connect(addr.clone());
        seed_kb(&seed, &queries);
        seed.recommend(&queries[0], None, &Default::default()).expect("warmup");
        for &threads in &[1usize, 4, 16, 64] {
            for &depth in &[1usize, 8, 32] {
                let cell = run_cell("epoll", &addr, threads, depth, per_cell, &queries);
                eprintln!(
                    "epoll    c{threads:<3} d{depth:<3} {:>8.1} rps  client p50/p99 {}/{}us  dispatch p50/p99 {}/{}us",
                    cell.throughput_rps,
                    cell.client_p50_us,
                    cell.client_p99_us,
                    cell.server_p50_us,
                    cell.server_p99_us
                );
                results.push(cell);
            }
        }
        seed.shutdown().expect("epoll shutdown");
        handle.join().expect("epoll thread");
        let _ = std::fs::remove_dir_all(&dir);
    }

    let best_at = |backend: &str, conns: usize| {
        results
            .iter()
            .filter(|r| r.backend == backend && r.conns == conns)
            .max_by(|a, b| a.throughput_rps.total_cmp(&b.throughput_rps))
            .expect("cell ran")
    };
    let blocking64 = best_at("blocking", 64);
    let epoll64 = best_at("epoll", 64);
    let speedup64 = epoll64.throughput_rps / blocking64.throughput_rps;
    let speedup_vs_baseline = epoll64.throughput_rps / BASELINE_BLOCKING_RPS;

    let rendered = format!(
        "{{\n  \"bench\": \"kb_service_recommend\",\n  \
         \"command\": \"{}\",\n  \
         \"kb\": {{\"datasets\": {N_DATASETS}, \"runs\": {}}},\n  \
         \"baseline\": {{\"source\": \"{BASELINE_SOURCE}\", \
         \"throughput_rps\": {BASELINE_BLOCKING_RPS}}},\n  \
         \"epoll_vs_baseline_at_64_conns\": {{\"speedup\": {:.2}, \
         \"epoll_rps\": {:.1}, \"epoll_dispatch_p99_us\": {}}},\n  \
         \"epoll_vs_blocking_at_64_conns\": {{\"speedup\": {:.2}, \
         \"epoll_rps\": {:.1}, \"blocking_rps\": {:.1}, \
         \"epoll_dispatch_p99_us\": {}}},\n  \
         \"results\": [\n{}\n  ]\n}}",
        if quick { "kb_bench --quick" } else { "kb_bench" },
        N_DATASETS * 3,
        speedup_vs_baseline,
        epoll64.throughput_rps,
        epoll64.server_p99_us,
        speedup64,
        epoll64.throughput_rps,
        blocking64.throughput_rps,
        epoll64.server_p99_us,
        results.iter().map(CellResult::to_json).collect::<Vec<_>>().join(",\n"),
    );
    println!("{rendered}");
    if let Some(path) = out_path {
        std::fs::write(&path, rendered.clone() + "\n").expect("write --out file");
        eprintln!("wrote {path}");
    }

    // Regression gate. Four conditions:
    //  1. baseline: the event backend at 64 connections must stay >= 4x
    //     over the serving stack this subsystem replaced (the committed
    //     PR 2 blocking figure — a fixed comparator, so the gate does not
    //     inherit the live blocking cells' scheduler noise);
    //  2. live: it must also beat the blocking oracle measured in the
    //     same run by >= 2x — a conservative floor (the live ratio swings
    //     with how the host schedules 128 threads on few cores) that
    //     still catches the event path collapsing to blocking speed;
    //  3. latency: server-side dispatch p99 <= 300us at the 64-connection
    //     cell;
    //  4. committed: the epoll 64-connection throughput must be within
    //     5x of the reference file (order-of-magnitude watchdog — the
    //     absolute number is host-dependent).
    if let Some(path) = check_path {
        let mut failed = false;
        if speedup_vs_baseline < 4.0 {
            eprintln!(
                "check FAILED: epoll only {speedup_vs_baseline:.2}x over the committed \
                 blocking baseline at 64 connections (gate: >= 4x)"
            );
            failed = true;
        }
        if speedup64 < 2.0 {
            eprintln!(
                "check FAILED: epoll only {speedup64:.2}x over live blocking at 64 \
                 connections (floor: >= 2x)"
            );
            failed = true;
        }
        if epoll64.server_p99_us > 300 {
            eprintln!(
                "check FAILED: epoll dispatch p99 {}us at 64 connections (bound: <= 300us)",
                epoll64.server_p99_us
            );
            failed = true;
        }
        let reference = std::fs::read_to_string(&path).expect("read --check file");
        let reference: serde_json::Value =
            serde_json::from_str(&reference).expect("parse --check file");
        let ref_rps = reference
            .get("epoll_vs_blocking_at_64_conns")
            .and_then(|v| v.get("epoll_rps"))
            .and_then(|v| v.as_f64());
        match ref_rps {
            Some(ref_rps) if epoll64.throughput_rps * 5.0 < ref_rps => {
                eprintln!(
                    "check FAILED: epoll at 64 connections {:.1} rps is >5x below the \
                     committed reference {ref_rps:.1} rps",
                    epoll64.throughput_rps
                );
                failed = true;
            }
            Some(_) => {}
            None => eprintln!("check: reference file has no epoll 64-connection entry — skipping"),
        }
        if failed {
            std::process::exit(1);
        }
        eprintln!(
            "check passed: epoll {speedup_vs_baseline:.2}x over the committed baseline, \
             {speedup64:.2}x over live blocking at 64 connections (dispatch p99 {}us)",
            epoll64.server_p99_us
        );
    }
}
