//! `kb_replication_bench` — replication catch-up throughput and client
//! failover latency for the `smartmld` replica stack.
//!
//! ```text
//! kb_replication_bench [--quick] [--out FILE] [--check FILE]
//!   --quick   smaller catch-up corpus and fewer failover rounds (CI smoke)
//!   --out     write the results JSON to FILE
//!   --check   regression gate: catch-up records/s within 5x of the
//!             committed reference, failover read p99 within 5x of the
//!             committed reference and <= 500ms absolutely
//! ```
//!
//! Two scenarios, both in-process on ephemeral ports:
//!
//! 1. **Catch-up**: a primary is seeded with a WAL of N records; a fresh
//!    replica tails it from zero. Reported throughput is N divided by
//!    the wall time from tailer spawn to `applied_seq` convergence — it
//!    covers the whole shipping path (`sync` pulls, chunk frame scans,
//!    local WAL appends, index applies).
//! 2. **Failover**: a client configured as `dead-primary,live-replica`
//!    issues one read per round from a cold connection state, so every
//!    round pays the full deterministic failover: refused connect to the
//!    primary, retry policy, then the replica answering. The direct
//!    (replica-only) read latency is reported alongside as the floor.

use smartml_classifiers::{Algorithm, ParamConfig};
use smartml_data::synth::gaussian_blobs;
use smartml_kbd::{
    DurableOptions, EventServer, EventServerOptions, KbClient, ReplicaOptions, ReplicaTailer,
    RetryPolicy, ServeRole, ShardedKb,
};
use smartml_metafeatures::{extract, MetaFeatures};
use std::net::TcpListener;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

const N_MFS: usize = 32;

fn temp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("smartml-repl-bench-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn corpus() -> Vec<MetaFeatures> {
    (0..N_MFS)
        .map(|i| {
            let d = gaussian_blobs(
                &format!("repl-bench-{i}"),
                60 + (i % 5) * 20,
                3 + i % 4,
                2 + i % 3,
                0.7 + (i % 3) as f64 * 0.2,
                i as u64,
            );
            extract(&d, &d.all_rows())
        })
        .collect()
}

fn durable() -> DurableOptions {
    DurableOptions { fsync_writes: false, ..Default::default() }
}

fn fast_retry() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 2,
        base_delay: Duration::from_millis(1),
        max_delay: Duration::from_millis(10),
        ..RetryPolicy::default()
    }
}

struct Primary {
    addr: String,
    handle: std::thread::JoinHandle<()>,
    dir: PathBuf,
}

fn spawn_primary(tag: &str) -> Primary {
    let dir = temp_dir(tag);
    let server = EventServer::bind(EventServerOptions {
        dir: dir.clone(),
        n_loops: 2,
        durable: durable(),
        ..EventServerOptions::default()
    })
    .expect("primary binds");
    let addr = server.local_addr().expect("addr").to_string();
    let handle = std::thread::spawn(move || server.run().expect("primary serve loop"));
    Primary { addr, handle, dir }
}

fn seed(client: &KbClient, queries: &[MetaFeatures], records: usize) {
    for i in 0..records {
        let run = smartml_kb::AlgorithmRun {
            algorithm: [Algorithm::RandomForest, Algorithm::Svm, Algorithm::Knn,
                Algorithm::NaiveBayes][i % 4],
            config: ParamConfig::default(),
            accuracy: 0.5 + (i % 45) as f64 / 100.0,
        };
        client
            .record_run(&format!("ds-{}", i % 200), &queries[i % queries.len()], run)
            .expect("seed record");
    }
}

/// Catch-up: fresh replica tails a pre-seeded primary to convergence.
fn bench_catch_up(records: usize, queries: &[MetaFeatures]) -> (f64, f64) {
    let primary = spawn_primary("catchup");
    let client = KbClient::connect(primary.addr.clone());
    seed(&client, queries, records);
    let target = client.stats().expect("stats").applied_seq;
    assert_eq!(target, records as u64);

    let replica_dir = temp_dir("catchup-replica");
    let store =
        Arc::new(ShardedKb::open_with(&replica_dir, durable(), 2).expect("replica opens"));
    let started = Instant::now();
    let tailer = ReplicaTailer::spawn(
        ReplicaOptions {
            primary: primary.addr.clone(),
            poll_interval: Duration::from_millis(1),
            durable: durable(),
            ..ReplicaOptions::default()
        },
        Arc::clone(&store),
    );
    while store.applied_seq() != target {
        assert!(
            started.elapsed() < Duration::from_secs(300),
            "catch-up stalled at {} of {target} (last error: {:?})",
            store.applied_seq(),
            tailer.last_error()
        );
        std::thread::yield_now();
    }
    let secs = started.elapsed().as_secs_f64();
    tailer.stop();
    let _ = client.shutdown();
    primary.handle.join().expect("primary thread");
    let _ = std::fs::remove_dir_all(&primary.dir);
    let _ = std::fs::remove_dir_all(&replica_dir);
    (secs, records as f64 / secs)
}

struct FailoverResult {
    rounds: usize,
    p50_us: u64,
    p99_us: u64,
    direct_p50_us: u64,
}

/// Failover: every round is a cold-state read against a replica set
/// whose primary endpoint refuses connections.
fn bench_failover(rounds: usize, records: usize, queries: &[MetaFeatures]) -> FailoverResult {
    let primary = spawn_primary("failover");
    let client = KbClient::connect(primary.addr.clone());
    seed(&client, queries, records);
    let target = client.stats().expect("stats").applied_seq;

    let replica_dir = temp_dir("failover-replica");
    let store =
        Arc::new(ShardedKb::open_with(&replica_dir, durable(), 2).expect("replica opens"));
    let tailer = ReplicaTailer::spawn(
        ReplicaOptions {
            primary: primary.addr.clone(),
            poll_interval: Duration::from_millis(1),
            durable: durable(),
            ..ReplicaOptions::default()
        },
        Arc::clone(&store),
    );
    let replica_server = EventServer::bind_with_store(
        EventServerOptions {
            dir: replica_dir.clone(),
            n_loops: 2,
            durable: durable(),
            role: ServeRole::Replica { primary: primary.addr.clone() },
            ..EventServerOptions::default()
        },
        Arc::clone(&store),
    )
    .expect("replica binds");
    let replica_addr = replica_server.local_addr().expect("addr").to_string();
    let replica_handle =
        std::thread::spawn(move || replica_server.run().expect("replica serve loop"));
    let wait = Instant::now();
    while store.applied_seq() != target {
        assert!(wait.elapsed() < Duration::from_secs(300), "replica never caught up");
        std::thread::sleep(Duration::from_millis(5));
    }
    tailer.stop();

    // Kill the primary; keep its port provably dead by binding and
    // dropping a listener on it is racy, so simply rely on the refused
    // connect after shutdown.
    client.shutdown().expect("kill primary");
    primary.handle.join().expect("primary thread");
    let dead_addr = {
        // A port that refused at bench time and stays closed: bind an
        // ephemeral listener, read its port, drop it.
        let l = TcpListener::bind("127.0.0.1:0").expect("probe listener");
        let a = l.local_addr().expect("probe addr").to_string();
        drop(l);
        a
    };

    let mut failover_us = Vec::with_capacity(rounds);
    let mut direct_us = Vec::with_capacity(rounds);
    for r in 0..rounds {
        let q = &queries[r % queries.len()];
        // Cold client each round: the failover path is paid in full.
        let failover_client =
            KbClient::connect(format!("{dead_addr},{replica_addr}")).with_retry(fast_retry());
        let begin = Instant::now();
        failover_client.recommend(q, None, &Default::default()).expect("failover read");
        failover_us.push(begin.elapsed().as_micros() as u64);

        let direct_client = KbClient::connect(replica_addr.clone());
        let begin = Instant::now();
        direct_client.recommend(q, None, &Default::default()).expect("direct read");
        direct_us.push(begin.elapsed().as_micros() as u64);
    }
    failover_us.sort_unstable();
    direct_us.sort_unstable();
    let pct = |v: &[u64], p: f64| v[((v.len() as f64 * p) as usize).min(v.len() - 1)];

    let control = KbClient::connect(replica_addr);
    control.shutdown().expect("replica shuts down");
    replica_handle.join().expect("replica thread");
    let _ = std::fs::remove_dir_all(&primary.dir);
    let _ = std::fs::remove_dir_all(&replica_dir);

    FailoverResult {
        rounds,
        p50_us: pct(&failover_us, 0.50),
        p99_us: pct(&failover_us, 0.99),
        direct_p50_us: pct(&direct_us, 0.50),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let flag_value = |flag: &str| {
        args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).cloned()
    };
    let out_path = flag_value("--out");
    let check_path = flag_value("--check");
    let (records, rounds) = if quick { (2_000, 100) } else { (10_000, 400) };

    let queries = corpus();

    let (catch_up_secs, records_per_sec) = bench_catch_up(records, &queries);
    eprintln!(
        "catch-up: {records} records in {catch_up_secs:.3}s = {records_per_sec:.0} records/s"
    );

    let failover = bench_failover(rounds, records.min(1_000), &queries);
    eprintln!(
        "failover read: p50 {}us p99 {}us over {} rounds (direct replica read p50 {}us)",
        failover.p50_us, failover.p99_us, failover.rounds, failover.direct_p50_us
    );

    let rendered = format!(
        "{{\n  \"bench\": \"kb_replication\",\n  \
         \"command\": \"{}\",\n  \
         \"catch_up\": {{\"records\": {records}, \"secs\": {catch_up_secs:.3}, \
         \"records_per_sec\": {records_per_sec:.1}}},\n  \
         \"failover\": {{\"rounds\": {}, \"read_p50_us\": {}, \"read_p99_us\": {}, \
         \"direct_read_p50_us\": {}}}\n}}",
        if quick { "kb_replication_bench --quick" } else { "kb_replication_bench" },
        failover.rounds,
        failover.p50_us,
        failover.p99_us,
        failover.direct_p50_us,
    );
    println!("{rendered}");
    if let Some(path) = out_path {
        std::fs::write(&path, rendered.clone() + "\n").expect("write --out file");
        eprintln!("wrote {path}");
    }

    // Regression gate. Three conditions:
    //  1. catch-up throughput within 5x of the committed reference
    //     (order-of-magnitude watchdog — absolute rates are host-bound);
    //  2. failover read p99 within 5x of the committed reference;
    //  3. failover read p99 <= 500ms absolutely — the deterministic
    //     failover must never degenerate into a timeout-scale stall.
    if let Some(path) = check_path {
        let mut failed = false;
        let reference = std::fs::read_to_string(&path).expect("read --check file");
        let reference: serde_json::Value =
            serde_json::from_str(&reference).expect("parse --check file");
        let ref_rps = reference
            .get("catch_up")
            .and_then(|v| v.get("records_per_sec"))
            .and_then(|v| v.as_f64());
        match ref_rps {
            Some(ref_rps) if records_per_sec * 5.0 < ref_rps => {
                eprintln!(
                    "check FAILED: catch-up {records_per_sec:.1} records/s is >5x below \
                     the committed reference {ref_rps:.1}"
                );
                failed = true;
            }
            Some(_) => {}
            None => eprintln!("check: reference file has no catch_up entry — skipping"),
        }
        let ref_p99 = reference
            .get("failover")
            .and_then(|v| v.get("read_p99_us"))
            .and_then(|v| v.as_u64());
        match ref_p99 {
            Some(ref_p99) if failover.p99_us > ref_p99.saturating_mul(5) => {
                eprintln!(
                    "check FAILED: failover read p99 {}us is >5x above the committed \
                     reference {ref_p99}us",
                    failover.p99_us
                );
                failed = true;
            }
            Some(_) => {}
            None => eprintln!("check: reference file has no failover entry — skipping"),
        }
        if failover.p99_us > 500_000 {
            eprintln!(
                "check FAILED: failover read p99 {}us exceeds the 500ms absolute bound",
                failover.p99_us
            );
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        eprintln!(
            "check passed: catch-up {records_per_sec:.0} records/s, failover read p99 {}us",
            failover.p99_us
        );
    }
}
