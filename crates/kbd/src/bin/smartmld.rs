//! `smartmld` — the SmartML knowledge-base daemon.
//!
//! ```text
//! smartmld --dir KB_DIR [--addr HOST:PORT] [--segment-bytes N]
//!          [--timeout-ms N] [--max-connections N] [--no-fsync]
//! ```
//!
//! Serves `recommend` / `record_run` / `set_landmarkers` / `stats` /
//! `snapshot` / `ping` / `shutdown` as JSON lines over TCP (see
//! `smartml_kbd::protocol`). `--addr` defaulting to port `0` picks an
//! ephemeral port; the chosen address is printed on the `listening on`
//! line so scripts can scrape it.

use smartml_kbd::{DurableOptions, Server, ServerOptions};
use std::process::ExitCode;
use std::time::Duration;

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).map(String::as_str)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!(
            "usage: smartmld --dir KB_DIR [--addr HOST:PORT] [--segment-bytes N] \
             [--timeout-ms N] [--max-connections N] [--no-fsync]"
        );
        return ExitCode::from(2);
    }
    match serve(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("smartmld: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn serve(args: &[String]) -> Result<(), String> {
    let dir = flag_value(args, "--dir").ok_or("--dir KB_DIR is required")?;
    let mut options = ServerOptions {
        dir: dir.into(),
        addr: flag_value(args, "--addr").unwrap_or("127.0.0.1:0").to_string(),
        ..ServerOptions::default()
    };
    let mut durable = DurableOptions::default();
    if let Some(n) = flag_value(args, "--segment-bytes") {
        durable.segment_bytes = n.parse().map_err(|_| "--segment-bytes expects a number")?;
    }
    if args.iter().any(|a| a == "--no-fsync") {
        durable.fsync_writes = false;
    }
    options.durable = durable;
    if let Some(ms) = flag_value(args, "--timeout-ms") {
        let ms: u64 = ms.parse().map_err(|_| "--timeout-ms expects a number")?;
        options.request_timeout = (ms > 0).then(|| Duration::from_millis(ms));
    }
    if let Some(n) = flag_value(args, "--max-connections") {
        options.max_connections =
            n.parse().map_err(|_| "--max-connections expects a number")?;
    }

    let server = Server::bind(options).map_err(|e| e.to_string())?;
    let addr = server.local_addr().map_err(|e| e.to_string())?;
    let recovery = server.recovery();
    let (datasets, runs) = server.shared().read(|s| (s.kb().len(), s.kb().n_runs()));
    println!(
        "smartmld: recovered {datasets} datasets / {runs} runs \
         (snapshot {:?}, {} wal records replayed{})",
        recovery.snapshot_seq,
        recovery.records_replayed,
        if recovery.truncated_tail { ", torn tail truncated" } else { "" }
    );
    // Scraped by scripts/verify.sh and tests: keep the format stable.
    println!("smartmld: listening on {addr}");
    server.run().map_err(|e| e.to_string())?;
    println!("smartmld: shut down cleanly");
    Ok(())
}
