//! `smartmld` — the SmartML knowledge-base daemon.
//!
//! ```text
//! smartmld --dir KB_DIR [--addr HOST:PORT] [--io blocking|epoll]
//!          [--shards N] [--segment-bytes N] [--timeout-ms N]
//!          [--max-connections N] [--no-fsync]
//!          [--replica-of HOST:PORT]
//! ```
//!
//! Serves `recommend` / `recommend_batch` / `record_run` /
//! `set_landmarkers` / `stats` / `snapshot` / `sync` / `ping` /
//! `shutdown` as JSON lines over TCP (see `smartml_kbd::protocol`),
//! with two interchangeable backends:
//!
//! - `--io epoll` (default): event loops over a sharded store —
//!   pipelined, non-blocking, scales to many connections;
//! - `--io blocking`: thread-per-connection over the monolithic store —
//!   the retained oracle, byte-identical in its responses.
//!
//! With `--replica-of PRIMARY` (epoll only) the process becomes a read
//! replica: a background tailer pulls the primary's WAL over the `sync`
//! verb into `--dir`, while the serving loops answer reads and reject
//! writes with a `not_primary` redirect.
//!
//! `--addr` defaulting to port `0` picks an ephemeral port; the chosen
//! address is printed on the `listening on` line so scripts can scrape
//! it.

use smartml_kbd::{
    DurableOptions, EventServer, EventServerOptions, ReplicaOptions, ReplicaTailer, ServeRole,
    Server, ServerOptions, ShardedKb,
};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).map(String::as_str)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!(
            "usage: smartmld --dir KB_DIR [--addr HOST:PORT] [--io blocking|epoll] \
             [--shards N] [--segment-bytes N] [--timeout-ms N] [--max-connections N] \
             [--no-fsync] [--replica-of HOST:PORT]"
        );
        return ExitCode::from(2);
    }
    match serve(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("smartmld: {msg}");
            ExitCode::FAILURE
        }
    }
}

struct Config {
    dir: String,
    addr: String,
    durable: DurableOptions,
    request_timeout: Option<Duration>,
    max_connections: usize,
    shards: usize,
}

fn parse(args: &[String]) -> Result<Config, String> {
    let dir = flag_value(args, "--dir").ok_or("--dir KB_DIR is required")?.to_string();
    let mut durable = DurableOptions::default();
    if let Some(n) = flag_value(args, "--segment-bytes") {
        durable.segment_bytes = n.parse().map_err(|_| "--segment-bytes expects a number")?;
    }
    if args.iter().any(|a| a == "--no-fsync") {
        durable.fsync_writes = false;
    }
    let mut request_timeout = Some(Duration::from_secs(10));
    if let Some(ms) = flag_value(args, "--timeout-ms") {
        let ms: u64 = ms.parse().map_err(|_| "--timeout-ms expects a number")?;
        request_timeout = (ms > 0).then(|| Duration::from_millis(ms));
    }
    let max_connections = match flag_value(args, "--max-connections") {
        Some(n) => n.parse().map_err(|_| "--max-connections expects a number")?,
        None => 0,
    };
    let shards = match flag_value(args, "--shards") {
        Some(n) => n.parse().map_err(|_| "--shards expects a number")?,
        None => 0,
    };
    Ok(Config {
        dir,
        addr: flag_value(args, "--addr").unwrap_or("127.0.0.1:0").to_string(),
        durable,
        request_timeout,
        max_connections,
        shards,
    })
}

fn report_recovery(recovery: &smartml_kbd::RecoveryReport, datasets: usize, runs: usize) {
    println!(
        "smartmld: recovered {datasets} datasets / {runs} runs \
         (snapshot {:?}, {} wal records replayed{})",
        recovery.snapshot_seq,
        recovery.records_replayed,
        if recovery.truncated_tail { ", torn tail truncated" } else { "" }
    );
}

fn serve(args: &[String]) -> Result<(), String> {
    let cfg = parse(args)?;
    let replica_of = flag_value(args, "--replica-of").map(str::to_string);
    match flag_value(args, "--io").unwrap_or("epoll") {
        "blocking" if replica_of.is_some() => {
            return Err("--replica-of requires the epoll backend".to_string());
        }
        "blocking" => {
            let server = Server::bind(ServerOptions {
                dir: cfg.dir.into(),
                addr: cfg.addr,
                max_connections: cfg.max_connections,
                request_timeout: cfg.request_timeout,
                durable: cfg.durable,
                role: Default::default(),
            })
            .map_err(|e| e.to_string())?;
            let addr = server.local_addr().map_err(|e| e.to_string())?;
            let (datasets, runs) = server.shared().read(|s| (s.kb().len(), s.kb().n_runs()));
            report_recovery(server.recovery(), datasets, runs);
            // Scraped by scripts/verify.sh and tests: keep the format stable.
            println!("smartmld: listening on {addr}");
            server.run().map_err(|e| e.to_string())?;
        }
        "epoll" => {
            let role = match &replica_of {
                Some(primary) => ServeRole::Replica { primary: primary.clone() },
                None => ServeRole::Primary,
            };
            let shards = if cfg.shards == 0 {
                smartml_runtime::available_parallelism()
            } else {
                cfg.shards
            };
            let store = Arc::new(
                ShardedKb::open_with(std::path::Path::new(&cfg.dir), cfg.durable.clone(), shards)
                    .map_err(|e| e.to_string())?,
            );
            let tailer = replica_of.as_ref().map(|primary| {
                Arc::new(ReplicaTailer::spawn(
                    ReplicaOptions {
                        primary: primary.clone(),
                        durable: cfg.durable.clone(),
                        ..ReplicaOptions::default()
                    },
                    Arc::clone(&store),
                ))
            });
            let server = EventServer::bind_with_store(
                EventServerOptions {
                    dir: cfg.dir.into(),
                    addr: cfg.addr,
                    n_loops: shards,
                    max_connections: cfg.max_connections,
                    request_timeout: cfg.request_timeout,
                    durable: cfg.durable,
                    role,
                },
                store,
            )
            .map_err(|e| e.to_string())?;
            let addr = server.local_addr().map_err(|e| e.to_string())?;
            if let Some(handle) = &tailer {
                // A PROMOTE request flips the role cell and runs this
                // hook: the tailer is told to stop (without the serving
                // thread blocking on its current pull) and the server
                // starts accepting writes on the next request.
                let handle = Arc::clone(handle);
                server.role_cell().set_promote_hook(move || handle.request_stop());
            }
            let (datasets, runs) = (server.store().len(), server.store().n_runs());
            report_recovery(server.recovery(), datasets, runs);
            println!(
                "smartmld: epoll backend, {} event loop(s) / shard(s)",
                server.store().n_shards()
            );
            if let Some(primary) = &replica_of {
                println!("smartmld: read replica of {primary}");
            }
            // Scraped by scripts/verify.sh and tests: keep the format stable.
            println!("smartmld: listening on {addr}");
            server.run().map_err(|e| e.to_string())?;
            // The role cell (and any clone the promote hook captured)
            // died with the serve loops, so this is the final handle:
            // dropping it stops and joins the tailer thread.
            drop(tailer);
        }
        other => return Err(format!("--io expects `blocking` or `epoll`, got `{other}`")),
    }
    println!("smartmld: shut down cleanly");
    Ok(())
}
