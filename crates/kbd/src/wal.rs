//! The knowledge-base write-ahead log: framing, segments, recovery.
//!
//! Every mutation of the KB (`record_run`, `set_landmarkers`) is
//! serialised as one [`WalRecord`] and appended to the active segment
//! *before* being applied to the in-memory index — the standard WAL
//! discipline, so a crash at any instant loses at most the record whose
//! write was interrupted.
//!
//! ## Frame format
//!
//! One record per line, length-prefixed and checksummed:
//!
//! ```text
//! <len:8 hex> <fnv1a:8 hex> <payload JSON>\n
//! ```
//!
//! `len` is the payload's byte length; `fnv1a` is the FNV-1a 32-bit hash
//! of the payload bytes. The fixed 18-byte header makes torn writes
//! detectable without scanning: a frame whose header is short, whose
//! payload is shorter than `len`, or whose checksum mismatches is a torn
//! tail. The payload itself never contains a raw newline (serde_json
//! escapes them), so the format stays greppable.
//!
//! ## Segments and recovery
//!
//! Segments are named `wal-NNNNNN.log` with a monotonically increasing
//! sequence number that is never reused. The active segment rotates once
//! it exceeds the configured size threshold. Recovery replays every
//! segment in sequence order over the latest snapshot; a torn frame ends
//! replay of that segment and is *truncated off the file* so the log is
//! clean for subsequent appends. A frame that passes its checksum but
//! fails to parse as a [`WalRecord`] is real corruption (not a torn
//! write) and surfaces as [`KbError::Corrupt`] naming the segment.

use serde::{Deserialize, Serialize};
use smartml_kb::{AlgorithmRun, KbError, KnowledgeBase};
use smartml_metafeatures::{Landmarkers, MetaFeatures};
use smartml_obs::Counter;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// Durability work performed by the WAL, surfaced through the `metrics`
/// protocol verb. Live only while metrics are enabled (the server enables
/// them; embedded library use stays zero-overhead).
pub(crate) static WAL_FSYNCS: Counter = Counter::new("kbd.wal.fsyncs");
pub(crate) static WAL_ROTATIONS: Counter = Counter::new("kbd.wal.rotations");

/// Bytes before the payload: 8 hex (len) + space + 8 hex (checksum) + space.
const HEADER_LEN: usize = 18;

/// One logged KB mutation.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum WalRecord {
    /// `KnowledgeBase::record_run`.
    Run {
        /// Dataset identifier.
        dataset_id: String,
        /// The dataset's meta-features at record time.
        meta_features: MetaFeatures,
        /// The observed (algorithm, config) → accuracy result.
        run: AlgorithmRun,
    },
    /// `KnowledgeBase::set_landmarkers`.
    Landmarkers {
        /// Dataset identifier.
        dataset_id: String,
        /// Landmarker accuracies to attach.
        landmarkers: Landmarkers,
    },
}

impl WalRecord {
    /// Replays this record against an in-memory KB.
    pub fn apply_to(&self, kb: &mut KnowledgeBase) {
        match self {
            WalRecord::Run { dataset_id, meta_features, run } => {
                kb.record_run(dataset_id, meta_features, run.clone());
            }
            WalRecord::Landmarkers { dataset_id, landmarkers } => {
                kb.set_landmarkers(dataset_id, *landmarkers);
            }
        }
    }
}

/// FNV-1a 32-bit: tiny, dependency-free, and plenty for torn-write
/// detection (this guards against partial writes, not adversaries).
pub fn fnv1a(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in bytes {
        h ^= b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// Frames one raw payload (which must not contain `\n`; serde_json
/// escapes them) as `<len:8 hex> <fnv1a:8 hex> <payload>\n`. The
/// generic layer under [`encode_frame`]: the job service's journal
/// logs its own record type through this exact format, so both logs
/// share one torn-write discipline and one recovery scanner.
pub fn encode_payload_frame(payload: &[u8]) -> Vec<u8> {
    debug_assert!(!payload.contains(&b'\n'), "frame payloads must be newline-free");
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + 1);
    out.extend_from_slice(format!("{:08x} {:08x} ", payload.len(), fnv1a(payload)).as_bytes());
    out.extend_from_slice(payload);
    out.push(b'\n');
    out
}

/// Encodes one record as a framed line.
pub fn encode_frame(record: &WalRecord) -> Vec<u8> {
    let payload = serde_json::to_string(record).expect("WAL record serialisation cannot fail");
    encode_payload_frame(payload.as_bytes())
}

/// Outcome of scanning framed payloads (the record-agnostic layer under
/// [`SegmentScan`]).
#[derive(Debug)]
pub struct PayloadScan {
    /// `(byte offset, payload)` of every complete frame, in order.
    pub payloads: Vec<(u64, String)>,
    /// Byte offset of the first torn frame (`None` when clean).
    pub torn_at: Option<u64>,
}

/// A checksummed frame whose payload is not valid UTF-8: real
/// corruption, never produced by a torn write (the checksum would have
/// failed first).
#[derive(Debug)]
pub struct FrameCorruption {
    /// Byte offset of the corrupt frame.
    pub offset: u64,
    /// What was wrong with it.
    pub detail: String,
}

/// Decodes all complete frames in `bytes` without interpreting their
/// payloads. Stops at the first torn frame (short header, short
/// payload, checksum mismatch, or missing trailing newline) and reports
/// its offset.
pub fn scan_payload_frames(bytes: &[u8]) -> Result<PayloadScan, FrameCorruption> {
    let mut payloads = Vec::new();
    let mut offset = 0usize;
    while offset < bytes.len() {
        let rest = &bytes[offset..];
        if rest.len() < HEADER_LEN {
            return Ok(PayloadScan { payloads, torn_at: Some(offset as u64) });
        }
        let header = &rest[..HEADER_LEN];
        let parsed = std::str::from_utf8(header).ok().and_then(|h| {
            let len = u32::from_str_radix(h.get(0..8)?, 16).ok()?;
            let sum = u32::from_str_radix(h.get(9..17)?, 16).ok()?;
            (h.as_bytes()[8] == b' ' && h.as_bytes()[17] == b' ').then_some((len, sum))
        });
        let Some((len, sum)) = parsed else {
            return Ok(PayloadScan { payloads, torn_at: Some(offset as u64) });
        };
        let len = len as usize;
        let frame_end = HEADER_LEN + len + 1; // + newline
        if rest.len() < frame_end || rest[frame_end - 1] != b'\n' {
            return Ok(PayloadScan { payloads, torn_at: Some(offset as u64) });
        }
        let payload = &rest[HEADER_LEN..HEADER_LEN + len];
        if fnv1a(payload) != sum {
            return Ok(PayloadScan { payloads, torn_at: Some(offset as u64) });
        }
        let text = std::str::from_utf8(payload).map_err(|e| FrameCorruption {
            offset: offset as u64,
            detail: format!("checksummed frame at byte {offset} is not UTF-8: {e}"),
        })?;
        payloads.push((offset as u64, text.to_string()));
        offset += frame_end;
    }
    Ok(PayloadScan { payloads, torn_at: None })
}

/// Outcome of scanning one segment.
#[derive(Debug)]
pub struct SegmentScan {
    /// Records recovered, in append order.
    pub records: Vec<WalRecord>,
    /// Byte offset of the first torn frame (`None` when the segment is
    /// clean). Everything from here on should be truncated.
    pub torn_at: Option<u64>,
}

/// Decodes all complete frames in `bytes`. Stops at the first torn frame
/// (short header, short payload, checksum mismatch, or missing trailing
/// newline) and reports its offset. A checksum-valid frame whose JSON
/// does not parse is corruption, not tearing.
pub fn scan_frames(bytes: &[u8], origin: &Path) -> Result<SegmentScan, KbError> {
    let scan = scan_payload_frames(bytes).map_err(|c| KbError::Corrupt {
        path: Some(origin.to_path_buf()),
        detail: c.detail,
    })?;
    let mut records = Vec::with_capacity(scan.payloads.len());
    for (offset, text) in &scan.payloads {
        let record: WalRecord = serde_json::from_str(text).map_err(|e| KbError::Corrupt {
            path: Some(origin.to_path_buf()),
            detail: format!("checksummed frame at byte {offset} failed to parse: {e}"),
        })?;
        records.push(record);
    }
    Ok(SegmentScan { records, torn_at: scan.torn_at })
}

/// Segment file name for a sequence number.
pub fn segment_name(seq: u64) -> String {
    format!("wal-{seq:06}.log")
}

/// Snapshot file name for the highest segment sequence it covers.
pub fn snapshot_name(seq: u64) -> String {
    format!("snapshot-{seq:06}.json")
}

/// Sidecar metadata file name for a snapshot. Holds recovery state the
/// snapshot JSON itself cannot carry (today: the applied record count),
/// written atomically next to its snapshot.
pub fn meta_name(seq: u64) -> String {
    format!("snapshot-{seq:06}.meta.json")
}

/// Parses `wal-NNNNNN.log` → `NNNNNN`.
pub fn parse_segment_name(name: &str) -> Option<u64> {
    name.strip_prefix("wal-")?.strip_suffix(".log")?.parse().ok()
}

/// Parses `snapshot-NNNNNN.json` → `NNNNNN`.
pub fn parse_snapshot_name(name: &str) -> Option<u64> {
    name.strip_prefix("snapshot-")?.strip_suffix(".json")?.parse().ok()
}

/// Parses `snapshot-NNNNNN.meta.json` → `NNNNNN`.
pub fn parse_meta_name(name: &str) -> Option<u64> {
    name.strip_prefix("snapshot-")?.strip_suffix(".meta.json")?.parse().ok()
}

/// Length of the longest prefix of `bytes` that is a whole number of
/// syntactically complete frames and stays within `cap` bytes. A sync
/// chunk must never split a frame, so when even the first frame exceeds
/// `cap` it is returned whole. Anything that fails to parse as a frame
/// header ends the walk — the caller decides whether a short prefix is a
/// tear or simply "more bytes arriving later".
pub fn frames_prefix(bytes: &[u8], cap: usize) -> usize {
    let mut end = 0usize;
    while end < bytes.len() {
        let rest = &bytes[end..];
        if rest.len() < HEADER_LEN {
            break;
        }
        let len = std::str::from_utf8(&rest[..8])
            .ok()
            .and_then(|h| u32::from_str_radix(h, 16).ok());
        let Some(len) = len else { break };
        let frame_end = HEADER_LEN + len as usize + 1;
        if rest.len() < frame_end || rest[frame_end - 1] != b'\n' {
            break;
        }
        if end > 0 && end + frame_end > cap {
            break;
        }
        end += frame_end;
        if end >= cap {
            break;
        }
    }
    end
}

/// Sorted sequence numbers of all files in `dir` matching `parse`.
pub fn list_seqs(dir: &Path, parse: fn(&str) -> Option<u64>) -> Result<Vec<u64>, KbError> {
    let mut seqs = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(seq) = entry.file_name().to_str().and_then(parse) {
            seqs.push(seq);
        }
    }
    seqs.sort_unstable();
    Ok(seqs)
}

/// The append side of the WAL: an open handle on the active segment.
pub struct WalWriter {
    dir: PathBuf,
    seq: u64,
    file: File,
    len: u64,
    segment_bytes: u64,
    fsync_writes: bool,
}

impl WalWriter {
    /// Opens (creating if needed) segment `seq` in `dir` for appending.
    pub fn open(
        dir: &Path,
        seq: u64,
        segment_bytes: u64,
        fsync_writes: bool,
    ) -> Result<WalWriter, KbError> {
        let path = dir.join(segment_name(seq));
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        let len = file.metadata()?.len();
        Ok(WalWriter { dir: dir.to_path_buf(), seq, file, len, segment_bytes, fsync_writes })
    }

    /// Sequence number of the active segment.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Bytes currently in the active segment.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when the active segment holds no frames.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends one record, rotating to a fresh segment first when the
    /// active one is over the size threshold. Returns the sequence number
    /// the record landed in.
    pub fn append(&mut self, record: &WalRecord) -> Result<u64, KbError> {
        if self.len >= self.segment_bytes && self.len > 0 {
            self.rotate()?;
        }
        let frame = encode_frame(record);
        self.file.write_all(&frame)?;
        if self.fsync_writes {
            self.file.sync_data()?;
            WAL_FSYNCS.inc();
        }
        self.len += frame.len() as u64;
        Ok(self.seq)
    }

    /// Appends pre-framed bytes verbatim, with no rotation: the
    /// replication path, which must mirror the primary's segment
    /// boundaries exactly rather than rotate on its own thresholds. The
    /// caller guarantees `bytes` is a whole number of valid frames.
    pub fn append_raw(&mut self, bytes: &[u8]) -> Result<(), KbError> {
        self.file.write_all(bytes)?;
        if self.fsync_writes {
            self.file.sync_data()?;
            WAL_FSYNCS.inc();
        }
        self.len += bytes.len() as u64;
        Ok(())
    }

    /// Seals the active segment and opens the next one.
    pub fn rotate(&mut self) -> Result<(), KbError> {
        self.file.sync_data()?;
        WAL_FSYNCS.inc();
        let next = WalWriter::open(&self.dir, self.seq + 1, self.segment_bytes, self.fsync_writes)?;
        *self = next;
        WAL_ROTATIONS.inc();
        Ok(())
    }

    /// Flushes pending appends to the OS (and disk when fsync is on).
    pub fn sync(&mut self) -> Result<(), KbError> {
        self.file.sync_data()?;
        WAL_FSYNCS.inc();
        Ok(())
    }
}

/// Replays one segment file into `kb`, truncating a torn tail in place.
/// Returns the number of records applied.
pub fn replay_segment(path: &Path, kb: &mut KnowledgeBase) -> Result<usize, KbError> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    let scan = scan_frames(&bytes, path)?;
    if let Some(torn_at) = scan.torn_at {
        // Drop the torn tail so future appends start on a frame boundary.
        let f = OpenOptions::new().write(true).open(path)?;
        f.set_len(torn_at)?;
        f.sync_all()?;
    }
    for record in &scan.records {
        record.apply_to(kb);
    }
    Ok(scan.records.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartml_classifiers::{Algorithm, ParamConfig};
    use smartml_data::synth::gaussian_blobs;
    use smartml_metafeatures::extract;

    fn mf() -> MetaFeatures {
        let d = gaussian_blobs("w", 40, 3, 2, 1.0, 1);
        extract(&d, &d.all_rows())
    }

    fn rec(i: usize) -> WalRecord {
        WalRecord::Run {
            dataset_id: format!("d{i}"),
            meta_features: mf(),
            run: AlgorithmRun {
                algorithm: Algorithm::Knn,
                config: ParamConfig::default(),
                accuracy: 0.5 + i as f64 * 0.01,
            },
        }
    }

    #[test]
    fn frame_roundtrip() {
        let frame = encode_frame(&rec(1));
        let scan = scan_frames(&frame, Path::new("mem")).unwrap();
        assert_eq!(scan.records.len(), 1);
        assert!(scan.torn_at.is_none());
        match &scan.records[0] {
            WalRecord::Run { dataset_id, .. } => assert_eq!(dataset_id, "d1"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn torn_tail_detected_at_every_cut_point() {
        let mut bytes = encode_frame(&rec(1));
        bytes.extend_from_slice(&encode_frame(&rec(2)));
        let second_start = encode_frame(&rec(1)).len() as u64;
        // Cut the buffer at every length inside the second frame: exactly
        // one record must survive and the tear must point at its start.
        for cut in (second_start as usize + 1)..bytes.len() {
            let scan = scan_frames(&bytes[..cut], Path::new("mem")).unwrap();
            assert_eq!(scan.records.len(), 1, "cut at {cut}");
            assert_eq!(scan.torn_at, Some(second_start), "cut at {cut}");
        }
    }

    #[test]
    fn checksum_mismatch_is_a_tear() {
        let mut bytes = encode_frame(&rec(1));
        let n = bytes.len();
        bytes[n - 3] ^= 0x01; // flip a payload bit
        let scan = scan_frames(&bytes, Path::new("mem")).unwrap();
        assert!(scan.records.is_empty());
        assert_eq!(scan.torn_at, Some(0));
    }

    #[test]
    fn valid_checksum_bad_json_is_corruption() {
        let payload = b"{\"kind\":\"nonsense\"}";
        let mut bytes =
            format!("{:08x} {:08x} ", payload.len(), fnv1a(payload)).into_bytes();
        bytes.extend_from_slice(payload);
        bytes.push(b'\n');
        match scan_frames(&bytes, Path::new("seg.log")) {
            Err(KbError::Corrupt { path: Some(p), .. }) => {
                assert_eq!(p, Path::new("seg.log"));
            }
            other => panic!("expected corruption, got {other:?}"),
        }
    }

    #[test]
    fn writer_rotates_at_threshold() {
        let dir = std::env::temp_dir().join("smartml-wal-rotate-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let one_frame = encode_frame(&rec(0)).len() as u64;
        // Threshold of ~2 frames: rotation after every second append.
        let mut w = WalWriter::open(&dir, 1, one_frame * 2 - 1, false).unwrap();
        for i in 0..6 {
            w.append(&rec(i)).unwrap();
        }
        let segs = list_seqs(&dir, parse_segment_name).unwrap();
        assert!(segs.len() >= 3, "expected rotation, got segments {segs:?}");
        // Replay across all segments reconstructs all six records.
        let mut kb = KnowledgeBase::new();
        let mut total = 0;
        for seq in segs {
            total += replay_segment(&dir.join(segment_name(seq)), &mut kb).unwrap();
        }
        assert_eq!(total, 6);
        assert_eq!(kb.len(), 6);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn replay_truncates_torn_tail_on_disk() {
        let dir = std::env::temp_dir().join("smartml-wal-truncate-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(segment_name(1));
        let mut bytes = encode_frame(&rec(1));
        let clean_len = bytes.len() as u64;
        let torn = encode_frame(&rec(2));
        bytes.extend_from_slice(&torn[..torn.len() / 2]);
        std::fs::write(&path, &bytes).unwrap();
        let mut kb = KnowledgeBase::new();
        assert_eq!(replay_segment(&path, &mut kb).unwrap(), 1);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), clean_len);
        // Appending after recovery lands on a clean boundary.
        let mut w = WalWriter::open(&dir, 1, u64::MAX, false).unwrap();
        w.append(&rec(3)).unwrap();
        let mut kb2 = KnowledgeBase::new();
        assert_eq!(replay_segment(&path, &mut kb2).unwrap(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn name_parsing_roundtrip() {
        assert_eq!(parse_segment_name(&segment_name(42)), Some(42));
        assert_eq!(parse_snapshot_name(&snapshot_name(7)), Some(7));
        assert_eq!(parse_meta_name(&meta_name(9)), Some(9));
        assert_eq!(parse_segment_name("snapshot-000001.json"), None);
        assert_eq!(parse_snapshot_name("wal-000001.log"), None);
        assert_eq!(parse_segment_name("wal-junk.log"), None);
        // Sidecars must not be mistaken for snapshots (or vice versa).
        assert_eq!(parse_snapshot_name(&meta_name(9)), None);
        assert_eq!(parse_meta_name(&snapshot_name(9)), None);
    }

    #[test]
    fn frames_prefix_cuts_only_at_frame_boundaries() {
        let f1 = encode_frame(&rec(1));
        let f2 = encode_frame(&rec(2));
        let mut bytes = f1.clone();
        bytes.extend_from_slice(&f2);
        // Everything fits under the cap: both frames.
        assert_eq!(frames_prefix(&bytes, usize::MAX), bytes.len());
        // Cap between the frames: only the first ships.
        assert_eq!(frames_prefix(&bytes, f1.len() + 1), f1.len());
        // Cap smaller than even one frame: the first still ships whole.
        assert_eq!(frames_prefix(&bytes, 4), f1.len());
        // A torn tail ends the walk at the last complete frame.
        assert_eq!(frames_prefix(&bytes[..bytes.len() - 3], usize::MAX), f1.len());
        assert_eq!(frames_prefix(&[], usize::MAX), 0);
    }
}
