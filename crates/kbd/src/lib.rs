//! Durable, concurrent serving for the SmartML knowledge base.
//!
//! The paper's framework "gets smarter by getting more experience": every
//! run appends `(meta-features, tuned configuration, accuracy)` records,
//! and every new dataset queries the accumulated experience for algorithm
//! nominations and SMAC warm starts. `smartml-kb` holds that experience
//! in memory with single-file JSON persistence — fine for one process,
//! useless for a deployment. This crate is the serving stack on top:
//!
//! | layer | type | what it adds |
//! |-------|------|--------------|
//! | durability | [`DurableKb`] | write-ahead log with checksummed frames, segment rotation, snapshot + compaction, torn-tail crash recovery |
//! | concurrency | [`SharedKb`] | `RwLock`-guarded index with generation-keyed cached z-score statistics: readers never pay re-normalisation, never block each other |
//! | sharding | [`ShardedKb`] | the same WAL under an index split by meta-feature hash: writes lock one shard, reads reuse per-generation pre-normalised entries, answers byte-identical to the monolithic KB |
//! | serving | [`Server`] / [`EventServer`] / [`KbClient`] | `smartmld`, a TCP JSON-lines server in two interchangeable backends — blocking thread-per-connection (the retained oracle) and epoll event loops with pipelining and a `recommend_batch` verb — plus a blocking client that is also a [`smartml_kb::KbBackend`] |
//!
//! ```no_run
//! use smartml_kbd::{Server, ServerOptions, KbClient};
//!
//! let server = Server::bind(ServerOptions {
//!     dir: "my-kb".into(),
//!     ..ServerOptions::default()
//! }).unwrap();
//! let addr = server.local_addr().unwrap();
//! std::thread::spawn(move || server.run().unwrap());
//!
//! let client = KbClient::connect(addr.to_string());
//! client.ping().unwrap();
//! ```

mod client;
mod durable;
mod event_server;
mod protocol;
mod replica;
mod server;
mod service;
mod sharded;
mod shared;
mod wal;

pub use client::{KbClient, RetryPolicy};
pub use durable::{DurableKb, DurableOptions, RecoveryReport};
pub use event_server::{EventServer, EventServerOptions, LoopStats};
pub use protocol::{
    oversized_frame_message, read_frame, BatchQuery, FrameStatus, KbStats, Request, Response,
    ServerMetrics, MAX_FRAME_BYTES, SYNC_CHUNK_BYTES,
};
pub use replica::{ReplicaHandle, ReplicaOptions, ReplicaTailer};
pub use server::{Server, ServerOptions};
pub use service::{RoleCell, ServeRole, ServeStore};
pub use sharded::ShardedKb;
pub use shared::{LocalStore, SharedKb, SharedKbHandle};
pub use wal::{
    encode_frame, encode_payload_frame, fnv1a, parse_segment_name, parse_snapshot_name,
    replay_segment, scan_frames, scan_payload_frames, segment_name, snapshot_name,
    FrameCorruption, PayloadScan, SegmentScan, WalRecord, WalWriter,
};
