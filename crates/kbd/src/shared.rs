//! [`SharedKb`]: the concurrent read-optimised index over a store.
//!
//! The serving hot path is `recommend`, which z-scores every entry using
//! per-feature mean/std statistics over the whole KB. Recomputing those
//! statistics per query is O(entries × features) of pure waste between
//! writes, so `SharedKb` caches them keyed by a write *generation*:
//!
//! - readers share an `RwLock` read guard — they never block each other;
//! - the first read after a write recomputes the statistics (outside the
//!   small cache mutex, so racing readers duplicate the cheap compute
//!   instead of serialising on it) and publishes them for the generation;
//! - writers take the write lock, mutate the store, and bump the
//!   generation, which invalidates the cache without touching it.
//!
//! The generation counter only changes under the write lock, so a reader
//! holding the read guard always pairs the entries it sees with the
//! statistics of the same generation — recommendations are computed
//! against a consistent prefix of writes.

use crate::durable::DurableKb;
use smartml_kb::{
    AlgorithmRun, KbBackend, KbError, KnowledgeBase, NormStats, QueryOptions, Recommendation,
};
use smartml_metafeatures::{Landmarkers, MetaFeatures};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// A store a [`SharedKb`] can guard: anything that exposes its in-memory
/// [`KnowledgeBase`] and fallibly applies mutations.
pub trait LocalStore: Send + Sync {
    /// The in-memory index.
    fn index(&self) -> &KnowledgeBase;
    /// Applies one run observation.
    fn apply_run(
        &mut self,
        dataset_id: &str,
        meta_features: &MetaFeatures,
        run: AlgorithmRun,
    ) -> Result<(), KbError>;
    /// Applies landmarker accuracies.
    fn apply_landmarkers(
        &mut self,
        dataset_id: &str,
        landmarkers: Landmarkers,
    ) -> Result<(), KbError>;
}

impl LocalStore for KnowledgeBase {
    fn index(&self) -> &KnowledgeBase {
        self
    }

    fn apply_run(
        &mut self,
        dataset_id: &str,
        meta_features: &MetaFeatures,
        run: AlgorithmRun,
    ) -> Result<(), KbError> {
        self.record_run(dataset_id, meta_features, run);
        Ok(())
    }

    fn apply_landmarkers(
        &mut self,
        dataset_id: &str,
        landmarkers: Landmarkers,
    ) -> Result<(), KbError> {
        self.set_landmarkers(dataset_id, landmarkers);
        Ok(())
    }
}

impl LocalStore for DurableKb {
    fn index(&self) -> &KnowledgeBase {
        self.kb()
    }

    fn apply_run(
        &mut self,
        dataset_id: &str,
        meta_features: &MetaFeatures,
        run: AlgorithmRun,
    ) -> Result<(), KbError> {
        self.record_run(dataset_id, meta_features, run)
    }

    fn apply_landmarkers(
        &mut self,
        dataset_id: &str,
        landmarkers: Landmarkers,
    ) -> Result<(), KbError> {
        self.set_landmarkers(dataset_id, landmarkers)
    }
}

/// Concurrent wrapper: `&self` reads and writes, safe to share across
/// threads behind an `Arc`.
pub struct SharedKb<S: LocalStore> {
    store: RwLock<S>,
    /// Bumped on every successful mutation; only written under the
    /// `store` write lock, so it is stable while a read guard is held.
    generation: AtomicU64,
    /// `(generation, stats)` of the last normalisation pass.
    stats_cache: Mutex<Option<(u64, Arc<NormStats>)>>,
}

impl<S: LocalStore> SharedKb<S> {
    /// Wraps a store.
    pub fn new(store: S) -> SharedKb<S> {
        SharedKb {
            store: RwLock::new(store),
            generation: AtomicU64::new(0),
            stats_cache: Mutex::new(None),
        }
    }

    /// The current write generation (diagnostics / tests).
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Runs a closure with shared access to the store.
    pub fn read<R>(&self, f: impl FnOnce(&S) -> R) -> R {
        f(&self.store.read().expect("SharedKb lock poisoned"))
    }

    /// Runs a closure with exclusive access to the store, bumping the
    /// generation afterwards (use for mutations outside the typed API,
    /// e.g. snapshotting a [`DurableKb`]).
    pub fn write<R>(&self, f: impl FnOnce(&mut S) -> R) -> R {
        let mut guard = self.store.write().expect("SharedKb lock poisoned");
        let out = f(&mut guard);
        self.generation.fetch_add(1, Ordering::Release);
        out
    }

    /// Nominates algorithms using cached normalisation statistics.
    /// Concurrent callers share one read guard and (after the first query
    /// of a generation) one precomputed [`NormStats`].
    pub fn recommend(
        &self,
        meta_features: &MetaFeatures,
        query_landmarkers: Option<Landmarkers>,
        options: &QueryOptions,
    ) -> Recommendation {
        let guard = self.store.read().expect("SharedKb lock poisoned");
        let kb = guard.index();
        if kb.is_empty() {
            return Recommendation { algorithms: Vec::new(), neighbors: Vec::new() };
        }
        let generation = self.generation.load(Ordering::Acquire);
        let cached = self
            .stats_cache
            .lock()
            .expect("stats cache poisoned")
            .as_ref()
            .filter(|(g, _)| *g == generation)
            .map(|(_, s)| Arc::clone(s));
        let stats = match cached {
            Some(s) => s,
            None => {
                // Compute outside the cache mutex: racing readers after a
                // write each do the cheap pass and publish identical
                // results, instead of queueing behind one another.
                let fresh = Arc::new(kb.normalisation_stats());
                *self.stats_cache.lock().expect("stats cache poisoned") =
                    Some((generation, Arc::clone(&fresh)));
                fresh
            }
        };
        kb.recommend_extended_with_stats(meta_features, query_landmarkers, options, &stats)
    }

    /// Records a run (write lock; invalidates the stats cache).
    pub fn record_run(
        &self,
        dataset_id: &str,
        meta_features: &MetaFeatures,
        run: AlgorithmRun,
    ) -> Result<(), KbError> {
        self.write(|s| s.apply_run(dataset_id, meta_features, run))
    }

    /// Attaches landmarkers (write lock; invalidates the stats cache).
    pub fn set_landmarkers(
        &self,
        dataset_id: &str,
        landmarkers: Landmarkers,
    ) -> Result<(), KbError> {
        self.write(|s| s.apply_landmarkers(dataset_id, landmarkers))
    }

    /// Datasets known.
    pub fn len(&self) -> usize {
        self.read(|s| s.index().len())
    }

    /// True when no datasets are known.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total recorded runs.
    pub fn n_runs(&self) -> usize {
        self.read(|s| s.index().n_runs())
    }

    /// Consumes the wrapper, returning the store.
    pub fn into_inner(self) -> S {
        self.store.into_inner().expect("SharedKb lock poisoned")
    }
}

/// A cloneable [`KbBackend`] view of a shared KB, so several in-process
/// SmartML engines can write to one index concurrently (a newtype
/// because `Arc` and `KbBackend` are both foreign here).
pub struct SharedKbHandle<S: LocalStore>(pub Arc<SharedKb<S>>);

impl<S: LocalStore> Clone for SharedKbHandle<S> {
    fn clone(&self) -> Self {
        SharedKbHandle(Arc::clone(&self.0))
    }
}

impl<S: LocalStore> KbBackend for SharedKbHandle<S> {
    fn kb_recommend(
        &self,
        meta_features: &MetaFeatures,
        query_landmarkers: Option<Landmarkers>,
        options: &QueryOptions,
    ) -> Result<Recommendation, KbError> {
        Ok(self.0.recommend(meta_features, query_landmarkers, options))
    }

    fn kb_record_run(
        &mut self,
        dataset_id: &str,
        meta_features: &MetaFeatures,
        run: AlgorithmRun,
    ) -> Result<(), KbError> {
        self.0.record_run(dataset_id, meta_features, run)
    }

    fn kb_set_landmarkers(
        &mut self,
        dataset_id: &str,
        landmarkers: Landmarkers,
    ) -> Result<(), KbError> {
        self.0.set_landmarkers(dataset_id, landmarkers)
    }

    fn kb_len(&self) -> usize {
        self.0.len()
    }

    fn kb_n_runs(&self) -> usize {
        self.0.n_runs()
    }

    fn kb_describe(&self) -> String {
        "shared".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartml_classifiers::{Algorithm, ParamConfig};
    use smartml_data::synth::gaussian_blobs;
    use smartml_metafeatures::extract;

    fn mf(seed: u64) -> MetaFeatures {
        let d = gaussian_blobs("m", 40 + seed as usize, 3, 2, 1.0, seed);
        extract(&d, &d.all_rows())
    }

    fn run(acc: f64) -> AlgorithmRun {
        AlgorithmRun { algorithm: Algorithm::Knn, config: ParamConfig::default(), accuracy: acc }
    }

    #[test]
    fn cached_recommendation_matches_direct() {
        let shared = SharedKb::new(KnowledgeBase::new());
        for i in 0..6u64 {
            shared.record_run(&format!("d{i}"), &mf(i), run(0.6)).unwrap();
        }
        let q = mf(3);
        let opts = QueryOptions::default();
        let via_cache = shared.recommend(&q, None, &opts);
        let direct = shared.read(|kb| kb.recommend_extended(&q, None, &opts));
        assert_eq!(via_cache, direct);
        // Second query hits the cache and still matches.
        assert_eq!(shared.recommend(&q, None, &opts), direct);
    }

    #[test]
    fn generation_bumps_invalidate_stats() {
        let shared = SharedKb::new(KnowledgeBase::new());
        shared.record_run("a", &mf(1), run(0.5)).unwrap();
        let g1 = shared.generation();
        let q = mf(2);
        let r1 = shared.recommend(&q, None, &QueryOptions::default());
        shared.record_run("b", &mf(7), run(0.9)).unwrap();
        assert!(shared.generation() > g1);
        let r2 = shared.recommend(&q, None, &QueryOptions::default());
        // The new entry is visible (stale stats would miss it).
        assert_eq!(shared.len(), 2);
        assert!(r2.neighbors.len() > r1.neighbors.len());
    }

    #[test]
    fn empty_kb_recommends_nothing() {
        let shared = SharedKb::new(KnowledgeBase::new());
        let rec = shared.recommend(&mf(1), None, &QueryOptions::default());
        assert!(rec.algorithms.is_empty());
        assert!(shared.is_empty());
    }
}
