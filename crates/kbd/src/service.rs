//! Backend-independent request dispatch.
//!
//! Both servers — blocking thread-per-connection and event-driven —
//! execute requests through [`dispatch`] over a [`ServeStore`]. One
//! code path per verb means the two backends cannot drift: given the
//! same store state and the same request line, they produce the same
//! response bytes (the property the `backend_equiv` integration test
//! pins down).

use crate::durable::{read_snapshot_meta, DurableKb, RecoveryReport};
use crate::protocol::{KbStats, Request, Response, ServerMetrics, SYNC_CHUNK_BYTES};
use crate::shared::SharedKb;
use crate::sharded::ShardedKb;
use crate::wal::{
    frames_prefix, list_seqs, parse_segment_name, parse_snapshot_name, segment_name,
    snapshot_name, WAL_FSYNCS, WAL_ROTATIONS,
};
use smartml_kb::{AlgorithmRun, KbError, QueryOptions, Recommendation};
use smartml_metafeatures::{Landmarkers, MetaFeatures};
use smartml_obs::{Counter, Gauge, Histogram};
use std::fs::File;
use std::io::{Read, Seek, SeekFrom};
use std::path::Path;

// Per-request service metrics (`crate.component.name` convention). One
// process-wide set, shared by both backends — the METRICS verb reports
// whichever backend is serving.
pub(crate) static REQ_TOTAL: Counter = Counter::new("kbd.req.total");
pub(crate) static REQ_ERRORS: Counter = Counter::new("kbd.req.errors");
pub(crate) static BYTES_IN: Counter = Counter::new("kbd.bytes_in");
pub(crate) static BYTES_OUT: Counter = Counter::new("kbd.bytes_out");
pub(crate) static REQUEST_US: Histogram = Histogram::new("kbd.request_us");
static REQ_RECOMMEND: Counter = Counter::new("kbd.req.recommend");
static REQ_RECOMMEND_BATCH: Counter = Counter::new("kbd.req.recommend_batch");
static REQ_RECORD_RUN: Counter = Counter::new("kbd.req.record_run");
static REQ_SET_LANDMARKERS: Counter = Counter::new("kbd.req.set_landmarkers");
static REQ_STATS: Counter = Counter::new("kbd.req.stats");
static REQ_SNAPSHOT: Counter = Counter::new("kbd.req.snapshot");
static REQ_METRICS: Counter = Counter::new("kbd.req.metrics");
static REQ_PING: Counter = Counter::new("kbd.req.ping");
static REQ_SHUTDOWN: Counter = Counter::new("kbd.req.shutdown");
static REQ_SYNC: Counter = Counter::new("kbd.req.sync");
static REQ_PROMOTE: Counter = Counter::new("kbd.req.promote");
static REQ_NOT_PRIMARY: Counter = Counter::new("kbd.req.not_primary");

/// Replication lag in records (primary applied sequence minus local
/// applied sequence), updated by the replica tailer after every sync
/// round. Reported through the METRICS verb on replicas.
pub(crate) static REPLICA_LAG: Gauge = Gauge::new("kbd.replica.lag_records");

/// Which side of replication this server is on. Threaded into
/// [`dispatch`] so replicas can reject writes with a typed redirect.
#[derive(Debug, Clone, Default)]
pub enum ServeRole {
    /// Accepts the full verb set, including `SYNC` pulls from replicas.
    #[default]
    Primary,
    /// Read-only: serves `RECOMMEND`/`RECOMMEND_BATCH`/`STATS`/`METRICS`
    /// (and `PING`/`SHUTDOWN`); every write answers
    /// [`Response::NotPrimary`] naming the primary to retry against.
    Replica {
        /// Address of the primary this replica tails.
        primary: String,
    },
}

/// The server's *live* role: shared by every serving thread and
/// swappable at runtime by the `PROMOTE` verb.
///
/// [`ServeRole`] in the options describes how the process *starts*;
/// this cell is what dispatch consults per request, so a promotion —
/// flipping a replica to primary — takes effect on the very next
/// request without restarting or re-registering any connection. The
/// flip is one-way (primary never demotes back) and idempotent.
pub struct RoleCell {
    /// True while the server is a read-only replica.
    is_replica: std::sync::atomic::AtomicBool,
    /// The primary this replica redirects writes to (unused once
    /// promoted; kept for the redirect message only).
    primary: std::sync::Mutex<String>,
    /// Runs exactly once, on the promoting request's thread: the
    /// process hooks its replica machinery teardown here (stopping the
    /// WAL tailer so promotion also ends the pull loop).
    on_promote: std::sync::Mutex<Option<Box<dyn FnOnce() + Send>>>,
}

impl RoleCell {
    /// A cell starting in `role`.
    pub fn new(role: ServeRole) -> RoleCell {
        let (is_replica, primary) = match role {
            ServeRole::Primary => (false, String::new()),
            ServeRole::Replica { primary } => (true, primary),
        };
        RoleCell {
            is_replica: std::sync::atomic::AtomicBool::new(is_replica),
            primary: std::sync::Mutex::new(primary),
            on_promote: std::sync::Mutex::new(None),
        }
    }

    /// Is the server currently a read-only replica?
    pub fn is_replica(&self) -> bool {
        self.is_replica.load(std::sync::atomic::Ordering::Acquire)
    }

    /// The primary to redirect writes to — `Some` only while a replica.
    pub fn replica_primary(&self) -> Option<String> {
        self.is_replica()
            .then(|| self.primary.lock().expect("role primary poisoned").clone())
    }

    /// Registers the teardown to run when (if) this server is promoted.
    pub fn set_promote_hook(&self, hook: impl FnOnce() + Send + 'static) {
        *self.on_promote.lock().expect("promote hook poisoned") = Some(Box::new(hook));
    }

    /// Promotes a replica to primary; returns whether the server *was*
    /// a replica (false = it already accepted writes, nothing changed).
    /// The registered hook runs on the winning caller's thread, once.
    pub fn promote(&self) -> bool {
        let was_replica = self
            .is_replica
            .swap(false, std::sync::atomic::Ordering::AcqRel);
        if was_replica {
            if let Some(hook) = self.on_promote.lock().expect("promote hook poisoned").take() {
                hook();
            }
        }
        was_replica
    }
}

/// Builds the [`ServerMetrics`] wire struct from the live registry plus
/// the store's replication position. `replication_lag` is `Some` only on
/// replicas (the tailer keeps [`REPLICA_LAG`] current).
pub(crate) fn collect_metrics(applied_seq: u64, replication_lag: Option<u64>) -> ServerMetrics {
    let lat = REQUEST_US.summary();
    let mut ops: Vec<(String, u64)> = [
        ("metrics", &REQ_METRICS),
        ("not_primary", &REQ_NOT_PRIMARY),
        ("ping", &REQ_PING),
        ("promote", &REQ_PROMOTE),
        ("recommend", &REQ_RECOMMEND),
        ("recommend_batch", &REQ_RECOMMEND_BATCH),
        ("record_run", &REQ_RECORD_RUN),
        ("set_landmarkers", &REQ_SET_LANDMARKERS),
        ("shutdown", &REQ_SHUTDOWN),
        ("snapshot", &REQ_SNAPSHOT),
        ("stats", &REQ_STATS),
        ("sync", &REQ_SYNC),
    ]
    .iter()
    .map(|(name, c)| (name.to_string(), c.value()))
    .collect();
    ops.sort();
    ServerMetrics {
        requests: REQ_TOTAL.value(),
        errors: REQ_ERRORS.value(),
        bytes_in: BYTES_IN.value(),
        bytes_out: BYTES_OUT.value(),
        request_us_p50: lat.p50,
        request_us_p99: lat.p99,
        request_us_max: lat.max,
        request_us_mean: lat.mean,
        wal_fsyncs: WAL_FSYNCS.value(),
        wal_rotations: WAL_ROTATIONS.value(),
        applied_seq,
        replication_lag,
        ops,
    }
}

/// Serves one `SYNC` request from a KB directory. `active` is the
/// `(segment, length)` frontier read under the store's WAL lock — the
/// authoritative frame boundary for the active segment (sealed segments
/// are immutable). The caller holds that lock across this call so
/// compaction cannot delete segments mid-read.
pub(crate) fn sync_from_dir(
    dir: &Path,
    active: (u64, u64),
    applied_seq: u64,
    segment: u64,
    offset: u64,
) -> Result<Response, KbError> {
    let (active_seq, active_len) = active;
    let floor = list_seqs(dir, parse_snapshot_name)?.last().copied();
    let ship_snapshot = |seq: u64| -> Result<Response, KbError> {
        let kb_json = std::fs::read_to_string(dir.join(snapshot_name(seq)))?;
        Ok(Response::SyncSnapshot {
            snapshot_seq: seq,
            applied_seq: read_snapshot_meta(dir, seq),
            next_segment: seq + 1,
            kb_json,
        })
    };
    let (mut seg, mut off) = if segment == 0 {
        // Bootstrap: ship the snapshot when one exists, else replay from
        // the oldest segment on disk.
        if let Some(floor) = floor {
            return ship_snapshot(floor);
        }
        let first =
            list_seqs(dir, parse_segment_name)?.first().copied().unwrap_or(active_seq);
        (first, 0)
    } else if floor.is_some_and(|f| segment <= f) {
        // Behind the compaction floor: those segments are gone; reset
        // the replica from the snapshot that folded them.
        return ship_snapshot(floor.unwrap());
    } else {
        (segment, offset)
    };
    loop {
        if seg > active_seq {
            // Ahead of the primary: diverged history. A snapshot resets
            // the replica wholesale; without one there is nothing safe
            // to ship.
            return match floor {
                Some(f) => ship_snapshot(f),
                None => Err(KbError::Backend(format!(
                    "sync position (segment {seg}) is ahead of the primary's active \
                     segment {active_seq} and no snapshot exists to reset from"
                ))),
            };
        }
        let seg_len = if seg == active_seq {
            active_len
        } else {
            std::fs::metadata(dir.join(segment_name(seg)))?.len()
        };
        if off > seg_len {
            return match floor {
                Some(f) => ship_snapshot(f),
                None => Err(KbError::Backend(format!(
                    "sync offset {off} is past segment {seg}'s {seg_len} bytes and no \
                     snapshot exists to reset from"
                ))),
            };
        }
        if off == seg_len {
            if seg < active_seq {
                if (seg, off) == (segment, offset) {
                    // The caller sits exactly at a sealed segment's end:
                    // an empty chunk whose `next_segment` moves past it
                    // tells the replica to rotate its own WAL before the
                    // next pull. Shipping segment `seg + 1` bytes right
                    // away would name a position the replica hasn't
                    // reached yet and be refused as a mismatch.
                    return Ok(Response::SyncChunk {
                        segment: seg,
                        offset: off,
                        data: String::new(),
                        next_segment: seg + 1,
                        next_offset: 0,
                        caught_up: false,
                        applied_seq,
                    });
                }
                seg += 1;
                off = 0;
                continue;
            }
            // At the frontier: an empty chunk that says "caught up".
            return Ok(Response::SyncChunk {
                segment: seg,
                offset: off,
                data: String::new(),
                next_segment: seg,
                next_offset: off,
                caught_up: true,
                applied_seq,
            });
        }
        let path = dir.join(segment_name(seg));
        let mut file = File::open(&path)?;
        file.seek(SeekFrom::Start(off))?;
        let mut bytes = vec![0u8; (seg_len - off) as usize];
        file.read_exact(&mut bytes)?;
        let take = frames_prefix(&bytes, SYNC_CHUNK_BYTES);
        if take == 0 {
            return Err(KbError::Backend(format!(
                "segment {seg} holds no complete frame at offset {off}"
            )));
        }
        bytes.truncate(take);
        // Frames are a hex header plus JSON plus newline — always UTF-8.
        let data = String::from_utf8(bytes).map_err(|e| KbError::Corrupt {
            path: Some(path),
            detail: format!("segment bytes are not UTF-8: {e}"),
        })?;
        let end = off + take as u64;
        let (next_segment, next_offset) =
            if end == seg_len && seg < active_seq { (seg + 1, 0) } else { (seg, end) };
        let caught_up = seg == active_seq && end == active_len;
        return Ok(Response::SyncChunk {
            segment: seg,
            offset: off,
            data,
            next_segment,
            next_offset,
            caught_up,
            applied_seq,
        });
    }
}

/// What a server backend needs from its store. Implemented by the
/// monolithic [`SharedKb<DurableKb>`] (blocking backend) and the
/// [`ShardedKb`] (event-driven backend).
pub trait ServeStore: Send + Sync + 'static {
    /// Nominate algorithms for one query.
    fn serve_recommend(
        &self,
        meta_features: &MetaFeatures,
        landmarkers: Option<Landmarkers>,
        options: &QueryOptions,
    ) -> Recommendation;
    /// Log and apply one run observation.
    fn serve_record_run(
        &self,
        dataset_id: &str,
        meta_features: &MetaFeatures,
        run: AlgorithmRun,
    ) -> Result<(), KbError>;
    /// Log and apply landmarker accuracies.
    fn serve_set_landmarkers(
        &self,
        dataset_id: &str,
        landmarkers: Landmarkers,
    ) -> Result<(), KbError>;
    /// Datasets known.
    fn serve_len(&self) -> usize;
    /// Total recorded runs.
    fn serve_n_runs(&self) -> usize;
    /// `(segments on disk, active segment seq)`.
    fn serve_wal(&self) -> (usize, u64);
    /// Fold into a snapshot and compact.
    fn serve_snapshot(&self) -> Result<u64, KbError>;
    /// Total WAL records applied in this store's lineage.
    fn serve_applied_seq(&self) -> u64;
    /// Answer one replication `SYNC` pull from the store's directory.
    fn serve_sync(&self, segment: u64, offset: u64) -> Result<Response, KbError>;
}

impl ServeStore for SharedKb<DurableKb> {
    fn serve_recommend(
        &self,
        meta_features: &MetaFeatures,
        landmarkers: Option<Landmarkers>,
        options: &QueryOptions,
    ) -> Recommendation {
        self.recommend(meta_features, landmarkers, options)
    }

    fn serve_record_run(
        &self,
        dataset_id: &str,
        meta_features: &MetaFeatures,
        run: AlgorithmRun,
    ) -> Result<(), KbError> {
        self.record_run(dataset_id, meta_features, run)
    }

    fn serve_set_landmarkers(
        &self,
        dataset_id: &str,
        landmarkers: Landmarkers,
    ) -> Result<(), KbError> {
        self.set_landmarkers(dataset_id, landmarkers)
    }

    fn serve_len(&self) -> usize {
        self.len()
    }

    fn serve_n_runs(&self) -> usize {
        self.n_runs()
    }

    fn serve_wal(&self) -> (usize, u64) {
        self.read(|store| (store.n_segments().unwrap_or(0), store.active_segment()))
    }

    fn serve_snapshot(&self) -> Result<u64, KbError> {
        self.write(|store| store.snapshot())
    }

    fn serve_applied_seq(&self) -> u64 {
        self.read(|store| store.applied_seq())
    }

    fn serve_sync(&self, segment: u64, offset: u64) -> Result<Response, KbError> {
        // The read lock excludes snapshot/compaction (which runs under
        // the write lock), so the files we read cannot move underneath.
        self.read(|store| {
            let position = store.wal_position();
            sync_from_dir(store.dir(), position, store.applied_seq(), segment, offset)
        })
    }
}

impl ServeStore for ShardedKb {
    fn serve_recommend(
        &self,
        meta_features: &MetaFeatures,
        landmarkers: Option<Landmarkers>,
        options: &QueryOptions,
    ) -> Recommendation {
        self.recommend(meta_features, landmarkers, options)
    }

    fn serve_record_run(
        &self,
        dataset_id: &str,
        meta_features: &MetaFeatures,
        run: AlgorithmRun,
    ) -> Result<(), KbError> {
        self.record_run(dataset_id, meta_features, run)
    }

    fn serve_set_landmarkers(
        &self,
        dataset_id: &str,
        landmarkers: Landmarkers,
    ) -> Result<(), KbError> {
        self.set_landmarkers(dataset_id, landmarkers)
    }

    fn serve_len(&self) -> usize {
        self.len()
    }

    fn serve_n_runs(&self) -> usize {
        self.n_runs()
    }

    fn serve_wal(&self) -> (usize, u64) {
        (self.n_segments().unwrap_or(0), self.active_segment())
    }

    fn serve_snapshot(&self) -> Result<u64, KbError> {
        self.snapshot()
    }

    fn serve_applied_seq(&self) -> u64 {
        self.applied_seq()
    }

    fn serve_sync(&self, segment: u64, offset: u64) -> Result<Response, KbError> {
        // Holding the WAL mutex excludes both appends and snapshot
        // compaction, which take it before touching segment files.
        self.with_wal_position(|position| {
            sync_from_dir(self.dir(), position, self.applied_seq(), segment, offset)
        })
    }
}

/// Serialises a response line (without the trailing newline).
pub(crate) fn encode(response: &Response) -> String {
    serde_json::to_string(response).expect("response serialisation cannot fail")
}

/// Streams a response line straight into `out` (no trailing newline,
/// no intermediate String). Byte-identical to [`encode`].
pub(crate) fn encode_into(response: &Response, out: &mut String) {
    serde::Serialize::serialize_into(response, out);
}

/// Executes one request line against a store. Returns the response and
/// whether the server should stop.
///
/// A replica serves reads only: every mutating verb (and `SYNC`, which
/// only a primary can answer authoritatively) is rejected with a typed
/// [`Response::NotPrimary`] redirect naming the primary's address.
pub(crate) fn dispatch<S: ServeStore>(
    line: &str,
    store: &S,
    recovery: &RecoveryReport,
    role: &RoleCell,
) -> (Response, bool) {
    let request: Request = match serde_json::from_str(line.trim()) {
        Ok(r) => r,
        Err(e) => {
            return (Response::Error { message: format!("bad request: {e}") }, false);
        }
    };
    // `PROMOTE` is deliberately absent from the replica reject list: it
    // is *the* verb a replica must accept while read-only.
    if let Some(primary) = role.replica_primary() {
        let rejected = matches!(
            request,
            Request::RecordRun { .. }
                | Request::SetLandmarkers { .. }
                | Request::Snapshot
                | Request::Sync { .. }
        );
        if rejected {
            REQ_NOT_PRIMARY.inc();
            return (Response::NotPrimary { primary }, false);
        }
    }
    let response = match request {
        Request::Recommend { meta_features, landmarkers, options } => {
            REQ_RECOMMEND.inc();
            let opts = options.unwrap_or_default();
            let recommendation = store.serve_recommend(&meta_features, landmarkers, &opts);
            Response::Recommendation { recommendation }
        }
        Request::RecommendBatch { queries } => {
            REQ_RECOMMEND_BATCH.inc();
            // Answered exactly like the equivalent RECOMMEND sequence:
            // same per-query path, in order.
            let recommendations = queries
                .into_iter()
                .map(|q| {
                    let opts = q.options.unwrap_or_default();
                    store.serve_recommend(&q.meta_features, q.landmarkers, &opts)
                })
                .collect();
            Response::Recommendations { recommendations }
        }
        Request::RecordRun { dataset_id, meta_features, run } => {
            REQ_RECORD_RUN.inc();
            match store.serve_record_run(&dataset_id, &meta_features, run) {
                Ok(()) => Response::Recorded {
                    datasets: store.serve_len(),
                    runs: store.serve_n_runs(),
                },
                Err(e) => Response::Error { message: e.to_string() },
            }
        }
        Request::SetLandmarkers { dataset_id, landmarkers } => {
            REQ_SET_LANDMARKERS.inc();
            match store.serve_set_landmarkers(&dataset_id, landmarkers) {
                Ok(()) => Response::Recorded {
                    datasets: store.serve_len(),
                    runs: store.serve_n_runs(),
                },
                Err(e) => Response::Error { message: e.to_string() },
            }
        }
        Request::Stats => {
            REQ_STATS.inc();
            let (wal_segments, active_segment) = store.serve_wal();
            Response::Stats {
                stats: KbStats {
                    datasets: store.serve_len(),
                    runs: store.serve_n_runs(),
                    wal_segments,
                    active_segment,
                    snapshot_seq: recovery.snapshot_seq,
                    recovered_records: recovery.records_replayed,
                    recovered_torn_tail: recovery.truncated_tail,
                    applied_seq: store.serve_applied_seq(),
                },
            }
        }
        Request::Snapshot => {
            REQ_SNAPSHOT.inc();
            match store.serve_snapshot() {
                Ok(seq) => Response::Snapshotted { snapshot_seq: seq },
                Err(e) => Response::Error { message: e.to_string() },
            }
        }
        Request::Sync { segment, offset } => {
            REQ_SYNC.inc();
            match store.serve_sync(segment, offset) {
                Ok(response) => response,
                Err(e) => Response::Error { message: e.to_string() },
            }
        }
        Request::Metrics => {
            REQ_METRICS.inc();
            let lag = role.is_replica().then(|| REPLICA_LAG.value().max(0) as u64);
            Response::Metrics { metrics: collect_metrics(store.serve_applied_seq(), lag) }
        }
        Request::Promote => {
            REQ_PROMOTE.inc();
            Response::Promoted { was_replica: role.promote() }
        }
        Request::Ping => {
            REQ_PING.inc();
            Response::Pong
        }
        Request::Shutdown => {
            REQ_SHUTDOWN.inc();
            return (Response::ShuttingDown, true);
        }
    };
    (response, false)
}
