//! Backend-independent request dispatch.
//!
//! Both servers — blocking thread-per-connection and event-driven —
//! execute requests through [`dispatch`] over a [`ServeStore`]. One
//! code path per verb means the two backends cannot drift: given the
//! same store state and the same request line, they produce the same
//! response bytes (the property the `backend_equiv` integration test
//! pins down).

use crate::durable::{DurableKb, RecoveryReport};
use crate::protocol::{KbStats, Request, Response, ServerMetrics};
use crate::shared::SharedKb;
use crate::sharded::ShardedKb;
use crate::wal::{WAL_FSYNCS, WAL_ROTATIONS};
use smartml_kb::{AlgorithmRun, KbError, QueryOptions, Recommendation};
use smartml_metafeatures::{Landmarkers, MetaFeatures};
use smartml_obs::{Counter, Histogram};

// Per-request service metrics (`crate.component.name` convention). One
// process-wide set, shared by both backends — the METRICS verb reports
// whichever backend is serving.
pub(crate) static REQ_TOTAL: Counter = Counter::new("kbd.req.total");
pub(crate) static REQ_ERRORS: Counter = Counter::new("kbd.req.errors");
pub(crate) static BYTES_IN: Counter = Counter::new("kbd.bytes_in");
pub(crate) static BYTES_OUT: Counter = Counter::new("kbd.bytes_out");
pub(crate) static REQUEST_US: Histogram = Histogram::new("kbd.request_us");
static REQ_RECOMMEND: Counter = Counter::new("kbd.req.recommend");
static REQ_RECOMMEND_BATCH: Counter = Counter::new("kbd.req.recommend_batch");
static REQ_RECORD_RUN: Counter = Counter::new("kbd.req.record_run");
static REQ_SET_LANDMARKERS: Counter = Counter::new("kbd.req.set_landmarkers");
static REQ_STATS: Counter = Counter::new("kbd.req.stats");
static REQ_SNAPSHOT: Counter = Counter::new("kbd.req.snapshot");
static REQ_METRICS: Counter = Counter::new("kbd.req.metrics");
static REQ_PING: Counter = Counter::new("kbd.req.ping");
static REQ_SHUTDOWN: Counter = Counter::new("kbd.req.shutdown");

/// Builds the [`ServerMetrics`] wire struct from the live registry.
pub(crate) fn collect_metrics() -> ServerMetrics {
    let lat = REQUEST_US.summary();
    let mut ops: Vec<(String, u64)> = [
        ("metrics", &REQ_METRICS),
        ("ping", &REQ_PING),
        ("recommend", &REQ_RECOMMEND),
        ("recommend_batch", &REQ_RECOMMEND_BATCH),
        ("record_run", &REQ_RECORD_RUN),
        ("set_landmarkers", &REQ_SET_LANDMARKERS),
        ("shutdown", &REQ_SHUTDOWN),
        ("snapshot", &REQ_SNAPSHOT),
        ("stats", &REQ_STATS),
    ]
    .iter()
    .map(|(name, c)| (name.to_string(), c.value()))
    .collect();
    ops.sort();
    ServerMetrics {
        requests: REQ_TOTAL.value(),
        errors: REQ_ERRORS.value(),
        bytes_in: BYTES_IN.value(),
        bytes_out: BYTES_OUT.value(),
        request_us_p50: lat.p50,
        request_us_p99: lat.p99,
        request_us_max: lat.max,
        request_us_mean: lat.mean,
        wal_fsyncs: WAL_FSYNCS.value(),
        wal_rotations: WAL_ROTATIONS.value(),
        ops,
    }
}

/// What a server backend needs from its store. Implemented by the
/// monolithic [`SharedKb<DurableKb>`] (blocking backend) and the
/// [`ShardedKb`] (event-driven backend).
pub trait ServeStore: Send + Sync + 'static {
    /// Nominate algorithms for one query.
    fn serve_recommend(
        &self,
        meta_features: &MetaFeatures,
        landmarkers: Option<Landmarkers>,
        options: &QueryOptions,
    ) -> Recommendation;
    /// Log and apply one run observation.
    fn serve_record_run(
        &self,
        dataset_id: &str,
        meta_features: &MetaFeatures,
        run: AlgorithmRun,
    ) -> Result<(), KbError>;
    /// Log and apply landmarker accuracies.
    fn serve_set_landmarkers(
        &self,
        dataset_id: &str,
        landmarkers: Landmarkers,
    ) -> Result<(), KbError>;
    /// Datasets known.
    fn serve_len(&self) -> usize;
    /// Total recorded runs.
    fn serve_n_runs(&self) -> usize;
    /// `(segments on disk, active segment seq)`.
    fn serve_wal(&self) -> (usize, u64);
    /// Fold into a snapshot and compact.
    fn serve_snapshot(&self) -> Result<u64, KbError>;
}

impl ServeStore for SharedKb<DurableKb> {
    fn serve_recommend(
        &self,
        meta_features: &MetaFeatures,
        landmarkers: Option<Landmarkers>,
        options: &QueryOptions,
    ) -> Recommendation {
        self.recommend(meta_features, landmarkers, options)
    }

    fn serve_record_run(
        &self,
        dataset_id: &str,
        meta_features: &MetaFeatures,
        run: AlgorithmRun,
    ) -> Result<(), KbError> {
        self.record_run(dataset_id, meta_features, run)
    }

    fn serve_set_landmarkers(
        &self,
        dataset_id: &str,
        landmarkers: Landmarkers,
    ) -> Result<(), KbError> {
        self.set_landmarkers(dataset_id, landmarkers)
    }

    fn serve_len(&self) -> usize {
        self.len()
    }

    fn serve_n_runs(&self) -> usize {
        self.n_runs()
    }

    fn serve_wal(&self) -> (usize, u64) {
        self.read(|store| (store.n_segments().unwrap_or(0), store.active_segment()))
    }

    fn serve_snapshot(&self) -> Result<u64, KbError> {
        self.write(|store| store.snapshot())
    }
}

impl ServeStore for ShardedKb {
    fn serve_recommend(
        &self,
        meta_features: &MetaFeatures,
        landmarkers: Option<Landmarkers>,
        options: &QueryOptions,
    ) -> Recommendation {
        self.recommend(meta_features, landmarkers, options)
    }

    fn serve_record_run(
        &self,
        dataset_id: &str,
        meta_features: &MetaFeatures,
        run: AlgorithmRun,
    ) -> Result<(), KbError> {
        self.record_run(dataset_id, meta_features, run)
    }

    fn serve_set_landmarkers(
        &self,
        dataset_id: &str,
        landmarkers: Landmarkers,
    ) -> Result<(), KbError> {
        self.set_landmarkers(dataset_id, landmarkers)
    }

    fn serve_len(&self) -> usize {
        self.len()
    }

    fn serve_n_runs(&self) -> usize {
        self.n_runs()
    }

    fn serve_wal(&self) -> (usize, u64) {
        (self.n_segments().unwrap_or(0), self.active_segment())
    }

    fn serve_snapshot(&self) -> Result<u64, KbError> {
        self.snapshot()
    }
}

/// Serialises a response line (without the trailing newline).
pub(crate) fn encode(response: &Response) -> String {
    serde_json::to_string(response).expect("response serialisation cannot fail")
}

/// Streams a response line straight into `out` (no trailing newline,
/// no intermediate String). Byte-identical to [`encode`].
pub(crate) fn encode_into(response: &Response, out: &mut String) {
    serde::Serialize::serialize_into(response, out);
}

/// Executes one request line against a store. Returns the response and
/// whether the server should stop.
pub(crate) fn dispatch<S: ServeStore>(
    line: &str,
    store: &S,
    recovery: &RecoveryReport,
) -> (Response, bool) {
    let request: Request = match serde_json::from_str(line.trim()) {
        Ok(r) => r,
        Err(e) => {
            return (Response::Error { message: format!("bad request: {e}") }, false);
        }
    };
    let response = match request {
        Request::Recommend { meta_features, landmarkers, options } => {
            REQ_RECOMMEND.inc();
            let opts = options.unwrap_or_default();
            let recommendation = store.serve_recommend(&meta_features, landmarkers, &opts);
            Response::Recommendation { recommendation }
        }
        Request::RecommendBatch { queries } => {
            REQ_RECOMMEND_BATCH.inc();
            // Answered exactly like the equivalent RECOMMEND sequence:
            // same per-query path, in order.
            let recommendations = queries
                .into_iter()
                .map(|q| {
                    let opts = q.options.unwrap_or_default();
                    store.serve_recommend(&q.meta_features, q.landmarkers, &opts)
                })
                .collect();
            Response::Recommendations { recommendations }
        }
        Request::RecordRun { dataset_id, meta_features, run } => {
            REQ_RECORD_RUN.inc();
            match store.serve_record_run(&dataset_id, &meta_features, run) {
                Ok(()) => Response::Recorded {
                    datasets: store.serve_len(),
                    runs: store.serve_n_runs(),
                },
                Err(e) => Response::Error { message: e.to_string() },
            }
        }
        Request::SetLandmarkers { dataset_id, landmarkers } => {
            REQ_SET_LANDMARKERS.inc();
            match store.serve_set_landmarkers(&dataset_id, landmarkers) {
                Ok(()) => Response::Recorded {
                    datasets: store.serve_len(),
                    runs: store.serve_n_runs(),
                },
                Err(e) => Response::Error { message: e.to_string() },
            }
        }
        Request::Stats => {
            REQ_STATS.inc();
            let (wal_segments, active_segment) = store.serve_wal();
            Response::Stats {
                stats: KbStats {
                    datasets: store.serve_len(),
                    runs: store.serve_n_runs(),
                    wal_segments,
                    active_segment,
                    snapshot_seq: recovery.snapshot_seq,
                    recovered_records: recovery.records_replayed,
                    recovered_torn_tail: recovery.truncated_tail,
                },
            }
        }
        Request::Snapshot => {
            REQ_SNAPSHOT.inc();
            match store.serve_snapshot() {
                Ok(seq) => Response::Snapshotted { snapshot_seq: seq },
                Err(e) => Response::Error { message: e.to_string() },
            }
        }
        Request::Metrics => {
            REQ_METRICS.inc();
            Response::Metrics { metrics: collect_metrics() }
        }
        Request::Ping => {
            REQ_PING.inc();
            Response::Pong
        }
        Request::Shutdown => {
            REQ_SHUTDOWN.inc();
            return (Response::ShuttingDown, true);
        }
    };
    (response, false)
}
