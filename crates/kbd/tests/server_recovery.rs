//! End-to-end crash-recovery: a `smartmld` server fed over TCP, killed,
//! its WAL tail torn mid-frame, then restarted — the recovered KB must
//! match an in-memory KB built from the surviving (complete) records,
//! and recommendations served after restart must be identical to it.

use smartml_classifiers::{Algorithm, ParamConfig};
use smartml_data::synth::gaussian_blobs;
use smartml_kb::{AlgorithmRun, KnowledgeBase, QueryOptions};
use smartml_kbd::{DurableOptions, KbClient, Server, ServerOptions};
use smartml_metafeatures::{extract, MetaFeatures};
use std::path::{Path, PathBuf};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("smartml-kbd-it-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn mf(seed: u64) -> MetaFeatures {
    let d = gaussian_blobs("it", 50 + seed as usize, 3, 2, 0.9, seed);
    extract(&d, &d.all_rows())
}

fn observation(i: u64) -> (String, MetaFeatures, AlgorithmRun) {
    let algorithm = [Algorithm::RandomForest, Algorithm::Svm, Algorithm::Knn][i as usize % 3];
    (
        format!("ds-{i}"),
        mf(i),
        AlgorithmRun {
            algorithm,
            config: ParamConfig::default(),
            accuracy: 0.55 + (i as f64 % 10.0) / 25.0,
        },
    )
}

fn spawn_server(dir: &Path) -> (KbClient, std::thread::JoinHandle<()>) {
    let server = Server::bind(ServerOptions {
        dir: dir.to_path_buf(),
        durable: DurableOptions { fsync_writes: false, ..Default::default() },
        ..ServerOptions::default()
    })
    .expect("server binds");
    let addr = server.local_addr().expect("bound address").to_string();
    let handle = std::thread::spawn(move || server.run().expect("serve loop"));
    (KbClient::connect(addr), handle)
}

#[test]
fn restart_after_torn_tail_matches_in_memory_reference() {
    let dir = temp_dir("recovery");
    const N: u64 = 12;

    // Feed the server over TCP, then shut it down cleanly.
    let (client, handle) = spawn_server(&dir);
    for i in 0..N {
        let (id, mf, run) = observation(i);
        client.record_run(&id, &mf, run).expect("record over tcp");
    }
    let stats = client.stats().expect("stats");
    assert_eq!(stats.datasets, N as usize);
    assert_eq!(stats.runs, N as usize);
    client.shutdown().expect("shutdown");
    handle.join().expect("server thread");

    // Tear the WAL: chop bytes off the newest segment, mid-frame. The
    // final record becomes a torn tail; every earlier frame is intact.
    let mut segments: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("wal dir")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("wal-") && n.ends_with(".log"))
        })
        .collect();
    segments.sort();
    let tail_segment = segments.last().expect("at least one WAL segment");
    let len = std::fs::metadata(tail_segment).expect("segment metadata").len();
    assert!(len > 8, "segment too small to tear");
    let file = std::fs::OpenOptions::new()
        .write(true)
        .open(tail_segment)
        .expect("open segment");
    file.set_len(len - 7).expect("tear tail");
    drop(file);

    // The reference: an in-memory KB holding every record but the torn one.
    let mut reference = KnowledgeBase::new();
    for i in 0..N - 1 {
        let (id, mf, run) = observation(i);
        reference.record_run(&id, &mf, run);
    }

    // Restart on the same directory; recovery must drop exactly the torn
    // record and answer queries identically to the reference.
    let (client, handle) = spawn_server(&dir);
    let stats = client.stats().expect("stats after restart");
    assert_eq!(stats.datasets, (N - 1) as usize, "torn record dropped");
    assert_eq!(stats.runs, (N - 1) as usize);
    assert!(stats.recovered_torn_tail, "recovery must report the truncation");

    let query = mf(100);
    let options = QueryOptions::default();
    let served = client.recommend(&query, None, &options).expect("recommend");
    let expected = reference.recommend_extended(&query, None, &options);
    assert_eq!(served, expected, "served recommendation != in-memory reference");

    // Re-record the torn observation and one more; the KB keeps growing.
    let (id, mf_lost, run) = observation(N - 1);
    client.record_run(&id, &mf_lost, run).expect("re-record");
    let (id, mf_new, run) = observation(N);
    client.record_run(&id, &mf_new, run).expect("record new");
    let stats = client.stats().expect("stats after growth");
    assert_eq!(stats.datasets, (N + 1) as usize);

    client.shutdown().expect("second shutdown");
    handle.join().expect("server thread");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn snapshot_over_tcp_compacts_and_preserves_answers() {
    let dir = temp_dir("snapshot");
    let (client, handle) = spawn_server(&dir);
    for i in 0..6 {
        let (id, mf, run) = observation(i);
        client.record_run(&id, &mf, run).expect("record");
    }
    let query = mf(50);
    let options = QueryOptions::default();
    let before = client.recommend(&query, None, &options).expect("recommend");

    let seq = client.snapshot().expect("snapshot");
    assert!(seq >= 1);
    let after = client.recommend(&query, None, &options).expect("recommend after snapshot");
    assert_eq!(before, after);
    client.shutdown().expect("shutdown");
    handle.join().expect("server thread");

    // Reopen: state must come back from the snapshot alone.
    let (client, handle) = spawn_server(&dir);
    let stats = client.stats().expect("stats");
    assert_eq!(stats.datasets, 6);
    assert_eq!(stats.snapshot_seq, Some(seq));
    let reopened = client.recommend(&query, None, &options).expect("recommend reopened");
    assert_eq!(reopened, before);
    client.shutdown().expect("shutdown");
    handle.join().expect("server thread");
    let _ = std::fs::remove_dir_all(&dir);
}
