//! Replication chaos suite: snapshot-shipping catch-up, torn-prefix
//! refusal, mid-catch-up crash recovery, and read-only replica serving.
//!
//! The in-process analogue of the verify.sh kill -9 stages: every
//! scenario here drives the same [`ReplicaTailer`] / `sync`-verb
//! machinery the real two-process deployment uses, with the crashes
//! simulated at the exact byte positions a SIGKILL would produce
//! (truncated WAL tails, half-shipped chunks).

use smartml_classifiers::{Algorithm, ParamConfig};
use smartml_data::synth::gaussian_blobs;
use smartml_kb::AlgorithmRun;
use smartml_kbd::{
    encode_frame, segment_name, DurableOptions, EventServer, EventServerOptions, KbClient,
    ReplicaOptions, ReplicaTailer, RetryPolicy, ServeRole, ShardedKb, WalRecord,
};
use smartml_metafeatures::{extract, MetaFeatures};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn temp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("smartml-kbd-repl-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn mf(seed: u64) -> MetaFeatures {
    let d = gaussian_blobs("repl", 40 + (seed % 13) as usize, 3, 2, 0.85, seed);
    extract(&d, &d.all_rows())
}

fn run(i: u64) -> AlgorithmRun {
    let algorithm =
        [Algorithm::RandomForest, Algorithm::Svm, Algorithm::Knn, Algorithm::NaiveBayes]
            [i as usize % 4];
    AlgorithmRun {
        algorithm,
        config: ParamConfig::default(),
        accuracy: 0.5 + (i % 45) as f64 / 100.0,
    }
}

fn durable() -> DurableOptions {
    // Small segments so a handful of records exercises rotation, no
    // fsync so the suite stays fast.
    DurableOptions { fsync_writes: false, segment_bytes: 2048, ..Default::default() }
}

struct Primary {
    addr: String,
    handle: std::thread::JoinHandle<()>,
    dir: PathBuf,
}

fn spawn_primary(tag: &str) -> Primary {
    let dir = temp_dir(tag);
    let server = EventServer::bind(EventServerOptions {
        dir: dir.clone(),
        n_loops: 2,
        durable: durable(),
        ..EventServerOptions::default()
    })
    .expect("primary binds");
    let addr = server.local_addr().expect("addr").to_string();
    let handle = std::thread::spawn(move || server.run().expect("primary serve loop"));
    Primary { addr, handle, dir }
}

fn stop_primary(primary: Primary) {
    let client = KbClient::connect(primary.addr.clone());
    let _ = client.shutdown();
    primary.handle.join().expect("primary thread");
    let _ = std::fs::remove_dir_all(&primary.dir);
}

fn fast_retry() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 2,
        base_delay: Duration::from_millis(5),
        max_delay: Duration::from_millis(50),
        ..RetryPolicy::default()
    }
}

fn tail_options(primary: &str) -> ReplicaOptions {
    ReplicaOptions {
        primary: primary.to_string(),
        poll_interval: Duration::from_millis(5),
        round_deadline: Some(Duration::from_secs(10)),
        timeout: Some(Duration::from_secs(5)),
        retry: fast_retry(),
        durable: durable(),
    }
}

fn wait_until(what: &str, timeout: Duration, mut cond: impl FnMut() -> bool) {
    let start = Instant::now();
    while !cond() {
        assert!(start.elapsed() < timeout, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Catch-up from a live tail: every record the primary applies reaches
/// the replica, the directories hold byte-identical WAL segments, and
/// applied sequence numbers converge.
#[test]
fn replica_catches_up_and_mirrors_the_primary_byte_for_byte() {
    let primary = spawn_primary("mirror");
    let client = KbClient::connect(primary.addr.clone());
    for i in 0..6u64 {
        client.record_run(&format!("ds-{i}"), &mf(i), run(i)).expect("seed");
    }

    let replica_dir = temp_dir("mirror-replica");
    let store =
        Arc::new(ShardedKb::open_with(&replica_dir, durable(), 2).expect("replica opens"));
    let tailer = ReplicaTailer::spawn(tail_options(&primary.addr), Arc::clone(&store));

    // More writes while the tailer is already running: live tailing, not
    // just a one-shot bootstrap. Enough volume to force rotations.
    for i in 6..40u64 {
        client.record_run(&format!("ds-{}", i % 11), &mf(i), run(i)).expect("write");
    }
    let primary_applied = client.stats().expect("stats").applied_seq;
    assert_eq!(primary_applied, 40);
    let t0 = Instant::now();
    while store.applied_seq() != primary_applied {
        if t0.elapsed() > Duration::from_secs(30) {
            panic!(
                "timed out: replica applied {} of {} (rounds {}, last error {:?})",
                store.applied_seq(),
                primary_applied,
                tailer.rounds(),
                tailer.last_error()
            );
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    wait_until("tailer to report caught up", Duration::from_secs(30), || {
        tailer.is_caught_up()
    });

    // Byte-identical directories: same segment files, same bytes.
    let mut seg = 1u64;
    let mut compared = 0;
    loop {
        let a = primary.dir.join(segment_name(seg));
        let b = replica_dir.join(segment_name(seg));
        match (std::fs::read(&a), std::fs::read(&b)) {
            (Ok(pa), Ok(pb)) => {
                assert_eq!(pa, pb, "segment {seg} diverged between primary and replica");
                compared += 1;
            }
            (Err(_), Err(_)) => break,
            (pa, pb) => panic!(
                "segment {seg} exists on one side only (primary: {}, replica: {})",
                pa.is_ok(),
                pb.is_ok()
            ),
        }
        seg += 1;
    }
    assert!(compared >= 2, "the workload must span several segments, saw {compared}");

    tailer.stop();
    stop_primary(primary);
    let _ = std::fs::remove_dir_all(&replica_dir);
}

/// A replica killed mid-catch-up (its WAL tail torn mid-frame, exactly
/// what SIGKILL during `apply_sync_chunk` leaves behind) re-spawns,
/// truncates the tear, and resumes from the durable position — ending
/// byte-identical to the primary.
#[test]
fn replica_killed_mid_catch_up_resumes_from_its_truncated_tail() {
    let primary = spawn_primary("kill9");
    let client = KbClient::connect(primary.addr.clone());
    for i in 0..20u64 {
        client.record_run(&format!("ds-{}", i % 7), &mf(i), run(i)).expect("seed");
    }
    let primary_applied = client.stats().expect("stats").applied_seq;

    // Phase 1: catch up fully, then "kill" the replica and tear its
    // active segment mid-frame.
    let replica_dir = temp_dir("kill9-replica");
    {
        let store =
            Arc::new(ShardedKb::open_with(&replica_dir, durable(), 2).expect("replica opens"));
        let tailer = ReplicaTailer::spawn(tail_options(&primary.addr), Arc::clone(&store));
        wait_until("first catch-up", Duration::from_secs(30), || {
            store.applied_seq() == primary_applied
        });
        tailer.stop();
    }
    let mut seqs: Vec<u64> = std::fs::read_dir(&replica_dir)
        .expect("read replica dir")
        .filter_map(|e| {
            let name = e.expect("entry").file_name();
            smartml_kbd::parse_segment_name(name.to_str()?)
        })
        .collect();
    seqs.sort_unstable();
    let last_seg = replica_dir.join(segment_name(*seqs.last().expect("segments exist")));
    let len = std::fs::metadata(&last_seg).expect("meta").len();
    assert!(len > 7, "active segment must hold data to tear");
    let file = std::fs::OpenOptions::new().write(true).open(&last_seg).expect("open");
    file.set_len(len - 7).expect("tear the tail mid-frame");
    drop(file);

    // Phase 2: more primary writes while the replica is down.
    for i in 20..32u64 {
        client.record_run(&format!("ds-{}", i % 7), &mf(i), run(i)).expect("write");
    }
    let primary_applied = client.stats().expect("stats").applied_seq;

    // Phase 3: re-spawn from the torn directory. Recovery truncates the
    // tear; the tailer resumes from that frame boundary and re-fetches
    // only what was lost.
    let store =
        Arc::new(ShardedKb::open_with(&replica_dir, durable(), 2).expect("reopen after tear"));
    assert!(store.applied_seq() < primary_applied, "the tear must have cost records");
    let tailer = ReplicaTailer::spawn(tail_options(&primary.addr), Arc::clone(&store));
    wait_until("resumed catch-up", Duration::from_secs(30), || {
        store.applied_seq() == primary_applied
    });
    tailer.stop();

    let mut seg = 1u64;
    loop {
        let a = primary.dir.join(segment_name(seg));
        let b = replica_dir.join(segment_name(seg));
        match (std::fs::read(&a), std::fs::read(&b)) {
            (Ok(pa), Ok(pb)) => assert_eq!(pa, pb, "segment {seg} diverged after resume"),
            (Err(_), Err(_)) => break,
            _ => panic!("segment {seg} exists on one side only after resume"),
        }
        seg += 1;
    }
    stop_primary(primary);
    let _ = std::fs::remove_dir_all(&replica_dir);
}

/// The primary dying mid-`sync` ships a prefix of a chunk. The store
/// refuses to apply anything that is not a whole number of frames, so a
/// torn prefix never enters the replica's WAL.
#[test]
fn torn_sync_prefix_is_refused_without_touching_the_wal() {
    let dir = temp_dir("torn-prefix");
    let store = ShardedKb::open_with(&dir, durable(), 2).expect("open");
    // A well-formed frame followed by a torn one — the byte stream a
    // primary killed mid-write would have produced.
    let record = WalRecord::Run {
        dataset_id: "ds-0".to_string(),
        meta_features: mf(0),
        run: run(0),
    };
    let whole = encode_frame(&record);
    let torn = &whole[..whole.len() - 3];
    let mut data = String::from_utf8(whole.clone()).expect("utf8");
    data.push_str(std::str::from_utf8(torn).expect("utf8"));

    let err = store
        .apply_sync_chunk(1, 0, &data)
        .expect_err("a torn prefix must be refused");
    assert!(
        err.to_string().contains("torn"),
        "the refusal must name the tear: {err}"
    );
    // Nothing was applied and nothing was written: the WAL is still
    // empty and a whole-frame chunk still applies at offset 0.
    assert_eq!(store.applied_seq(), 0, "no record may apply from a refused chunk");
    let applied = store
        .apply_sync_chunk(1, 0, std::str::from_utf8(&whole).expect("utf8"))
        .expect("whole frames apply after the refusal");
    assert_eq!(applied, 1);
    assert_eq!(
        std::fs::read(dir.join(segment_name(1))).expect("segment"),
        whole,
        "the refused bytes must not have reached the segment file"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A chunk at the wrong position (replica restarted against a different
/// primary history, or raced its own state) is refused with a resync
/// error rather than silently appended out of order.
#[test]
fn out_of_position_chunks_demand_a_resync() {
    let dir = temp_dir("position");
    let store = ShardedKb::open_with(&dir, durable(), 2).expect("open");
    let record = WalRecord::Run {
        dataset_id: "ds-0".to_string(),
        meta_features: mf(1),
        run: run(1),
    };
    let frame = String::from_utf8(encode_frame(&record)).expect("utf8");
    let err = store
        .apply_sync_chunk(1, 999, &frame)
        .expect_err("an offset gap must be refused");
    assert!(err.to_string().contains("resync required"), "typed resync error: {err}");
    let err = store
        .apply_sync_chunk(4, 0, &frame)
        .expect_err("a segment gap must be refused");
    assert!(err.to_string().contains("resync required"), "typed resync error: {err}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Snapshot shipping: a replica bootstrapping against a primary whose
/// history has been compacted receives the snapshot plus the live tail,
/// and converges to the same applied sequence.
#[test]
fn bootstrap_through_a_snapshot_ship_converges() {
    let primary = spawn_primary("snapship");
    let client = KbClient::connect(primary.addr.clone());
    for i in 0..15u64 {
        client.record_run(&format!("ds-{}", i % 5), &mf(i), run(i)).expect("seed");
    }
    client.snapshot().expect("compact the primary");
    for i in 15..22u64 {
        client.record_run(&format!("ds-{}", i % 5), &mf(i), run(i)).expect("post-snapshot write");
    }
    let primary_applied = client.stats().expect("stats").applied_seq;
    assert_eq!(primary_applied, 22);

    let replica_dir = temp_dir("snapship-replica");
    let store =
        Arc::new(ShardedKb::open_with(&replica_dir, durable(), 2).expect("replica opens"));
    let tailer = ReplicaTailer::spawn(tail_options(&primary.addr), Arc::clone(&store));
    wait_until("snapshot bootstrap", Duration::from_secs(30), || {
        store.applied_seq() == primary_applied
    });
    assert_eq!(store.len(), client.stats().expect("stats").datasets);
    tailer.stop();
    stop_primary(primary);
    let _ = std::fs::remove_dir_all(&replica_dir);
}

/// A replica-roled server answers reads and rejects every write with a
/// typed redirect naming its primary.
#[test]
fn replica_server_serves_reads_and_redirects_writes() {
    let primary = spawn_primary("redirect");
    let client = KbClient::connect(primary.addr.clone());
    for i in 0..8u64 {
        client.record_run(&format!("ds-{i}"), &mf(i), run(i)).expect("seed");
    }
    let primary_applied = client.stats().expect("stats").applied_seq;

    let replica_dir = temp_dir("redirect-replica");
    let store =
        Arc::new(ShardedKb::open_with(&replica_dir, durable(), 2).expect("replica opens"));
    let tailer = ReplicaTailer::spawn(tail_options(&primary.addr), Arc::clone(&store));
    let replica_server = EventServer::bind_with_store(
        EventServerOptions {
            dir: replica_dir.clone(),
            n_loops: 2,
            durable: durable(),
            role: ServeRole::Replica { primary: primary.addr.clone() },
            ..EventServerOptions::default()
        },
        Arc::clone(&store),
    )
    .expect("replica binds");
    let replica_addr = replica_server.local_addr().expect("addr").to_string();
    let replica_handle =
        std::thread::spawn(move || replica_server.run().expect("replica serve loop"));

    wait_until("replica catch-up", Duration::from_secs(30), || {
        store.applied_seq() == primary_applied
    });

    let replica_client = KbClient::connect(replica_addr.clone());
    // Reads work and match the primary byte-for-byte.
    let on_replica = replica_client.recommend(&mf(500), None, &Default::default()).expect("read");
    let on_primary = client.recommend(&mf(500), None, &Default::default()).expect("read");
    assert_eq!(
        serde_json::to_string(&on_replica).expect("json"),
        serde_json::to_string(&on_primary).expect("json"),
        "caught-up replica must answer recommendations byte-identically"
    );
    let stats = replica_client.stats().expect("stats");
    assert_eq!(stats.applied_seq, primary_applied);
    // The metrics verb reports zero lag once caught up. (The lag gauge
    // is process-global, so another test's mid-catch-up tailer can
    // flick it non-zero transiently — poll rather than assert once.)
    wait_until("zero reported lag", Duration::from_secs(30), || {
        replica_client.metrics().expect("metrics").replication_lag == Some(0)
    });
    assert!(
        client.metrics().expect("metrics").replication_lag.is_none(),
        "a primary reports no lag at all"
    );

    // Writes are redirected, not applied.
    let err = replica_client
        .record_run("ds-x", &mf(600), run(600))
        .expect_err("a replica must reject writes");
    assert!(
        err.to_string().contains(&primary.addr),
        "the redirect must name the primary: {err}"
    );
    let err = replica_client.snapshot().expect_err("snapshot is a write");
    assert!(err.to_string().contains("primary"), "typed redirect: {err}");
    assert_eq!(
        replica_client.stats().expect("stats").applied_seq,
        primary_applied,
        "the rejected write must not have changed the replica"
    );

    // `shutdown` is an operator verb, not a KB write: a replica accepts
    // it directly.
    tailer.stop();
    replica_client.shutdown().expect("replica shuts down");
    replica_handle.join().expect("replica thread");
    stop_primary(primary);
    let _ = std::fs::remove_dir_all(&replica_dir);
}

/// The failover drill behind the `PROMOTE` verb: the primary dies, an
/// operator promotes the caught-up replica, and writes land on it from
/// the very next request — using exactly the role-cell + tailer-stop
/// wiring the `smartmld` binary sets up.
#[test]
fn promote_turns_a_replica_into_a_writable_primary() {
    let primary = spawn_primary("promote");
    let client = KbClient::connect(primary.addr.clone());
    for i in 0..4u64 {
        client.record_run(&format!("ds-{i}"), &mf(i), run(i)).expect("seed");
    }
    let target = client.stats().expect("stats").applied_seq;

    let replica_dir = temp_dir("promote-replica");
    let store =
        Arc::new(ShardedKb::open_with(&replica_dir, durable(), 2).expect("replica opens"));
    let tailer =
        Arc::new(ReplicaTailer::spawn(tail_options(&primary.addr), Arc::clone(&store)));
    let server = EventServer::bind_with_store(
        EventServerOptions {
            dir: replica_dir.clone(),
            n_loops: 2,
            durable: durable(),
            role: ServeRole::Replica { primary: primary.addr.clone() },
            ..EventServerOptions::default()
        },
        Arc::clone(&store),
    )
    .expect("replica binds");
    let replica_addr = server.local_addr().expect("addr").to_string();
    {
        let hook_handle = Arc::clone(&tailer);
        server.role_cell().set_promote_hook(move || hook_handle.request_stop());
    }
    let serve = std::thread::spawn(move || server.run().expect("replica serve loop"));
    wait_until("replica catch-up", Duration::from_secs(30), || store.applied_seq() == target);

    // Chaos: the primary is gone.
    stop_primary(primary);

    // Still a replica: writes are refused with the typed redirect.
    let replica_client = KbClient::connect(replica_addr.clone()).with_retry(fast_retry());
    let err = replica_client
        .record_run("post-failover", &mf(90), run(90))
        .expect_err("a replica must refuse writes");
    assert!(
        err.to_string().contains("read replica"),
        "refusal must be the typed not_primary redirect: {err}"
    );
    // ... and its metrics report a replication lag.
    assert!(
        replica_client.metrics().expect("metrics").replication_lag.is_some(),
        "a replica must report its lag"
    );

    // Promote. The flip must be visible on the next request, on every
    // serving loop, and the tailer must wind down.
    assert!(replica_client.promote().expect("promote"), "first promote flips the role");
    let (datasets, runs) =
        replica_client.record_run("post-failover", &mf(90), run(90)).expect("write must land");
    assert!(datasets >= 1 && runs >= 1);
    assert_eq!(
        replica_client.stats().expect("stats").applied_seq,
        target + 1,
        "the post-promotion write must be applied and durable"
    );
    assert_eq!(
        replica_client.metrics().expect("metrics").replication_lag,
        None,
        "a promoted server reports no replication lag"
    );
    // Idempotent: a second promote is a no-op on a primary.
    assert!(!replica_client.promote().expect("second promote"), "already a primary");

    // The hook told the tailer to stop; dropping the last handle joins
    // its thread — which only returns if the stop actually took.
    drop(tailer);

    replica_client.shutdown().expect("replica shuts down");
    serve.join().expect("replica thread");
    let _ = std::fs::remove_dir_all(&replica_dir);
}
