//! Satellite: concurrent writers (`record_run`) against concurrent
//! readers (`recommend`) on one [`SharedKb`]. Readers must always see a
//! consistent prefix of the writes — never a half-applied record, never
//! normalisation statistics from a different generation than the entries
//! they score — and the final state must be coherent.

use smartml_classifiers::{Algorithm, ParamConfig};
use smartml_data::synth::gaussian_blobs;
use smartml_kb::{AlgorithmRun, KnowledgeBase, QueryOptions};
use smartml_kbd::SharedKb;
use smartml_metafeatures::{extract, MetaFeatures};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn mf(seed: u64) -> MetaFeatures {
    let d = gaussian_blobs("cc", 40 + (seed % 13) as usize, 3, 2, 0.8, seed);
    extract(&d, &d.all_rows())
}

fn observation(writer: usize, i: usize) -> (String, MetaFeatures, AlgorithmRun) {
    let seed = (writer * 1000 + i) as u64;
    let algorithm =
        [Algorithm::RandomForest, Algorithm::Svm, Algorithm::Knn, Algorithm::NaiveBayes][i % 4];
    (
        format!("w{writer}-d{i}"),
        mf(seed),
        AlgorithmRun {
            algorithm,
            config: ParamConfig::default(),
            accuracy: 0.5 + (seed % 40) as f64 / 100.0,
        },
    )
}

#[test]
fn writers_and_readers_interleave_without_tearing() {
    const WRITERS: usize = 3;
    const RECORDS_PER_WRITER: usize = 25;
    const READERS: usize = 4;

    let shared = Arc::new(SharedKb::new(KnowledgeBase::new()));
    // Seed one entry so readers always have something to score.
    shared.record_run("seed", &mf(999), observation(9, 0).2).unwrap();

    let done = Arc::new(AtomicBool::new(false));
    let options = QueryOptions { n_neighbors: 8, ..QueryOptions::default() };

    std::thread::scope(|scope| {
        for w in 0..WRITERS {
            let shared = Arc::clone(&shared);
            scope.spawn(move || {
                for i in 0..RECORDS_PER_WRITER {
                    let (id, mf, run) = observation(w, i);
                    shared.record_run(&id, &mf, run).expect("record_run");
                }
            });
        }
        for r in 0..READERS {
            let shared = Arc::clone(&shared);
            let done = Arc::clone(&done);
            let options = options.clone();
            scope.spawn(move || {
                let query = mf(5000 + r as u64);
                let mut last_len = 0usize;
                let mut last_generation = 0u64;
                let mut queries = 0usize;
                while !done.load(Ordering::Acquire) || queries == 0 {
                    let g_before = shared.generation();
                    let len_before = shared.len();
                    let rec = shared.recommend(&query, None, &options);
                    let len_after = shared.len();
                    queries += 1;

                    // A consistent prefix: every neighbour is a dataset
                    // some writer fully recorded, and the neighbour count
                    // is bounded by the KB size bracketing the query.
                    assert!(rec.neighbors.len() <= options.n_neighbors);
                    assert!(rec.neighbors.len() <= len_after);
                    for (id, distance) in &rec.neighbors {
                        assert!(
                            id == "seed" || id.starts_with('w'),
                            "unknown neighbour {id:?}"
                        );
                        assert!(distance.is_finite() && *distance >= 0.0);
                    }
                    assert!(!rec.algorithms.is_empty(), "seeded KB must nominate");
                    for a in &rec.algorithms {
                        assert!(a.score.is_finite());
                    }

                    // Size and generation only move forward.
                    assert!(len_after >= len_before);
                    assert!(len_after >= last_len);
                    assert!(shared.generation() >= g_before);
                    assert!(g_before >= last_generation);
                    last_len = len_after;
                    last_generation = g_before;
                }
            });
        }
        // The writer threads finish first (scope ordering is not
        // guaranteed, so track completion explicitly).
        scope.spawn({
            let shared = Arc::clone(&shared);
            let done = Arc::clone(&done);
            move || {
                let target = 1 + WRITERS * RECORDS_PER_WRITER;
                while shared.len() < target {
                    std::thread::yield_now();
                }
                done.store(true, Ordering::Release);
            }
        });
    });

    // Coherent final state: every write applied exactly once.
    assert_eq!(shared.len(), 1 + WRITERS * RECORDS_PER_WRITER);
    assert_eq!(shared.n_runs(), 1 + WRITERS * RECORDS_PER_WRITER);

    // The cached-stats path now agrees with a direct uncached query.
    let query = mf(7777);
    let cached = shared.recommend(&query, None, &options);
    let direct = shared.read(|kb| kb.recommend_extended(&query, None, &options));
    assert_eq!(cached, direct);
}
