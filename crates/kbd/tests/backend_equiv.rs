//! The two `smartmld` backends are interchangeable: given the same
//! request script, the blocking thread-per-connection server (the
//! oracle) and the epoll event-driven server must produce **byte
//! identical** response lines — writes, reads, landmarkers, batches,
//! snapshots, and protocol errors alike. And one `recommend_batch` must
//! answer exactly what the equivalent `recommend` sequence answers.

use smartml_classifiers::{Algorithm, ParamConfig};
use smartml_data::synth::gaussian_blobs;
use smartml_kb::{AlgorithmRun, QueryOptions};
use smartml_kbd::{
    BatchQuery, DurableOptions, EventServer, EventServerOptions, KbClient, ReplicaHandle,
    ReplicaOptions, ReplicaTailer, Request, Server, ServerOptions, ServeRole, ShardedKb,
};
use smartml_metafeatures::{extract, Landmarkers, MetaFeatures};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("smartml-kbd-eq-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn mf(seed: u64) -> MetaFeatures {
    let d = gaussian_blobs("eq", 40 + (seed % 17) as usize, 3, 2, 0.85, seed);
    extract(&d, &d.all_rows())
}

fn run(i: u64) -> AlgorithmRun {
    let algorithm =
        [Algorithm::RandomForest, Algorithm::Svm, Algorithm::Knn, Algorithm::NaiveBayes]
            [i as usize % 4];
    AlgorithmRun {
        algorithm,
        config: ParamConfig::default(),
        accuracy: 0.5 + (i % 45) as f64 / 100.0,
    }
}

fn landmarkers(seed: u64) -> Landmarkers {
    Landmarkers {
        decision_stump: 0.35 + (seed % 6) as f64 / 10.0,
        nearest_centroid: 0.5 + (seed % 4) as f64 / 10.0,
    }
}

/// The request script both backends replay: every verb except `metrics`
/// (whose counters are process-global and timing-dependent), plus a
/// malformed line whose error must also match.
fn script() -> Vec<String> {
    let mut lines = Vec::new();
    let enc = |r: &Request| serde_json::to_string(r).expect("encode request");
    lines.push(enc(&Request::Ping));
    for i in 0..10u64 {
        lines.push(enc(&Request::RecordRun {
            dataset_id: format!("ds-{}", i % 7), // revisits overwrite meta-features
            meta_features: mf(i),
            run: run(i),
        }));
    }
    for i in [1u64, 4] {
        lines.push(enc(&Request::SetLandmarkers {
            dataset_id: format!("ds-{i}"),
            landmarkers: landmarkers(i),
        }));
    }
    let option_sets = [
        QueryOptions::default(),
        QueryOptions { n_neighbors: 3, top_n: 2, ..QueryOptions::default() },
        QueryOptions { use_landmarkers: true, ..QueryOptions::default() },
        QueryOptions { performance_weight: 2.0, n_neighbors: 50, ..QueryOptions::default() },
    ];
    for (i, options) in option_sets.iter().enumerate() {
        lines.push(enc(&Request::Recommend {
            meta_features: mf(100 + i as u64),
            landmarkers: options.use_landmarkers.then(|| landmarkers(9)),
            options: Some(options.clone()),
        }));
    }
    lines.push(enc(&Request::RecommendBatch {
        queries: (0..4u64)
            .map(|i| BatchQuery {
                meta_features: mf(200 + i),
                landmarkers: (i % 2 == 0).then(|| landmarkers(i)),
                options: Some(option_sets[i as usize % option_sets.len()].clone()),
            })
            .collect(),
    }));
    lines.push(enc(&Request::Stats));
    lines.push(enc(&Request::Snapshot));
    lines.push(enc(&Request::Stats));
    // Post-compaction state must still answer identically.
    lines.push(enc(&Request::Recommend {
        meta_features: mf(300),
        landmarkers: None,
        options: None,
    }));
    lines.push("{\"op\":\"recommend\",\"meta_features\":\"not a vector\"}".to_string());
    lines.push("plainly not json".to_string());
    lines.push(enc(&Request::Ping));
    lines
}

struct Backend {
    addr: String,
    handle: std::thread::JoinHandle<()>,
    dir: PathBuf,
}

fn spawn_blocking(tag: &str) -> Backend {
    let dir = temp_dir(tag);
    let server = Server::bind(ServerOptions {
        dir: dir.clone(),
        durable: DurableOptions { fsync_writes: false, ..Default::default() },
        ..ServerOptions::default()
    })
    .expect("blocking server binds");
    let addr = server.local_addr().expect("addr").to_string();
    let handle = std::thread::spawn(move || server.run().expect("blocking serve loop"));
    Backend { addr, handle, dir }
}

fn spawn_epoll(tag: &str, n_loops: usize) -> Backend {
    let dir = temp_dir(tag);
    let server = EventServer::bind(EventServerOptions {
        dir: dir.clone(),
        n_loops,
        durable: DurableOptions { fsync_writes: false, ..Default::default() },
        ..EventServerOptions::default()
    })
    .expect("event server binds");
    let addr = server.local_addr().expect("addr").to_string();
    let handle = std::thread::spawn(move || server.run().expect("event serve loop"));
    Backend { addr, handle, dir }
}

fn shutdown(backend: Backend) {
    let stream = TcpStream::connect(&backend.addr).expect("connect for shutdown");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    writeln!(writer, "{{\"op\":\"shutdown\"}}").expect("send shutdown");
    let mut line = String::new();
    let _ = reader.read_line(&mut line);
    backend.handle.join().expect("server thread");
    let _ = std::fs::remove_dir_all(&backend.dir);
}

/// Sends every script line sequentially on one connection, one
/// round-trip at a time, returning the exact response lines.
fn play_sequential(addr: &str, lines: &[String]) -> Vec<String> {
    let stream = TcpStream::connect(addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    lines
        .iter()
        .map(|line| {
            writeln!(writer, "{line}").expect("send");
            let mut response = String::new();
            reader.read_line(&mut response).expect("response");
            assert!(response.ends_with('\n'), "truncated response for {line}");
            response
        })
        .collect()
}

/// Sends every script line in one burst (pipelining), then reads all
/// the responses back.
fn play_pipelined(addr: &str, lines: &[String]) -> Vec<String> {
    let stream = TcpStream::connect(addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    let burst: String = lines.iter().map(|l| format!("{l}\n")).collect();
    writer.write_all(burst.as_bytes()).expect("send burst");
    lines
        .iter()
        .map(|line| {
            let mut response = String::new();
            reader.read_line(&mut response).expect("response");
            assert!(response.ends_with('\n'), "truncated response for {line}");
            response
        })
        .collect()
}

#[test]
fn epoll_and_blocking_backends_answer_byte_identically() {
    let lines = script();
    let blocking = spawn_blocking("oracle");
    let epoll = spawn_epoll("epoll", 3);

    let expected = play_sequential(&blocking.addr, &lines);
    let sequential = play_sequential(&epoll.addr, &lines);
    for (i, (want, got)) in expected.iter().zip(&sequential).enumerate() {
        assert_eq!(
            want, got,
            "response {i} diverged between backends for request: {}",
            lines[i]
        );
    }

    shutdown(blocking);
    shutdown(epoll);
}

#[test]
fn pipelined_epoll_responses_match_the_sequential_oracle() {
    // Read-only script on a pre-seeded store: replaying writes twice
    // (once per play) would double-apply them.
    let epoll = spawn_epoll("pipeline", 2);
    {
        let client = smartml_kbd::KbClient::connect(epoll.addr.clone());
        for i in 0..8u64 {
            client.record_run(&format!("ds-{i}"), &mf(i), run(i)).expect("seed");
        }
    }
    let enc = |r: &Request| serde_json::to_string(r).expect("encode request");
    let mut lines = vec![enc(&Request::Ping)];
    for i in 0..12u64 {
        lines.push(enc(&Request::Recommend {
            meta_features: mf(400 + i),
            landmarkers: None,
            options: Some(QueryOptions { n_neighbors: 5, ..QueryOptions::default() }),
        }));
    }
    lines.push(enc(&Request::Stats));

    let sequential = play_sequential(&epoll.addr, &lines);
    let pipelined = play_pipelined(&epoll.addr, &lines);
    assert_eq!(sequential, pipelined, "pipelining must not change any response");
    shutdown(epoll);
}

#[test]
fn one_batch_answers_exactly_like_the_recommend_sequence() {
    let epoll = spawn_epoll("batch", 2);
    {
        let client = smartml_kbd::KbClient::connect(epoll.addr.clone());
        for i in 0..9u64 {
            client.record_run(&format!("ds-{i}"), &mf(i), run(i)).expect("seed");
        }
        client.set_landmarkers("ds-2", landmarkers(2)).expect("landmarkers");
    }
    let queries: Vec<BatchQuery> = (0..6u64)
        .map(|i| BatchQuery {
            meta_features: mf(500 + i),
            landmarkers: (i % 3 == 0).then(|| landmarkers(i)),
            options: Some(QueryOptions {
                n_neighbors: 4 + i as usize,
                use_landmarkers: i % 3 == 0,
                ..QueryOptions::default()
            }),
        })
        .collect();
    let enc = |r: &Request| serde_json::to_string(r).expect("encode request");

    let batch_line = enc(&Request::RecommendBatch { queries: queries.clone() });
    let singles: Vec<String> = queries
        .iter()
        .map(|q| {
            enc(&Request::Recommend {
                meta_features: q.meta_features.clone(),
                landmarkers: q.landmarkers.clone(),
                options: q.options.clone(),
            })
        })
        .collect();

    let batch_resp = play_sequential(&epoll.addr, std::slice::from_ref(&batch_line));
    let single_resps = play_sequential(&epoll.addr, &singles);

    let batch: serde_json::Value = serde_json::from_str(&batch_resp[0]).expect("batch json");
    assert_eq!(batch["status"], "recommendations");
    let answers = batch["recommendations"].as_array().expect("answers array");
    assert_eq!(answers.len(), queries.len());
    for (i, single) in single_resps.iter().enumerate() {
        let single: serde_json::Value = serde_json::from_str(single).expect("single json");
        assert_eq!(single["status"], "recommendation");
        assert_eq!(
            answers[i], single["recommendation"],
            "batch answer {i} != sequential recommend answer"
        );
    }

    // The typed client agrees end to end.
    let client = smartml_kbd::KbClient::connect(epoll.addr.clone());
    let via_client = client.recommend_batch(queries.clone()).expect("client batch");
    assert_eq!(via_client.len(), queries.len());
    for (i, rec) in via_client.iter().enumerate() {
        let as_json = serde_json::to_value(rec);
        assert_eq!(as_json, answers[i], "client batch answer {i} diverged");
    }
    shutdown(epoll);
}

/// A read replica: its own store tailed by a [`ReplicaTailer`], served
/// read-only by the epoll backend.
struct Replica {
    backend: Backend,
    store: Arc<ShardedKb>,
    tailer: ReplicaHandle,
}

fn spawn_replica(tag: &str, primary_addr: &str) -> Replica {
    let dir = temp_dir(tag);
    let durable = DurableOptions { fsync_writes: false, ..Default::default() };
    let store =
        Arc::new(ShardedKb::open_with(&dir, durable.clone(), 2).expect("replica store opens"));
    let tailer = ReplicaTailer::spawn(
        ReplicaOptions {
            primary: primary_addr.to_string(),
            poll_interval: Duration::from_millis(5),
            durable: durable.clone(),
            ..ReplicaOptions::default()
        },
        Arc::clone(&store),
    );
    let server = EventServer::bind_with_store(
        EventServerOptions {
            dir: dir.clone(),
            n_loops: 2,
            durable,
            role: ServeRole::Replica { primary: primary_addr.to_string() },
            ..EventServerOptions::default()
        },
        Arc::clone(&store),
    )
    .expect("replica server binds");
    let addr = server.local_addr().expect("addr").to_string();
    let handle = std::thread::spawn(move || server.run().expect("replica serve loop"));
    Replica { backend: Backend { addr, handle, dir }, store, tailer }
}

fn wait_for_catch_up(store: &ShardedKb, target: u64) {
    let start = Instant::now();
    while store.applied_seq() != target {
        assert!(
            start.elapsed() < Duration::from_secs(60),
            "replica stalled at applied_seq {} of {target}",
            store.applied_seq()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Every read-only verb: the script a replica must answer exactly like
/// its primary. No writes — those are the redirect test's business.
fn read_only_script() -> Vec<String> {
    let enc = |r: &Request| serde_json::to_string(r).expect("encode request");
    let mut lines = vec![enc(&Request::Ping)];
    let option_sets = [
        QueryOptions::default(),
        QueryOptions { n_neighbors: 3, top_n: 2, ..QueryOptions::default() },
        QueryOptions { use_landmarkers: true, ..QueryOptions::default() },
        QueryOptions { performance_weight: 2.0, n_neighbors: 50, ..QueryOptions::default() },
    ];
    for (i, options) in option_sets.iter().enumerate() {
        lines.push(enc(&Request::Recommend {
            meta_features: mf(700 + i as u64),
            landmarkers: options.use_landmarkers.then(|| landmarkers(3)),
            options: Some(options.clone()),
        }));
    }
    lines.push(enc(&Request::RecommendBatch {
        queries: (0..4u64)
            .map(|i| BatchQuery {
                meta_features: mf(800 + i),
                landmarkers: (i % 2 == 0).then(|| landmarkers(i)),
                options: Some(option_sets[i as usize % option_sets.len()].clone()),
            })
            .collect(),
    }));
    lines.push(enc(&Request::Stats));
    lines
}

#[test]
fn a_caught_up_replica_answers_reads_byte_identically_to_the_primary() {
    let primary = spawn_epoll("repl-primary", 2);
    let client = KbClient::connect(primary.addr.clone());
    for i in 0..12u64 {
        client.record_run(&format!("ds-{}", i % 7), &mf(i), run(i)).expect("seed");
    }
    client.set_landmarkers("ds-2", landmarkers(2)).expect("landmarkers");
    let target = client.stats().expect("stats").applied_seq;

    let replica = spawn_replica("repl-replica", &primary.addr);
    wait_for_catch_up(&replica.store, target);

    let lines = read_only_script();
    let on_primary = play_sequential(&primary.addr, &lines);
    let on_replica = play_sequential(&replica.backend.addr, &lines);
    for (i, (want, got)) in on_primary.iter().zip(&on_replica).enumerate() {
        assert_eq!(
            want, got,
            "response {i} diverged between primary and caught-up replica for: {}",
            lines[i]
        );
    }

    // Writes are not served — they answer a typed redirect to the primary.
    let write = serde_json::to_string(&Request::Snapshot).expect("encode");
    let redirect = play_sequential(&replica.backend.addr, std::slice::from_ref(&write));
    assert!(
        redirect[0].contains("not_primary") && redirect[0].contains(&primary.addr),
        "a write to the replica must redirect to the primary: {}",
        redirect[0]
    );

    replica.tailer.stop();
    shutdown(replica.backend);
    shutdown(primary);
}

/// Satellite of the chaos suite: with ~30% of replication pulls,
/// chunk applies, and snapshot installs panicking via injected faults,
/// the tailer still converges and the caught-up replica still answers
/// byte-identically. Runs only with `--features fault-injection`.
#[cfg(feature = "fault-injection")]
#[test]
fn a_replica_catching_up_under_injected_faults_still_matches_the_primary() {
    use smartml_runtime::faults::fail;

    let primary = spawn_epoll("fault-primary", 2);
    let client = KbClient::connect(primary.addr.clone());
    for i in 0..10u64 {
        client.record_run(&format!("ds-{}", i % 5), &mf(i), run(i)).expect("seed");
    }
    let rule = |site: &str| fail::SiteRule {
        site: site.to_string(),
        panic_rate: 0.3,
        hang_rate: 0.0,
        hang_for: Duration::ZERO,
    };
    fail::arm(fail::FaultPlan {
        seed: 0xD15_EA5E,
        rules: vec![
            rule("replica.pull"),
            rule("replica.apply_chunk"),
            rule("replica.install_snapshot"),
        ],
    });
    let replica = spawn_replica("fault-replica", &primary.addr);
    // Keep writing while the tailer fights through the fault storm, so
    // catch-up spans live tailing and segment rotations, not one chunk.
    for i in 10..30u64 {
        client.record_run(&format!("ds-{}", i % 5), &mf(i), run(i)).expect("write");
    }
    let target = client.stats().expect("stats").applied_seq;
    wait_for_catch_up(&replica.store, target);
    fail::disarm();
    assert!(
        fail::injected_panics() > 0,
        "the fault plan must actually have fired for this test to mean anything"
    );

    let lines = read_only_script();
    let on_primary = play_sequential(&primary.addr, &lines);
    let on_replica = play_sequential(&replica.backend.addr, &lines);
    for (i, (want, got)) in on_primary.iter().zip(&on_replica).enumerate() {
        assert_eq!(
            want, got,
            "response {i} diverged after faulted catch-up for: {}",
            lines[i]
        );
    }

    replica.tailer.stop();
    shutdown(replica.backend);
    shutdown(primary);
}
