//! The event-driven backend against clients that do everything wrong:
//! dribble requests one byte at a time, send torn frames and oversized
//! frames, and stop reading their responses entirely. The server must
//! stay correct, stay bounded in memory, and — the busy-spin canary —
//! stay *idle*: a stalled connection must not inflate the per-loop
//! `epoll_wait` counter.

use smartml_classifiers::{Algorithm, ParamConfig};
use smartml_data::synth::gaussian_blobs;
use smartml_kb::{AlgorithmRun, QueryOptions};
use smartml_kbd::{
    BatchQuery, DurableOptions, EventServer, EventServerOptions, LoopStats, Request,
    MAX_FRAME_BYTES,
};
use smartml_metafeatures::{extract, MetaFeatures};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("smartml-kbd-mb-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn mf(seed: u64) -> MetaFeatures {
    let d = gaussian_blobs("mb", 40 + (seed % 11) as usize, 3, 2, 0.8, seed);
    extract(&d, &d.all_rows())
}

struct Fixture {
    addr: String,
    stats: Arc<Vec<LoopStats>>,
    handle: std::thread::JoinHandle<()>,
    dir: PathBuf,
}

fn spawn(tag: &str, seed_entries: u64) -> Fixture {
    let dir = temp_dir(tag);
    let server = EventServer::bind(EventServerOptions {
        dir: dir.clone(),
        n_loops: 2,
        durable: DurableOptions { fsync_writes: false, ..Default::default() },
        ..EventServerOptions::default()
    })
    .expect("event server binds");
    let addr = server.local_addr().expect("addr").to_string();
    let stats = server.loop_stats();
    let handle = std::thread::spawn(move || server.run().expect("event serve loop"));
    if seed_entries > 0 {
        let client = smartml_kbd::KbClient::connect(addr.clone());
        for i in 0..seed_entries {
            let run = AlgorithmRun {
                algorithm: [Algorithm::RandomForest, Algorithm::Svm, Algorithm::Knn]
                    [i as usize % 3],
                config: ParamConfig::default(),
                accuracy: 0.6 + (i % 30) as f64 / 100.0,
            };
            client.record_run(&format!("ds-{i}"), &mf(i), run).expect("seed");
        }
    }
    Fixture { addr, stats, handle, dir }
}

fn total_wakeups(stats: &[LoopStats]) -> u64 {
    stats.iter().map(|s| s.wakeups.load(Ordering::Relaxed)).sum()
}

fn shutdown(fixture: Fixture) {
    let client = smartml_kbd::KbClient::connect(fixture.addr.clone());
    client.shutdown().expect("shutdown");
    fixture.handle.join().expect("server thread");
    let _ = std::fs::remove_dir_all(&fixture.dir);
}

/// A request dribbled one byte at a time still parses once its newline
/// lands — partial frames buffer across reads — and a frame torn by a
/// mid-line disconnect is dropped without a response or a crash.
#[test]
fn dribbled_bytes_and_torn_frames() {
    let fixture = spawn("dribble", 0);

    // Byte-at-a-time ping: dozens of 1-byte reads, one response.
    let stream = TcpStream::connect(&fixture.addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    for byte in b"{\"op\":\"ping\"}\n" {
        writer.write_all(&[*byte]).expect("dribble byte");
        writer.flush().expect("flush");
        std::thread::sleep(Duration::from_millis(1));
    }
    let mut response = String::new();
    reader.read_line(&mut response).expect("response");
    assert_eq!(response.trim(), "{\"status\":\"pong\"}");

    // Torn frame: half a request, then a hard disconnect. No response is
    // owed; the server must just clean the connection up.
    let mut torn = TcpStream::connect(&fixture.addr).expect("connect torn");
    torn.write_all(b"{\"op\":\"pi").expect("half frame");
    drop(torn);
    std::thread::sleep(Duration::from_millis(50));

    // Dribbling again on the first connection still works: state was
    // per-connection, not poisoned globally.
    writeln!(writer, "{{\"op\":\"ping\"}}").expect("second ping");
    let mut response = String::new();
    reader.read_line(&mut response).expect("second response");
    assert_eq!(response.trim(), "{\"status\":\"pong\"}");

    shutdown(fixture);
}

/// A frame above [`MAX_FRAME_BYTES`] gets exactly one protocol error —
/// not an allocation proportional to whatever the client keeps sending —
/// and the connection is closed.
#[test]
fn oversized_frame_is_rejected_with_one_error() {
    let fixture = spawn("oversized", 0);
    let stream = TcpStream::connect(&fixture.addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);

    // Well past the cap of newline-free junk, from a separate thread:
    // once the server rejects the frame it stops reading, so the tail of
    // this torrent blocks in kernel buffers (and errors out when the
    // server closes) — the main thread meanwhile reads the error.
    let junk_writer = std::thread::spawn(move || {
        let chunk = vec![b'x'; 64 * 1024];
        let mut sent = 0usize;
        while sent <= MAX_FRAME_BYTES + 4 * 1024 * 1024 {
            if writer.write_all(&chunk).is_err() {
                break; // server closed mid-torrent: expected
            }
            sent += chunk.len();
        }
    });
    let mut response = String::new();
    reader.read_line(&mut response).expect("error response");
    let parsed: serde_json::Value = serde_json::from_str(&response).expect("error json");
    assert_eq!(parsed["status"], "error");
    assert!(
        parsed["message"].as_str().unwrap_or("").contains("byte limit"),
        "unexpected message: {response}"
    );
    // The server drains-and-discards the rest of the torrent (so the
    // error line above survived — closing with unread input queued would
    // have RST it away), which means the junk writer runs to completion
    // instead of deadlocking on a stalled socket.
    junk_writer.join().expect("junk writer");

    // No further responses: the poisoned stream is never re-parsed.
    drop(reader);

    // And the server is still healthy for the next client.
    let client = smartml_kbd::KbClient::connect(fixture.addr.clone());
    client.ping().expect("ping after oversized frame");
    shutdown(fixture);
}

/// The never-draining reader: a client pipelines big batched queries and
/// refuses to read any responses. Backpressure must engage (bounded
/// buffers, reads paused), the loop must go *quiet* instead of spinning
/// on the unwritable socket, and once the client finally drains, every
/// response must arrive intact.
#[test]
fn slow_reader_backpressure_without_busy_spin() {
    let fixture = spawn("backpressure", 24);

    let query_options = QueryOptions { n_neighbors: 10, top_n: 8, ..QueryOptions::default() };
    let batch = Request::RecommendBatch {
        queries: (0..150u64)
            .map(|i| BatchQuery {
                meta_features: mf(1000 + i),
                landmarkers: None,
                options: Some(query_options.clone()),
            })
            .collect(),
    };
    let line = serde_json::to_string(&batch).expect("encode batch");

    const BURSTS: usize = 12;
    let stream = TcpStream::connect(&fixture.addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    let writer_thread = std::thread::spawn(move || {
        // Blocking writes: once the server pauses reading, these stall
        // on the kernel buffers — exactly the backpressure under test.
        for _ in 0..BURSTS {
            writer.write_all(line.as_bytes()).expect("burst line");
            writer.write_all(b"\n").expect("burst newline");
        }
        writer.flush().expect("flush");
    });

    // Let the pipeline jam: server responses fill its write buffer past
    // the high-water mark, reads pause, the client's writes stall.
    std::thread::sleep(Duration::from_millis(400));

    // The canary: with everything stalled, the loops must be asleep.
    let before = total_wakeups(&fixture.stats);
    std::thread::sleep(Duration::from_millis(300));
    let idle_wakeups = total_wakeups(&fixture.stats) - before;
    assert!(
        idle_wakeups < 20,
        "event loops busy-spun while stalled: {idle_wakeups} wakeups in 300ms"
    );

    // Now drain: every burst must come back complete and parseable.
    let mut reader = BufReader::new(stream);
    for burst in 0..BURSTS {
        let mut response = String::new();
        reader.read_line(&mut response).expect("drain response");
        assert!(response.ends_with('\n'), "truncated response for burst {burst}");
        let parsed: serde_json::Value = serde_json::from_str(&response).expect("response json");
        assert_eq!(parsed["status"], "recommendations", "burst {burst}: {response}");
        assert_eq!(
            parsed["recommendations"].as_array().map(Vec::len),
            Some(150),
            "burst {burst} lost answers"
        );
    }
    writer_thread.join().expect("writer thread");

    // Clean teardown: close our half; the server must notice and the
    // next client must be unaffected.
    drop(reader);
    let client = smartml_kbd::KbClient::connect(fixture.addr.clone());
    client.ping().expect("ping after backpressure client");
    shutdown(fixture);
}

/// An idle open connection costs (almost) nothing: no timers firing per
/// tick, no spurious readiness.
#[test]
fn idle_connection_does_not_wake_the_loops() {
    let fixture = spawn("idle", 0);
    let stream = TcpStream::connect(&fixture.addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream.try_clone().expect("clone2"));
    writeln!(writer, "{{\"op\":\"ping\"}}").expect("ping");
    let mut response = String::new();
    reader.read_line(&mut response).expect("pong");

    let before = total_wakeups(&fixture.stats);
    std::thread::sleep(Duration::from_millis(300));
    let idle_wakeups = total_wakeups(&fixture.stats) - before;
    assert!(idle_wakeups < 10, "idle connection woke the loops {idle_wakeups} times in 300ms");

    drop((reader, writer, stream));
    shutdown(fixture);
}

/// Reads still work while a read is "slow": a client that sends a valid
/// request, then trickles unrelated bytes, must get its answer without
/// the trickle being misparsed.
#[test]
fn interleaved_trickle_and_requests_stay_framed() {
    let fixture = spawn("trickle", 6);
    let stream = TcpStream::connect(&fixture.addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);

    let request = serde_json::to_string(&Request::Recommend {
        meta_features: mf(2000),
        landmarkers: None,
        options: Some(QueryOptions::default()),
    })
    .expect("encode");
    // Full request + the first half of a second one in a single write.
    let half = &request[..request.len() / 2];
    writer.write_all(format!("{request}\n{half}").as_bytes()).expect("one and a half");
    let mut response = String::new();
    reader.read_line(&mut response).expect("first answer");
    let parsed: serde_json::Value = serde_json::from_str(&response).expect("json");
    assert_eq!(parsed["status"], "recommendation");

    // Finish the second frame; it must parse as its own request.
    writer
        .write_all(format!("{}\n", &request[request.len() / 2..]).as_bytes())
        .expect("second half");
    let mut response2 = String::new();
    reader.read_line(&mut response2).expect("second answer");
    assert_eq!(response, response2, "the reassembled frame must answer identically");

    shutdown(fixture);
}
