//! Shared model-building machinery: the generic decision tree used by the
//! J48/part/c50/rpart/Bagging/RandomForest/LMT/DeepBoost family, and the
//! multinomial logistic regression used by LMT leaves.

pub mod logistic;
pub mod split;
pub mod tree;

pub use logistic::LogisticModel;
pub use split::{BinnedColumns, RankedBase, SortedColumns, SplitState, MAX_BINS};
pub use tree::{DecisionTree, Pruning, SplitCriterion, TreeConfig};
