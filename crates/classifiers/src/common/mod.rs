//! Shared model-building machinery: the generic decision tree used by the
//! J48/part/c50/rpart/Bagging/RandomForest/LMT/DeepBoost family, and the
//! multinomial logistic regression used by LMT leaves.

pub mod logistic;
pub mod tree;

pub use logistic::LogisticModel;
pub use tree::{DecisionTree, Pruning, SplitCriterion, TreeConfig};
