//! Shared tree-training split kernels.
//!
//! Two complementary strategies back every tree learner in the workspace
//! (CART/C4.5 classifiers, the bootstrap ensembles, DeepBoost, LMT, the
//! SMAC surrogate forest and the landmarking stump):
//!
//! - **Presorted columns** ([`SortedColumns`], [`sorted_slots`]): each
//!   numeric feature's rows are sorted *once per fit* by an
//!   order-preserving `f64 → u64` key, then stably partitioned down the
//!   tree ([`partition2`], [`partition_multi`]) instead of re-sorted at
//!   every node. Per-node cost drops from `O(F·n log n)` to `O(F·n)`
//!   while the split scan itself stays byte-for-byte identical to the
//!   naive kernel: stable root sort + stable partitions reproduce the
//!   per-node stable sort's tie order exactly, so every floating-point
//!   accumulation happens in the same sequence.
//! - **Histogram binning** ([`BinnedColumns`]): numeric features are
//!   quantised into at most [`MAX_BINS`] bins once per forest; per-node
//!   scans then cost `O(bins)` with reusable count buffers. Bin edges are
//!   actual data values, so `v <= edges[b] ⟺ code(v) <= b` and trained
//!   trees predict on raw values with no quantisation drift at the
//!   boundaries. The binned path is deterministic (including across
//!   thread-pool widths) but *not* bit-identical to the exact path; it is
//!   opt-in via `TreeConfig::max_bins`.
//!
//! [`SplitState`] owns every scratch buffer the growers need so the node
//! recursion allocates nothing beyond the `counts` vectors that are moved
//! into the finished tree.

use smartml_data::{Dataset, Feature};
use smartml_linalg::kernels;
use smartml_obs::Counter;
use smartml_runtime::Pool;

static HIST_BUILDS: Counter = Counter::new("classifiers.split.hist_builds");

/// Row goes to the left child.
pub const SIDE_LEFT: u32 = 0;
/// Row goes to the right child.
pub const SIDE_RIGHT: u32 = 1;
/// Row is dropped from the subtree (missing value in the split feature).
/// Equal to [`MISSING_CODE`] so categorical sides can be raw level codes.
pub const SIDE_DROP: u32 = u32::MAX;

/// Maximum usable histogram bins per feature (code 255 is [`NAN_BIN`]).
pub const MAX_BINS: usize = 255;
/// Bin code reserved for missing values.
pub const NAN_BIN: u8 = u8::MAX;

/// One node's view of a presorted column: `(start, len)` into the
/// feature's sorted slot array.
pub type Seg = (u32, u32);

/// Order-preserving map from finite `f64` to `u64`: `a < b ⟺
/// sort_key(a) < sort_key(b)` and `a == b ⟺ sort_key(a) == sort_key(b)`
/// (`-0.0` is normalised to `+0.0` so numeric ties stay key ties).
/// Callers must exclude NaN.
#[inline]
pub fn sort_key(v: f64) -> u64 {
    let v = if v == 0.0 { 0.0 } else { v };
    let b = v.to_bits();
    if b >> 63 == 0 {
        b | (1 << 63)
    } else {
        !b
    }
}

/// Slot indices `0..values.len()`, NaN slots removed, stably sorted
/// ascending by value: ties order ascending by slot, exactly the
/// lexicographic `(key, slot)` order `sort_unstable` on the pairs gives.
pub fn sorted_slots(values: &[f64]) -> Vec<u32> {
    let mut keyed: Vec<(u64, u32)> = values
        .iter()
        .enumerate()
        .filter(|(_, v)| !v.is_nan())
        .map(|(s, &v)| (sort_key(v), s as u32))
        .collect();
    radix_sort_keyed(&mut keyed);
    keyed.into_iter().map(|(_, s)| s).collect()
}

/// Sorts `(key, slot)` pairs into ascending `(key, slot)` order with a
/// byte-wise LSD radix over the key. The pairs arrive in ascending-slot
/// order (built by an indexed scan), so the stable byte passes alone
/// yield the full lexicographic order — identical to `sort_unstable` on
/// the pairs, without its data-dependent branches. One priming pass
/// histograms all eight key bytes at once, and passes whose byte is
/// constant across the input (common for the sign/exponent bytes of
/// real-world columns) are skipped outright.
fn radix_sort_keyed(keyed: &mut [(u64, u32)]) {
    let m = keyed.len();
    if m <= 64 {
        keyed.sort_unstable();
        return;
    }
    let mut hist = [[0u32; 256]; 8];
    for &(k, _) in keyed.iter() {
        for (b, h) in hist.iter_mut().enumerate() {
            h[((k >> (8 * b)) & 0xFF) as usize] += 1;
        }
    }
    let mut tmp: Vec<(u64, u32)> = vec![(0, 0); m];
    let mut in_src = true;
    for (b, h) in hist.iter_mut().enumerate() {
        if h.iter().any(|&c| c as usize == m) {
            continue; // constant byte: the pass would be the identity
        }
        let mut run = 0u32;
        for c in h.iter_mut() {
            let k = *c;
            *c = run;
            run += k;
        }
        let (src, dst): (&[_], &mut [_]) =
            if in_src { (&*keyed, &mut tmp[..]) } else { (&tmp, &mut *keyed) };
        for &p in src {
            let byte = ((p.0 >> (8 * b)) & 0xFF) as usize;
            dst[h[byte] as usize] = p;
            h[byte] += 1;
        }
        in_src = !in_src;
    }
    if !in_src {
        keyed.copy_from_slice(&tmp);
    }
}

/// Per-fit presorted numeric columns over *slot* space.
///
/// A "slot" is a position in the fit's row array (`fit_rows[slot]` is the
/// absolute dataset row), so bootstrap duplicates occupy distinct slots
/// and carry their weight independently, exactly like the naive kernel's
/// row lists.
pub struct SortedColumns {
    /// `cols[f]`: slots with a non-NaN value for feature `f`, sorted
    /// ascending by value (ties ascending by slot). Empty for
    /// categorical features.
    pub cols: Vec<Vec<u32>>,
    /// `vals[f][slot]`: feature `f`'s value at `slot` (NaN where
    /// missing). Empty for categorical features.
    pub vals: Vec<Vec<f64>>,
}

impl SortedColumns {
    /// Sorts every numeric column of `data` restricted to `fit_rows`
    /// (with multiplicity) once.
    pub fn build(data: &Dataset, fit_rows: &[u32]) -> SortedColumns {
        let d = data.n_features();
        let mut cols = Vec::with_capacity(d);
        let mut vals = Vec::with_capacity(d);
        for f in 0..d {
            match data.feature(f) {
                Feature::Numeric { values, .. } => {
                    let by_slot: Vec<f64> =
                        fit_rows.iter().map(|&r| values[r as usize]).collect();
                    cols.push(sorted_slots(&by_slot));
                    vals.push(by_slot);
                }
                Feature::Categorical { .. } => {
                    cols.push(Vec::new());
                    vals.push(Vec::new());
                }
            }
        }
        SortedColumns { cols, vals }
    }
}

/// Rank of a missing value in a [`RankedBase`] column.
pub const NAN_RANK: u32 = u32::MAX;

/// Per-feature dense value ranks over a *base* row set, shared by every
/// bootstrap resample of that base (the trees of one forest).
///
/// Sorting each feature once here turns per-tree column sorting into a
/// counting sort over the ranks — `O(n + distinct)` per feature per tree
/// with no comparisons — while reproducing exactly the `(value, slot)`
/// ascending order that [`SortedColumns::build`] would produce for the
/// resample.
pub struct RankedBase {
    /// `ranks[f][i]`: ascending dense value-rank of base index `i`
    /// ([`NAN_RANK`] where missing). Empty for categorical features.
    pub ranks: Vec<Vec<u32>>,
    /// `n_ranks[f]`: number of distinct non-NaN values of feature `f`.
    pub n_ranks: Vec<u32>,
    /// `vals[f][i]`: feature `f`'s value at base index `i`.
    pub vals: Vec<Vec<f64>>,
    /// `rank_vals[f][r]`: the value carrying rank `r` — the ascending
    /// distinct non-NaN values of feature `f`. Maps a rank back to the
    /// exact `f64` a value-space kernel would read.
    pub rank_vals: Vec<Vec<f64>>,
}

impl RankedBase {
    /// Ranks every numeric column of `data` restricted to `base_rows`.
    pub fn build(data: &Dataset, base_rows: &[usize]) -> RankedBase {
        let columns = (0..data.n_features())
            .map(|f| match data.feature(f) {
                Feature::Numeric { values, .. } => {
                    base_rows.iter().map(|&r| values[r]).collect()
                }
                Feature::Categorical { .. } => Vec::new(),
            })
            .collect();
        RankedBase::build_columns(columns)
    }

    /// Ranks caller-supplied per-feature value columns (`columns[f][i]`,
    /// all the same length; an empty column marks a non-numeric feature).
    pub fn build_columns(columns: Vec<Vec<f64>>) -> RankedBase {
        let mut ranks = Vec::with_capacity(columns.len());
        let mut n_ranks = Vec::with_capacity(columns.len());
        let mut rank_vals = Vec::with_capacity(columns.len());
        for col in &columns {
            let order = sorted_slots(col);
            let mut r = vec![NAN_RANK; col.len()];
            let mut rv = Vec::new();
            let mut next = 0u32;
            let mut prev = f64::NAN;
            for &i in &order {
                let v = col[i as usize];
                // Not a tie with `prev` (first element included: NaN never
                // equals anything) → new rank.
                if v != prev {
                    next += 1;
                    rv.push(v);
                }
                r[i as usize] = next - 1;
                prev = v;
            }
            ranks.push(r);
            n_ranks.push(next);
            rank_vals.push(rv);
        }
        RankedBase { ranks, n_ranks, vals: columns, rank_vals }
    }

    /// Per-slot ranks for the resample `picks` (each a base index, with
    /// multiplicity): `out[f][slot] = ranks[f][picks[slot]]`. This is the
    /// whole per-tree setup cost of the rank-radix kernel — a plain
    /// gather, no sorting.
    pub fn gather_ranks(&self, picks: &[u32]) -> Vec<Vec<u32>> {
        self.ranks
            .iter()
            .map(|rank| {
                if rank.is_empty() {
                    Vec::new()
                } else {
                    picks.iter().map(|&p| rank[p as usize]).collect()
                }
            })
            .collect()
    }

    /// Presorted columns for the resample `picks` (each a base index, with
    /// multiplicity) — bit-identical to `SortedColumns::build` over the
    /// picked rows, via counting sort: slots are bucketed by base rank in
    /// ascending slot order, so ties order ascending by slot exactly as
    /// the comparison sort would.
    pub fn resample(&self, picks: &[u32]) -> SortedColumns {
        let n = picks.len();
        let mut cols = Vec::with_capacity(self.ranks.len());
        let mut vals = Vec::with_capacity(self.ranks.len());
        let mut off: Vec<u32> = Vec::new();
        for (f, rank) in self.ranks.iter().enumerate() {
            if rank.is_empty() {
                cols.push(Vec::new());
                vals.push(Vec::new());
                continue;
            }
            let base_vals = &self.vals[f];
            let by_slot: Vec<f64> = picks.iter().map(|&p| base_vals[p as usize]).collect();
            off.clear();
            off.resize(self.n_ranks[f] as usize, 0);
            let mut present = 0u32;
            for &p in picks {
                let r = rank[p as usize];
                if r != NAN_RANK {
                    off[r as usize] += 1;
                    present += 1;
                }
            }
            let mut running = 0u32;
            for o in off.iter_mut() {
                let c = *o;
                *o = running;
                running += c;
            }
            let mut col = vec![0u32; present as usize];
            for slot in 0..n as u32 {
                let r = rank[picks[slot as usize] as usize];
                if r != NAN_RANK {
                    col[off[r as usize] as usize] = slot;
                    off[r as usize] += 1;
                }
            }
            cols.push(col);
            vals.push(by_slot);
        }
        SortedColumns { cols, vals }
    }
}

/// Stable two-way partition of `items` by `side[item]`: left slots first
/// (original order), then right slots; [`SIDE_DROP`] slots are removed.
/// Returns `(n_left, n_right)`; only `items[..n_left + n_right]` is
/// meaningful afterwards.
pub fn partition2(items: &mut [u32], side: &[u32], scratch: &mut Vec<u32>) -> (usize, usize) {
    scratch.clear();
    for &s in items.iter() {
        if side[s as usize] == SIDE_LEFT {
            scratch.push(s);
        }
    }
    let nl = scratch.len();
    for &s in items.iter() {
        if side[s as usize] == SIDE_RIGHT {
            scratch.push(s);
        }
    }
    let nr = scratch.len() - nl;
    items[..scratch.len()].copy_from_slice(scratch);
    (nl, nr)
}

/// Stable multiway partition of `items` by level code `side[item]` (codes
/// `0..n_levels`; [`SIDE_DROP`] slots are removed). After the call,
/// `items[..kept]` holds the kept slots grouped by ascending level, each
/// group in original order, and `cnt[level]` its size. Returns `kept`.
pub fn partition_multi(
    items: &mut [u32],
    side: &[u32],
    n_levels: usize,
    cnt: &mut Vec<u32>,
    off: &mut Vec<u32>,
    scratch: &mut Vec<u32>,
) -> usize {
    cnt.clear();
    cnt.resize(n_levels, 0);
    let mut kept = 0usize;
    for &s in items.iter() {
        let c = side[s as usize];
        if c != SIDE_DROP {
            cnt[c as usize] += 1;
            kept += 1;
        }
    }
    off.clear();
    off.reserve(n_levels);
    let mut running = 0u32;
    for &c in cnt.iter() {
        off.push(running);
        running += c;
    }
    scratch.clear();
    scratch.resize(kept, 0);
    for &s in items.iter() {
        let c = side[s as usize];
        if c != SIDE_DROP {
            let o = &mut off[c as usize];
            scratch[*o as usize] = s;
            *o += 1;
        }
    }
    items[..kept].copy_from_slice(scratch);
    kept
}

/// Sorts packed `(rank << 32) | slot` pairs ascending with a
/// least-significant-digit radix over the rank bytes — no comparisons, no
/// branch misses on random data. Each byte pass is stable, so pairs that
/// arrive in ascending-slot order (every tree node's row list, thanks to
/// stable partitions) leave in ascending `(rank, slot)` order: exactly
/// the `(value, slot)` order a comparison sort produces. `max_rank`
/// bounds the ranks present (exclusive), capping the number of passes —
/// two for any base under 65 536 rows. Tiny inputs fall back to
/// `sort_unstable`, whose packed-`u64` order is the same `(rank, slot)`.
pub fn radix_sort_ranked(
    pairs: &mut [u64],
    scratch: &mut Vec<u64>,
    cnt: &mut Vec<u32>,
    max_rank: u32,
) {
    let m = pairs.len();
    let mut span = max_rank.saturating_sub(1);
    if m < 2 || span == 0 {
        return; // zero or one distinct value: already in (rank, slot) order
    }
    if m <= 64 {
        pairs.sort_unstable();
        return;
    }
    scratch.clear();
    scratch.resize(m, 0);
    cnt.clear();
    cnt.resize(256, 0);
    let mut in_pairs = true;
    let mut shift = 32u32;
    loop {
        if in_pairs {
            radix_pass(pairs, scratch, cnt, shift);
        } else {
            radix_pass(scratch, pairs, cnt, shift);
        }
        in_pairs = !in_pairs;
        shift += 8;
        span >>= 8;
        if span == 0 {
            break;
        }
    }
    if !in_pairs {
        pairs.copy_from_slice(scratch);
    }
}

/// One stable counting pass of [`radix_sort_ranked`] on byte
/// `(x >> shift) & 0xFF`.
fn radix_pass(src: &[u64], dst: &mut [u64], cnt: &mut [u32], shift: u32) {
    for c in cnt.iter_mut() {
        *c = 0;
    }
    for &p in src {
        cnt[((p >> shift) & 0xFF) as usize] += 1;
    }
    let mut run = 0u32;
    for c in cnt.iter_mut() {
        let k = *c;
        *c = run;
        run += k;
    }
    for &p in src {
        let b = ((p >> shift) & 0xFF) as usize;
        dst[cnt[b] as usize] = p;
        cnt[b] += 1;
    }
}

/// One quantised numeric column.
pub struct BinnedCol {
    /// Ascending upper bin bounds; each is an actual data value, so
    /// `v <= edges[b] ⟺ code(v) <= b` for every value in the binning
    /// row set (and for any `v` at cut points below the last bin).
    pub edges: Vec<f64>,
    /// Bin code per absolute dataset row ([`NAN_BIN`] for missing).
    pub codes: Vec<u8>,
}

/// Per-forest histogram quantisation of every numeric feature, computed
/// once and shared by all trees of an ensemble.
pub struct BinnedColumns {
    /// One entry per feature; `None` for categorical features.
    pub cols: Vec<Option<BinnedCol>>,
}

impl BinnedColumns {
    /// Quantises each numeric feature of `data` into at most `max_bins`
    /// bins, with edges chosen from the values observed on `rows`.
    pub fn fit(data: &Dataset, rows: &[usize], max_bins: usize) -> BinnedColumns {
        BinnedColumns::fit_with(data, rows, max_bins, Pool::serial())
    }

    /// [`fit`](BinnedColumns::fit) with per-feature work spread over
    /// `pool`. Each feature is quantised independently, so the result is
    /// identical for every pool width.
    pub fn fit_with(data: &Dataset, rows: &[usize], max_bins: usize, pool: Pool) -> BinnedColumns {
        let max_bins = max_bins.clamp(2, MAX_BINS);
        let cols = pool.map_range(data.n_features(), |f| match data.feature(f) {
            Feature::Numeric { values, .. } => Some(bin_column(values, rows, max_bins)),
            Feature::Categorical { .. } => None,
        });
        BinnedColumns { cols }
    }
}

/// Quantises one numeric column: edges are `max_bins` quantile-spaced
/// *distinct observed values* (all of them when there are fewer), codes
/// are per-dataset-row bin indices.
fn bin_column(values: &[f64], rows: &[usize], max_bins: usize) -> BinnedCol {
    let mut sorted: Vec<f64> =
        rows.iter().map(|&r| values[r]).filter(|v| !v.is_nan()).collect();
    sorted.sort_unstable_by_key(|&v| sort_key(v));
    sorted.dedup();
    let edges: Vec<f64> = if sorted.len() <= max_bins {
        sorted
    } else {
        let n = sorted.len();
        let mut e: Vec<f64> =
            (0..max_bins).map(|i| sorted[(i + 1) * n / max_bins - 1]).collect();
        e.dedup();
        e
    };
    let codes: Vec<u8> = values
        .iter()
        .map(|&v| {
            if v.is_nan() || edges.is_empty() {
                NAN_BIN
            } else {
                let b = edges.partition_point(|&e| e < v);
                b.min(edges.len() - 1) as u8
            }
        })
        .collect();
    BinnedCol { edges, codes }
}

/// Builds one node's weighted `bin × class` histogram from per-slot bin
/// codes, returning the number of rows with a present (non-missing) value.
///
/// `hist` is resized to `(MAX_BINS + 1) * k` and `totals` to
/// `MAX_BINS + 1`: the extra lane at index [`NAN_BIN`] is a *trash bin*
/// that absorbs missing rows, which keeps the row loop free of the
/// missing-value branch (data bin codes never exceed `MAX_BINS - 1`, so
/// the lane never aliases real data). Present rows scatter into exactly
/// the cells, in exactly the row order, of the branch-skipping
/// [`fill_histogram_scalar`] oracle — the two are bit-identical on lanes
/// `0..MAX_BINS` — and the oracle remains selectable process-wide via
/// [`kernels::set_scalar_kernels`].
#[allow(clippy::too_many_arguments)]
pub fn fill_histogram(
    rows: &[u32],
    slot_codes: &[u8],
    slot_labels: &[u32],
    slot_weights: &[f64],
    k: usize,
    hist: &mut Vec<f64>,
    totals: &mut Vec<f64>,
) -> usize {
    HIST_BUILDS.inc();
    if kernels::scalar_kernels() {
        return fill_histogram_scalar(rows, slot_codes, slot_labels, slot_weights, k, hist, totals);
    }
    hist.clear();
    hist.resize((MAX_BINS + 1) * k, 0.0);
    totals.clear();
    totals.resize(MAX_BINS + 1, 0.0);
    let mut missing = 0usize;
    for &s in rows {
        let s = s as usize;
        let b = slot_codes[s] as usize;
        let w = slot_weights[s];
        hist[b * k + slot_labels[s] as usize] += w;
        totals[b] += w;
        missing += usize::from(b == NAN_BIN as usize);
    }
    rows.len() - missing
}

/// Retained pre-kernel-layer histogram build: branch on [`NAN_BIN`] per
/// row, touch only real bins. The scalar oracle for [`fill_histogram`]
/// and the `simd_kernels` bench baseline.
#[doc(hidden)]
#[allow(clippy::too_many_arguments)]
pub fn fill_histogram_scalar(
    rows: &[u32],
    slot_codes: &[u8],
    slot_labels: &[u32],
    slot_weights: &[f64],
    k: usize,
    hist: &mut Vec<f64>,
    totals: &mut Vec<f64>,
) -> usize {
    hist.clear();
    hist.resize((MAX_BINS + 1) * k, 0.0);
    totals.clear();
    totals.resize(MAX_BINS + 1, 0.0);
    let mut n_present = 0usize;
    for &s in rows {
        let s = s as usize;
        let b = slot_codes[s];
        if b == NAN_BIN {
            continue;
        }
        n_present += 1;
        hist[b as usize * k + slot_labels[s] as usize] += slot_weights[s];
        totals[b as usize] += slot_weights[s];
    }
    n_present
}

/// Reusable scratch for the node recursion: side masks, partition
/// buffers, class-count accumulators, flattened categorical counters,
/// histogram buffers and a free-list of per-node segment tables. Nothing
/// here is allocated per node once warm.
pub struct SplitState {
    /// Per-slot side mask for the pending partition.
    pub side: Vec<u32>,
    /// Partition staging buffer.
    pub scratch: Vec<u32>,
    /// Left-child class counts for the numeric scan.
    pub left_counts: Vec<f64>,
    /// Right-child class counts for the numeric scan.
    pub right_counts: Vec<f64>,
    /// Flattened `level × class` weights for categorical scoring.
    pub cat_counts: Vec<f64>,
    /// Per-level total weights for categorical scoring.
    pub cat_totals: Vec<f64>,
    /// Multiway partition per-level counts.
    pub mw_cnt: Vec<u32>,
    /// Multiway partition per-level write offsets.
    pub mw_off: Vec<u32>,
    /// Flattened `bin × class` weights for the histogram scan.
    pub hist: Vec<f64>,
    /// Per-bin total weights for the histogram scan.
    pub hist_total: Vec<f64>,
    /// Packed `(rank << 32) | slot` pairs for the rank-radix kernel.
    pub pairs: Vec<u64>,
    /// Ping-pong buffer for [`radix_sort_ranked`].
    pub pairs_tmp: Vec<u64>,
    /// 256-bucket byte histogram for [`radix_sort_ranked`].
    pub radix_cnt: Vec<u32>,
    seg_pool: Vec<Vec<Seg>>,
    n_features: usize,
}

impl SplitState {
    /// Scratch sized for `n_slots` fit rows, `n_classes` classes and
    /// `n_features` features.
    pub fn new(n_slots: usize, n_classes: usize, n_features: usize) -> SplitState {
        SplitState {
            side: vec![0; n_slots],
            scratch: Vec::with_capacity(n_slots),
            left_counts: vec![0.0; n_classes],
            right_counts: vec![0.0; n_classes],
            cat_counts: Vec::new(),
            cat_totals: Vec::new(),
            mw_cnt: Vec::new(),
            mw_off: Vec::new(),
            hist: Vec::new(),
            hist_total: Vec::new(),
            pairs: Vec::new(),
            pairs_tmp: Vec::new(),
            radix_cnt: Vec::new(),
            seg_pool: Vec::new(),
            n_features,
        }
    }

    /// Borrows a zeroed per-node segment table (one [`Seg`] per feature)
    /// from the pool.
    pub fn take_segs(&mut self) -> Vec<Seg> {
        match self.seg_pool.pop() {
            Some(mut s) => {
                s.clear();
                s.resize(self.n_features, (0, 0));
                s
            }
            None => vec![(0, 0); self.n_features],
        }
    }

    /// Returns a segment table to the pool for reuse.
    pub fn put_segs(&mut self, segs: Vec<Seg>) {
        self.seg_pool.push(segs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sort_key_orders_like_f64() {
        let vals = [-1e30, -3.5, -0.0, 0.0, 1e-300, 2.0, 7.25, 1e30];
        for w in vals.windows(2) {
            assert!(sort_key(w[0]) <= sort_key(w[1]), "{} vs {}", w[0], w[1]);
        }
        assert_eq!(sort_key(-0.0), sort_key(0.0));
        assert!(sort_key(-1.0) < sort_key(-0.5));
        assert!(sort_key(0.5) < sort_key(1.0));
    }

    #[test]
    fn sorted_slots_is_stable_and_skips_nan() {
        let values = [3.0, 1.0, f64::NAN, 1.0, 2.0, 1.0];
        let slots = sorted_slots(&values);
        assert_eq!(slots, vec![1, 3, 5, 4, 0]);
    }

    #[test]
    fn partition2_is_stable_and_drops() {
        let side = [SIDE_LEFT, SIDE_RIGHT, SIDE_DROP, SIDE_LEFT, SIDE_RIGHT];
        let mut items: Vec<u32> = vec![4, 3, 2, 1, 0];
        let mut scratch = Vec::new();
        let (nl, nr) = partition2(&mut items, &side, &mut scratch);
        assert_eq!((nl, nr), (2, 2));
        assert_eq!(&items[..4], &[3, 0, 4, 1]);
    }

    #[test]
    fn partition_multi_groups_by_level_in_order() {
        let side = [1, 0, SIDE_DROP, 2, 0, 1];
        let mut items: Vec<u32> = vec![0, 1, 2, 3, 4, 5];
        let (mut cnt, mut off, mut scratch) = (Vec::new(), Vec::new(), Vec::new());
        let kept = partition_multi(&mut items, &side, 3, &mut cnt, &mut off, &mut scratch);
        assert_eq!(kept, 5);
        assert_eq!(&items[..5], &[1, 4, 0, 5, 3]);
        assert_eq!(cnt, vec![2, 2, 1]);
    }

    #[test]
    fn bin_codes_agree_with_edge_thresholds() {
        // The training-time invariant: v <= edges[b] ⟺ code(v) <= b.
        let values: Vec<f64> = (0..100).map(|i| ((i * 37) % 100) as f64 / 9.0).collect();
        let rows: Vec<usize> = (0..100).collect();
        let col = bin_column(&values, &rows, 8);
        assert!(col.edges.len() <= 8);
        for (r, &v) in values.iter().enumerate() {
            for (b, &e) in col.edges.iter().enumerate() {
                assert_eq!(v <= e, (col.codes[r] as usize) <= b, "v={v} b={b} e={e}");
            }
        }
    }

    #[test]
    fn bin_column_few_distinct_values_one_bin_each() {
        let values = [1.0, 2.0, 1.0, f64::NAN, 2.0, 3.0];
        let rows: Vec<usize> = (0..6).collect();
        let col = bin_column(&values, &rows, 255);
        assert_eq!(col.edges, vec![1.0, 2.0, 3.0]);
        assert_eq!(col.codes, vec![0, 1, 0, NAN_BIN, 1, 2]);
    }

    #[test]
    fn fill_histogram_bit_identical_to_scalar_oracle() {
        // Deterministic slot table with ~1/7 missing rows and uneven
        // weights; the trash-bin build must agree with the branch-skip
        // oracle bit-for-bit on every real lane and on n_present.
        let n_slots = 613usize;
        let k = 4usize;
        let slot_codes: Vec<u8> = (0..n_slots)
            .map(|s| if s % 7 == 3 { NAN_BIN } else { ((s * 31) % 11) as u8 })
            .collect();
        let slot_labels: Vec<u32> = (0..n_slots).map(|s| ((s * 13) % k) as u32).collect();
        let slot_weights: Vec<f64> = (0..n_slots).map(|s| 0.25 + ((s * 29) % 17) as f64 / 8.0).collect();
        // A node that sees a permuted subset of the slots.
        let rows: Vec<u32> = (0..n_slots as u32).filter(|s| s % 3 != 1).map(|s| (s * 7) % n_slots as u32).collect();
        let (mut hist_f, mut tot_f) = (Vec::new(), Vec::new());
        let (mut hist_s, mut tot_s) = (Vec::new(), Vec::new());
        let np_fast =
            fill_histogram(&rows, &slot_codes, &slot_labels, &slot_weights, k, &mut hist_f, &mut tot_f);
        let np_slow = fill_histogram_scalar(
            &rows, &slot_codes, &slot_labels, &slot_weights, k, &mut hist_s, &mut tot_s,
        );
        assert_eq!(np_fast, np_slow);
        // Real lanes 0..MAX_BINS are bit-identical; lane NAN_BIN is the
        // fast path's trash bin and intentionally differs.
        for b in 0..MAX_BINS {
            for c in 0..k {
                assert_eq!(
                    hist_f[b * k + c].to_bits(),
                    hist_s[b * k + c].to_bits(),
                    "hist bin {b} class {c}"
                );
            }
            assert_eq!(tot_f[b].to_bits(), tot_s[b].to_bits(), "totals bin {b}");
        }
        // Scalar-knob dispatch routes through the oracle.
        kernels::set_scalar_kernels(true);
        let np_knob =
            fill_histogram(&rows, &slot_codes, &slot_labels, &slot_weights, k, &mut hist_f, &mut tot_f);
        kernels::set_scalar_kernels(false);
        assert_eq!(np_knob, np_slow);
        assert_eq!(hist_f[NAN_BIN as usize * k..], hist_s[NAN_BIN as usize * k..]);
    }

    #[test]
    fn seg_pool_recycles() {
        let mut st = SplitState::new(4, 2, 3);
        let s1 = st.take_segs();
        assert_eq!(s1.len(), 3);
        st.put_segs(s1);
        let s2 = st.take_segs();
        assert_eq!(s2, vec![(0, 0); 3]);
    }
}
