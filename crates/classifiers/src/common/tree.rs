//! A weighted decision-tree learner parameterised enough to back all the
//! tree-family classifiers in Table 3:
//!
//! - split criterion: Gini (CART: rpart, Bagging, RandomForest) or gain
//!   ratio (C4.5: J48, part, c50);
//! - numeric features split on thresholds, categorical features split
//!   multiway (one branch per observed level);
//! - optional per-split feature subsampling (`mtry`, RandomForest);
//! - instance weights (boosting: c50 trials, DeepBoost);
//! - pre-pruning: `max_depth`, `min_split`, `min_leaf`, `cp` (rpart's
//!   complexity threshold on relative impurity decrease);
//! - post-pruning: C4.5 pessimistic error pruning with confidence factor CF.

use crate::common::split::{
    partition2, partition_multi, radix_sort_ranked, BinnedColumns, RankedBase, Seg,
    SortedColumns, SplitState, NAN_RANK, SIDE_DROP, SIDE_LEFT, SIDE_RIGHT,
};
use rand::rngs::StdRng;
use smartml_linalg::kernels;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use smartml_data::dataset::MISSING_CODE;
use smartml_data::{Dataset, Feature};

/// Impurity criterion for split selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SplitCriterion {
    /// Gini impurity (CART family).
    Gini,
    /// Information gain ratio (C4.5 family).
    GainRatio,
}

/// Post-pruning strategy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Pruning {
    /// No post-pruning (pre-pruning limits still apply).
    None,
    /// C4.5 pessimistic error-based pruning with confidence factor `cf`
    /// (smaller `cf` ⇒ more aggressive pruning; WEKA default 0.25).
    Pessimistic { cf: f64 },
}

/// Tree growth configuration.
#[derive(Debug, Clone)]
pub struct TreeConfig {
    /// Split selection criterion.
    pub criterion: SplitCriterion,
    /// Maximum tree depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum (weighted) instances required to attempt a split.
    pub min_split: f64,
    /// Minimum (weighted) instances in every child.
    pub min_leaf: f64,
    /// Minimum relative impurity decrease to accept a split (rpart `cp`).
    pub cp: f64,
    /// Features considered per split (`None` = all; `Some(m)` = random m).
    pub mtry: Option<usize>,
    /// Seed for `mtry` subsampling.
    pub seed: u64,
    /// Post-pruning strategy.
    pub pruning: Pruning,
    /// Histogram split finding: quantise each numeric feature into at
    /// most this many bins (clamped to 255) and scan bins instead of
    /// rows. `0` or `1` selects the exact presorted kernel (the
    /// default); `>= 2` opts into the deterministic binned path, whose
    /// trees may differ from the exact ones where quantisation merges
    /// candidate thresholds.
    pub max_bins: usize,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            criterion: SplitCriterion::Gini,
            max_depth: 30,
            min_split: 2.0,
            min_leaf: 1.0,
            cp: 0.0,
            mtry: None,
            seed: 0,
            pruning: Pruning::None,
            max_bins: 0,
        }
    }
}

/// A trained decision tree.
#[derive(Debug, Clone)]
pub struct DecisionTree {
    root: Node,
    n_classes: usize,
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        /// Weighted class distribution (sums to the leaf's weight).
        counts: Vec<f64>,
    },
    SplitNumeric {
        feature: usize,
        threshold: f64,
        left: Box<Node>,
        right: Box<Node>,
        /// Class distribution at this node (fallback for missing values,
        /// and the collapse target for pruning).
        counts: Vec<f64>,
    },
    SplitCategorical {
        feature: usize,
        /// Branch per level code; levels unseen in training fall back to
        /// the node distribution.
        branches: Vec<Option<Box<Node>>>,
        counts: Vec<f64>,
    },
}

impl Node {
    fn counts(&self) -> &[f64] {
        match self {
            Node::Leaf { counts }
            | Node::SplitNumeric { counts, .. }
            | Node::SplitCategorical { counts, .. } => counts,
        }
    }
}

/// The presorted/binned tree grower. Works in *slot* space: slot `i` is
/// position `i` of the fit row array, so bootstrap duplicates are
/// distinct slots, and the stable root sort plus stable partitions keep
/// every tie in fit-row order — the same order the naive oracle's
/// per-node stable sorts produce, which is what makes the exact path
/// bit-identical (floating-point accumulations happen in one sequence).
struct Grower<'a> {
    data: &'a Dataset,
    config: &'a TreeConfig,
    n_classes: usize,
    rng: StdRng,
    /// `fit_rows[slot]`: absolute dataset row (duplicates allowed).
    fit_rows: Vec<u32>,
    /// Class label per slot.
    slot_label: Vec<u32>,
    /// Instance weight per slot.
    slot_weight: Vec<f64>,
    /// Reusable scratch (side masks, counters, histograms, seg pool).
    state: SplitState,
}

impl DecisionTree {
    /// Grows a tree on `rows` with uniform instance weights.
    pub fn fit(data: &Dataset, rows: &[usize], config: &TreeConfig) -> DecisionTree {
        let weights = vec![1.0; data.n_rows()];
        DecisionTree::fit_weighted(data, rows, &weights, config)
    }

    /// Grows a tree on `rows` with per-row instance weights (indexed by
    /// absolute row id, like `rows` itself).
    ///
    /// Dispatches on `config.max_bins`: `< 2` runs an exact kernel
    /// (bit-identical to the naive [`oracle`]), `>= 2` quantises the
    /// numeric features for this fit and runs the histogram kernel
    /// (forests share the quantisation via
    /// [`fit_weighted_binned`](DecisionTree::fit_weighted_binned)).
    ///
    /// The exact arm picks between two bit-equivalent kernels: with
    /// feature subsampling (`mtry < n_features`, the forest regime) it
    /// rank-radix-sorts only the candidate features per node; without it,
    /// it presorts every column once and maintains the orders by stable
    /// partition down the tree.
    pub fn fit_weighted(
        data: &Dataset,
        rows: &[usize],
        weights: &[f64],
        config: &TreeConfig,
    ) -> DecisionTree {
        if config.max_bins >= 2 {
            let bins = BinnedColumns::fit(data, rows, config.max_bins);
            return DecisionTree::fit_weighted_binned(data, rows, weights, config, &bins);
        }
        let d = data.n_features().max(1);
        if config.mtry.unwrap_or(d).clamp(1, d) < d {
            let base = RankedBase::build(data, rows);
            let picks: Vec<u32> = (0..rows.len() as u32).collect();
            return DecisionTree::fit_weighted_ranked(data, rows, weights, config, &base, &picks);
        }
        let fit_rows: Vec<u32> = rows.iter().map(|&r| r as u32).collect();
        let sorted = SortedColumns::build(data, &fit_rows);
        DecisionTree::fit_weighted_with_sorted(data, rows, weights, config, sorted)
    }

    /// Exact-path fit with the rank-radix kernel against a prebuilt
    /// [`RankedBase`] (e.g. one shared by every tree of a forest).
    /// `picks[slot]` is the base index resampled into `slot`, and `rows`
    /// must be exactly those picks mapped to absolute dataset rows —
    /// `rows[i] == base_rows[picks[i]]` for the row set the base was
    /// built on. Bit-identical to the [`oracle`] and to the maintained
    /// presorted kernel.
    pub fn fit_weighted_ranked(
        data: &Dataset,
        rows: &[usize],
        weights: &[f64],
        config: &TreeConfig,
        base: &RankedBase,
        picks: &[u32],
    ) -> DecisionTree {
        assert_eq!(weights.len(), data.n_rows(), "one weight per dataset row");
        assert_eq!(rows.len(), picks.len(), "one pick per fit row");
        let fit_rows: Vec<u32> = rows.iter().map(|&r| r as u32).collect();
        let slot_rank = base.gather_ranks(picks);
        let mut grower = Grower::new(data, config, weights, fit_rows);
        let mut row_buf: Vec<u32> = (0..rows.len() as u32).collect();
        let mut root = grower.grow_ranked(&mut row_buf, 0, &slot_rank, base);
        if let Pruning::Pessimistic { cf } = config.pruning {
            prune_pessimistic(&mut root, cf);
        }
        DecisionTree { root, n_classes: data.n_classes() }
    }

    /// Exact-path fit against presorted columns the caller already built
    /// for exactly these `rows` (e.g. derived per bootstrap resample from
    /// a forest-shared [`RankedBase`](crate::common::split::RankedBase)).
    /// Consumes `sorted`: the column orders are destroyed by the in-place
    /// node partitions.
    pub fn fit_weighted_with_sorted(
        data: &Dataset,
        rows: &[usize],
        weights: &[f64],
        config: &TreeConfig,
        mut sorted: SortedColumns,
    ) -> DecisionTree {
        assert_eq!(weights.len(), data.n_rows(), "one weight per dataset row");
        let fit_rows: Vec<u32> = rows.iter().map(|&r| r as u32).collect();
        let root_segs: Vec<Seg> =
            sorted.cols.iter().map(|c| (0u32, c.len() as u32)).collect();
        let mut grower = Grower::new(data, config, weights, fit_rows);
        let mut row_buf: Vec<u32> = (0..rows.len() as u32).collect();
        let mut root = grower.grow_exact(&mut row_buf, root_segs, 0, &mut sorted);
        if let Pruning::Pessimistic { cf } = config.pruning {
            prune_pessimistic(&mut root, cf);
        }
        DecisionTree { root, n_classes: data.n_classes() }
    }

    /// Histogram-path fit against a prebuilt quantisation, so a whole
    /// forest bins its numeric features once. `config.max_bins` is not
    /// consulted; the caller chose the binned path by supplying `bins`.
    pub fn fit_weighted_binned(
        data: &Dataset,
        rows: &[usize],
        weights: &[f64],
        config: &TreeConfig,
        bins: &BinnedColumns,
    ) -> DecisionTree {
        assert_eq!(weights.len(), data.n_rows(), "one weight per dataset row");
        let fit_rows: Vec<u32> = rows.iter().map(|&r| r as u32).collect();
        // Gather each feature's bin codes into slot order once per tree;
        // the per-node histogram fill then walks dense u8 arrays.
        let slot_codes: Vec<Option<Vec<u8>>> = bins
            .cols
            .iter()
            .map(|c| {
                c.as_ref()
                    .map(|col| fit_rows.iter().map(|&r| col.codes[r as usize]).collect())
            })
            .collect();
        let mut grower = Grower::new(data, config, weights, fit_rows);
        let mut row_buf: Vec<u32> = (0..rows.len() as u32).collect();
        let mut root = grower.grow_binned(&mut row_buf, 0, bins, &slot_codes);
        if let Pruning::Pessimistic { cf } = config.pruning {
            prune_pessimistic(&mut root, cf);
        }
        DecisionTree { root, n_classes: data.n_classes() }
    }

    /// Class-probability prediction for `rows`.
    pub fn predict_proba(&self, data: &Dataset, rows: &[usize]) -> Vec<Vec<f64>> {
        rows.iter().map(|&r| self.row_proba(data, r)).collect()
    }

    /// Probability vector for a single absolute row.
    pub fn row_proba(&self, data: &Dataset, row: usize) -> Vec<f64> {
        let counts = descend(&self.root, data, row);
        normalize(counts, self.n_classes)
    }

    /// Number of leaves (model complexity; DeepBoost's penalty uses this).
    pub fn n_leaves(&self) -> usize {
        count_leaves(&self.root)
    }

    /// Tree depth (root-only tree = 0).
    pub fn depth(&self) -> usize {
        node_depth(&self.root)
    }

    /// Feature indices used by at least one split, with split counts —
    /// backs the interpretability output.
    pub fn feature_usage(&self) -> Vec<(usize, usize)> {
        let mut counts = std::collections::BTreeMap::new();
        collect_usage(&self.root, &mut counts);
        counts.into_iter().collect()
    }

    /// Index of the leaf `row` falls into (leaves numbered in-order).
    /// Rows stopped early by a missing value map to the first leaf under
    /// the stopping node.
    pub fn leaf_id(&self, data: &Dataset, row: usize) -> usize {
        let mut next_id = 0usize;
        leaf_id_rec(&self.root, data, row, &mut next_id).unwrap_or(0)
    }

    /// Extracts every root-to-leaf path as a [`Rule`] (PART and C5.0's rules
    /// mode build on this).
    pub fn extract_rules(&self) -> Vec<Rule> {
        let mut rules = Vec::new();
        let mut conditions = Vec::new();
        extract_rules_rec(&self.root, &mut conditions, &mut rules);
        rules
    }
}

/// One atomic condition on a feature.
#[derive(Debug, Clone, PartialEq)]
pub enum Condition {
    /// Numeric feature ≤ threshold.
    NumericLe(usize, f64),
    /// Numeric feature > threshold.
    NumericGt(usize, f64),
    /// Categorical feature equals the level code.
    CatEq(usize, u32),
}

impl Condition {
    /// Evaluates the condition on one row; missing values never match.
    pub fn matches(&self, data: &Dataset, row: usize) -> bool {
        match *self {
            Condition::NumericLe(f, thr) => match data.feature(f) {
                Feature::Numeric { values, .. } => {
                    let v = values[row];
                    !v.is_nan() && v <= thr
                }
                _ => false,
            },
            Condition::NumericGt(f, thr) => match data.feature(f) {
                Feature::Numeric { values, .. } => {
                    let v = values[row];
                    !v.is_nan() && v > thr
                }
                _ => false,
            },
            Condition::CatEq(f, code) => match data.feature(f) {
                Feature::Categorical { codes, .. } => codes[row] == code,
                _ => false,
            },
        }
    }
}

/// A conjunctive classification rule: `IF conditions THEN class distribution`.
#[derive(Debug, Clone)]
pub struct Rule {
    /// Conditions joined by AND; an empty list matches everything.
    pub conditions: Vec<Condition>,
    /// Weighted class distribution of the training rows reaching the leaf.
    pub counts: Vec<f64>,
}

impl Rule {
    /// True when every condition holds for `row`.
    pub fn matches(&self, data: &Dataset, row: usize) -> bool {
        self.conditions.iter().all(|c| c.matches(data, row))
    }

    /// Total (weighted) coverage of the rule's training leaf.
    pub fn coverage(&self) -> f64 {
        self.counts.iter().sum()
    }

    /// The rule's majority class.
    pub fn majority(&self) -> u32 {
        self.counts
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map_or(0, |(i, _)| i as u32)
    }
}

fn extract_rules_rec(node: &Node, conditions: &mut Vec<Condition>, rules: &mut Vec<Rule>) {
    match node {
        Node::Leaf { counts } => {
            rules.push(Rule { conditions: conditions.clone(), counts: counts.clone() });
        }
        Node::SplitNumeric { feature, threshold, left, right, .. } => {
            conditions.push(Condition::NumericLe(*feature, *threshold));
            extract_rules_rec(left, conditions, rules);
            conditions.pop();
            conditions.push(Condition::NumericGt(*feature, *threshold));
            extract_rules_rec(right, conditions, rules);
            conditions.pop();
        }
        Node::SplitCategorical { feature, branches, .. } => {
            for (code, branch) in branches.iter().enumerate() {
                if let Some(child) = branch {
                    conditions.push(Condition::CatEq(*feature, code as u32));
                    extract_rules_rec(child, conditions, rules);
                    conditions.pop();
                }
            }
        }
    }
}

/// In-order leaf numbering; returns the id of the leaf `row` reaches, or the
/// first leaf under the node where a missing value stopped the descent.
fn leaf_id_rec(node: &Node, data: &Dataset, row: usize, next_id: &mut usize) -> Option<usize> {
    match node {
        Node::Leaf { .. } => {
            let id = *next_id;
            *next_id += 1;
            Some(id)
        }
        Node::SplitNumeric { feature, threshold, left, right, .. } => {
            match data.feature(*feature) {
                Feature::Numeric { values, .. } => {
                    let v = values[row];
                    if v.is_nan() {
                        // Stop here: claim the first leaf of this subtree.
                        let id = *next_id;
                        *next_id += count_leaves(node);
                        Some(id)
                    } else if v <= *threshold {
                        let res = leaf_id_rec(left, data, row, next_id);
                        *next_id += count_leaves(right);
                        res
                    } else {
                        *next_id += count_leaves(left);
                        leaf_id_rec(right, data, row, next_id)
                    }
                }
                _ => {
                    let id = *next_id;
                    *next_id += count_leaves(node);
                    Some(id)
                }
            }
        }
        Node::SplitCategorical { feature, branches, .. } => match data.feature(*feature) {
            Feature::Categorical { codes, .. } => {
                let c = codes[row];
                let entry = *next_id;
                let mut result = None;
                for (code, branch) in branches.iter().enumerate() {
                    if let Some(child) = branch {
                        if c != MISSING_CODE && code as u32 == c && result.is_none() {
                            result = leaf_id_rec(child, data, row, next_id);
                        } else {
                            *next_id += count_leaves(child);
                        }
                    }
                }
                // Unseen level or missing value: use this subtree's first leaf.
                Some(result.unwrap_or(entry))
            }
            _ => None,
        },
    }
}

fn descend<'a>(node: &'a Node, data: &Dataset, row: usize) -> &'a [f64] {
    match node {
        Node::Leaf { counts } => counts,
        Node::SplitNumeric { feature, threshold, left, right, counts } => {
            match data.feature(*feature) {
                Feature::Numeric { values, .. } => {
                    let v = values[row];
                    if v.is_nan() {
                        counts // missing: stop at this node's distribution
                    } else if v <= *threshold {
                        descend(left, data, row)
                    } else {
                        descend(right, data, row)
                    }
                }
                _ => counts,
            }
        }
        Node::SplitCategorical { feature, branches, counts } => match data.feature(*feature) {
            Feature::Categorical { codes, .. } => {
                let c = codes[row];
                if c == MISSING_CODE {
                    return counts;
                }
                match branches.get(c as usize).and_then(|b| b.as_deref()) {
                    Some(child) => descend(child, data, row),
                    None => counts,
                }
            }
            _ => counts,
        },
    }
}

fn normalize(counts: &[f64], k: usize) -> Vec<f64> {
    let total: f64 = counts.iter().sum();
    if total > 1e-300 {
        counts.iter().map(|c| c / total).collect()
    } else {
        vec![1.0 / k as f64; k]
    }
}

fn count_leaves(node: &Node) -> usize {
    match node {
        Node::Leaf { .. } => 1,
        Node::SplitNumeric { left, right, .. } => count_leaves(left) + count_leaves(right),
        Node::SplitCategorical { branches, .. } => branches
            .iter()
            .filter_map(|b| b.as_deref())
            .map(count_leaves)
            .sum::<usize>()
            .max(1),
    }
}

fn node_depth(node: &Node) -> usize {
    match node {
        Node::Leaf { .. } => 0,
        Node::SplitNumeric { left, right, .. } => 1 + node_depth(left).max(node_depth(right)),
        Node::SplitCategorical { branches, .. } => {
            1 + branches
                .iter()
                .filter_map(|b| b.as_deref())
                .map(node_depth)
                .max()
                .unwrap_or(0)
        }
    }
}

fn collect_usage(node: &Node, counts: &mut std::collections::BTreeMap<usize, usize>) {
    match node {
        Node::Leaf { .. } => {}
        Node::SplitNumeric { feature, left, right, .. } => {
            *counts.entry(*feature).or_insert(0) += 1;
            collect_usage(left, counts);
            collect_usage(right, counts);
        }
        Node::SplitCategorical { feature, branches, .. } => {
            *counts.entry(*feature).or_insert(0) += 1;
            for b in branches.iter().filter_map(|b| b.as_deref()) {
                collect_usage(b, counts);
            }
        }
    }
}

/// Candidate split found for a node.
enum BestSplit {
    Numeric { feature: usize, threshold: f64, score: f64 },
    Categorical { feature: usize, score: f64 },
}

impl BestSplit {
    fn score(&self) -> f64 {
        match self {
            BestSplit::Numeric { score, .. } | BestSplit::Categorical { score, .. } => *score,
        }
    }
}

impl<'a> Grower<'a> {
    fn new(
        data: &'a Dataset,
        config: &'a TreeConfig,
        weights: &[f64],
        fit_rows: Vec<u32>,
    ) -> Grower<'a> {
        let slot_label: Vec<u32> = fit_rows.iter().map(|&r| data.label(r as usize)).collect();
        let slot_weight: Vec<f64> = fit_rows.iter().map(|&r| weights[r as usize]).collect();
        let state = SplitState::new(fit_rows.len(), data.n_classes(), data.n_features());
        Grower {
            data,
            config,
            n_classes: data.n_classes(),
            rng: StdRng::seed_from_u64(config.seed),
            fit_rows,
            slot_label,
            slot_weight,
            state,
        }
    }

    /// Exact kernel: `rows` are this node's slots (in fit order), and
    /// `segs[f]` is this node's window into `sorted.cols[f]`. Consumes
    /// `segs` back into the pool on every path.
    fn grow_exact(
        &mut self,
        rows: &mut [u32],
        segs: Vec<Seg>,
        depth: usize,
        sorted: &mut SortedColumns,
    ) -> Node {
        let counts = self.class_counts(rows);
        let weight: f64 = counts.iter().sum();
        let imp = impurity(self.config.criterion, &counts, weight);
        if depth >= self.config.max_depth || weight < self.config.min_split || imp <= 1e-12 {
            self.state.put_segs(segs);
            return Node::Leaf { counts };
        }
        let data = self.data;
        let features = self.candidate_features();
        let mut best: Option<BestSplit> = None;
        for &f in &features {
            let candidate = match data.feature(f) {
                Feature::Numeric { .. } => {
                    let (start, len) = segs[f];
                    let seg = &sorted.cols[f][start as usize..(start + len) as usize];
                    self.best_numeric_presorted(f, seg, &sorted.vals[f], &counts)
                }
                Feature::Categorical { codes, levels, .. } => {
                    self.score_categorical(f, codes, levels.len(), rows, &counts)
                }
            };
            if let Some(c) = candidate {
                if best.as_ref().is_none_or(|b| c.score() > b.score()) {
                    best = Some(c);
                }
            }
        }
        let Some(split) = best else {
            self.state.put_segs(segs);
            return Node::Leaf { counts };
        };
        // rpart-style complexity gate: require relative impurity decrease > cp.
        let rel_gain = split.score() / imp.max(1e-12);
        if self.config.cp > 0.0 && rel_gain < self.config.cp {
            self.state.put_segs(segs);
            return Node::Leaf { counts };
        }
        match split {
            BestSplit::Numeric { feature, threshold, .. } => {
                {
                    let vals = &sorted.vals[feature];
                    for &s in rows.iter() {
                        let v = vals[s as usize];
                        self.state.side[s as usize] = if v.is_nan() {
                            SIDE_DROP
                        } else if v <= threshold {
                            SIDE_LEFT
                        } else {
                            SIDE_RIGHT
                        };
                    }
                }
                let (nl, nr) = partition2(rows, &self.state.side, &mut self.state.scratch);
                if nl == 0 || nr == 0 {
                    self.state.put_segs(segs);
                    return Node::Leaf { counts };
                }
                let mut left_segs = self.state.take_segs();
                let mut right_segs = self.state.take_segs();
                for g in 0..segs.len() {
                    let (gs, gl) = segs[g];
                    if gl == 0 {
                        continue;
                    }
                    let seg = &mut sorted.cols[g][gs as usize..(gs + gl) as usize];
                    let (gnl, gnr) = partition2(seg, &self.state.side, &mut self.state.scratch);
                    left_segs[g] = (gs, gnl as u32);
                    right_segs[g] = (gs + gnl as u32, gnr as u32);
                }
                self.state.put_segs(segs);
                let (left_rows, right_rows) = rows.split_at_mut(nl);
                let left = Box::new(self.grow_exact(left_rows, left_segs, depth + 1, sorted));
                let right = Box::new(self.grow_exact(
                    &mut right_rows[..nr],
                    right_segs,
                    depth + 1,
                    sorted,
                ));
                Node::SplitNumeric { feature, threshold, left, right, counts }
            }
            BestSplit::Categorical { feature, .. } => {
                let (codes, n_levels) = match data.feature(feature) {
                    Feature::Categorical { codes, levels, .. } => (codes, levels.len()),
                    _ => unreachable!(),
                };
                for &s in rows.iter() {
                    // Level codes double as partition sides
                    // (MISSING_CODE == SIDE_DROP).
                    self.state.side[s as usize] = codes[self.fit_rows[s as usize] as usize];
                }
                let kept = partition_multi(
                    rows,
                    &self.state.side,
                    n_levels,
                    &mut self.state.mw_cnt,
                    &mut self.state.mw_off,
                    &mut self.state.scratch,
                );
                // Per-level row counts must survive the per-feature
                // partitions below (which reuse mw_cnt) and the child
                // recursions.
                let row_cnt: Vec<u32> = self.state.mw_cnt.clone();
                debug_assert_eq!(kept, row_cnt.iter().sum::<u32>() as usize);
                let mut child_segs: Vec<Vec<Seg>> =
                    (0..n_levels).map(|_| self.state.take_segs()).collect();
                for g in 0..segs.len() {
                    let (gs, gl) = segs[g];
                    if gl == 0 {
                        continue;
                    }
                    let seg = &mut sorted.cols[g][gs as usize..(gs + gl) as usize];
                    partition_multi(
                        seg,
                        &self.state.side,
                        n_levels,
                        &mut self.state.mw_cnt,
                        &mut self.state.mw_off,
                        &mut self.state.scratch,
                    );
                    let mut running = gs;
                    for (c, cs) in child_segs.iter_mut().enumerate() {
                        let cnt = self.state.mw_cnt[c];
                        cs[g] = (running, cnt);
                        running += cnt;
                    }
                }
                self.state.put_segs(segs);
                let mut branches: Vec<Option<Box<Node>>> = Vec::with_capacity(n_levels);
                let mut pos = 0usize;
                for (c, cs) in child_segs.into_iter().enumerate() {
                    let cnt = row_cnt[c] as usize;
                    if cnt == 0 {
                        self.state.put_segs(cs);
                        branches.push(None);
                    } else {
                        let child_rows = &mut rows[pos..pos + cnt];
                        branches.push(Some(Box::new(
                            self.grow_exact(child_rows, cs, depth + 1, sorted),
                        )));
                    }
                    pos += cnt;
                }
                Node::SplitCategorical { feature, branches, counts }
            }
        }
    }

    /// Rank-radix arm of the exact kernel, used when `mtry < n_features`
    /// (forests): nothing is maintained per column; each *candidate*
    /// numeric feature is ordered per node by a radix sort of packed
    /// `(rank, slot)` pairs gathered from `slot_rank`. The scan then
    /// walks ranks in ascending order and maps them to values through the
    /// base's `rank_vals` table, so it never touches a per-slot value
    /// array. Bit-exact with [`grow_exact`] and the [`oracle`]: stable
    /// partitions keep every node's `rows` in ascending slot order, and a
    /// stable radix over that order reproduces the comparison sort's
    /// `(value, slot)` order exactly.
    fn grow_ranked(
        &mut self,
        rows: &mut [u32],
        depth: usize,
        slot_rank: &[Vec<u32>],
        base: &RankedBase,
    ) -> Node {
        let counts = self.class_counts(rows);
        let weight: f64 = counts.iter().sum();
        let imp = impurity(self.config.criterion, &counts, weight);
        if depth >= self.config.max_depth || weight < self.config.min_split || imp <= 1e-12 {
            return Node::Leaf { counts };
        }
        let data = self.data;
        let features = self.candidate_features();
        let mut best: Option<BestSplit> = None;
        for &f in &features {
            let candidate = match data.feature(f) {
                Feature::Numeric { .. } => {
                    let ranks = &slot_rank[f];
                    let mut pairs = std::mem::take(&mut self.state.pairs);
                    let mut tmp = std::mem::take(&mut self.state.pairs_tmp);
                    pairs.clear();
                    for &s in rows.iter() {
                        let r = ranks[s as usize];
                        if r != NAN_RANK {
                            pairs.push(((r as u64) << 32) | s as u64);
                        }
                    }
                    radix_sort_ranked(
                        &mut pairs,
                        &mut tmp,
                        &mut self.state.radix_cnt,
                        base.n_ranks[f],
                    );
                    let candidate =
                        self.best_numeric_ranked(f, &pairs, &base.rank_vals[f], &counts);
                    self.state.pairs = pairs;
                    self.state.pairs_tmp = tmp;
                    candidate
                }
                Feature::Categorical { codes, levels, .. } => {
                    self.score_categorical(f, codes, levels.len(), rows, &counts)
                }
            };
            if let Some(c) = candidate {
                if best.as_ref().is_none_or(|b| c.score() > b.score()) {
                    best = Some(c);
                }
            }
        }
        let Some(split) = best else {
            return Node::Leaf { counts };
        };
        let rel_gain = split.score() / imp.max(1e-12);
        if self.config.cp > 0.0 && rel_gain < self.config.cp {
            return Node::Leaf { counts };
        }
        match split {
            BestSplit::Numeric { feature, threshold, .. } => {
                // Route by rank: `v <= threshold` holds for every rank up
                // to the cut's lower rank, and for the upper rank too iff
                // its value clears the midpoint (possible when rounding
                // pulls the midpoint onto it) — resolve that once and the
                // per-row test is an integer compare.
                let ranks = &slot_rank[feature];
                let rank_vals = &base.rank_vals[feature];
                let cut = rank_vals.partition_point(|&v| v <= threshold) as u32;
                for &s in rows.iter() {
                    let r = ranks[s as usize];
                    self.state.side[s as usize] = if r == NAN_RANK {
                        SIDE_DROP
                    } else if r < cut {
                        SIDE_LEFT
                    } else {
                        SIDE_RIGHT
                    };
                }
                let (nl, nr) = partition2(rows, &self.state.side, &mut self.state.scratch);
                if nl == 0 || nr == 0 {
                    return Node::Leaf { counts };
                }
                let (left_rows, right_rows) = rows.split_at_mut(nl);
                let left =
                    Box::new(self.grow_ranked(left_rows, depth + 1, slot_rank, base));
                let right = Box::new(self.grow_ranked(
                    &mut right_rows[..nr],
                    depth + 1,
                    slot_rank,
                    base,
                ));
                Node::SplitNumeric { feature, threshold, left, right, counts }
            }
            BestSplit::Categorical { feature, .. } => {
                let (codes, n_levels) = match data.feature(feature) {
                    Feature::Categorical { codes, levels, .. } => (codes, levels.len()),
                    _ => unreachable!(),
                };
                for &s in rows.iter() {
                    self.state.side[s as usize] = codes[self.fit_rows[s as usize] as usize];
                }
                partition_multi(
                    rows,
                    &self.state.side,
                    n_levels,
                    &mut self.state.mw_cnt,
                    &mut self.state.mw_off,
                    &mut self.state.scratch,
                );
                let row_cnt: Vec<u32> = self.state.mw_cnt.clone();
                let mut branches: Vec<Option<Box<Node>>> = Vec::with_capacity(n_levels);
                let mut pos = 0usize;
                for &cnt in &row_cnt {
                    let cnt = cnt as usize;
                    if cnt == 0 {
                        branches.push(None);
                    } else {
                        let child_rows = &mut rows[pos..pos + cnt];
                        branches.push(Some(Box::new(
                            self.grow_ranked(child_rows, depth + 1, slot_rank, base),
                        )));
                    }
                    pos += cnt;
                }
                Node::SplitCategorical { feature, branches, counts }
            }
        }
    }

    /// Histogram kernel: `rows` are this node's slots; numeric features
    /// are scanned through their per-fit bin codes in `slot_codes`.
    fn grow_binned(
        &mut self,
        rows: &mut [u32],
        depth: usize,
        bins: &BinnedColumns,
        slot_codes: &[Option<Vec<u8>>],
    ) -> Node {
        let counts = self.class_counts(rows);
        let weight: f64 = counts.iter().sum();
        let imp = impurity(self.config.criterion, &counts, weight);
        if depth >= self.config.max_depth || weight < self.config.min_split || imp <= 1e-12 {
            return Node::Leaf { counts };
        }
        let data = self.data;
        let features = self.candidate_features();
        let mut best: Option<BestSplit> = None;
        for &f in &features {
            let candidate = match data.feature(f) {
                Feature::Numeric { .. } => {
                    let col = bins.cols[f].as_ref().expect("numeric feature is binned");
                    let codes = slot_codes[f].as_ref().expect("numeric feature is binned");
                    self.best_numeric_binned(f, &col.edges, codes, rows, &counts)
                }
                Feature::Categorical { codes, levels, .. } => {
                    self.score_categorical(f, codes, levels.len(), rows, &counts)
                }
            };
            if let Some(c) = candidate {
                if best.as_ref().is_none_or(|b| c.score() > b.score()) {
                    best = Some(c);
                }
            }
        }
        let Some(split) = best else {
            return Node::Leaf { counts };
        };
        let rel_gain = split.score() / imp.max(1e-12);
        if self.config.cp > 0.0 && rel_gain < self.config.cp {
            return Node::Leaf { counts };
        }
        match split {
            BestSplit::Numeric { feature, threshold, .. } => {
                // Thresholds are actual data values (bin upper edges), so
                // raw-value routing here and at predict time agrees with
                // bin-code routing during the scan.
                let values = match data.feature(feature) {
                    Feature::Numeric { values, .. } => values,
                    _ => unreachable!(),
                };
                for &s in rows.iter() {
                    let v = values[self.fit_rows[s as usize] as usize];
                    self.state.side[s as usize] = if v.is_nan() {
                        SIDE_DROP
                    } else if v <= threshold {
                        SIDE_LEFT
                    } else {
                        SIDE_RIGHT
                    };
                }
                let (nl, nr) = partition2(rows, &self.state.side, &mut self.state.scratch);
                if nl == 0 || nr == 0 {
                    return Node::Leaf { counts };
                }
                let (left_rows, right_rows) = rows.split_at_mut(nl);
                let left = Box::new(self.grow_binned(left_rows, depth + 1, bins, slot_codes));
                let right =
                    Box::new(self.grow_binned(&mut right_rows[..nr], depth + 1, bins, slot_codes));
                Node::SplitNumeric { feature, threshold, left, right, counts }
            }
            BestSplit::Categorical { feature, .. } => {
                let (codes, n_levels) = match data.feature(feature) {
                    Feature::Categorical { codes, levels, .. } => (codes, levels.len()),
                    _ => unreachable!(),
                };
                for &s in rows.iter() {
                    self.state.side[s as usize] = codes[self.fit_rows[s as usize] as usize];
                }
                partition_multi(
                    rows,
                    &self.state.side,
                    n_levels,
                    &mut self.state.mw_cnt,
                    &mut self.state.mw_off,
                    &mut self.state.scratch,
                );
                let row_cnt: Vec<u32> = self.state.mw_cnt.clone();
                let mut branches: Vec<Option<Box<Node>>> = Vec::with_capacity(n_levels);
                let mut pos = 0usize;
                for &cnt in &row_cnt {
                    let cnt = cnt as usize;
                    if cnt == 0 {
                        branches.push(None);
                    } else {
                        let child_rows = &mut rows[pos..pos + cnt];
                        branches.push(Some(Box::new(
                            self.grow_binned(child_rows, depth + 1, bins, slot_codes),
                        )));
                    }
                    pos += cnt;
                }
                Node::SplitCategorical { feature, branches, counts }
            }
        }
    }

    fn candidate_features(&mut self) -> Vec<usize> {
        let d = self.data.n_features();
        match self.config.mtry {
            None => (0..d).collect(),
            Some(m) => {
                let mut idx: Vec<usize> = (0..d).collect();
                idx.shuffle(&mut self.rng);
                idx.truncate(m.clamp(1, d));
                idx
            }
        }
    }

    fn class_counts(&self, rows: &[u32]) -> Vec<f64> {
        let mut counts = vec![0.0; self.n_classes];
        for &s in rows {
            counts[self.slot_label[s as usize] as usize] += self.slot_weight[s as usize];
        }
        counts
    }

    /// Best threshold for a numeric feature from its presorted segment:
    /// the same left-add/right-subtract scan as the oracle's
    /// `best_numeric_split`, minus the per-node sort — `seg` already
    /// lists this node's non-NaN slots in (value, fit-order) order.
    fn best_numeric_presorted(
        &mut self,
        feature: usize,
        seg: &[u32],
        vals: &[f64],
        parent_counts: &[f64],
    ) -> Option<BestSplit> {
        if seg.len() < 2 {
            return None;
        }
        let parent_total: f64 = parent_counts.iter().sum();
        let parent_imp = impurity(self.config.criterion, parent_counts, parent_total);
        self.state.left_counts.fill(0.0);
        let mut left_total = 0.0;
        self.state.right_counts.clear();
        self.state.right_counts.extend_from_slice(parent_counts);
        let mut right_total = parent_total;
        let mut best: Option<(f64, f64)> = None; // (threshold, score)
        for w in 0..seg.len() - 1 {
            let s = seg[w] as usize;
            let wgt = self.slot_weight[s];
            let cls = self.slot_label[s] as usize;
            self.state.left_counts[cls] += wgt;
            left_total += wgt;
            self.state.right_counts[cls] -= wgt;
            right_total -= wgt;
            let v_here = vals[s];
            let v_next = vals[seg[w + 1] as usize];
            if v_next <= v_here {
                continue; // same value: not a valid cut point
            }
            if left_total < self.config.min_leaf || right_total < self.config.min_leaf {
                continue;
            }
            let score = split_score(
                self.config.criterion,
                parent_imp,
                parent_total,
                &[
                    (self.state.left_counts.as_slice(), left_total),
                    (self.state.right_counts.as_slice(), right_total),
                ],
            );
            let threshold = 0.5 * (v_here + v_next);
            if best.is_none_or(|(_, s)| score > s) {
                best = Some((threshold, score));
            }
        }
        best.map(|(threshold, score)| BestSplit::Numeric { feature, threshold, score })
    }

    /// Best threshold for a numeric feature from its radix-sorted
    /// `(rank, slot)` pairs: the oracle's left-add/right-subtract scan,
    /// with value equality read off the ranks (equal rank ⟺ equal value)
    /// and candidate thresholds reconstructed from the rank → value
    /// table, which holds the exact `f64`s the oracle averages.
    fn best_numeric_ranked(
        &mut self,
        feature: usize,
        pairs: &[u64],
        rank_vals: &[f64],
        parent_counts: &[f64],
    ) -> Option<BestSplit> {
        if pairs.len() < 2 {
            return None;
        }
        let parent_total: f64 = parent_counts.iter().sum();
        let parent_imp = impurity(self.config.criterion, parent_counts, parent_total);
        self.state.left_counts.fill(0.0);
        let mut left_total = 0.0;
        self.state.right_counts.clear();
        self.state.right_counts.extend_from_slice(parent_counts);
        let mut right_total = parent_total;
        let mut best: Option<(f64, f64)> = None; // (threshold, score)
        for w in 0..pairs.len() - 1 {
            let s = pairs[w] as u32 as usize;
            let wgt = self.slot_weight[s];
            let cls = self.slot_label[s] as usize;
            self.state.left_counts[cls] += wgt;
            left_total += wgt;
            self.state.right_counts[cls] -= wgt;
            right_total -= wgt;
            let r_here = (pairs[w] >> 32) as u32;
            let r_next = (pairs[w + 1] >> 32) as u32;
            if r_next == r_here {
                continue; // same value: not a valid cut point
            }
            if left_total < self.config.min_leaf || right_total < self.config.min_leaf {
                continue;
            }
            let score = split_score(
                self.config.criterion,
                parent_imp,
                parent_total,
                &[
                    (self.state.left_counts.as_slice(), left_total),
                    (self.state.right_counts.as_slice(), right_total),
                ],
            );
            let threshold =
                0.5 * (rank_vals[r_here as usize] + rank_vals[r_next as usize]);
            if best.is_none_or(|(_, s)| score > s) {
                best = Some((threshold, score));
            }
        }
        best.map(|(threshold, score)| BestSplit::Numeric { feature, threshold, score })
    }

    /// Best threshold for a numeric feature from its histogram: O(rows)
    /// fill plus O(bins) scan. Missing rows stay on the right implicitly,
    /// mirroring the exact kernel's semantics.
    fn best_numeric_binned(
        &mut self,
        feature: usize,
        edges: &[f64],
        slot_codes: &[u8],
        rows: &[u32],
        parent_counts: &[f64],
    ) -> Option<BestSplit> {
        let nb = edges.len();
        if nb < 2 {
            return None;
        }
        let k = self.n_classes;
        // Branch-light vectorized build (trash-bin lane for missing rows);
        // bit-identical on the real bins to the retained scalar builder.
        let n_present = crate::common::split::fill_histogram(
            rows,
            slot_codes,
            &self.slot_label,
            &self.slot_weight,
            k,
            &mut self.state.hist,
            &mut self.state.hist_total,
        );
        if n_present < 2 {
            return None;
        }
        let last = (0..nb).rev().find(|&b| self.state.hist_total[b] > 0.0)?;
        let parent_total: f64 = parent_counts.iter().sum();
        let parent_imp = impurity(self.config.criterion, parent_counts, parent_total);
        self.state.left_counts.fill(0.0);
        let mut left_total = 0.0;
        self.state.right_counts.clear();
        self.state.right_counts.extend_from_slice(parent_counts);
        let mut right_total = parent_total;
        let mut best: Option<(f64, f64)> = None;
        for b in 0..last {
            let bt = self.state.hist_total[b];
            if bt == 0.0 {
                continue; // cut equivalent to the previous one
            }
            let bin_row = &self.state.hist[b * k..b * k + k];
            kernels::add_assign(&mut self.state.left_counts, bin_row);
            kernels::sub_assign(&mut self.state.right_counts, bin_row);
            left_total += bt;
            right_total -= bt;
            if left_total < self.config.min_leaf || right_total < self.config.min_leaf {
                continue;
            }
            let score = split_score(
                self.config.criterion,
                parent_imp,
                parent_total,
                &[
                    (self.state.left_counts.as_slice(), left_total),
                    (self.state.right_counts.as_slice(), right_total),
                ],
            );
            if best.is_none_or(|(_, s)| score > s) {
                best = Some((edges[b], score));
            }
        }
        best.map(|(threshold, score)| BestSplit::Numeric { feature, threshold, score })
    }

    /// Scores a multiway categorical split into the flattened
    /// `level × class` scratch (no per-node `Vec<Vec<f64>>`), visiting
    /// levels in the same order as the oracle's `score_categorical_split`
    /// so the scores are bit-identical.
    fn score_categorical(
        &mut self,
        feature: usize,
        codes: &[u32],
        n_levels: usize,
        rows: &[u32],
        parent_counts: &[f64],
    ) -> Option<BestSplit> {
        let k = self.n_classes;
        self.state.cat_counts.clear();
        self.state.cat_counts.resize(n_levels * k, 0.0);
        self.state.cat_totals.clear();
        self.state.cat_totals.resize(n_levels, 0.0);
        for &s in rows {
            let c = codes[self.fit_rows[s as usize] as usize];
            if c == MISSING_CODE {
                continue;
            }
            let wgt = self.slot_weight[s as usize];
            self.state.cat_counts[c as usize * k + self.slot_label[s as usize] as usize] += wgt;
            self.state.cat_totals[c as usize] += wgt;
        }
        let mut n_non_empty = 0usize;
        let mut too_small = false;
        for &t in &self.state.cat_totals {
            if t > 0.0 {
                n_non_empty += 1;
                if t < self.config.min_leaf {
                    too_small = true;
                }
            }
        }
        if n_non_empty < 2 || too_small {
            return None;
        }
        let parent_total: f64 = parent_counts.iter().sum();
        let parent_imp = impurity(self.config.criterion, parent_counts, parent_total);
        let score = split_score_levels(
            self.config.criterion,
            parent_imp,
            parent_total,
            &self.state.cat_counts,
            &self.state.cat_totals,
            k,
        );
        Some(BestSplit::Categorical { feature, score })
    }
}

/// Node impurity under `criterion` (bit-identical to the oracle's
/// method).
fn impurity(criterion: SplitCriterion, counts: &[f64], total: f64) -> f64 {
    if total <= 1e-300 {
        return 0.0;
    }
    match criterion {
        SplitCriterion::Gini => {
            1.0 - counts.iter().map(|c| (c / total) * (c / total)).sum::<f64>()
        }
        SplitCriterion::GainRatio => {
            // Entropy in nats.
            -counts
                .iter()
                .filter(|&&c| c > 0.0)
                .map(|&c| {
                    let p = c / total;
                    p * p.ln()
                })
                .sum::<f64>()
        }
    }
}

/// Impurity decrease (Gini) or gain ratio (C4.5) of a proposed split
/// (bit-identical to the oracle's method).
fn split_score(
    criterion: SplitCriterion,
    parent_imp: f64,
    parent_total: f64,
    children: &[(&[f64], f64)],
) -> f64 {
    let mut weighted_child_imp = 0.0;
    for &(counts, total) in children {
        weighted_child_imp += total / parent_total * impurity(criterion, counts, total);
    }
    let gain = parent_imp - weighted_child_imp;
    match criterion {
        SplitCriterion::Gini => gain,
        SplitCriterion::GainRatio => {
            // Split info: entropy of the child-size distribution.
            let split_info: f64 = -children
                .iter()
                .map(|&(_, t)| {
                    let p = t / parent_total;
                    if p > 0.0 {
                        p * p.ln()
                    } else {
                        0.0
                    }
                })
                .sum::<f64>();
            if split_info <= 1e-12 {
                0.0
            } else {
                gain / split_info
            }
        }
    }
}

/// [`split_score`] over the non-empty levels of a flattened categorical
/// count table, visited in ascending level order (the oracle's
/// `non_empty` order) for bit-identical accumulation.
fn split_score_levels(
    criterion: SplitCriterion,
    parent_imp: f64,
    parent_total: f64,
    flat: &[f64],
    totals: &[f64],
    k: usize,
) -> f64 {
    let mut weighted_child_imp = 0.0;
    for (c, &t) in totals.iter().enumerate() {
        if t > 0.0 {
            weighted_child_imp += t / parent_total * impurity(criterion, &flat[c * k..(c + 1) * k], t);
        }
    }
    let gain = parent_imp - weighted_child_imp;
    match criterion {
        SplitCriterion::Gini => gain,
        SplitCriterion::GainRatio => {
            let split_info: f64 = -totals
                .iter()
                .filter(|&&t| t > 0.0)
                .map(|&t| {
                    let p = t / parent_total;
                    if p > 0.0 {
                        p * p.ln()
                    } else {
                        0.0
                    }
                })
                .sum::<f64>();
            if split_info <= 1e-12 {
                0.0
            } else {
                gain / split_info
            }
        }
    }
}

/// C4.5 pessimistic pruning: collapse a subtree into a leaf when the leaf's
/// pessimistic error estimate does not exceed the subtree's.
fn prune_pessimistic(node: &mut Node, cf: f64) {
    let z = cf_to_z(cf);
    prune_rec(node, z, cf);
}

fn prune_rec(node: &mut Node, z: f64, cf: f64) -> f64 {
    let counts = node.counts().to_vec();
    match node {
        Node::Leaf { .. } => pessimistic_errors(&counts, z, cf),
        Node::SplitNumeric { left, right, .. } => {
            let subtree_err = prune_rec(left, z, cf) + prune_rec(right, z, cf);
            maybe_collapse(node, counts, subtree_err, z, cf)
        }
        Node::SplitCategorical { branches, .. } => {
            let subtree_err: f64 = branches
                .iter_mut()
                .filter_map(|b| b.as_deref_mut())
                .map(|b| prune_rec(b, z, cf))
                .sum();
            maybe_collapse(node, counts, subtree_err, z, cf)
        }
    }
}

fn maybe_collapse(node: &mut Node, counts: Vec<f64>, subtree_err: f64, z: f64, cf: f64) -> f64 {
    let leaf_err = pessimistic_errors(&counts, z, cf);
    if leaf_err <= subtree_err + 0.1 {
        *node = Node::Leaf { counts };
        leaf_err
    } else {
        subtree_err
    }
}

/// Upper-confidence estimate of the error *count* at a node — C4.5's
/// `addErrs`: the exact binomial bound when no errors were observed,
/// otherwise the Wilson upper confidence limit at confidence `cf`
/// (z = Φ⁻¹(1-cf)).
fn pessimistic_errors(counts: &[f64], z: f64, cf: f64) -> f64 {
    let total: f64 = counts.iter().sum();
    if total <= 0.0 {
        return 0.0;
    }
    let majority = counts.iter().copied().fold(0.0, f64::max);
    let errors = total - majority;
    if errors < 1e-9 {
        // Exact binomial upper bound for zero observed errors:
        // the largest p with (1-p)^N >= cf.
        return total * (1.0 - (cf.ln() / total).exp());
    }
    let f = errors / total;
    let z2 = z * z;
    let upper = (f + z2 / (2.0 * total)
        + z * (f / total - f * f / total + z2 / (4.0 * total * total)).sqrt())
        / (1.0 + z2 / total);
    upper * total
}

/// Approximate inverse-normal quantile for (1 - cf); cf = 0.25 → z ≈ 0.674.
fn cf_to_z(cf: f64) -> f64 {
    // Beasley-Springer-Moro-ish rational approximation on the central region.
    let p = 1.0 - cf.clamp(0.001, 0.5);
    let t = (-2.0 * (1.0 - p).ln()).sqrt();
    t - (2.30753 + 0.27061 * t) / (1.0 + 0.99229 * t + 0.04481 * t * t)
}

/// The pre-kernel naive tree builder, retained verbatim as a
/// differential-testing oracle for the presorted kernel: it re-sorts the
/// candidate rows at every node for every numeric feature. Kept `pub`
/// (rather than `#[cfg(test)]`) because the cross-crate equivalence
/// tests and the `tree_kernels` old-vs-new benchmark need it; it is not
/// part of the supported API.
#[doc(hidden)]
pub mod oracle {
    use super::*;

    /// Oracle twin of [`DecisionTree::fit`].
    pub fn fit(data: &Dataset, rows: &[usize], config: &TreeConfig) -> DecisionTree {
        let weights = vec![1.0; data.n_rows()];
        fit_weighted(data, rows, &weights, config)
    }

    /// Oracle twin of [`DecisionTree::fit_weighted`] (always exact;
    /// `config.max_bins` is ignored).
    pub fn fit_weighted(
        data: &Dataset,
        rows: &[usize],
        weights: &[f64],
        config: &TreeConfig,
    ) -> DecisionTree {
        assert_eq!(weights.len(), data.n_rows(), "one weight per dataset row");
        let mut builder = Builder {
            data,
            config,
            weights,
            n_classes: data.n_classes(),
            rng: StdRng::seed_from_u64(config.seed),
        };
        let mut row_buf: Vec<usize> = rows.to_vec();
        let mut root = builder.grow(&mut row_buf, 0);
        if let Pruning::Pessimistic { cf } = config.pruning {
            prune_pessimistic(&mut root, cf);
        }
        DecisionTree { root, n_classes: data.n_classes() }
    }

    struct Builder<'a> {
        data: &'a Dataset,
        config: &'a TreeConfig,
        weights: &'a [f64],
        n_classes: usize,
        rng: StdRng,
    }

    impl<'a> Builder<'a> {
        fn grow(&mut self, rows: &mut [usize], depth: usize) -> Node {
            let counts = self.class_counts(rows);
            let weight: f64 = counts.iter().sum();
            let impurity = self.impurity(&counts, weight);
            if depth >= self.config.max_depth
                || weight < self.config.min_split
                || impurity <= 1e-12
            {
                return Node::Leaf { counts };
            }
            let features = self.candidate_features();
            let mut best: Option<BestSplit> = None;
            for &f in &features {
                let candidate = match self.data.feature(f) {
                    Feature::Numeric { values, .. } => {
                        self.best_numeric_split(f, values, rows, &counts)
                    }
                    Feature::Categorical { codes, levels, .. } => {
                        self.score_categorical_split(f, codes, levels.len(), rows, &counts)
                    }
                };
                if let Some(c) = candidate {
                    if best.as_ref().is_none_or(|b| c.score() > b.score()) {
                        best = Some(c);
                    }
                }
            }
            let Some(split) = best else {
                return Node::Leaf { counts };
            };
            // rpart-style complexity gate: require relative impurity decrease > cp.
            let rel_gain = split.score() / impurity.max(1e-12);
            if self.config.cp > 0.0 && rel_gain < self.config.cp {
                return Node::Leaf { counts };
            }
            match split {
                BestSplit::Numeric { feature, threshold, .. } => {
                    let values = match self.data.feature(feature) {
                        Feature::Numeric { values, .. } => values,
                        _ => unreachable!(),
                    };
                    let (mut left_rows, mut right_rows): (Vec<usize>, Vec<usize>) = rows
                        .iter()
                        .filter(|&&r| !values[r].is_nan())
                        .partition(|&&r| values[r] <= threshold);
                    if left_rows.is_empty() || right_rows.is_empty() {
                        return Node::Leaf { counts };
                    }
                    let left = Box::new(self.grow(&mut left_rows, depth + 1));
                    let right = Box::new(self.grow(&mut right_rows, depth + 1));
                    Node::SplitNumeric { feature, threshold, left, right, counts }
                }
                BestSplit::Categorical { feature, .. } => {
                    let (codes, n_levels) = match self.data.feature(feature) {
                        Feature::Categorical { codes, levels, .. } => (codes, levels.len()),
                        _ => unreachable!(),
                    };
                    let mut level_rows: Vec<Vec<usize>> = vec![Vec::new(); n_levels];
                    for &r in rows.iter() {
                        let c = codes[r];
                        if c != MISSING_CODE {
                            level_rows[c as usize].push(r);
                        }
                    }
                    let branches = level_rows
                        .into_iter()
                        .map(|mut lr| {
                            if lr.is_empty() {
                                None
                            } else {
                                Some(Box::new(self.grow(&mut lr, depth + 1)))
                            }
                        })
                        .collect();
                    Node::SplitCategorical { feature, branches, counts }
                }
            }
        }

        fn candidate_features(&mut self) -> Vec<usize> {
            let d = self.data.n_features();
            match self.config.mtry {
                None => (0..d).collect(),
                Some(m) => {
                    let mut idx: Vec<usize> = (0..d).collect();
                    idx.shuffle(&mut self.rng);
                    idx.truncate(m.clamp(1, d));
                    idx
                }
            }
        }

        fn class_counts(&self, rows: &[usize]) -> Vec<f64> {
            let mut counts = vec![0.0; self.n_classes];
            for &r in rows {
                counts[self.data.label(r) as usize] += self.weights[r];
            }
            counts
        }

        fn impurity(&self, counts: &[f64], total: f64) -> f64 {
            if total <= 1e-300 {
                return 0.0;
            }
            match self.config.criterion {
                SplitCriterion::Gini => {
                    1.0 - counts.iter().map(|c| (c / total) * (c / total)).sum::<f64>()
                }
                SplitCriterion::GainRatio => {
                    // Entropy in nats.
                    -counts
                        .iter()
                        .filter(|&&c| c > 0.0)
                        .map(|&c| {
                            let p = c / total;
                            p * p.ln()
                        })
                        .sum::<f64>()
                }
            }
        }

        /// Best threshold for a numeric feature: scans sorted unique values,
        /// maintaining running class counts. Returns the split score (impurity
        /// decrease, or gain ratio for C4.5).
        fn best_numeric_split(
            &self,
            feature: usize,
            values: &[f64],
            rows: &[usize],
            parent_counts: &[f64],
        ) -> Option<BestSplit> {
            let mut present: Vec<usize> =
                rows.iter().copied().filter(|&r| !values[r].is_nan()).collect();
            if present.len() < 2 {
                return None;
            }
            present.sort_by(|&a, &b| {
                values[a].partial_cmp(&values[b]).unwrap_or(std::cmp::Ordering::Equal)
            });
            let parent_total: f64 = parent_counts.iter().sum();
            let parent_imp = self.impurity(parent_counts, parent_total);
            let mut left_counts = vec![0.0; self.n_classes];
            let mut left_total = 0.0;
            let mut right_counts: Vec<f64> = parent_counts.to_vec();
            let mut right_total = parent_total;
            let mut best: Option<(f64, f64)> = None; // (threshold, score)
            for w in 0..present.len() - 1 {
                let r = present[w];
                let wgt = self.weights[r];
                let cls = self.data.label(r) as usize;
                left_counts[cls] += wgt;
                left_total += wgt;
                right_counts[cls] -= wgt;
                right_total -= wgt;
                let v_here = values[r];
                let v_next = values[present[w + 1]];
                if v_next <= v_here {
                    continue; // same value: not a valid cut point
                }
                if left_total < self.config.min_leaf || right_total < self.config.min_leaf {
                    continue;
                }
                let score = self.split_score(
                    parent_imp,
                    parent_total,
                    &[(&left_counts, left_total), (&right_counts, right_total)],
                );
                let threshold = 0.5 * (v_here + v_next);
                if best.is_none_or(|(_, s)| score > s) {
                    best = Some((threshold, score));
                }
            }
            best.map(|(threshold, score)| BestSplit::Numeric { feature, threshold, score })
        }

        /// Scores a multiway categorical split.
        fn score_categorical_split(
            &self,
            feature: usize,
            codes: &[u32],
            n_levels: usize,
            rows: &[usize],
            parent_counts: &[f64],
        ) -> Option<BestSplit> {
            let mut level_counts = vec![vec![0.0; self.n_classes]; n_levels];
            let mut level_totals = vec![0.0; n_levels];
            for &r in rows {
                let c = codes[r];
                if c == MISSING_CODE {
                    continue;
                }
                let wgt = self.weights[r];
                level_counts[c as usize][self.data.label(r) as usize] += wgt;
                level_totals[c as usize] += wgt;
            }
            let non_empty: Vec<(&Vec<f64>, f64)> = level_counts
                .iter()
                .zip(level_totals.iter().copied())
                .filter(|&(_, t)| t > 0.0)
                .collect();
            if non_empty.len() < 2 {
                return None;
            }
            if non_empty.iter().any(|&(_, t)| t < self.config.min_leaf) {
                return None;
            }
            let parent_total: f64 = parent_counts.iter().sum();
            let parent_imp = self.impurity(parent_counts, parent_total);
            let children: Vec<(&[f64], f64)> =
                non_empty.iter().map(|&(c, t)| (c.as_slice(), t)).collect();
            let score = self.split_score(parent_imp, parent_total, &children);
            Some(BestSplit::Categorical { feature, score })
        }

        /// Impurity decrease (Gini) or gain ratio (C4.5) of a proposed split.
        fn split_score(
            &self,
            parent_imp: f64,
            parent_total: f64,
            children: &[(&[f64], f64)],
        ) -> f64 {
            let mut weighted_child_imp = 0.0;
            for &(counts, total) in children {
                weighted_child_imp += total / parent_total * self.impurity(counts, total);
            }
            let gain = parent_imp - weighted_child_imp;
            match self.config.criterion {
                SplitCriterion::Gini => gain,
                SplitCriterion::GainRatio => {
                    // Split info: entropy of the child-size distribution.
                    let split_info: f64 = -children
                        .iter()
                        .map(|&(_, t)| {
                            let p = t / parent_total;
                            if p > 0.0 {
                                p * p.ln()
                            } else {
                                0.0
                            }
                        })
                        .sum::<f64>();
                    if split_info <= 1e-12 {
                        0.0
                    } else {
                        gain / split_info
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartml_data::synth::{categorical_mixture, gaussian_blobs, two_spirals, xor_parity};
    use smartml_data::{accuracy, Dataset};

    fn eval(tree: &DecisionTree, data: &Dataset, rows: &[usize]) -> f64 {
        let proba = tree.predict_proba(data, rows);
        let pred: Vec<u32> = proba
            .iter()
            .map(|p| smartml_linalg::vecops::argmax(p).unwrap() as u32)
            .collect();
        accuracy(&data.labels_for(rows), &pred)
    }

    #[test]
    fn fits_separable_blobs() {
        let d = gaussian_blobs("b", 200, 3, 2, 0.4, 1);
        let (train, test): (Vec<usize>, Vec<usize>) = (0..200).partition(|i| i % 2 == 0);
        let tree = DecisionTree::fit(&d, &train, &TreeConfig::default());
        assert!(eval(&tree, &d, &test) > 0.9);
    }

    #[test]
    fn solves_xor_where_linear_fails() {
        let d = xor_parity("x", 400, 2, 2, 0.0, 1);
        let (train, test): (Vec<usize>, Vec<usize>) = (0..400).partition(|i| i % 2 == 0);
        let tree = DecisionTree::fit(&d, &train, &TreeConfig::default());
        assert!(eval(&tree, &d, &test) > 0.85, "acc {}", eval(&tree, &d, &test));
    }

    #[test]
    fn gain_ratio_also_learns() {
        let d = gaussian_blobs("b", 200, 3, 3, 0.6, 3);
        let (train, test): (Vec<usize>, Vec<usize>) = (0..200).partition(|i| i % 2 == 0);
        let cfg = TreeConfig { criterion: SplitCriterion::GainRatio, ..TreeConfig::default() };
        let tree = DecisionTree::fit(&d, &train, &cfg);
        assert!(eval(&tree, &d, &test) > 0.85);
    }

    #[test]
    fn max_depth_limits_depth() {
        let d = two_spirals("s", 300, 0.1, 4);
        let rows = d.all_rows();
        let cfg = TreeConfig { max_depth: 3, ..TreeConfig::default() };
        let tree = DecisionTree::fit(&d, &rows, &cfg);
        assert!(tree.depth() <= 3);
    }

    #[test]
    fn min_leaf_respected_in_leaf_sizes() {
        let d = gaussian_blobs("b", 100, 2, 2, 2.0, 5);
        let rows = d.all_rows();
        let strict = TreeConfig { min_leaf: 20.0, ..TreeConfig::default() };
        let loose = TreeConfig::default();
        let t_strict = DecisionTree::fit(&d, &rows, &strict);
        let t_loose = DecisionTree::fit(&d, &rows, &loose);
        assert!(t_strict.n_leaves() <= t_loose.n_leaves());
        assert!(t_strict.n_leaves() <= 100 / 20 + 1);
    }

    #[test]
    fn cp_prunes_weak_splits() {
        let d = two_spirals("s", 200, 0.4, 6);
        let rows = d.all_rows();
        let no_cp = DecisionTree::fit(&d, &rows, &TreeConfig::default());
        let high_cp = DecisionTree::fit(&d, &rows, &TreeConfig { cp: 0.3, ..TreeConfig::default() });
        assert!(high_cp.n_leaves() < no_cp.n_leaves());
    }

    #[test]
    fn pessimistic_pruning_shrinks_tree() {
        // Heavy class overlap: the unpruned tree memorises noise and
        // pessimistic pruning collapses those subtrees.
        let d = gaussian_blobs("b", 300, 3, 2, 3.0, 7);
        let rows = d.all_rows();
        let unpruned = DecisionTree::fit(&d, &rows, &TreeConfig::default());
        let pruned = DecisionTree::fit(
            &d,
            &rows,
            &TreeConfig { pruning: Pruning::Pessimistic { cf: 0.1 }, ..TreeConfig::default() },
        );
        assert!(
            pruned.n_leaves() < unpruned.n_leaves(),
            "pruned {} vs unpruned {}",
            pruned.n_leaves(),
            unpruned.n_leaves()
        );
    }

    #[test]
    fn categorical_splits_work() {
        let d = categorical_mixture("c", 300, 3, 0, 3, 4, 8);
        let (train, test): (Vec<usize>, Vec<usize>) = (0..300).partition(|i| i % 2 == 0);
        let tree = DecisionTree::fit(&d, &train, &TreeConfig::default());
        // Class-dependent level odds (0.6 preference) bound Bayes accuracy;
        // the tree should clearly beat the 1/3 chance rate.
        assert!(eval(&tree, &d, &test) > 0.55, "acc {}", eval(&tree, &d, &test));
    }

    #[test]
    fn instance_weights_shift_predictions() {
        // Two overlapping points; weight forces the minority class to win.
        let d = gaussian_blobs("b", 40, 2, 2, 3.0, 9);
        let rows = d.all_rows();
        let mut weights = vec![1.0; d.n_rows()];
        for &r in &rows {
            if d.label(r) == 1 {
                weights[r] = 100.0;
            }
        }
        let cfg = TreeConfig { max_depth: 0, ..TreeConfig::default() }; // root only
        let tree = DecisionTree::fit_weighted(&d, &rows, &weights, &cfg);
        let proba = tree.predict_proba(&d, &[0]);
        assert!(proba[0][1] > 0.9, "{:?}", proba[0]);
    }

    #[test]
    fn mtry_subsampling_changes_trees() {
        let d = gaussian_blobs("b", 150, 10, 2, 1.0, 10);
        let rows = d.all_rows();
        let t1 = DecisionTree::fit(
            &d,
            &rows,
            &TreeConfig { mtry: Some(2), seed: 1, ..TreeConfig::default() },
        );
        let t2 = DecisionTree::fit(
            &d,
            &rows,
            &TreeConfig { mtry: Some(2), seed: 2, ..TreeConfig::default() },
        );
        assert_ne!(t1.feature_usage(), t2.feature_usage());
    }

    #[test]
    fn proba_rows_sum_to_one() {
        let d = gaussian_blobs("b", 100, 3, 4, 1.5, 11);
        let rows = d.all_rows();
        let tree = DecisionTree::fit(&d, &rows, &TreeConfig::default());
        for p in tree.predict_proba(&d, &rows) {
            let s: f64 = p.iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn feature_usage_reports_informative_feature() {
        let d = xor_parity("x", 300, 1, 5, 0.0, 12);
        let rows = d.all_rows();
        let tree = DecisionTree::fit(&d, &rows, &TreeConfig::default());
        let usage = tree.feature_usage();
        // Feature 0 is the only informative one; it must dominate splits.
        let f0: usize = usage.iter().filter(|(f, _)| *f == 0).map(|(_, c)| c).sum();
        let rest: usize = usage.iter().filter(|(f, _)| *f != 0).map(|(_, c)| c).sum();
        assert!(f0 >= 1);
        assert!(f0 >= rest, "f0 {f0} rest {rest}");
    }

    #[test]
    fn rules_cover_all_training_rows_exclusively() {
        let d = gaussian_blobs("b", 120, 3, 2, 1.0, 13);
        let rows = d.all_rows();
        let tree = DecisionTree::fit(&d, &rows, &TreeConfig::default());
        let rules = tree.extract_rules();
        assert_eq!(rules.len(), tree.n_leaves());
        // Every complete row matches exactly one rule.
        for &r in &rows {
            let matches = rules.iter().filter(|rule| rule.matches(&d, r)).count();
            assert_eq!(matches, 1, "row {r} matched {matches} rules");
        }
        // Total coverage equals the training weight.
        let total: f64 = rules.iter().map(Rule::coverage).sum();
        assert!((total - 120.0).abs() < 1e-9);
    }

    #[test]
    fn rule_majority_consistent_with_counts() {
        let rule = Rule { conditions: vec![], counts: vec![1.0, 5.0, 2.0] };
        assert_eq!(rule.majority(), 1);
        assert_eq!(rule.coverage(), 8.0);
    }

    #[test]
    fn leaf_ids_stable_and_in_range() {
        let d = categorical_mixture("c", 200, 2, 2, 3, 4, 14);
        let rows = d.all_rows();
        let tree = DecisionTree::fit(&d, &rows, &TreeConfig::default());
        let n_leaves = tree.n_leaves();
        for &r in &rows {
            let id1 = tree.leaf_id(&d, r);
            let id2 = tree.leaf_id(&d, r);
            assert_eq!(id1, id2);
            assert!(id1 < n_leaves, "leaf id {id1} out of {n_leaves}");
        }
    }

    #[test]
    fn leaf_ids_distinguish_separated_rows() {
        let d = gaussian_blobs("b", 100, 2, 2, 0.3, 15);
        let rows = d.all_rows();
        let tree = DecisionTree::fit(&d, &rows, &TreeConfig::default());
        // Two rows of different classes in a near-perfect tree get
        // different leaves.
        let r0 = rows.iter().find(|&&r| d.label(r) == 0).copied().unwrap();
        let r1 = rows.iter().find(|&&r| d.label(r) == 1).copied().unwrap();
        assert_ne!(tree.leaf_id(&d, r0), tree.leaf_id(&d, r1));
    }

    #[test]
    fn cf_to_z_reference_points() {
        assert!((cf_to_z(0.25) - 0.674).abs() < 0.02, "{}", cf_to_z(0.25));
        assert!((cf_to_z(0.05) - 1.645).abs() < 0.03, "{}", cf_to_z(0.05));
    }
}
