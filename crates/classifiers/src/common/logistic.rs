//! Multinomial logistic regression trained by batch gradient descent with
//! momentum and L2 decay. Used as the leaf model of LMT and as a shared
//! building block.

use smartml_linalg::{vecops, Matrix};

/// A trained multinomial logistic model over dense numeric inputs.
#[derive(Debug, Clone)]
pub struct LogisticModel {
    /// `k x (d+1)` weights; last column is the bias.
    weights: Matrix,
    n_classes: usize,
}

impl LogisticModel {
    /// Fits on `x` (n×d) and labels, with `epochs` full-batch steps.
    ///
    /// `l2` is the weight-decay strength. Inputs are standardised internally
    /// (mean/std absorbed into the weights afterwards) so the fixed learning
    /// rate is scale-free.
    pub fn fit(x: &Matrix, y: &[u32], n_classes: usize, epochs: usize, l2: f64) -> LogisticModel {
        let (n, d) = x.shape();
        assert_eq!(y.len(), n);
        // Standardise columns for conditioning.
        let mut means = vec![0.0; d];
        let mut stds = vec![1.0; d];
        for c in 0..d {
            let col: Vec<f64> = (0..n).map(|r| x[(r, c)]).collect();
            means[c] = vecops::mean(&col);
            let s = vecops::std_dev(&col);
            stds[c] = if s > 1e-12 { s } else { 1.0 };
        }
        let mut w = Matrix::zeros(n_classes, d + 1);
        let mut velocity = Matrix::zeros(n_classes, d + 1);
        let lr = 0.5;
        let momentum = 0.9;
        let mut scores = vec![0.0; n_classes];
        let mut xs = vec![0.0; d];
        for _ in 0..epochs.max(1) {
            let mut grad = Matrix::zeros(n_classes, d + 1);
            for r in 0..n {
                for c in 0..d {
                    xs[c] = (x[(r, c)] - means[c]) / stds[c];
                }
                for k in 0..n_classes {
                    let row = w.row(k);
                    scores[k] = vecops::dot(&row[..d], &xs) + row[d];
                }
                vecops::softmax_inplace(&mut scores);
                let truth = y[r] as usize;
                for k in 0..n_classes {
                    let err = scores[k] - if k == truth { 1.0 } else { 0.0 };
                    let grow = grad.row_mut(k);
                    for c in 0..d {
                        grow[c] += err * xs[c];
                    }
                    grow[d] += err;
                }
            }
            let scale = 1.0 / n as f64;
            for k in 0..n_classes {
                for c in 0..=d {
                    let g = grad[(k, c)] * scale + l2 * w[(k, c)];
                    velocity[(k, c)] = momentum * velocity[(k, c)] - lr * g;
                    w[(k, c)] += velocity[(k, c)];
                }
            }
        }
        // Fold standardisation into the weights: w'ᵀx = wᵀ((x-μ)/σ) + b.
        let mut folded = Matrix::zeros(n_classes, d + 1);
        for k in 0..n_classes {
            let mut bias = w[(k, d)];
            for c in 0..d {
                let wc = w[(k, c)] / stds[c];
                folded[(k, c)] = wc;
                bias -= wc * means[c];
            }
            folded[(k, d)] = bias;
        }
        LogisticModel { weights: folded, n_classes }
    }

    /// Class-probability prediction for one dense row.
    pub fn predict_row(&self, row: &[f64]) -> Vec<f64> {
        let d = self.weights.cols() - 1;
        debug_assert_eq!(row.len(), d);
        let mut scores: Vec<f64> = (0..self.n_classes)
            .map(|k| {
                let wrow = self.weights.row(k);
                vecops::dot(&wrow[..d], row) + wrow[d]
            })
            .collect();
        vecops::softmax_inplace(&mut scores);
        scores
    }

    /// Class probabilities for every row of `x`.
    pub fn predict_proba(&self, x: &Matrix) -> Vec<Vec<f64>> {
        (0..x.rows()).map(|r| self.predict_row(x.row(r))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Linearly separable 2-class data on a 1-D feature.
    fn line_data(n: usize) -> (Matrix, Vec<u32>) {
        let mut rows = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            let v = i as f64 / n as f64 * 10.0 - 5.0;
            rows.push(vec![v]);
            y.push(u32::from(v > 0.0));
        }
        (Matrix::from_rows(&rows), y)
    }

    #[test]
    fn separable_line_learned() {
        let (x, y) = line_data(100);
        let m = LogisticModel::fit(&x, &y, 2, 300, 1e-4);
        let proba = m.predict_proba(&x);
        let correct = proba
            .iter()
            .zip(&y)
            .filter(|(p, &t)| vecops::argmax(p).unwrap() as u32 == t)
            .count();
        assert!(correct >= 97, "{correct}/100");
    }

    #[test]
    fn three_class_softmax() {
        // Three clusters on a line at -4, 0, +4.
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..150 {
            let c = i % 3;
            let center = (c as f64 - 1.0) * 4.0;
            rows.push(vec![center + ((i * 17) % 10) as f64 / 10.0 - 0.5]);
            y.push(c as u32);
        }
        let x = Matrix::from_rows(&rows);
        let m = LogisticModel::fit(&x, &y, 3, 400, 1e-4);
        let pred: Vec<u32> = m
            .predict_proba(&x)
            .iter()
            .map(|p| vecops::argmax(p).unwrap() as u32)
            .collect();
        let acc = pred.iter().zip(&y).filter(|(a, b)| a == b).count() as f64 / 150.0;
        assert!(acc > 0.95, "acc {acc}");
    }

    #[test]
    fn probabilities_valid() {
        let (x, y) = line_data(40);
        let m = LogisticModel::fit(&x, &y, 2, 100, 1e-3);
        for p in m.predict_proba(&x) {
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn l2_shrinks_confidence() {
        let (x, y) = line_data(60);
        let weak = LogisticModel::fit(&x, &y, 2, 300, 1e-6);
        let strong = LogisticModel::fit(&x, &y, 2, 300, 1.0);
        // Strong decay keeps probabilities closer to 0.5.
        let conf = |m: &LogisticModel| {
            m.predict_proba(&x)
                .iter()
                .map(|p| p.iter().copied().fold(0.0, f64::max))
                .sum::<f64>()
        };
        assert!(conf(&strong) < conf(&weak));
    }
}
