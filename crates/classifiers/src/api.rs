//! The classifier trait pair: an untrained [`Classifier`] is fitted into an
//! immutable [`TrainedModel`] that predicts class probabilities.

use smartml_data::Dataset;
use smartml_linalg::vecops;

/// Errors from fitting a classifier.
#[derive(Debug, Clone, PartialEq)]
pub enum ClassifierError {
    /// Too few training rows for this algorithm.
    TooFewRows { algorithm: &'static str, needed: usize, got: usize },
    /// Fewer than two classes present in the training rows.
    SingleClass { algorithm: &'static str },
    /// A numerical failure (singular matrix, divergence, …).
    Numerical { algorithm: &'static str, detail: String },
    /// A hyperparameter was missing or out of its domain.
    BadParam { algorithm: &'static str, param: String, detail: String },
}

impl std::fmt::Display for ClassifierError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClassifierError::TooFewRows { algorithm, needed, got } => {
                write!(f, "{algorithm}: needs >= {needed} rows, got {got}")
            }
            ClassifierError::SingleClass { algorithm } => {
                write!(f, "{algorithm}: training rows contain a single class")
            }
            ClassifierError::Numerical { algorithm, detail } => {
                write!(f, "{algorithm}: numerical failure: {detail}")
            }
            ClassifierError::BadParam { algorithm, param, detail } => {
                write!(f, "{algorithm}: bad parameter '{param}': {detail}")
            }
        }
    }
}

impl std::error::Error for ClassifierError {}

/// An untrained, configured classifier.
pub trait Classifier: Send + Sync {
    /// Stable algorithm name (matches [`crate::Algorithm::paper_name`]).
    fn name(&self) -> &'static str;

    /// Fits on `rows` of `data`, returning an immutable trained model.
    fn fit(&self, data: &Dataset, rows: &[usize]) -> Result<Box<dyn TrainedModel>, ClassifierError>;
}

/// A fitted model.
pub trait TrainedModel: Send + Sync {
    /// Per-row class probability vectors (each sums to 1).
    fn predict_proba(&self, data: &Dataset, rows: &[usize]) -> Vec<Vec<f64>>;

    /// Hard class predictions (argmax of probabilities by default).
    fn predict(&self, data: &Dataset, rows: &[usize]) -> Vec<u32> {
        self.predict_proba(data, rows)
            .iter()
            .map(|p| vecops::argmax(p).unwrap_or(0) as u32)
            .collect()
    }
}

/// Validates common fit preconditions and returns the class count.
pub(crate) fn check_fit_preconditions(
    algorithm: &'static str,
    data: &Dataset,
    rows: &[usize],
    min_rows: usize,
) -> Result<usize, ClassifierError> {
    if rows.len() < min_rows {
        return Err(ClassifierError::TooFewRows { algorithm, needed: min_rows, got: rows.len() });
    }
    let counts = data.class_counts_for(rows);
    let present = counts.iter().filter(|&&c| c > 0).count();
    if present < 2 {
        return Err(ClassifierError::SingleClass { algorithm });
    }
    Ok(data.n_classes())
}

/// Normalises a non-negative score vector into a probability distribution;
/// uniform when the total is zero.
pub(crate) fn normalize_scores(mut scores: Vec<f64>) -> Vec<f64> {
    let total: f64 = scores.iter().sum();
    if total > 1e-300 {
        for s in &mut scores {
            *s /= total;
        }
    } else {
        let k = scores.len().max(1);
        scores = vec![1.0 / k as f64; k];
    }
    scores
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartml_data::Feature;

    #[test]
    fn preconditions_enforced() {
        let d = Dataset::new(
            "t",
            vec![Feature::Numeric { name: "x".into(), values: vec![1.0, 2.0, 3.0] }],
            vec![0, 0, 1],
            vec!["a".into(), "b".into()],
        )
        .unwrap();
        assert!(matches!(
            check_fit_preconditions("x", &d, &[0], 2),
            Err(ClassifierError::TooFewRows { .. })
        ));
        assert!(matches!(
            check_fit_preconditions("x", &d, &[0, 1], 2),
            Err(ClassifierError::SingleClass { .. })
        ));
        assert_eq!(check_fit_preconditions("x", &d, &[0, 2], 2), Ok(2));
    }

    #[test]
    fn normalize_scores_cases() {
        assert_eq!(normalize_scores(vec![1.0, 3.0]), vec![0.25, 0.75]);
        assert_eq!(normalize_scores(vec![0.0, 0.0]), vec![0.5, 0.5]);
    }
}
