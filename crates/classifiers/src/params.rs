//! Hyperparameter space description, sampling, and neighbourhood moves.
//!
//! A [`ParamSpace`] declares each tunable parameter's type and domain; a
//! [`ParamConfig`] is a concrete assignment. The SMAC tuner samples from the
//! space, perturbs configurations to generate local-search neighbours, and
//! encodes configurations as numeric vectors for its random-forest surrogate.

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// The specification of one hyperparameter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ParamSpec {
    /// A real parameter on `[lo, hi]`; `log` samples on a log scale.
    Real { name: String, lo: f64, hi: f64, log: bool },
    /// An integer parameter on `[lo, hi]` inclusive; `log` samples log-scaled.
    Int { name: String, lo: i64, hi: i64, log: bool },
    /// A categorical parameter over named choices.
    Cat { name: String, choices: Vec<String> },
}

impl ParamSpec {
    /// Parameter name.
    pub fn name(&self) -> &str {
        match self {
            ParamSpec::Real { name, .. }
            | ParamSpec::Int { name, .. }
            | ParamSpec::Cat { name, .. } => name,
        }
    }

    /// True for categorical parameters (paper Table 3's "categorical" count).
    pub fn is_categorical(&self) -> bool {
        matches!(self, ParamSpec::Cat { .. })
    }

    /// Samples a uniform random value from the domain.
    pub fn sample(&self, rng: &mut StdRng) -> ParamValue {
        match self {
            ParamSpec::Real { lo, hi, log, .. } => {
                let v = if *log {
                    let (llo, lhi) = (lo.ln(), hi.ln());
                    rng.gen_range(llo..=lhi).exp()
                } else {
                    rng.gen_range(*lo..=*hi)
                };
                ParamValue::Real(v)
            }
            ParamSpec::Int { lo, hi, log, .. } => {
                let v = if *log && *lo >= 1 {
                    let (llo, lhi) = ((*lo as f64).ln(), (*hi as f64).ln());
                    (rng.gen_range(llo..=lhi).exp().round() as i64).clamp(*lo, *hi)
                } else {
                    rng.gen_range(*lo..=*hi)
                };
                ParamValue::Int(v)
            }
            ParamSpec::Cat { choices, .. } => {
                ParamValue::Cat(choices[rng.gen_range(0..choices.len())].clone())
            }
        }
    }

    /// The domain's default value: domain midpoint / first choice.
    pub fn default_value(&self) -> ParamValue {
        match self {
            ParamSpec::Real { lo, hi, log, .. } => {
                // Log midpoint is the geometric mean; linear is the arithmetic mean.
                let v = if *log { ((lo.ln() + hi.ln()) / 2.0).exp() } else { (lo + hi) / 2.0 };
                ParamValue::Real(v)
            }
            ParamSpec::Int { lo, hi, log, .. } => {
                let v = if *log && *lo >= 1 {
                    (((*lo as f64).ln() + (*hi as f64).ln()) / 2.0).exp().round() as i64
                } else {
                    (lo + hi) / 2
                };
                ParamValue::Int(v.clamp(*lo, *hi))
            }
            ParamSpec::Cat { choices, .. } => ParamValue::Cat(choices[0].clone()),
        }
    }

    /// A local perturbation of `current` (SMAC's neighbourhood move):
    /// reals/ints move by a Gaussian step of ~20% of the (log-)range;
    /// categoricals resample a different choice.
    pub fn neighbor(&self, current: &ParamValue, rng: &mut StdRng) -> ParamValue {
        let gauss = |rng: &mut StdRng| -> f64 {
            // Box-Muller.
            let u1: f64 = rng.gen_range(1e-12..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
        };
        match (self, current) {
            (ParamSpec::Real { lo, hi, log, .. }, ParamValue::Real(v)) => {
                let v = if *log {
                    let span = hi.ln() - lo.ln();
                    (v.ln() + gauss(rng) * 0.2 * span).exp()
                } else {
                    v + gauss(rng) * 0.2 * (hi - lo)
                };
                ParamValue::Real(v.clamp(*lo, *hi))
            }
            (ParamSpec::Int { lo, hi, log, .. }, ParamValue::Int(v)) => {
                let v = if *log && *lo >= 1 {
                    let span = (*hi as f64).ln() - (*lo as f64).ln();
                    ((*v as f64).ln() + gauss(rng) * 0.2 * span).exp().round() as i64
                } else {
                    let span = (hi - lo) as f64;
                    (*v as f64 + gauss(rng) * 0.2 * span).round() as i64
                };
                ParamValue::Int(v.clamp(*lo, *hi))
            }
            (ParamSpec::Cat { choices, .. }, ParamValue::Cat(c)) => {
                if choices.len() < 2 {
                    return current.clone();
                }
                loop {
                    let pick = &choices[rng.gen_range(0..choices.len())];
                    if pick != c {
                        return ParamValue::Cat(pick.clone());
                    }
                }
            }
            // Type mismatch (config from an older space): fall back to resampling.
            _ => self.sample(rng),
        }
    }

    /// Encodes a value into `[0, 1]` for the surrogate model
    /// (categoricals map to their choice index / (len-1)).
    pub fn encode(&self, value: &ParamValue) -> f64 {
        match (self, value) {
            (ParamSpec::Real { lo, hi, log, .. }, ParamValue::Real(v)) => {
                if *log {
                    (v.ln() - lo.ln()) / (hi.ln() - lo.ln()).max(1e-300)
                } else {
                    (v - lo) / (hi - lo).max(1e-300)
                }
            }
            (ParamSpec::Int { lo, hi, log, .. }, ParamValue::Int(v)) => {
                if *log && *lo >= 1 {
                    ((*v as f64).ln() - (*lo as f64).ln())
                        / ((*hi as f64).ln() - (*lo as f64).ln()).max(1e-300)
                } else {
                    (*v - lo) as f64 / ((*hi - *lo) as f64).max(1e-300)
                }
            }
            (ParamSpec::Cat { choices, .. }, ParamValue::Cat(c)) => {
                let idx = choices.iter().position(|x| x == c).unwrap_or(0);
                if choices.len() < 2 {
                    0.0
                } else {
                    idx as f64 / (choices.len() - 1) as f64
                }
            }
            _ => 0.5,
        }
    }

    /// True when `value` lies inside the declared domain.
    pub fn contains(&self, value: &ParamValue) -> bool {
        match (self, value) {
            (ParamSpec::Real { lo, hi, .. }, ParamValue::Real(v)) => (*lo..=*hi).contains(v),
            (ParamSpec::Int { lo, hi, .. }, ParamValue::Int(v)) => (*lo..=*hi).contains(v),
            (ParamSpec::Cat { choices, .. }, ParamValue::Cat(c)) => choices.contains(c),
            _ => false,
        }
    }
}

/// A concrete hyperparameter value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ParamValue {
    /// Real-valued parameter.
    Real(f64),
    /// Integer parameter.
    Int(i64),
    /// Categorical choice.
    Cat(String),
}

impl ParamValue {
    /// As f64, converting integers; panics on categoricals.
    pub fn as_f64(&self) -> f64 {
        match self {
            ParamValue::Real(v) => *v,
            ParamValue::Int(v) => *v as f64,
            ParamValue::Cat(c) => panic!("categorical parameter '{c}' used as numeric"),
        }
    }

    /// As i64, rounding reals; panics on categoricals.
    pub fn as_i64(&self) -> i64 {
        match self {
            ParamValue::Real(v) => v.round() as i64,
            ParamValue::Int(v) => *v,
            ParamValue::Cat(c) => panic!("categorical parameter '{c}' used as integer"),
        }
    }

    /// As &str; panics on numerics.
    pub fn as_str(&self) -> &str {
        match self {
            ParamValue::Cat(c) => c,
            other => panic!("numeric parameter {other:?} used as categorical"),
        }
    }
}

impl fmt::Display for ParamValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamValue::Real(v) => write!(f, "{v:.6}"),
            ParamValue::Int(v) => write!(f, "{v}"),
            ParamValue::Cat(c) => write!(f, "{c}"),
        }
    }
}

/// A concrete assignment of every parameter in a space.
///
/// Stored as a sorted map so serialisation is stable — configurations are
/// persisted in the knowledge base and compared across runs.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ParamConfig {
    /// Parameter name → value.
    pub values: BTreeMap<String, ParamValue>,
}

impl ParamConfig {
    /// Looks a parameter up by name.
    pub fn get(&self, name: &str) -> Option<&ParamValue> {
        self.values.get(name)
    }

    /// Numeric parameter by name, or `default` when absent.
    pub fn f64_or(&self, name: &str, default: f64) -> f64 {
        self.get(name).map_or(default, ParamValue::as_f64)
    }

    /// Integer parameter by name, or `default` when absent.
    pub fn i64_or(&self, name: &str, default: i64) -> i64 {
        self.get(name).map_or(default, ParamValue::as_i64)
    }

    /// Categorical parameter by name, or `default` when absent.
    pub fn str_or<'a>(&'a self, name: &str, default: &'a str) -> &'a str {
        self.get(name).map_or(default, |v| v.as_str())
    }

    /// Inserts a value (builder style).
    pub fn with(mut self, name: &str, value: ParamValue) -> Self {
        self.values.insert(name.to_string(), value);
        self
    }

    /// Compact single-line rendering, `name=value` pairs.
    pub fn summary(&self) -> String {
        self.values
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect::<Vec<_>>()
            .join(", ")
    }
}

impl fmt::Display for ParamConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.summary())
    }
}

/// The full hyperparameter space of one algorithm.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParamSpace {
    /// Parameter specifications, in declaration order.
    pub params: Vec<ParamSpec>,
}

impl ParamSpace {
    /// A space over the given parameters.
    pub fn new(params: Vec<ParamSpec>) -> Self {
        ParamSpace { params }
    }

    /// Number of categorical parameters (paper Table 3 column 2).
    pub fn n_categorical(&self) -> usize {
        self.params.iter().filter(|p| p.is_categorical()).count()
    }

    /// Number of numeric (real or integer) parameters (Table 3 column 3).
    pub fn n_numeric(&self) -> usize {
        self.params.len() - self.n_categorical()
    }

    /// Total parameter count — the paper divides the tuning budget among
    /// algorithms proportional to this.
    pub fn n_params(&self) -> usize {
        self.params.len()
    }

    /// Uniform random configuration.
    pub fn sample(&self, rng: &mut StdRng) -> ParamConfig {
        let mut config = ParamConfig::default();
        for p in &self.params {
            config.values.insert(p.name().to_string(), p.sample(rng));
        }
        config
    }

    /// Default configuration (midpoints / first choices).
    pub fn default_config(&self) -> ParamConfig {
        let mut config = ParamConfig::default();
        for p in &self.params {
            config.values.insert(p.name().to_string(), p.default_value());
        }
        config
    }

    /// A neighbour of `config`: perturbs each parameter independently with
    /// probability `move_prob` (at least one parameter always moves).
    pub fn neighbor(&self, config: &ParamConfig, move_prob: f64, rng: &mut StdRng) -> ParamConfig {
        let mut out = config.clone();
        let mut moved = false;
        for p in &self.params {
            if rng.gen_bool(move_prob) {
                if let Some(cur) = config.get(p.name()) {
                    out.values.insert(p.name().to_string(), p.neighbor(cur, rng));
                    moved = true;
                }
            }
        }
        if !moved && !self.params.is_empty() {
            let p = &self.params[rng.gen_range(0..self.params.len())];
            if let Some(cur) = config.get(p.name()) {
                out.values.insert(p.name().to_string(), p.neighbor(cur, rng));
            }
        }
        out
    }

    /// Encodes a configuration as a `[0,1]^d` vector for the surrogate.
    pub fn encode(&self, config: &ParamConfig) -> Vec<f64> {
        self.params
            .iter()
            .map(|p| config.get(p.name()).map_or(0.5, |v| p.encode(v)))
            .collect()
    }

    /// Clamps/repairs a configuration into the space: missing parameters get
    /// defaults, out-of-domain values are clamped or replaced. Used when
    /// warm-start configurations come from the knowledge base.
    pub fn repair(&self, config: &ParamConfig) -> ParamConfig {
        let mut out = ParamConfig::default();
        for p in &self.params {
            let v = match config.get(p.name()) {
                Some(v) if p.contains(v) => v.clone(),
                Some(v) => clamp_into(p, v),
                None => p.default_value(),
            };
            out.values.insert(p.name().to_string(), v);
        }
        out
    }

    /// True when `config` assigns every parameter a value in its domain.
    pub fn validates(&self, config: &ParamConfig) -> bool {
        self.params
            .iter()
            .all(|p| config.get(p.name()).is_some_and(|v| p.contains(v)))
    }
}

fn clamp_into(spec: &ParamSpec, value: &ParamValue) -> ParamValue {
    match (spec, value) {
        (ParamSpec::Real { lo, hi, .. }, ParamValue::Real(v)) => ParamValue::Real(v.clamp(*lo, *hi)),
        (ParamSpec::Real { lo, hi, .. }, ParamValue::Int(v)) => {
            ParamValue::Real((*v as f64).clamp(*lo, *hi))
        }
        (ParamSpec::Int { lo, hi, .. }, ParamValue::Int(v)) => ParamValue::Int((*v).clamp(*lo, *hi)),
        (ParamSpec::Int { lo, hi, .. }, ParamValue::Real(v)) => {
            ParamValue::Int((v.round() as i64).clamp(*lo, *hi))
        }
        _ => spec.default_value(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn space() -> ParamSpace {
        ParamSpace::new(vec![
            ParamSpec::Real { name: "cost".into(), lo: 0.01, hi: 100.0, log: true },
            ParamSpec::Int { name: "k".into(), lo: 1, hi: 50, log: true },
            ParamSpec::Cat { name: "kernel".into(), choices: vec!["linear".into(), "rbf".into()] },
        ])
    }

    #[test]
    fn counts_match() {
        let s = space();
        assert_eq!(s.n_categorical(), 1);
        assert_eq!(s.n_numeric(), 2);
        assert_eq!(s.n_params(), 3);
    }

    #[test]
    fn samples_in_domain() {
        let s = space();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let c = s.sample(&mut rng);
            assert!(s.validates(&c), "{c}");
        }
    }

    #[test]
    fn default_config_in_domain() {
        let s = space();
        assert!(s.validates(&s.default_config()));
        // Log-scale default is the geometric mean.
        let cost = s.default_config().f64_or("cost", 0.0);
        assert!((cost - 1.0).abs() < 1e-9, "geometric mean of [0.01, 100] is 1, got {cost}");
    }

    #[test]
    fn neighbors_stay_in_domain_and_differ() {
        let s = space();
        let mut rng = StdRng::seed_from_u64(2);
        let base = s.default_config();
        let mut any_diff = false;
        for _ in 0..100 {
            let n = s.neighbor(&base, 0.5, &mut rng);
            assert!(s.validates(&n), "{n}");
            if n != base {
                any_diff = true;
            }
        }
        assert!(any_diff);
    }

    #[test]
    fn encode_is_unit_box() {
        let s = space();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let c = s.sample(&mut rng);
            for (i, v) in s.encode(&c).iter().enumerate() {
                assert!((-1e-9..=1.0 + 1e-9).contains(v), "param {i} encoded to {v}");
            }
        }
    }

    #[test]
    fn repair_fills_and_clamps() {
        let s = space();
        let broken = ParamConfig::default()
            .with("cost", ParamValue::Real(1e9))
            .with("kernel", ParamValue::Cat("bogus".into()));
        let fixed = s.repair(&broken);
        assert!(s.validates(&fixed));
        assert_eq!(fixed.f64_or("cost", 0.0), 100.0);
        assert_eq!(fixed.str_or("kernel", ""), "linear"); // replaced by default
        assert!(fixed.get("k").is_some()); // filled in
    }

    #[test]
    fn config_accessors() {
        let c = ParamConfig::default()
            .with("a", ParamValue::Real(2.5))
            .with("b", ParamValue::Int(7))
            .with("c", ParamValue::Cat("x".into()));
        assert_eq!(c.f64_or("a", 0.0), 2.5);
        assert_eq!(c.i64_or("b", 0), 7);
        assert_eq!(c.str_or("c", ""), "x");
        assert_eq!(c.f64_or("missing", 9.0), 9.0);
        assert_eq!(c.summary(), "a=2.500000, b=7, c=x");
    }

    #[test]
    fn serde_roundtrip() {
        let s = space();
        let mut rng = StdRng::seed_from_u64(4);
        let c = s.sample(&mut rng);
        let json = serde_json::to_string(&c).unwrap();
        let back: ParamConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    #[should_panic(expected = "used as numeric")]
    fn cat_as_f64_panics() {
        ParamValue::Cat("x".into()).as_f64();
    }
}
