//! PLS-DA — partial least squares discriminant analysis (paper: caret;
//! 1 categorical + 1 numeric parameter).
//!
//! PLS2 components are extracted with NIPALS against the one-hot class
//! indicator matrix; prediction regresses indicators on the scores and maps
//! them to probabilities via `prob_method` (`softmax`, caret's default, or
//! `bayes`, which normalises the clipped indicator estimates).

use super::encode::DenseEncoder;
use crate::api::{check_fit_preconditions, normalize_scores, Classifier, ClassifierError, TrainedModel};
use crate::params::ParamConfig;
use smartml_data::Dataset;
use smartml_linalg::{kernels, vecops, Matrix};

/// A configured PLS-DA model.
pub struct Plsda {
    /// Probability mapping: `true` = softmax, `false` = Bayes normalisation.
    pub softmax: bool,
    /// Number of PLS components.
    pub ncomp: usize,
}

impl Plsda {
    /// Builds from a [`ParamConfig`] (`prob_method`, `ncomp`).
    pub fn from_config(config: &ParamConfig) -> Self {
        Plsda {
            softmax: config.str_or("prob_method", "softmax") == "softmax",
            ncomp: config.i64_or("ncomp", 3).clamp(1, 50) as usize,
        }
    }
}

struct TrainedPlsda {
    encoder: DenseEncoder,
    /// `d x k` X-weights (already composed for direct projection).
    projection: Matrix,
    /// `k x c` regression from scores to class indicators.
    coef: Matrix,
    /// Indicator intercepts (class means).
    intercept: Vec<f64>,
    softmax: bool,
    n_classes: usize,
}

impl Classifier for Plsda {
    fn name(&self) -> &'static str {
        "PLSDA"
    }

    fn fit(&self, data: &Dataset, rows: &[usize]) -> Result<Box<dyn TrainedModel>, ClassifierError> {
        let n_classes = check_fit_preconditions("PLSDA", data, rows, 4)?;
        let (encoder, x0) = DenseEncoder::fit(data, rows, true);
        let labels = data.labels_for(rows);
        let (n, d) = x0.shape();
        let ncomp = self.ncomp.min(d).min(n.saturating_sub(1)).max(1);
        // Centered one-hot indicator matrix Y.
        let mut intercept = vec![0.0; n_classes];
        for &l in &labels {
            intercept[l as usize] += 1.0 / n as f64;
        }
        let mut y = Matrix::zeros(n, n_classes);
        for (r, &l) in labels.iter().enumerate() {
            for c in 0..n_classes {
                y[(r, c)] = if c == l as usize { 1.0 } else { 0.0 } - intercept[c];
            }
        }
        let mut x = x0.clone();
        // NIPALS PLS2.
        let mut weights = Matrix::zeros(d, ncomp); // W
        let mut loadings = Matrix::zeros(d, ncomp); // P
        let mut scores_all = Matrix::zeros(n, ncomp); // T
        let mut u: Vec<f64> = Vec::with_capacity(n);
        for comp in 0..ncomp {
            // u = first Y column with variance (or the dominant one).
            y.col_into(0, &mut u);
            if vecops::variance(&u) < 1e-12 {
                for c in 1..n_classes {
                    y.col_into(c, &mut u);
                    if vecops::variance(&u) >= 1e-12 {
                        break;
                    }
                }
            }
            // Transposed products (Xᵀu, Yᵀt, Xᵀt) accumulate row-AXPYs over
            // contiguous rows instead of striding columns; per-coordinate
            // accumulation order (ascending r) matches the column walks they
            // replace.
            let mut w = vec![0.0; d];
            let mut t = vec![0.0; n];
            let mut q = vec![0.0; n_classes];
            for _ in 0..100 {
                // w = Xᵀu / ‖Xᵀu‖
                w.fill(0.0);
                for r in 0..n {
                    kernels::axpy(&mut w, u[r], x.row(r));
                }
                let wn = vecops::norm(&w);
                if wn < 1e-12 {
                    break;
                }
                for wv in &mut w {
                    *wv /= wn;
                }
                // t = Xw
                for (r, tv) in t.iter_mut().enumerate() {
                    *tv = vecops::dot(x.row(r), &w);
                }
                let tt = vecops::dot(&t, &t).max(1e-300);
                // q = Yᵀt / tᵀt
                q.fill(0.0);
                for r in 0..n {
                    kernels::axpy(&mut q, t[r], y.row(r));
                }
                for qv in &mut q {
                    *qv /= tt;
                }
                // u_new = Yq / qᵀq
                let qq = vecops::dot(&q, &q).max(1e-300);
                let u_new: Vec<f64> = (0..n).map(|r| vecops::dot(y.row(r), &q) / qq).collect();
                let delta = vecops::euclidean_distance(&u, &u_new);
                u = u_new;
                if delta < 1e-10 {
                    break;
                }
            }
            let tt = vecops::dot(&t, &t).max(1e-300);
            // p = Xᵀt / tᵀt; deflate X with per-row AXPYs (`x + (-s)` is
            // IEEE-identical to `x - s`).
            let mut p = vec![0.0; d];
            for r in 0..n {
                kernels::axpy(&mut p, t[r], x.row(r));
            }
            for pv in &mut p {
                *pv /= tt;
            }
            for r in 0..n {
                kernels::axpy(x.row_mut(r), -t[r], &p);
            }
            for j in 0..d {
                weights[(j, comp)] = w[j];
                loadings[(j, comp)] = p[j];
            }
            for r in 0..n {
                scores_all[(r, comp)] = t[r];
            }
        }
        // Shape errors surface as trial-level numerical failures instead of
        // panicking mid-pipeline (see `Matrix::try_matmul`).
        let mm = |a: &Matrix, b: &Matrix| {
            a.try_matmul(b).map_err(|e| ClassifierError::Numerical {
                algorithm: "PLSDA",
                detail: e.to_string(),
            })
        };
        // Direct projection R = W (PᵀW)⁻¹ so scores = X·R for new data.
        let ptw = mm(&loadings.transpose(), &weights)?;
        let r_mat = match invert_small(&ptw) {
            Some(inv) => mm(&weights, &inv)?,
            None => weights.clone(), // near-singular: raw weights still project
        };
        // Regress centered indicators on scores: coef = (TᵀT)⁻¹ TᵀY.
        let ttt = mm(&scores_all.transpose(), &scores_all)?;
        let tty = mm(&scores_all.transpose(), &y)?;
        let coef = match invert_small(&ttt) {
            Some(inv) => mm(&inv, &tty)?,
            None => {
                return Err(ClassifierError::Numerical {
                    algorithm: "PLSDA",
                    detail: "score covariance is singular".into(),
                })
            }
        };
        Ok(Box::new(TrainedPlsda {
            encoder,
            projection: r_mat,
            coef,
            intercept,
            softmax: self.softmax,
            n_classes,
        }))
    }
}

/// Inverts a small square matrix via LU solves (None when singular).
fn invert_small(m: &Matrix) -> Option<Matrix> {
    let n = m.rows();
    let mut inv = Matrix::zeros(n, n);
    for c in 0..n {
        let mut e = vec![0.0; n];
        e[c] = 1.0;
        let col = smartml_linalg::solve(m, &e).ok()?;
        for r in 0..n {
            inv[(r, c)] = col[r];
        }
    }
    Some(inv)
}

impl TrainedModel for TrainedPlsda {
    fn predict_proba(&self, data: &Dataset, rows: &[usize]) -> Vec<Vec<f64>> {
        let x = self.encoder.encode(data, rows);
        let scores = x.matmul(&self.projection);
        let estimates = scores.matmul(&self.coef);
        (0..estimates.rows())
            .map(|r| {
                let mut vals: Vec<f64> = (0..self.n_classes)
                    .map(|c| estimates[(r, c)] + self.intercept[c])
                    .collect();
                if self.softmax {
                    // Sharpen indicator estimates into probabilities.
                    for v in &mut vals {
                        *v *= 4.0;
                    }
                    vecops::softmax_inplace(&mut vals);
                    vals
                } else {
                    normalize_scores(vals.into_iter().map(|v| v.max(0.0)).collect())
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartml_data::accuracy;
    use smartml_data::synth::{gaussian_blobs, prototype_noise};

    fn holdout(clf: &dyn Classifier, d: &Dataset) -> f64 {
        let (train, test): (Vec<usize>, Vec<usize>) = (0..d.n_rows()).partition(|i| i % 2 == 0);
        let model = clf.fit(d, &train).unwrap();
        accuracy(&d.labels_for(&test), &model.predict(d, &test))
    }

    #[test]
    fn learns_blobs() {
        let d = gaussian_blobs("b", 200, 4, 2, 0.8, 1);
        let pls = Plsda { softmax: true, ncomp: 2 };
        assert!(holdout(&pls, &d) > 0.9);
    }

    #[test]
    fn high_dimensional_prototypes() {
        // PLS thrives when d is large relative to n.
        let d = prototype_noise("p", 120, 30, 3, 1.0, 2);
        let pls = Plsda { softmax: true, ncomp: 4 };
        let acc = holdout(&pls, &d);
        assert!(acc > 0.7, "acc {acc}");
    }

    #[test]
    fn both_prob_methods_valid() {
        let d = gaussian_blobs("b", 100, 3, 3, 1.0, 3);
        let rows = d.all_rows();
        for softmax in [true, false] {
            let model = Plsda { softmax, ncomp: 2 }.fit(&d, &rows).unwrap();
            for p in model.predict_proba(&d, &rows) {
                assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9, "{p:?}");
                assert!(p.iter().all(|&v| v >= 0.0));
            }
        }
    }

    #[test]
    fn ncomp_clamped_to_dimension() {
        let d = gaussian_blobs("b", 60, 2, 2, 1.0, 4);
        let rows = d.all_rows();
        let model = Plsda { softmax: true, ncomp: 50 }.fit(&d, &rows);
        assert!(model.is_ok());
    }

    #[test]
    fn more_components_do_not_hurt_much() {
        let d = gaussian_blobs("b", 150, 5, 2, 1.0, 5);
        let a1 = holdout(&Plsda { softmax: true, ncomp: 1 }, &d);
        let a4 = holdout(&Plsda { softmax: true, ncomp: 4 }, &d);
        assert!(a4 >= a1 - 0.1, "ncomp=1 {a1} vs ncomp=4 {a4}");
    }
}
