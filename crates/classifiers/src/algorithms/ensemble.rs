//! Bootstrap-ensemble classifiers: Bagging (ipred) and RandomForest
//! (randomForest).

use crate::api::{check_fit_preconditions, Classifier, ClassifierError, TrainedModel};
use crate::common::tree::{DecisionTree, Pruning, SplitCriterion, TreeConfig};
use crate::params::ParamConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use smartml_data::Dataset;

/// Bagging — bootstrap-aggregated CART trees.
/// Paper space: 0 categorical + 5 numeric
/// (`nbagg`, `maxdepth`, `minsplit`, `minbucket`, `cp`).
pub struct BaggingClassifier {
    /// Number of bootstrap trees.
    pub nbagg: usize,
    /// Per-tree maximum depth.
    pub maxdepth: usize,
    /// Per-tree minimum split size.
    pub minsplit: f64,
    /// Per-tree minimum leaf size.
    pub minbucket: f64,
    /// Per-tree complexity parameter.
    pub cp: f64,
}

impl BaggingClassifier {
    /// Builds from a [`ParamConfig`].
    pub fn from_config(config: &ParamConfig) -> Self {
        BaggingClassifier {
            nbagg: config.i64_or("nbagg", 25).clamp(1, 500) as usize,
            maxdepth: config.i64_or("maxdepth", 30).clamp(1, 40) as usize,
            minsplit: config.i64_or("minsplit", 2).max(2) as f64,
            minbucket: config.i64_or("minbucket", 1).max(1) as f64,
            cp: config.f64_or("cp", 0.01).max(0.0),
        }
    }
}

/// RandomForest — bagging + per-split feature subsampling.
/// Paper space: 0 categorical + 3 numeric (`ntree`, `mtry`, `nodesize`).
pub struct RandomForest {
    /// Number of trees.
    pub ntree: usize,
    /// Features sampled per split (clamped to the feature count at fit).
    pub mtry: usize,
    /// Minimum leaf size.
    pub nodesize: f64,
}

impl RandomForest {
    /// Builds from a [`ParamConfig`].
    pub fn from_config(config: &ParamConfig) -> Self {
        RandomForest {
            ntree: config.i64_or("ntree", 100).clamp(1, 1000) as usize,
            mtry: config.i64_or("mtry", 0).max(0) as usize, // 0 = sqrt(d) at fit
            nodesize: config.i64_or("nodesize", 1).max(1) as f64,
        }
    }
}

/// Shared trained form: average of per-tree probability estimates.
struct TreeEnsemble {
    trees: Vec<DecisionTree>,
    n_classes: usize,
}

impl TrainedModel for TreeEnsemble {
    fn predict_proba(&self, data: &Dataset, rows: &[usize]) -> Vec<Vec<f64>> {
        rows.iter()
            .map(|&r| {
                let mut avg = vec![0.0; self.n_classes];
                for tree in &self.trees {
                    for (a, p) in avg.iter_mut().zip(tree.row_proba(data, r)) {
                        *a += p;
                    }
                }
                let scale = 1.0 / self.trees.len() as f64;
                for a in &mut avg {
                    *a *= scale;
                }
                avg
            })
            .collect()
    }
}

/// Draws a bootstrap sample of `rows` (with replacement, same size).
fn bootstrap(rows: &[usize], rng: &mut StdRng) -> Vec<usize> {
    (0..rows.len()).map(|_| rows[rng.gen_range(0..rows.len())]).collect()
}

fn fit_ensemble(
    data: &Dataset,
    rows: &[usize],
    n_trees: usize,
    make_config: impl Fn(u64) -> TreeConfig,
    seed: u64,
) -> TreeEnsemble {
    let mut rng = StdRng::seed_from_u64(seed);
    let trees = (0..n_trees)
        .map(|t| {
            let sample = bootstrap(rows, &mut rng);
            DecisionTree::fit(data, &sample, &make_config(t as u64))
        })
        .collect();
    TreeEnsemble { trees, n_classes: data.n_classes() }
}

impl Classifier for BaggingClassifier {
    fn name(&self) -> &'static str {
        "Bagging"
    }

    fn fit(&self, data: &Dataset, rows: &[usize]) -> Result<Box<dyn TrainedModel>, ClassifierError> {
        check_fit_preconditions("Bagging", data, rows, 2)?;
        let ensemble = fit_ensemble(
            data,
            rows,
            self.nbagg,
            |t| TreeConfig {
                criterion: SplitCriterion::Gini,
                max_depth: self.maxdepth,
                min_split: self.minsplit,
                min_leaf: self.minbucket,
                cp: self.cp,
                mtry: None,
                seed: t,
                pruning: Pruning::None,
            },
            0xBA66,
        );
        Ok(Box::new(ensemble))
    }
}

impl Classifier for RandomForest {
    fn name(&self) -> &'static str {
        "RandomForest"
    }

    fn fit(&self, data: &Dataset, rows: &[usize]) -> Result<Box<dyn TrainedModel>, ClassifierError> {
        check_fit_preconditions("RandomForest", data, rows, 2)?;
        let d = data.n_features();
        let mtry = if self.mtry == 0 {
            ((d as f64).sqrt().round() as usize).clamp(1, d)
        } else {
            self.mtry.clamp(1, d)
        };
        let ensemble = fit_ensemble(
            data,
            rows,
            self.ntree,
            |t| TreeConfig {
                criterion: SplitCriterion::Gini,
                max_depth: 40,
                min_split: 2.0 * self.nodesize,
                min_leaf: self.nodesize,
                cp: 0.0,
                mtry: Some(mtry),
                seed: 0xF0 ^ t,
                pruning: Pruning::None,
            },
            0xF04E57,
        );
        Ok(Box::new(ensemble))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartml_data::accuracy;
    use smartml_data::synth::{gaussian_blobs, xor_parity};

    fn holdout(clf: &dyn Classifier, d: &Dataset) -> f64 {
        let (train, test): (Vec<usize>, Vec<usize>) = (0..d.n_rows()).partition(|i| i % 2 == 0);
        let model = clf.fit(d, &train).unwrap();
        accuracy(&d.labels_for(&test), &model.predict(d, &test))
    }

    #[test]
    fn bagging_learns_blobs() {
        let d = gaussian_blobs("b", 200, 4, 3, 1.0, 1);
        let bag = BaggingClassifier::from_config(&ParamConfig::default());
        assert!(holdout(&bag, &d) > 0.85);
    }

    #[test]
    fn forest_learns_noisy_xor() {
        let d = xor_parity("x", 500, 2, 6, 0.05, 2);
        let rf = RandomForest { ntree: 60, mtry: 3, nodesize: 1.0 };
        let acc = holdout(&rf, &d);
        assert!(acc > 0.7, "acc {acc}");
    }

    #[test]
    fn forest_beats_or_matches_single_tree_on_noise() {
        let d = xor_parity("x", 400, 2, 15, 0.1, 3);
        let rf = RandomForest { ntree: 50, mtry: 0, nodesize: 1.0 };
        let single = crate::algorithms::RpartClassifier::from_config(&ParamConfig::default());
        let a_rf = holdout(&rf, &d);
        let a_tree = holdout(&single, &d);
        assert!(a_rf + 0.05 >= a_tree, "forest {a_rf} vs tree {a_tree}");
    }

    #[test]
    fn deterministic_across_fits() {
        let d = gaussian_blobs("b", 100, 3, 2, 1.0, 4);
        let rows = d.all_rows();
        let rf = RandomForest { ntree: 10, mtry: 2, nodesize: 1.0 };
        let m1 = rf.fit(&d, &rows).unwrap();
        let m2 = rf.fit(&d, &rows).unwrap();
        assert_eq!(m1.predict(&d, &rows), m2.predict(&d, &rows));
    }

    #[test]
    fn probabilities_valid() {
        let d = gaussian_blobs("b", 80, 2, 3, 1.5, 5);
        let rows = d.all_rows();
        let model = BaggingClassifier::from_config(&ParamConfig::default()).fit(&d, &rows).unwrap();
        for p in model.predict_proba(&d, &rows) {
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn mtry_zero_means_sqrt_d() {
        let rf = RandomForest::from_config(&ParamConfig::default());
        assert_eq!(rf.mtry, 0); // resolved at fit time
    }
}
