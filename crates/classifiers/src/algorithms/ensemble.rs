//! Bootstrap-ensemble classifiers: Bagging (ipred) and RandomForest
//! (randomForest).

use crate::api::{check_fit_preconditions, Classifier, ClassifierError, TrainedModel};
use crate::common::split::{BinnedColumns, RankedBase};
use crate::common::tree::{DecisionTree, Pruning, SplitCriterion, TreeConfig};
use crate::params::ParamConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use smartml_data::Dataset;

/// Bagging — bootstrap-aggregated CART trees.
/// Paper space: 0 categorical + 5 numeric
/// (`nbagg`, `maxdepth`, `minsplit`, `minbucket`, `cp`).
pub struct BaggingClassifier {
    /// Number of bootstrap trees.
    pub nbagg: usize,
    /// Per-tree maximum depth.
    pub maxdepth: usize,
    /// Per-tree minimum split size.
    pub minsplit: f64,
    /// Per-tree minimum leaf size.
    pub minbucket: f64,
    /// Per-tree complexity parameter.
    pub cp: f64,
    /// Histogram bins for numeric splits, shared by every tree in the
    /// bag (0 = exact presorted kernel). Deployment knob, not part of
    /// the paper's tuning space.
    pub max_bins: usize,
}

impl BaggingClassifier {
    /// Builds from a [`ParamConfig`].
    pub fn from_config(config: &ParamConfig) -> Self {
        BaggingClassifier {
            nbagg: config.i64_or("nbagg", 25).clamp(1, 500) as usize,
            maxdepth: config.i64_or("maxdepth", 30).clamp(1, 40) as usize,
            minsplit: config.i64_or("minsplit", 2).max(2) as f64,
            minbucket: config.i64_or("minbucket", 1).max(1) as f64,
            cp: config.f64_or("cp", 0.01).max(0.0),
            max_bins: config.i64_or("max_bins", 0).clamp(0, 255) as usize,
        }
    }
}

/// RandomForest — bagging + per-split feature subsampling.
/// Paper space: 0 categorical + 3 numeric (`ntree`, `mtry`, `nodesize`).
pub struct RandomForest {
    /// Number of trees.
    pub ntree: usize,
    /// Features sampled per split (clamped to the feature count at fit).
    pub mtry: usize,
    /// Minimum leaf size.
    pub nodesize: f64,
    /// Histogram bins for numeric splits, shared by the whole forest
    /// (0 = exact presorted kernel). Deployment knob, not part of the
    /// paper's tuning space.
    pub max_bins: usize,
}

impl RandomForest {
    /// Builds from a [`ParamConfig`].
    pub fn from_config(config: &ParamConfig) -> Self {
        RandomForest {
            ntree: config.i64_or("ntree", 100).clamp(1, 1000) as usize,
            mtry: config.i64_or("mtry", 0).max(0) as usize, // 0 = sqrt(d) at fit
            nodesize: config.i64_or("nodesize", 1).max(1) as f64,
            max_bins: config.i64_or("max_bins", 0).clamp(0, 255) as usize,
        }
    }
}

/// Shared trained form: average of per-tree probability estimates.
struct TreeEnsemble {
    trees: Vec<DecisionTree>,
    n_classes: usize,
}

impl TrainedModel for TreeEnsemble {
    fn predict_proba(&self, data: &Dataset, rows: &[usize]) -> Vec<Vec<f64>> {
        rows.iter()
            .map(|&r| {
                let mut avg = vec![0.0; self.n_classes];
                for tree in &self.trees {
                    for (a, p) in avg.iter_mut().zip(tree.row_proba(data, r)) {
                        *a += p;
                    }
                }
                let scale = 1.0 / self.trees.len() as f64;
                for a in &mut avg {
                    *a *= scale;
                }
                avg
            })
            .collect()
    }
}

/// Bootstrap picks: indices into `rows`, n draws with replacement. Kept as
/// indices so the shared [`RankedBase`] can serve each resample's value
/// ranks (or sorted columns) without re-sorting anything.
fn bootstrap_picks(n: usize, rng: &mut StdRng) -> Vec<u32> {
    (0..n).map(|_| rng.gen_range(0..n) as u32).collect()
}

fn fit_ensemble(
    data: &Dataset,
    rows: &[usize],
    n_trees: usize,
    max_bins: usize,
    make_config: impl Fn(u64) -> TreeConfig,
    seed: u64,
) -> TreeEnsemble {
    let mut rng = StdRng::seed_from_u64(seed);
    // Work shared across the whole ensemble instead of rebuilt per tree:
    // unit weights, the numeric quantisation (binned path), and the value
    // ranks every tree's exact kernel reads (rank-radix when the config
    // subsamples features, counting-sorted columns when it scores all of
    // them).
    let weights = vec![1.0; data.n_rows()];
    let bins = (max_bins >= 2).then(|| BinnedColumns::fit(data, rows, max_bins));
    let base = (max_bins < 2).then(|| RankedBase::build(data, rows));
    let d = data.n_features().max(1);
    let mut trees = Vec::with_capacity(n_trees);
    for t in 0..n_trees {
        // Cooperative cancellation: an expired trial keeps the partial
        // forest (at least one tree) instead of running out the clock —
        // the trial guard still classifies it as timed out.
        if t > 0 && smartml_runtime::faults::trial_should_stop() {
            break;
        }
        let picks = bootstrap_picks(rows.len(), &mut rng);
        let sample: Vec<usize> = picks.iter().map(|&p| rows[p as usize]).collect();
        let config = make_config(t as u64);
        trees.push(match &bins {
            Some(b) => DecisionTree::fit_weighted_binned(data, &sample, &weights, &config, b),
            None => {
                let base = base.as_ref().expect("exact path has a ranked base");
                if config.mtry.unwrap_or(d).clamp(1, d) < d {
                    DecisionTree::fit_weighted_ranked(data, &sample, &weights, &config, base, &picks)
                } else {
                    let sorted = base.resample(&picks);
                    DecisionTree::fit_weighted_with_sorted(data, &sample, &weights, &config, sorted)
                }
            }
        });
    }
    TreeEnsemble { trees, n_classes: data.n_classes() }
}

impl Classifier for BaggingClassifier {
    fn name(&self) -> &'static str {
        "Bagging"
    }

    fn fit(&self, data: &Dataset, rows: &[usize]) -> Result<Box<dyn TrainedModel>, ClassifierError> {
        check_fit_preconditions("Bagging", data, rows, 2)?;
        let ensemble = fit_ensemble(
            data,
            rows,
            self.nbagg,
            self.max_bins,
            |t| TreeConfig {
                criterion: SplitCriterion::Gini,
                max_depth: self.maxdepth,
                min_split: self.minsplit,
                min_leaf: self.minbucket,
                cp: self.cp,
                mtry: None,
                seed: t,
                pruning: Pruning::None,
                max_bins: 0,
            },
            0xBA66,
        );
        Ok(Box::new(ensemble))
    }
}

impl Classifier for RandomForest {
    fn name(&self) -> &'static str {
        "RandomForest"
    }

    fn fit(&self, data: &Dataset, rows: &[usize]) -> Result<Box<dyn TrainedModel>, ClassifierError> {
        check_fit_preconditions("RandomForest", data, rows, 2)?;
        let d = data.n_features();
        let mtry = if self.mtry == 0 {
            ((d as f64).sqrt().round() as usize).clamp(1, d)
        } else {
            self.mtry.clamp(1, d)
        };
        let ensemble = fit_ensemble(
            data,
            rows,
            self.ntree,
            self.max_bins,
            |t| TreeConfig {
                criterion: SplitCriterion::Gini,
                max_depth: 40,
                min_split: 2.0 * self.nodesize,
                min_leaf: self.nodesize,
                cp: 0.0,
                mtry: Some(mtry),
                seed: 0xF0 ^ t,
                pruning: Pruning::None,
                max_bins: 0,
            },
            0xF04E57,
        );
        Ok(Box::new(ensemble))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartml_data::accuracy;
    use smartml_data::synth::{gaussian_blobs, xor_parity};

    fn holdout(clf: &dyn Classifier, d: &Dataset) -> f64 {
        let (train, test): (Vec<usize>, Vec<usize>) = (0..d.n_rows()).partition(|i| i % 2 == 0);
        let model = clf.fit(d, &train).unwrap();
        accuracy(&d.labels_for(&test), &model.predict(d, &test))
    }

    #[test]
    fn bagging_learns_blobs() {
        let d = gaussian_blobs("b", 200, 4, 3, 1.0, 1);
        let bag = BaggingClassifier::from_config(&ParamConfig::default());
        assert!(holdout(&bag, &d) > 0.85);
    }

    #[test]
    fn forest_learns_noisy_xor() {
        let d = xor_parity("x", 500, 2, 6, 0.05, 2);
        let rf = RandomForest { ntree: 60, mtry: 3, nodesize: 1.0, max_bins: 0 };
        let acc = holdout(&rf, &d);
        assert!(acc > 0.7, "acc {acc}");
    }

    #[test]
    fn forest_beats_or_matches_single_tree_on_noise() {
        let d = xor_parity("x", 400, 2, 15, 0.1, 3);
        let rf = RandomForest { ntree: 50, mtry: 0, nodesize: 1.0, max_bins: 0 };
        let single = crate::algorithms::RpartClassifier::from_config(&ParamConfig::default());
        let a_rf = holdout(&rf, &d);
        let a_tree = holdout(&single, &d);
        assert!(a_rf + 0.05 >= a_tree, "forest {a_rf} vs tree {a_tree}");
    }

    #[test]
    fn deterministic_across_fits() {
        let d = gaussian_blobs("b", 100, 3, 2, 1.0, 4);
        let rows = d.all_rows();
        let rf = RandomForest { ntree: 10, mtry: 2, nodesize: 1.0, max_bins: 0 };
        let m1 = rf.fit(&d, &rows).unwrap();
        let m2 = rf.fit(&d, &rows).unwrap();
        assert_eq!(m1.predict(&d, &rows), m2.predict(&d, &rows));
    }

    #[test]
    fn probabilities_valid() {
        let d = gaussian_blobs("b", 80, 2, 3, 1.5, 5);
        let rows = d.all_rows();
        let model = BaggingClassifier::from_config(&ParamConfig::default()).fit(&d, &rows).unwrap();
        for p in model.predict_proba(&d, &rows) {
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn mtry_zero_means_sqrt_d() {
        let rf = RandomForest::from_config(&ParamConfig::default());
        assert_eq!(rf.mtry, 0); // resolved at fit time
    }

    #[test]
    fn forest_matches_naive_oracle_exactly() {
        // The exact presorted kernel must reproduce the retained naive
        // oracle bit-for-bit through a whole bootstrap forest.
        use crate::common::tree::oracle;
        let d = gaussian_blobs("b", 300, 8, 3, 1.2, 21);
        let rows = d.all_rows();
        let rf = RandomForest { ntree: 12, mtry: 3, nodesize: 1.0, max_bins: 0 };
        let model = rf.fit(&d, &rows).unwrap();
        // Replay fit_ensemble's bootstrap stream with oracle-grown trees.
        let mut rng = StdRng::seed_from_u64(0xF04E57);
        let trees: Vec<DecisionTree> = (0..12)
            .map(|t| {
                let sample: Vec<usize> =
                    bootstrap_picks(rows.len(), &mut rng).iter().map(|&p| rows[p as usize]).collect();
                oracle::fit(
                    &d,
                    &sample,
                    &TreeConfig {
                        criterion: SplitCriterion::Gini,
                        max_depth: 40,
                        min_split: 2.0,
                        min_leaf: 1.0,
                        cp: 0.0,
                        mtry: Some(3),
                        seed: 0xF0 ^ t,
                        pruning: Pruning::None,
                        max_bins: 0,
                    },
                )
            })
            .collect();
        let reference = TreeEnsemble { trees, n_classes: d.n_classes() };
        assert_eq!(model.predict_proba(&d, &rows), reference.predict_proba(&d, &rows));
    }

    #[test]
    fn binned_quantisation_identical_across_pool_widths() {
        use crate::common::split::BinnedColumns;
        use smartml_runtime::Pool;
        let d = gaussian_blobs("b", 400, 6, 3, 1.0, 22);
        let rows = d.all_rows();
        let b1 = BinnedColumns::fit_with(&d, &rows, 32, Pool::serial());
        for width in [1, 8] {
            let bw = BinnedColumns::fit_with(&d, &rows, 32, Pool::new(width));
            for (c1, cw) in b1.cols.iter().zip(&bw.cols) {
                let (c1, cw) = (c1.as_ref().unwrap(), cw.as_ref().unwrap());
                assert_eq!(c1.edges, cw.edges, "width {width}");
                assert_eq!(c1.codes, cw.codes, "width {width}");
            }
        }
    }

    #[test]
    fn binned_forest_deterministic_and_learns() {
        let d = gaussian_blobs("b", 300, 4, 3, 1.0, 23);
        let rows = d.all_rows();
        let rf = RandomForest { ntree: 20, mtry: 2, nodesize: 1.0, max_bins: 32 };
        let m1 = rf.fit(&d, &rows).unwrap();
        let m2 = rf.fit(&d, &rows).unwrap();
        assert_eq!(m1.predict_proba(&d, &rows), m2.predict_proba(&d, &rows));
        // Exact-path RF scores ~0.82 on this split; binned must stay in family.
        assert!(holdout(&rf, &d) > 0.8);
    }
}
