//! PART rule learner (paper: RWeka; 1 categorical + 2 numeric parameters).
//!
//! PART builds a decision list by repeatedly growing a (partial) C4.5 tree
//! on the not-yet-covered instances, extracting the best leaf as a rule, and
//! removing the instances that rule covers. This implementation grows a full
//! pruned C4.5 tree per iteration and extracts the highest-coverage leaf —
//! the same inductive bias as Frank & Witten's partial-tree shortcut, traded
//! for simplicity (documented in `DESIGN.md`).

use crate::api::{check_fit_preconditions, Classifier, ClassifierError, TrainedModel};
use crate::common::tree::{DecisionTree, Pruning, Rule, SplitCriterion, TreeConfig};
use crate::params::ParamConfig;
use smartml_data::Dataset;

/// The PART decision-list learner.
pub struct PartClassifier {
    /// Apply C4.5 pruning to each iteration's tree.
    pub pruned: bool,
    /// Pruning confidence factor.
    pub confidence: f64,
    /// Minimum instances per leaf.
    pub min_obj: f64,
}

impl PartClassifier {
    /// Builds from a [`ParamConfig`].
    pub fn from_config(config: &ParamConfig) -> Self {
        PartClassifier {
            pruned: config.str_or("pruned", "yes") == "yes",
            confidence: config.f64_or("confidence", 0.25).clamp(0.001, 0.5),
            min_obj: config.i64_or("min_obj", 2).max(1) as f64,
        }
    }
}

struct DecisionList {
    rules: Vec<Rule>,
    /// Fallback distribution when no rule matches.
    default_counts: Vec<f64>,
    n_classes: usize,
}

impl TrainedModel for DecisionList {
    fn predict_proba(&self, data: &Dataset, rows: &[usize]) -> Vec<Vec<f64>> {
        rows.iter()
            .map(|&r| {
                let counts = self
                    .rules
                    .iter()
                    .find(|rule| rule.matches(data, r))
                    .map(|rule| rule.counts.as_slice())
                    .unwrap_or(&self.default_counts);
                let total: f64 = counts.iter().sum();
                if total > 1e-300 {
                    counts.iter().map(|c| c / total).collect()
                } else {
                    vec![1.0 / self.n_classes as f64; self.n_classes]
                }
            })
            .collect()
    }
}

impl Classifier for PartClassifier {
    fn name(&self) -> &'static str {
        "part"
    }

    fn fit(&self, data: &Dataset, rows: &[usize]) -> Result<Box<dyn TrainedModel>, ClassifierError> {
        let n_classes = check_fit_preconditions("part", data, rows, 2)?;
        let tree_config = TreeConfig {
            criterion: SplitCriterion::GainRatio,
            max_depth: 40,
            min_split: 2.0 * self.min_obj,
            min_leaf: self.min_obj,
            cp: 0.0,
            mtry: None,
            seed: 0,
            pruning: if self.pruned {
                Pruning::Pessimistic { cf: self.confidence }
            } else {
                Pruning::None
            },
            max_bins: 0,
        };
        let mut remaining: Vec<usize> = rows.to_vec();
        let mut rules: Vec<Rule> = Vec::new();
        let max_rules = 64;
        while remaining.len() as f64 >= 2.0 * self.min_obj && rules.len() < max_rules {
            // Stop when a single class remains: the default rule covers it.
            let counts = data.class_counts_for(&remaining);
            if counts.iter().filter(|&&c| c > 0).count() < 2 {
                break;
            }
            let tree = DecisionTree::fit(data, &remaining, &tree_config);
            let extracted = tree.extract_rules();
            // Best leaf = highest coverage (ties: purest).
            let Some(best) = extracted.into_iter().max_by(|a, b| {
                a.coverage()
                    .partial_cmp(&b.coverage())
                    .unwrap()
                    .then(purity(a).partial_cmp(&purity(b)).unwrap())
            }) else {
                break;
            };
            if best.conditions.is_empty() {
                // Root-only tree: nothing left to separate.
                break;
            }
            let before = remaining.len();
            remaining.retain(|&r| !best.matches(data, r));
            rules.push(best);
            if remaining.len() == before {
                break; // rule covered nothing new (shouldn't happen, be safe)
            }
        }
        // Default rule from whatever is left (or the full training set).
        let default_rows = if remaining.is_empty() { rows } else { &remaining };
        let mut default_counts = vec![0.0; n_classes];
        for &r in default_rows {
            default_counts[data.label(r) as usize] += 1.0;
        }
        Ok(Box::new(DecisionList { rules, default_counts, n_classes }))
    }
}

fn purity(rule: &Rule) -> f64 {
    let total = rule.coverage();
    if total <= 0.0 {
        return 0.0;
    }
    rule.counts.iter().copied().fold(0.0, f64::max) / total
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartml_data::accuracy;
    use smartml_data::synth::{categorical_mixture, gaussian_blobs};

    fn holdout(clf: &dyn Classifier, d: &Dataset) -> f64 {
        let (train, test): (Vec<usize>, Vec<usize>) = (0..d.n_rows()).partition(|i| i % 2 == 0);
        let model = clf.fit(d, &train).unwrap();
        accuracy(&d.labels_for(&test), &model.predict(d, &test))
    }

    #[test]
    fn learns_blobs() {
        let d = gaussian_blobs("b", 200, 3, 2, 0.6, 1);
        let part = PartClassifier::from_config(&ParamConfig::default());
        assert!(holdout(&part, &d) > 0.85);
    }

    #[test]
    fn learns_categorical_rules() {
        let d = categorical_mixture("c", 300, 3, 1, 3, 4, 2);
        let part = PartClassifier::from_config(&ParamConfig::default());
        assert!(holdout(&part, &d) > 0.5);
    }

    #[test]
    fn every_row_gets_a_prediction() {
        let d = gaussian_blobs("b", 100, 2, 3, 2.0, 3);
        let rows = d.all_rows();
        let model = PartClassifier::from_config(&ParamConfig::default()).fit(&d, &rows).unwrap();
        let preds = model.predict(&d, &rows);
        assert_eq!(preds.len(), rows.len());
        for p in model.predict_proba(&d, &rows) {
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn min_obj_limits_rule_count() {
        let d = gaussian_blobs("b", 100, 2, 2, 2.5, 4);
        let rows = d.all_rows();
        let strict = PartClassifier { pruned: true, confidence: 0.25, min_obj: 25.0 };
        let model = strict.fit(&d, &rows);
        assert!(model.is_ok());
    }
}
