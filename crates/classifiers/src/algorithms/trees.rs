//! The single-tree and boosted-tree classifiers of Table 3:
//! J48 (C4.5, RWeka), rpart (CART), and c50 (C5.0 = C4.5 + boosting).

use crate::api::{check_fit_preconditions, Classifier, ClassifierError, TrainedModel};
use crate::common::tree::{DecisionTree, Pruning, SplitCriterion, TreeConfig};
use crate::params::ParamConfig;
use smartml_data::Dataset;
use smartml_linalg::vecops;

/// J48 — C4.5: gain-ratio splits, optional pessimistic pruning.
/// Paper space: 1 categorical (`pruned`) + 2 numeric (`confidence`, `min_obj`).
pub struct J48Classifier {
    /// Apply C4.5 pessimistic post-pruning.
    pub pruned: bool,
    /// Pruning confidence factor (WEKA `-C`).
    pub confidence: f64,
    /// Minimum instances per leaf (WEKA `-M`).
    pub min_obj: f64,
}

impl J48Classifier {
    /// Builds from a [`ParamConfig`].
    pub fn from_config(config: &ParamConfig) -> Self {
        J48Classifier {
            pruned: config.str_or("pruned", "yes") == "yes",
            confidence: config.f64_or("confidence", 0.25).clamp(0.001, 0.5),
            min_obj: config.i64_or("min_obj", 2).max(1) as f64,
        }
    }

    pub(crate) fn tree_config(&self, seed: u64) -> TreeConfig {
        TreeConfig {
            criterion: SplitCriterion::GainRatio,
            max_depth: 40,
            min_split: 2.0 * self.min_obj,
            min_leaf: self.min_obj,
            cp: 0.0,
            mtry: None,
            seed,
            pruning: if self.pruned {
                Pruning::Pessimistic { cf: self.confidence }
            } else {
                Pruning::None
            },
            max_bins: 0,
        }
    }
}

struct SingleTree {
    tree: DecisionTree,
}

impl TrainedModel for SingleTree {
    fn predict_proba(&self, data: &Dataset, rows: &[usize]) -> Vec<Vec<f64>> {
        self.tree.predict_proba(data, rows)
    }
}

impl Classifier for J48Classifier {
    fn name(&self) -> &'static str {
        "J48"
    }

    fn fit(&self, data: &Dataset, rows: &[usize]) -> Result<Box<dyn TrainedModel>, ClassifierError> {
        check_fit_preconditions("J48", data, rows, 2)?;
        let tree = DecisionTree::fit(data, rows, &self.tree_config(0));
        Ok(Box::new(SingleTree { tree }))
    }
}

/// rpart — CART: Gini splits with cost-complexity pre-pruning.
/// Paper space: 0 categorical + 4 numeric (`cp`, `minsplit`, `minbucket`,
/// `maxdepth`).
pub struct RpartClassifier {
    /// Complexity parameter: minimum relative impurity decrease per split.
    pub cp: f64,
    /// Minimum node size to attempt a split.
    pub minsplit: f64,
    /// Minimum instances per leaf.
    pub minbucket: f64,
    /// Maximum depth.
    pub maxdepth: usize,
    /// Histogram bins for numeric splits (0 = exact presorted kernel).
    /// Deployment knob, not part of the paper's tuning space.
    pub max_bins: usize,
}

impl RpartClassifier {
    /// Builds from a [`ParamConfig`].
    pub fn from_config(config: &ParamConfig) -> Self {
        RpartClassifier {
            cp: config.f64_or("cp", 0.01).max(0.0),
            minsplit: config.i64_or("minsplit", 20).max(2) as f64,
            minbucket: config.i64_or("minbucket", 7).max(1) as f64,
            maxdepth: config.i64_or("maxdepth", 30).clamp(1, 40) as usize,
            max_bins: config.i64_or("max_bins", 0).clamp(0, 255) as usize,
        }
    }
}

impl Classifier for RpartClassifier {
    fn name(&self) -> &'static str {
        "rpart"
    }

    fn fit(&self, data: &Dataset, rows: &[usize]) -> Result<Box<dyn TrainedModel>, ClassifierError> {
        check_fit_preconditions("rpart", data, rows, 2)?;
        let config = TreeConfig {
            criterion: SplitCriterion::Gini,
            max_depth: self.maxdepth,
            min_split: self.minsplit,
            min_leaf: self.minbucket,
            cp: self.cp,
            mtry: None,
            seed: 0,
            pruning: Pruning::None,
            max_bins: self.max_bins,
        };
        let tree = DecisionTree::fit(data, rows, &config);
        Ok(Box::new(SingleTree { tree }))
    }
}

/// c50 — C5.0: boosted C4.5 trees via multiclass AdaBoost (SAMME).
/// Paper space: 3 categorical (`winnow`, `rules`, `global_pruning`) +
/// 2 numeric (`trials`, `cf`).
///
/// Differences from the commercial C5.0, documented in `DESIGN.md`:
/// `winnow=yes` pre-screens features by mutual information with the label
/// (C5.0's winnowing also removes features pre-tree); `rules=yes` uses
/// depth-limited base trees (C5.0's rulesets flatten trees into rules —
/// behaviourally close to shallow trees under boosting).
pub struct C50Classifier {
    /// Winnow (pre-screen) uninformative features.
    pub winnow: bool,
    /// Rules mode (shallow base learners).
    pub rules: bool,
    /// Apply pessimistic global pruning to base trees.
    pub global_pruning: bool,
    /// Boosting trials.
    pub trials: usize,
    /// Pruning confidence factor.
    pub cf: f64,
}

impl C50Classifier {
    /// Builds from a [`ParamConfig`].
    pub fn from_config(config: &ParamConfig) -> Self {
        C50Classifier {
            winnow: config.str_or("winnow", "no") == "yes",
            rules: config.str_or("rules", "no") == "yes",
            global_pruning: config.str_or("global_pruning", "yes") == "yes",
            trials: config.i64_or("trials", 10).clamp(1, 100) as usize,
            cf: config.f64_or("cf", 0.25).clamp(0.001, 0.5),
        }
    }
}

struct BoostedTrees {
    trees: Vec<(DecisionTree, f64)>,
    n_classes: usize,
}

impl TrainedModel for BoostedTrees {
    fn predict_proba(&self, data: &Dataset, rows: &[usize]) -> Vec<Vec<f64>> {
        rows.iter()
            .map(|&r| {
                let mut scores = vec![0.0; self.n_classes];
                for (tree, alpha) in &self.trees {
                    let p = tree.row_proba(data, r);
                    let winner = vecops::argmax(&p).unwrap_or(0);
                    scores[winner] += alpha;
                }
                crate::api::normalize_scores(scores)
            })
            .collect()
    }
}

impl Classifier for C50Classifier {
    fn name(&self) -> &'static str {
        "c50"
    }

    fn fit(&self, data: &Dataset, rows: &[usize]) -> Result<Box<dyn TrainedModel>, ClassifierError> {
        let n_classes = check_fit_preconditions("c50", data, rows, 4)?;
        // Winnowing: keep features whose MI with the label clears a floor.
        let winnowed = if self.winnow { winnow_features(data, rows) } else { None };
        let working = match &winnowed {
            Some(keep) => data.with_features(
                keep.iter().map(|&i| data.feature(i).clone()).collect(),
            ),
            None => data.clone(),
        };
        let base_depth = if self.rules { 4 } else { 40 };
        // Weights kept in natural units (summing to the row count) so the
        // tree's count-based thresholds and pruning statistics stay valid.
        let mut weights = vec![1.0; data.n_rows()];
        let mut trees = Vec::with_capacity(self.trials);
        let k = n_classes as f64;
        for t in 0..self.trials {
            let config = TreeConfig {
                criterion: SplitCriterion::GainRatio,
                max_depth: base_depth,
                min_split: 4.0,
                min_leaf: 1.0,
                cp: 0.0,
                mtry: None,
                seed: t as u64,
                pruning: if self.global_pruning {
                    Pruning::Pessimistic { cf: self.cf }
                } else {
                    Pruning::None
                },
                max_bins: 0,
            };
            let tree = DecisionTree::fit_weighted(&working, rows, &weights, &config);
            // Weighted training error (SAMME).
            let mut err = 0.0;
            let mut total = 0.0;
            let mut predictions = Vec::with_capacity(rows.len());
            for &r in rows {
                let p = tree.row_proba(&working, r);
                let pred = vecops::argmax(&p).unwrap_or(0) as u32;
                predictions.push(pred);
                total += weights[r];
                if pred != working.label(r) {
                    err += weights[r];
                }
            }
            let err = (err / total.max(1e-300)).clamp(1e-6, 1.0 - 1e-6);
            if err >= 1.0 - 1.0 / k {
                // Worse than chance: stop boosting (keep at least one tree).
                if trees.is_empty() {
                    trees.push((tree, 1.0));
                }
                break;
            }
            let alpha = ((1.0 - err) / err).ln() + (k - 1.0).ln();
            // Reweight misclassified rows up.
            let mut new_total = 0.0;
            for (i, &r) in rows.iter().enumerate() {
                if predictions[i] != working.label(r) {
                    weights[r] *= alpha.exp().min(1e6);
                }
                new_total += weights[r];
            }
            let renorm = rows.len() as f64 / new_total;
            for &r in rows {
                weights[r] *= renorm;
            }
            trees.push((tree, alpha));
            if err < 1e-5 {
                break; // perfect fit: further rounds are no-ops
            }
        }
        Ok(Box::new(C50Model { inner: BoostedTrees { trees, n_classes }, winnowed }))
    }
}

/// c50 wrapper that re-applies winnowing at prediction time.
struct C50Model {
    inner: BoostedTrees,
    winnowed: Option<Vec<usize>>,
}

impl TrainedModel for C50Model {
    fn predict_proba(&self, data: &Dataset, rows: &[usize]) -> Vec<Vec<f64>> {
        match &self.winnowed {
            Some(keep) => {
                let working =
                    data.with_features(keep.iter().map(|&i| data.feature(i).clone()).collect());
                self.inner.predict_proba(&working, rows)
            }
            None => self.inner.predict_proba(data, rows),
        }
    }
}

/// Keeps the upper half of features by label mutual information (at least 1).
fn winnow_features(data: &Dataset, rows: &[usize]) -> Option<Vec<usize>> {
    use smartml_data::Feature;
    let labels: Vec<u32> = rows.iter().map(|&r| data.label(r)).collect();
    let mut scored: Vec<(usize, f64)> = data
        .features()
        .iter()
        .enumerate()
        .map(|(i, feat)| {
            // Coarse MI proxy: correlation of class-mean rank for numerics,
            // level-purity for categoricals.
            let score = match feat {
                Feature::Numeric { values, .. } => {
                    // Skip missing cells pairwise — NaNs would poison the
                    // correlation and the later sort.
                    let mut xs = Vec::with_capacity(rows.len());
                    let mut ys = Vec::with_capacity(rows.len());
                    for (&r, &l) in rows.iter().zip(&labels) {
                        if !values[r].is_nan() {
                            xs.push(values[r]);
                            ys.push(l as f64);
                        }
                    }
                    smartml_linalg::pearson_correlation(&xs, &ys).abs()
                }
                Feature::Categorical { codes, levels, .. } => {
                    let n_levels = levels.len();
                    let mut level_class: Vec<Vec<usize>> =
                        vec![vec![0; data.n_classes()]; n_levels + 1];
                    for (&r, &l) in rows.iter().zip(&labels) {
                        let c = codes[r];
                        let idx = if c == smartml_data::dataset::MISSING_CODE {
                            n_levels
                        } else {
                            c as usize
                        };
                        level_class[idx][l as usize] += 1;
                    }
                    // Mean purity over non-empty levels.
                    let mut purity = 0.0;
                    let mut seen = 0usize;
                    for counts in &level_class {
                        let total: usize = counts.iter().sum();
                        if total > 0 {
                            purity += *counts.iter().max().unwrap() as f64 / total as f64;
                            seen += 1;
                        }
                    }
                    if seen > 0 {
                        purity / seen as f64
                    } else {
                        0.0
                    }
                }
            };
            (i, score)
        })
        .collect();
    scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
    let keep_n = (scored.len() / 2).max(1);
    let mut keep: Vec<usize> = scored.into_iter().take(keep_n).map(|(i, _)| i).collect();
    keep.sort_unstable();
    Some(keep)
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartml_data::accuracy;
    use smartml_data::synth::{gaussian_blobs, two_spirals, xor_parity};

    fn holdout(clf: &dyn Classifier, d: &Dataset) -> f64 {
        let (train, test): (Vec<usize>, Vec<usize>) = (0..d.n_rows()).partition(|i| i % 2 == 0);
        let model = clf.fit(d, &train).unwrap();
        accuracy(&d.labels_for(&test), &model.predict(d, &test))
    }

    #[test]
    fn j48_learns_blobs() {
        let d = gaussian_blobs("b", 200, 3, 3, 0.8, 1);
        let j48 = J48Classifier::from_config(&ParamConfig::default());
        assert!(holdout(&j48, &d) > 0.8);
    }

    #[test]
    fn j48_pruning_reduces_overfit_on_noise() {
        let d = two_spirals("s", 300, 0.6, 2);
        let pruned = J48Classifier { pruned: true, confidence: 0.1, min_obj: 2.0 };
        let unpruned = J48Classifier { pruned: false, confidence: 0.25, min_obj: 1.0 };
        // Both run; pruned is never much worse, usually better on noise.
        let ap = holdout(&pruned, &d);
        let au = holdout(&unpruned, &d);
        assert!(ap > 0.5 && au > 0.5, "pruned {ap}, unpruned {au}");
    }

    #[test]
    fn rpart_learns_and_cp_regularises() {
        let d = gaussian_blobs("b", 200, 4, 2, 1.2, 3);
        let default = RpartClassifier::from_config(&ParamConfig::default());
        assert!(holdout(&default, &d) > 0.8);
    }

    #[test]
    fn c50_boosting_competitive_with_single_tree() {
        let d = two_spirals("s", 400, 0.25, 4);
        let single = J48Classifier { pruned: false, confidence: 0.25, min_obj: 2.0 };
        let boosted = C50Classifier {
            winnow: false,
            rules: false,
            global_pruning: false,
            trials: 15,
            cf: 0.25,
        };
        let a_single = holdout(&single, &d);
        let a_boost = holdout(&boosted, &d);
        assert!(
            a_boost >= a_single - 0.05,
            "boosted {a_boost} much worse than single {a_single}"
        );
        assert!(a_boost > 0.7, "boosted {a_boost}");
    }

    #[test]
    fn c50_rules_mode_runs() {
        let d = gaussian_blobs("b", 150, 3, 2, 1.0, 5);
        let c50 = C50Classifier { winnow: false, rules: true, global_pruning: true, trials: 5, cf: 0.25 };
        assert!(holdout(&c50, &d) > 0.7);
    }

    #[test]
    fn c50_winnow_keeps_informative_features() {
        let d = xor_parity("x", 300, 2, 10, 0.0, 6);
        let keep = winnow_features(&d, &d.all_rows()).unwrap();
        assert!(!keep.is_empty() && keep.len() <= 6);
    }

    #[test]
    fn c50_winnowed_predicts_consistently() {
        let d = gaussian_blobs("b", 160, 6, 2, 0.8, 7);
        let c50 = C50Classifier { winnow: true, rules: false, global_pruning: true, trials: 5, cf: 0.25 };
        assert!(holdout(&c50, &d) > 0.75);
    }

    #[test]
    fn from_config_parses_flags() {
        let cfg = ParamConfig::default()
            .with("winnow", crate::params::ParamValue::Cat("yes".into()))
            .with("trials", crate::params::ParamValue::Int(7));
        let c50 = C50Classifier::from_config(&cfg);
        assert!(c50.winnow);
        assert_eq!(c50.trials, 7);
    }
}
