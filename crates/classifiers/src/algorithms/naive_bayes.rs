//! Naive Bayes (paper: the `klaR` R package; 2 numeric parameters:
//! Laplace smoothing for categorical likelihoods and a bandwidth `adjust`
//! factor scaling the Gaussian likelihood spread).

use crate::api::{check_fit_preconditions, Classifier, ClassifierError, TrainedModel};
use crate::params::ParamConfig;
use smartml_data::dataset::MISSING_CODE;
use smartml_data::{Dataset, Feature};
use smartml_linalg::vecops;

/// Mixed-type naive Bayes: Gaussian likelihoods for numeric features,
/// Laplace-smoothed multinomials for categoricals.
pub struct NaiveBayes {
    /// Laplace smoothing count for categorical likelihoods.
    pub laplace: f64,
    /// Multiplier on per-class standard deviations (klaR's `adjust`).
    pub adjust: f64,
}

impl NaiveBayes {
    /// Builds from a [`ParamConfig`] (`laplace`, `adjust`).
    pub fn from_config(config: &ParamConfig) -> Self {
        NaiveBayes {
            laplace: config.f64_or("laplace", 1.0).max(0.0),
            adjust: config.f64_or("adjust", 1.0).max(1e-3),
        }
    }
}

enum FeatureModel {
    /// Per-class (mean, std).
    Gaussian(Vec<(f64, f64)>),
    /// Per-class log-probability per level (+1 slot for unseen levels).
    Categorical(Vec<Vec<f64>>),
}

struct TrainedNb {
    log_priors: Vec<f64>,
    features: Vec<FeatureModel>,
    n_classes: usize,
}

impl Classifier for NaiveBayes {
    fn name(&self) -> &'static str {
        "NaiveBayes"
    }

    fn fit(&self, data: &Dataset, rows: &[usize]) -> Result<Box<dyn TrainedModel>, ClassifierError> {
        let n_classes = check_fit_preconditions("NaiveBayes", data, rows, 2)?;
        let counts = data.class_counts_for(rows);
        let total = rows.len() as f64;
        let log_priors: Vec<f64> = counts
            .iter()
            .map(|&c| ((c as f64 + 1.0) / (total + n_classes as f64)).ln())
            .collect();
        // Pooled std floor prevents zero-variance spikes.
        let mut features = Vec::with_capacity(data.n_features());
        for feat in data.features() {
            match feat {
                Feature::Numeric { values, .. } => {
                    let pooled: Vec<f64> =
                        rows.iter().map(|&r| values[r]).filter(|v| !v.is_nan()).collect();
                    let floor = (vecops::std_dev(&pooled) * 1e-3).max(1e-9);
                    let mut params = Vec::with_capacity(n_classes);
                    for c in 0..n_classes {
                        let xs: Vec<f64> = rows
                            .iter()
                            .filter(|&&r| data.label(r) as usize == c)
                            .map(|&r| values[r])
                            .filter(|v| !v.is_nan())
                            .collect();
                        let mean = vecops::mean(&xs);
                        let std = (vecops::std_dev(&xs) * self.adjust).max(floor);
                        params.push((mean, std));
                    }
                    features.push(FeatureModel::Gaussian(params));
                }
                Feature::Categorical { codes, levels, .. } => {
                    let n_levels = levels.len();
                    let mut table = vec![vec![0.0f64; n_levels + 1]; n_classes];
                    for &r in rows {
                        let code = codes[r];
                        if code != MISSING_CODE {
                            table[data.label(r) as usize][code as usize] += 1.0;
                        }
                    }
                    for class_row in &mut table {
                        let class_total: f64 = class_row.iter().sum();
                        let denom = class_total + self.laplace * (n_levels + 1) as f64;
                        for v in class_row.iter_mut() {
                            // Laplace floor keeps unseen (class, level) pairs finite.
                            *v = ((*v + self.laplace.max(1e-9)) / denom.max(1e-9)).ln();
                        }
                    }
                    features.push(FeatureModel::Categorical(table));
                }
            }
        }
        Ok(Box::new(TrainedNb { log_priors, features, n_classes }))
    }
}

impl TrainedModel for TrainedNb {
    fn predict_proba(&self, data: &Dataset, rows: &[usize]) -> Vec<Vec<f64>> {
        rows.iter()
            .map(|&r| {
                let mut log_post = self.log_priors.clone();
                for (feat, model) in data.features().iter().zip(&self.features) {
                    match (feat, model) {
                        (Feature::Numeric { values, .. }, FeatureModel::Gaussian(params)) => {
                            let v = values[r];
                            if v.is_nan() {
                                continue; // missing feature: skip its likelihood
                            }
                            for (c, &(mean, std)) in params.iter().enumerate() {
                                let z = (v - mean) / std;
                                log_post[c] += -0.5 * z * z - std.ln();
                            }
                        }
                        (Feature::Categorical { codes, .. }, FeatureModel::Categorical(table)) => {
                            let code = codes[r];
                            if code == MISSING_CODE {
                                continue;
                            }
                            for (c, class_row) in table.iter().enumerate() {
                                let idx = (code as usize).min(class_row.len() - 1);
                                log_post[c] += class_row[idx];
                            }
                        }
                        _ => {}
                    }
                }
                vecops::softmax_inplace(&mut log_post);
                log_post
            })
            .collect()
    }
}

// Use the class count to silence dead-code when only proba is used.
impl TrainedNb {
    #[allow(dead_code)]
    fn n_classes(&self) -> usize {
        self.n_classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartml_data::synth::{categorical_mixture, gaussian_blobs, sparse_counts};
    use smartml_data::accuracy;

    fn holdout(clf: &dyn Classifier, d: &Dataset) -> f64 {
        let (train, test): (Vec<usize>, Vec<usize>) = (0..d.n_rows()).partition(|i| i % 2 == 0);
        let model = clf.fit(d, &train).unwrap();
        accuracy(&d.labels_for(&test), &model.predict(d, &test))
    }

    #[test]
    fn gaussian_blobs_learned() {
        let d = gaussian_blobs("b", 200, 4, 3, 0.8, 1);
        let nb = NaiveBayes { laplace: 1.0, adjust: 1.0 };
        assert!(holdout(&nb, &d) > 0.85);
    }

    #[test]
    fn categorical_data_learned() {
        let d = categorical_mixture("c", 400, 4, 0, 2, 3, 2);
        let nb = NaiveBayes { laplace: 1.0, adjust: 1.0 };
        assert!(holdout(&nb, &d) > 0.6);
    }

    #[test]
    fn sparse_counts_suit_nb() {
        // Bag-of-words-like data is naive Bayes home turf.
        let d = sparse_counts("s", 300, 40, 4, 40, 3);
        let nb = NaiveBayes { laplace: 1.0, adjust: 1.0 };
        assert!(holdout(&nb, &d) > 0.7);
    }

    #[test]
    fn probabilities_are_distributions() {
        let d = gaussian_blobs("b", 60, 2, 2, 1.0, 4);
        let rows = d.all_rows();
        let model = NaiveBayes { laplace: 0.5, adjust: 2.0 }.fit(&d, &rows).unwrap();
        for p in model.predict_proba(&d, &rows) {
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn missing_values_skipped_not_fatal() {
        use smartml_data::Feature;
        let d = Dataset::new(
            "m",
            vec![Feature::Numeric {
                name: "x".into(),
                values: vec![0.0, 0.1, 5.0, 5.1, f64::NAN],
            }],
            vec![0, 0, 1, 1, 0],
            vec!["a".into(), "b".into()],
        )
        .unwrap();
        let model = NaiveBayes { laplace: 1.0, adjust: 1.0 }.fit(&d, &d.all_rows()).unwrap();
        let proba = model.predict_proba(&d, &[4]);
        assert!(proba[0].iter().all(|v| v.is_finite()));
    }

    #[test]
    fn from_config_clamps() {
        let nb = NaiveBayes::from_config(
            &ParamConfig::default().with("laplace", crate::params::ParamValue::Real(-5.0)),
        );
        assert_eq!(nb.laplace, 0.0);
        assert_eq!(nb.adjust, 1.0);
    }
}
