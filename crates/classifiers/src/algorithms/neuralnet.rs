//! NeuralNet — single-hidden-layer perceptron (paper: nnet; 1 numeric
//! parameter, the hidden-layer `size`). Tanh hidden units, softmax output,
//! cross-entropy loss, full-batch gradient descent with momentum and a small
//! fixed weight decay (nnet's `decay` is not in the paper's tuned set).

use super::encode::DenseEncoder;
use crate::api::{check_fit_preconditions, Classifier, ClassifierError, TrainedModel};
use crate::params::ParamConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use smartml_data::Dataset;
use smartml_linalg::{kernels, vecops, Matrix};

/// A configured MLP.
pub struct NeuralNet {
    /// Hidden-layer width.
    pub size: usize,
    /// Training epochs (fixed, not paper-tuned).
    pub epochs: usize,
    /// Weight decay (fixed, not paper-tuned).
    pub decay: f64,
    /// Initialisation seed.
    pub seed: u64,
}

impl NeuralNet {
    /// Builds from a [`ParamConfig`] (`size`).
    pub fn from_config(config: &ParamConfig) -> Self {
        NeuralNet {
            size: config.i64_or("size", 5).clamp(1, 200) as usize,
            epochs: 200,
            decay: 1e-4,
            seed: 7,
        }
    }
}

struct TrainedNet {
    encoder: DenseEncoder,
    /// `h x (d+1)` input→hidden weights (last column bias).
    w1: Matrix,
    /// `k x (h+1)` hidden→output weights (last column bias).
    w2: Matrix,
    n_classes: usize,
}

impl TrainedNet {
    fn forward(&self, input: &[f64], hidden: &mut [f64], out: &mut [f64]) {
        let d = input.len();
        for (h, hv) in hidden.iter_mut().enumerate() {
            let row = self.w1.row(h);
            *hv = (vecops::dot(&row[..d], input) + row[d]).tanh();
        }
        let hl = hidden.len();
        for (k, ov) in out.iter_mut().enumerate() {
            let row = self.w2.row(k);
            *ov = vecops::dot(&row[..hl], hidden) + row[hl];
        }
        vecops::softmax_inplace(out);
    }
}

impl Classifier for NeuralNet {
    fn name(&self) -> &'static str {
        "NeuralNet"
    }

    fn fit(&self, data: &Dataset, rows: &[usize]) -> Result<Box<dyn TrainedModel>, ClassifierError> {
        let n_classes = check_fit_preconditions("NeuralNet", data, rows, 4)?;
        let (encoder, x) = DenseEncoder::fit(data, rows, true);
        let y = data.labels_for(rows);
        let (n, d) = x.shape();
        let h = self.size;
        let mut rng = StdRng::seed_from_u64(self.seed);
        let init = |rng: &mut StdRng, fan_in: usize| -> f64 {
            let scale = (1.0 / fan_in.max(1) as f64).sqrt();
            rng.gen_range(-scale..scale)
        };
        let mut w1 = Matrix::zeros(h, d + 1);
        for r in 0..h {
            for c in 0..=d {
                w1[(r, c)] = init(&mut rng, d);
            }
        }
        let mut w2 = Matrix::zeros(n_classes, h + 1);
        for r in 0..n_classes {
            for c in 0..=h {
                w2[(r, c)] = init(&mut rng, h);
            }
        }
        let mut v1 = Matrix::zeros(h, d + 1);
        let mut v2 = Matrix::zeros(n_classes, h + 1);
        let lr = 0.2;
        let momentum = 0.9;
        let mut hidden = vec![0.0; h];
        let mut out = vec![0.0; n_classes];
        let mut delta_out = vec![0.0; n_classes];
        let mut delta_hidden = vec![0.0; h];
        for epoch in 0..self.epochs {
            // Expired trial: stop on an epoch boundary, keep the weights
            // trained so far.
            if epoch > 0 && smartml_runtime::faults::trial_should_stop() {
                break;
            }
            let mut g1 = Matrix::zeros(h, d + 1);
            let mut g2 = Matrix::zeros(n_classes, h + 1);
            for r in 0..n {
                let input = x.row(r);
                // Forward.
                for (hh, hv) in hidden.iter_mut().enumerate() {
                    let row = w1.row(hh);
                    *hv = (vecops::dot(&row[..d], input) + row[d]).tanh();
                }
                for (k, ov) in out.iter_mut().enumerate() {
                    let row = w2.row(k);
                    *ov = vecops::dot(&row[..h], &hidden) + row[h];
                }
                vecops::softmax_inplace(&mut out);
                // Backward.
                let truth = y[r] as usize;
                for k in 0..n_classes {
                    delta_out[k] = out[k] - if k == truth { 1.0 } else { 0.0 };
                }
                // Hidden deltas via contiguous AXPYs over the `w2` rows
                // (same per-unit ascending-`k` accumulation as the strided
                // column walk it replaces, so numerics are unchanged).
                delta_hidden.fill(0.0);
                for k in 0..n_classes {
                    kernels::axpy(&mut delta_hidden, delta_out[k], &w2.row(k)[..h]);
                }
                for hh in 0..h {
                    delta_hidden[hh] *= 1.0 - hidden[hh] * hidden[hh];
                }
                for k in 0..n_classes {
                    let grow = g2.row_mut(k);
                    kernels::axpy(&mut grow[..h], delta_out[k], &hidden);
                    grow[h] += delta_out[k];
                }
                for hh in 0..h {
                    let grow = g1.row_mut(hh);
                    kernels::axpy(&mut grow[..d], delta_hidden[hh], input);
                    grow[d] += delta_hidden[hh];
                }
            }
            let scale = 1.0 / n as f64;
            for rr in 0..h {
                kernels::momentum_update(
                    w1.row_mut(rr),
                    v1.row_mut(rr),
                    g1.row(rr),
                    scale,
                    self.decay,
                    lr,
                    momentum,
                );
            }
            for rr in 0..n_classes {
                kernels::momentum_update(
                    w2.row_mut(rr),
                    v2.row_mut(rr),
                    g2.row(rr),
                    scale,
                    self.decay,
                    lr,
                    momentum,
                );
            }
        }
        Ok(Box::new(TrainedNet { encoder, w1, w2, n_classes }))
    }
}

impl TrainedModel for TrainedNet {
    fn predict_proba(&self, data: &Dataset, rows: &[usize]) -> Vec<Vec<f64>> {
        let x = self.encoder.encode(data, rows);
        let h = self.w1.rows();
        let mut hidden = vec![0.0; h];
        let mut out = vec![0.0; self.n_classes];
        (0..x.rows())
            .map(|r| {
                self.forward(x.row(r), &mut hidden, &mut out);
                out.clone()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartml_data::accuracy;
    use smartml_data::synth::{gaussian_blobs, kinematics, xor_parity};

    fn holdout(clf: &dyn Classifier, d: &Dataset) -> f64 {
        let (train, test): (Vec<usize>, Vec<usize>) = (0..d.n_rows()).partition(|i| i % 2 == 0);
        let model = clf.fit(d, &train).unwrap();
        accuracy(&d.labels_for(&test), &model.predict(d, &test))
    }

    fn net(size: usize) -> NeuralNet {
        NeuralNet { size, epochs: 300, decay: 1e-4, seed: 7 }
    }

    #[test]
    fn learns_blobs() {
        let d = gaussian_blobs("b", 200, 3, 3, 0.8, 1);
        assert!(holdout(&net(8), &d) > 0.85);
    }

    #[test]
    fn hidden_layer_solves_xor() {
        let d = xor_parity("x", 300, 2, 0, 0.0, 2);
        let acc = holdout(&net(8), &d);
        assert!(acc > 0.85, "acc {acc}");
    }

    #[test]
    fn smooth_nonlinear_boundary() {
        let d = kinematics("k", 300, 4, 0.1, 3);
        let acc = holdout(&net(12), &d);
        assert!(acc > 0.7, "acc {acc}");
    }

    #[test]
    fn deterministic_given_seed() {
        let d = gaussian_blobs("b", 80, 2, 2, 1.0, 4);
        let rows = d.all_rows();
        let m1 = net(4).fit(&d, &rows).unwrap();
        let m2 = net(4).fit(&d, &rows).unwrap();
        assert_eq!(m1.predict(&d, &rows), m2.predict(&d, &rows));
    }

    #[test]
    fn probabilities_valid() {
        let d = gaussian_blobs("b", 60, 2, 4, 1.5, 5);
        let rows = d.all_rows();
        let model = net(6).fit(&d, &rows).unwrap();
        for p in model.predict_proba(&d, &rows) {
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn from_config_reads_size() {
        let nn = NeuralNet::from_config(
            &ParamConfig::default().with("size", crate::params::ParamValue::Int(12)),
        );
        assert_eq!(nn.size, 12);
    }
}
