//! Dense numeric encoding with train-fitted standardisation, shared by the
//! numeric-only classifiers (SVM, KNN, LDA/RDA, PLSDA, NeuralNet, LMT
//! leaves). The encoder remembers training means/stds so validation rows are
//! standardised with *training* statistics.

use smartml_data::Dataset;
use smartml_linalg::{vecops, Matrix};

/// One-hot + standardisation encoder fitted on training rows.
#[derive(Debug, Clone)]
pub(crate) struct DenseEncoder {
    means: Vec<f64>,
    stds: Vec<f64>,
    standardize: bool,
}

impl DenseEncoder {
    /// Fits the encoder and returns it with the encoded training matrix.
    pub fn fit(data: &Dataset, rows: &[usize], standardize: bool) -> (DenseEncoder, Matrix) {
        let (mut m, _) = data.to_numeric_matrix(rows);
        let d = m.cols();
        let mut means = vec![0.0; d];
        let mut stds = vec![1.0; d];
        if standardize {
            for c in 0..d {
                let col: Vec<f64> = (0..m.rows()).map(|r| m[(r, c)]).collect();
                means[c] = vecops::mean(&col);
                let s = vecops::std_dev(&col);
                stds[c] = if s > 1e-12 { s } else { 1.0 };
            }
            apply(&mut m, &means, &stds);
        }
        (DenseEncoder { means, stds, standardize }, m)
    }

    /// Encodes arbitrary rows with the fitted statistics.
    pub fn encode(&self, data: &Dataset, rows: &[usize]) -> Matrix {
        let (mut m, _) = data.to_numeric_matrix(rows);
        if self.standardize {
            // Column count can only change if the dataset schema changed
            // between fit and predict, which the pipeline never does.
            assert_eq!(m.cols(), self.dim(), "schema changed between fit and predict");
            apply(&mut m, &self.means, &self.stds);
        }
        m
    }

    /// Encoded feature dimension.
    pub fn dim(&self) -> usize {
        self.means.len()
    }
}

fn apply(m: &mut Matrix, means: &[f64], stds: &[f64]) {
    for r in 0..m.rows() {
        let row = m.row_mut(r);
        for ((v, &mu), &sd) in row.iter_mut().zip(means).zip(stds) {
            *v = (*v - mu) / sd;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartml_data::synth::gaussian_blobs;

    #[test]
    fn train_stats_applied_to_test() {
        let d = gaussian_blobs("b", 100, 3, 2, 1.0, 1);
        let train: Vec<usize> = (0..50).collect();
        let test: Vec<usize> = (50..100).collect();
        let (enc, xtrain) = DenseEncoder::fit(&d, &train, true);
        // Training columns are standardised.
        for c in 0..xtrain.cols() {
            let col: Vec<f64> = (0..xtrain.rows()).map(|r| xtrain[(r, c)]).collect();
            assert!(vecops::mean(&col).abs() < 1e-9);
        }
        // Test columns use train statistics: near-standard but not exact.
        let xtest = enc.encode(&d, &test);
        assert_eq!(xtest.cols(), enc.dim());
        for c in 0..xtest.cols() {
            let col: Vec<f64> = (0..xtest.rows()).map(|r| xtest[(r, c)]).collect();
            assert!(vecops::mean(&col).abs() < 1.0);
        }
    }

    #[test]
    fn no_standardize_passthrough() {
        let d = gaussian_blobs("b", 20, 2, 2, 1.0, 2);
        let rows = d.all_rows();
        let (enc, x) = DenseEncoder::fit(&d, &rows, false);
        let (raw, _) = d.to_numeric_matrix(&rows);
        assert_eq!(x, raw);
        assert_eq!(enc.encode(&d, &rows), raw);
    }
}
