//! Discriminant-analysis classifiers: LDA (MASS) and RDA (klaR).

use super::encode::DenseEncoder;
use crate::api::{check_fit_preconditions, Classifier, ClassifierError, TrainedModel};
use crate::params::ParamConfig;
use smartml_data::Dataset;
use smartml_linalg::{cholesky, kernels, solve_lower_triangular, vecops, Matrix};

/// LDA — linear discriminant analysis with a pooled covariance.
/// Paper space: 1 categorical (`method`: `moment` | `shrinkage`) + 1 numeric
/// (`tol`: ridge jitter for `moment`, shrinkage intensity for `shrinkage`).
pub struct Lda {
    /// Covariance estimation method.
    pub shrinkage: bool,
    /// Ridge/shrinkage strength.
    pub tol: f64,
}

impl Lda {
    /// Builds from a [`ParamConfig`].
    pub fn from_config(config: &ParamConfig) -> Self {
        Lda {
            shrinkage: config.str_or("method", "moment") == "shrinkage",
            tol: config.f64_or("tol", 1e-4).clamp(1e-9, 1.0),
        }
    }
}

/// RDA — regularised (Friedman) discriminant analysis.
/// Paper space: 0 categorical + 2 numeric (`gamma`, `lambda`):
/// `lambda` blends per-class covariance toward the pooled covariance,
/// `gamma` blends toward a scaled identity.
pub struct Rda {
    /// Identity-blend strength γ ∈ [0, 1].
    pub gamma: f64,
    /// Pooling strength λ ∈ [0, 1].
    pub lambda: f64,
}

impl Rda {
    /// Builds from a [`ParamConfig`].
    pub fn from_config(config: &ParamConfig) -> Self {
        Rda {
            gamma: config.f64_or("gamma", 0.5).clamp(0.0, 1.0),
            lambda: config.f64_or("lambda", 0.5).clamp(0.0, 1.0),
        }
    }
}

/// Per-class Gaussian with its own (possibly shared) covariance factor.
struct ClassGaussian {
    mean: Vec<f64>,
    /// Cholesky factor of the class covariance.
    chol: Matrix,
    /// log|Σ| (sum of 2·ln diag(L)).
    log_det: f64,
    log_prior: f64,
}

struct GaussianDiscriminant {
    encoder: DenseEncoder,
    classes: Vec<Option<ClassGaussian>>,
}

impl TrainedModel for GaussianDiscriminant {
    fn predict_proba(&self, data: &Dataset, rows: &[usize]) -> Vec<Vec<f64>> {
        let x = self.encoder.encode(data, rows);
        (0..x.rows())
            .map(|r| {
                let row = x.row(r);
                let mut scores: Vec<f64> = self
                    .classes
                    .iter()
                    .map(|cg| match cg {
                        Some(cg) => {
                            // Mahalanobis via triangular solve: ‖L⁻¹(x-μ)‖².
                            let diff: Vec<f64> =
                                row.iter().zip(&cg.mean).map(|(a, b)| a - b).collect();
                            let z = solve_lower_triangular(&cg.chol, &diff);
                            let maha: f64 = z.iter().map(|v| v * v).sum();
                            cg.log_prior - 0.5 * (maha + cg.log_det)
                        }
                        None => f64::NEG_INFINITY,
                    })
                    .collect();
                vecops::softmax_inplace(&mut scores);
                scores
            })
            .collect()
    }
}

/// Gathers per-class means and scatter matrices from an encoded matrix.
struct ScatterStats {
    means: Vec<Vec<f64>>,
    /// Per-class scatter Σ (x-μ)(x-μ)ᵀ.
    scatters: Vec<Matrix>,
    counts: Vec<usize>,
    pooled: Matrix,
    n: usize,
    d: usize,
}

fn scatter_stats(x: &Matrix, y: &[u32], n_classes: usize) -> ScatterStats {
    let (n, d) = x.shape();
    let mut means = vec![vec![0.0; d]; n_classes];
    let mut counts = vec![0usize; n_classes];
    for r in 0..n {
        let c = y[r] as usize;
        counts[c] += 1;
        kernels::add_assign(&mut means[c], x.row(r));
    }
    for (c, mean) in means.iter_mut().enumerate() {
        if counts[c] > 0 {
            for m in mean.iter_mut() {
                *m /= counts[c] as f64;
            }
        }
    }
    let mut scatters = vec![Matrix::zeros(d, d); n_classes];
    let mut pooled = Matrix::zeros(d, d);
    let mut diff = vec![0.0; d];
    for r in 0..n {
        let c = y[r] as usize;
        for (dv, (&v, &m)) in diff.iter_mut().zip(x.row(r).iter().zip(&means[c])) {
            *dv = v - m;
        }
        // Rank-1 update of the upper triangles via contiguous AXPYs over
        // the row tails; per-cell accumulation order matches the scalar
        // loop it replaces (the zero-skip is preserved for its semantics).
        for i in 0..d {
            let di = diff[i];
            if di == 0.0 {
                continue;
            }
            kernels::axpy(&mut scatters[c].row_mut(i)[i..], di, &diff[i..]);
            kernels::axpy(&mut pooled.row_mut(i)[i..], di, &diff[i..]);
        }
    }
    // Mirror the upper triangles.
    for m in scatters.iter_mut().chain(std::iter::once(&mut pooled)) {
        for i in 0..d {
            for j in (i + 1)..d {
                m[(j, i)] = m[(i, j)];
            }
        }
    }
    ScatterStats { means, scatters, counts, pooled, n, d }
}

/// Builds a [`ClassGaussian`] from a covariance matrix, adding diagonal
/// jitter until Cholesky succeeds.
fn class_gaussian(
    mean: Vec<f64>,
    mut cov: Matrix,
    log_prior: f64,
    algorithm: &'static str,
) -> Result<ClassGaussian, ClassifierError> {
    let d = cov.rows();
    let mut jitter = 1e-8;
    for _ in 0..12 {
        match cholesky(&cov) {
            Ok(chol) => {
                let log_det = (0..d).map(|i| 2.0 * chol[(i, i)].ln()).sum();
                return Ok(ClassGaussian { mean, chol, log_det, log_prior });
            }
            Err(_) => {
                for i in 0..d {
                    cov[(i, i)] += jitter;
                }
                jitter *= 10.0;
            }
        }
    }
    Err(ClassifierError::Numerical {
        algorithm,
        detail: "covariance not positive definite after regularisation".into(),
    })
}

impl Classifier for Lda {
    fn name(&self) -> &'static str {
        "LDA"
    }

    fn fit(&self, data: &Dataset, rows: &[usize]) -> Result<Box<dyn TrainedModel>, ClassifierError> {
        let n_classes = check_fit_preconditions("LDA", data, rows, 4)?;
        let (encoder, x) = DenseEncoder::fit(data, rows, true);
        let y = data.labels_for(rows);
        let stats = scatter_stats(&x, &y, n_classes);
        let denom = (stats.n.saturating_sub(n_classes)).max(1) as f64;
        let mut pooled = stats.pooled.scale(1.0 / denom);
        let d = stats.d;
        if self.shrinkage {
            // Ledoit-Wolf-style target: ν = tr(Σ)/d on the diagonal.
            let nu = (0..d).map(|i| pooled[(i, i)]).sum::<f64>() / d as f64;
            let a = self.tol;
            pooled = pooled.scale(1.0 - a);
            for i in 0..d {
                pooled[(i, i)] += a * nu;
            }
        } else {
            for i in 0..d {
                pooled[(i, i)] += self.tol.max(1e-9);
            }
        }
        let n = stats.n as f64;
        let mut classes = Vec::with_capacity(n_classes);
        for c in 0..n_classes {
            if stats.counts[c] == 0 {
                classes.push(None);
                continue;
            }
            let log_prior = (stats.counts[c] as f64 / n).ln();
            classes.push(Some(class_gaussian(
                stats.means[c].clone(),
                pooled.clone(),
                log_prior,
                "LDA",
            )?));
        }
        Ok(Box::new(GaussianDiscriminant { encoder, classes }))
    }
}

impl Classifier for Rda {
    fn name(&self) -> &'static str {
        "RDA"
    }

    fn fit(&self, data: &Dataset, rows: &[usize]) -> Result<Box<dyn TrainedModel>, ClassifierError> {
        let n_classes = check_fit_preconditions("RDA", data, rows, 4)?;
        let (encoder, x) = DenseEncoder::fit(data, rows, true);
        let y = data.labels_for(rows);
        let stats = scatter_stats(&x, &y, n_classes);
        let d = stats.d;
        let pooled_cov = stats.pooled.scale(1.0 / (stats.n.saturating_sub(n_classes)).max(1) as f64);
        let n = stats.n as f64;
        let mut classes = Vec::with_capacity(n_classes);
        for c in 0..n_classes {
            if stats.counts[c] == 0 {
                classes.push(None);
                continue;
            }
            let nk = stats.counts[c] as f64;
            let class_cov = stats.scatters[c].scale(1.0 / (nk - 1.0).max(1.0));
            // Friedman regularisation:
            // Σ(λ) = (1-λ)Σ_k + λΣ_pooled;  Σ(λ,γ) = (1-γ)Σ(λ) + γ (trΣ(λ)/d) I.
            let mut cov = class_cov.scale(1.0 - self.lambda).add(&pooled_cov.scale(self.lambda));
            let trace_over_d = (0..d).map(|i| cov[(i, i)]).sum::<f64>() / d as f64;
            cov = cov.scale(1.0 - self.gamma);
            for i in 0..d {
                cov[(i, i)] += self.gamma * trace_over_d + 1e-8;
            }
            let log_prior = (nk / n).ln();
            classes.push(Some(class_gaussian(stats.means[c].clone(), cov, log_prior, "RDA")?));
        }
        Ok(Box::new(GaussianDiscriminant { encoder, classes }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartml_data::accuracy;
    use smartml_data::synth::{gaussian_blobs, imbalanced_mixture};

    fn holdout(clf: &dyn Classifier, d: &Dataset) -> f64 {
        let (train, test): (Vec<usize>, Vec<usize>) = (0..d.n_rows()).partition(|i| i % 2 == 0);
        let model = clf.fit(d, &train).unwrap();
        accuracy(&d.labels_for(&test), &model.predict(d, &test))
    }

    #[test]
    fn lda_learns_gaussian_blobs() {
        // Shared-covariance blobs are exactly LDA's model.
        let d = gaussian_blobs("b", 240, 4, 3, 0.8, 1);
        let lda = Lda { shrinkage: false, tol: 1e-4 };
        assert!(holdout(&lda, &d) > 0.9);
    }

    #[test]
    fn lda_shrinkage_mode_works() {
        let d = gaussian_blobs("b", 100, 8, 2, 1.0, 2);
        let lda = Lda { shrinkage: true, tol: 0.3 };
        assert!(holdout(&lda, &d) > 0.8);
    }

    #[test]
    fn lda_handles_more_features_than_comfortable() {
        // d close to n/class: shrinkage keeps it stable.
        let d = gaussian_blobs("b", 60, 20, 2, 1.0, 3);
        let lda = Lda { shrinkage: true, tol: 0.5 };
        assert!(holdout(&lda, &d) > 0.6);
    }

    #[test]
    fn rda_spans_lda_to_qda() {
        let d = gaussian_blobs("b", 200, 4, 2, 1.0, 4);
        for (gamma, lambda) in [(0.0, 1.0), (0.5, 0.5), (1.0, 0.0)] {
            let rda = Rda { gamma, lambda };
            let acc = holdout(&rda, &d);
            assert!(acc > 0.8, "γ={gamma} λ={lambda}: acc {acc}");
        }
    }

    #[test]
    fn rda_full_identity_blend_is_nearest_centroid_like() {
        let d = gaussian_blobs("b", 150, 3, 3, 0.7, 5);
        let rda = Rda { gamma: 1.0, lambda: 1.0 };
        assert!(holdout(&rda, &d) > 0.85);
    }

    #[test]
    fn handles_imbalanced_classes() {
        let d = imbalanced_mixture("i", 300, 4, 4, 1.0, 6);
        let lda = Lda { shrinkage: false, tol: 1e-3 };
        let acc = holdout(&lda, &d);
        assert!(acc > 0.5, "acc {acc}");
    }

    #[test]
    fn probabilities_valid() {
        let d = gaussian_blobs("b", 90, 3, 3, 1.2, 7);
        let rows = d.all_rows();
        let model = Rda { gamma: 0.3, lambda: 0.3 }.fit(&d, &rows).unwrap();
        for p in model.predict_proba(&d, &rows) {
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn from_config_parses() {
        let lda = Lda::from_config(
            &ParamConfig::default().with("method", crate::params::ParamValue::Cat("shrinkage".into())),
        );
        assert!(lda.shrinkage);
        let rda = Rda::from_config(&ParamConfig::default());
        assert_eq!(rda.gamma, 0.5);
    }
}
