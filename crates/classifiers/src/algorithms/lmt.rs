//! LMT — logistic model tree (paper: RWeka; 1 numeric parameter,
//! `min_instances`). A shallow Gini tree partitions the space; each leaf
//! carries a multinomial logistic model trained on the leaf's instances.
//! The original LMT grows leaf models with LogitBoost and cross-validated
//! depth; this implementation uses direct gradient-trained logistic leaves
//! over the same structure (documented simplification in `DESIGN.md`).

use super::encode::DenseEncoder;
use crate::api::{check_fit_preconditions, Classifier, ClassifierError, TrainedModel};
use crate::common::logistic::LogisticModel;
use crate::common::tree::{DecisionTree, Pruning, SplitCriterion, TreeConfig};
use crate::params::ParamConfig;
use smartml_data::Dataset;
use smartml_linalg::Matrix;
use std::collections::HashMap;

/// A configured LMT.
pub struct LmtClassifier {
    /// Minimum instances at which a node may still be split
    /// (WEKA `-M`; larger ⇒ shallower tree ⇒ more work for the leaf models).
    pub min_instances: usize,
}

impl LmtClassifier {
    /// Builds from a [`ParamConfig`].
    pub fn from_config(config: &ParamConfig) -> Self {
        LmtClassifier { min_instances: config.i64_or("min_instances", 15).max(2) as usize }
    }
}

struct TrainedLmt {
    tree: DecisionTree,
    encoder: DenseEncoder,
    /// Leaf id → logistic model (leaves too small for a model fall back to
    /// the tree's own distribution).
    leaf_models: HashMap<usize, LogisticModel>,
    n_classes: usize,
}

impl Classifier for LmtClassifier {
    fn name(&self) -> &'static str {
        "LMT"
    }

    fn fit(&self, data: &Dataset, rows: &[usize]) -> Result<Box<dyn TrainedModel>, ClassifierError> {
        let n_classes = check_fit_preconditions("LMT", data, rows, 4)?;
        let config = TreeConfig {
            criterion: SplitCriterion::Gini,
            max_depth: 4,
            min_split: self.min_instances as f64,
            min_leaf: (self.min_instances / 2).max(1) as f64,
            cp: 0.01,
            mtry: None,
            seed: 0,
            pruning: Pruning::None,
            max_bins: 0,
        };
        let tree = DecisionTree::fit(data, rows, &config);
        let (encoder, x) = DenseEncoder::fit(data, rows, true);
        // Group training rows by leaf.
        let mut by_leaf: HashMap<usize, Vec<usize>> = HashMap::new();
        for (i, &r) in rows.iter().enumerate() {
            by_leaf.entry(tree.leaf_id(data, r)).or_default().push(i);
        }
        let mut leaf_models = HashMap::new();
        for (leaf, members) in by_leaf {
            // A logistic model needs a few rows and at least 2 classes.
            if members.len() < 5 {
                continue;
            }
            let y: Vec<u32> = members.iter().map(|&i| data.label(rows[i])).collect();
            let distinct = {
                let mut seen = vec![false; n_classes];
                for &l in &y {
                    seen[l as usize] = true;
                }
                seen.iter().filter(|&&s| s).count()
            };
            if distinct < 2 {
                continue;
            }
            let sub = Matrix::from_rows(
                &members.iter().map(|&i| x.row(i).to_vec()).collect::<Vec<_>>(),
            );
            let model = LogisticModel::fit(&sub, &y, n_classes, 150, 1e-3);
            leaf_models.insert(leaf, model);
        }
        Ok(Box::new(TrainedLmt { tree, encoder, leaf_models, n_classes }))
    }
}

impl TrainedModel for TrainedLmt {
    fn predict_proba(&self, data: &Dataset, rows: &[usize]) -> Vec<Vec<f64>> {
        let x = self.encoder.encode(data, rows);
        rows.iter()
            .enumerate()
            .map(|(i, &r)| {
                let leaf = self.tree.leaf_id(data, r);
                match self.leaf_models.get(&leaf) {
                    Some(model) => model.predict_row(x.row(i)),
                    None => self.tree.row_proba(data, r),
                }
            })
            .collect()
    }
}

// The class count is kept for future calibration work.
impl TrainedLmt {
    #[allow(dead_code)]
    fn n_classes(&self) -> usize {
        self.n_classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartml_data::accuracy;
    use smartml_data::synth::{gaussian_blobs, two_spirals, xor_parity};

    fn holdout(clf: &dyn Classifier, d: &Dataset) -> f64 {
        let (train, test): (Vec<usize>, Vec<usize>) = (0..d.n_rows()).partition(|i| i % 2 == 0);
        let model = clf.fit(d, &train).unwrap();
        accuracy(&d.labels_for(&test), &model.predict(d, &test))
    }

    #[test]
    fn learns_blobs() {
        let d = gaussian_blobs("b", 200, 3, 3, 0.8, 1);
        let lmt = LmtClassifier { min_instances: 30 };
        assert!(holdout(&lmt, &d) > 0.85);
    }

    #[test]
    fn piecewise_linear_boundary_beats_plain_linear_on_xor() {
        let d = xor_parity("x", 400, 2, 0, 0.0, 2);
        let lmt = LmtClassifier { min_instances: 40 };
        let acc = holdout(&lmt, &d);
        assert!(acc > 0.8, "acc {acc}");
    }

    #[test]
    fn spirals_with_small_leaves() {
        let d = two_spirals("s", 300, 0.1, 3);
        let lmt = LmtClassifier { min_instances: 10 };
        let acc = holdout(&lmt, &d);
        assert!(acc > 0.6, "acc {acc}");
    }

    #[test]
    fn probabilities_valid() {
        let d = gaussian_blobs("b", 100, 2, 2, 1.0, 4);
        let rows = d.all_rows();
        let model = LmtClassifier { min_instances: 20 }.fit(&d, &rows).unwrap();
        for p in model.predict_proba(&d, &rows) {
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn huge_min_instances_degenerates_to_single_logistic() {
        let d = gaussian_blobs("b", 120, 3, 2, 0.8, 5);
        let lmt = LmtClassifier { min_instances: 10_000 };
        // Tree cannot split: one leaf, one logistic model over everything.
        assert!(holdout(&lmt, &d) > 0.85);
    }
}
