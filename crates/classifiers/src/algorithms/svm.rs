//! Support vector machine (paper: the `e1071` R package wrapping libsvm;
//! 1 categorical parameter — the kernel — and 4 numeric: cost, gamma,
//! degree, coef0).
//!
//! Binary subproblems are trained with simplified SMO (Platt's algorithm in
//! the two-multiplier working-set form); multiclass uses one-vs-one voting,
//! the same decomposition libsvm/e1071 uses.

use super::encode::DenseEncoder;
use crate::api::{check_fit_preconditions, normalize_scores, Classifier, ClassifierError, TrainedModel};
use crate::params::ParamConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use smartml_data::Dataset;
use smartml_linalg::kernels;
use smartml_linalg::Matrix;

/// Kernel functions supported by e1071.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kernel {
    /// `u · v`
    Linear,
    /// `exp(-γ‖u−v‖²)`
    Radial,
    /// `(γ u·v + coef0)^degree`
    Polynomial,
    /// `tanh(γ u·v + coef0)`
    Sigmoid,
}

/// A configured SVM.
pub struct Svm {
    /// Kernel choice.
    pub kernel: Kernel,
    /// Soft-margin cost C.
    pub cost: f64,
    /// Kernel width γ.
    pub gamma: f64,
    /// Polynomial degree.
    pub degree: i64,
    /// Kernel offset coef0.
    pub coef0: f64,
}

impl Svm {
    /// Builds from a [`ParamConfig`] (`kernel`, `cost`, `gamma`, `degree`, `coef0`).
    pub fn from_config(config: &ParamConfig) -> Self {
        let kernel = match config.str_or("kernel", "radial") {
            "linear" => Kernel::Linear,
            "polynomial" => Kernel::Polynomial,
            "sigmoid" => Kernel::Sigmoid,
            _ => Kernel::Radial,
        };
        Svm {
            kernel,
            cost: config.f64_or("cost", 1.0).max(1e-6),
            gamma: config.f64_or("gamma", 0.1).max(1e-9),
            degree: config.i64_or("degree", 3).clamp(1, 10),
            coef0: config.f64_or("coef0", 0.0),
        }
    }

    fn kernel_eval(&self, a: &[f64], b: &[f64]) -> f64 {
        let dot = kernels::dot(a, b);
        match self.kernel {
            Kernel::Linear => dot,
            Kernel::Radial => (-self.gamma * kernels::squared_distance(a, b)).exp(),
            Kernel::Polynomial => (self.gamma * dot + self.coef0).powi(self.degree as i32),
            Kernel::Sigmoid => (self.gamma * dot + self.coef0).tanh(),
        }
    }

    /// [`kernel_eval`](Svm::kernel_eval) over f32-stored rows — the opt-in
    /// reduced-precision kernel-matrix path (f32 lanes, f64 accumulators;
    /// see `smartml_linalg::kernels` for the documented error bound).
    fn kernel_eval_f32(&self, a: &[f32], b: &[f32]) -> f64 {
        let dot = kernels::dot_f32(a, b);
        match self.kernel {
            Kernel::Linear => dot,
            Kernel::Radial => (-self.gamma * kernels::squared_distance_f32(a, b)).exp(),
            Kernel::Polynomial => (self.gamma * dot + self.coef0).powi(self.degree as i32),
            Kernel::Sigmoid => (self.gamma * dot + self.coef0).tanh(),
        }
    }
}

/// One trained binary subproblem (classes `pos` vs `neg`).
struct BinarySvm {
    /// Indices into the stored support-vector matrix.
    sv_rows: Vec<usize>,
    /// α_i · y_i per support vector.
    alpha_y: Vec<f64>,
    bias: f64,
    pos: u32,
    neg: u32,
}

struct TrainedSvm {
    encoder: DenseEncoder,
    /// All training rows (kernel evaluations index into this).
    x: Matrix,
    machines: Vec<BinarySvm>,
    n_classes: usize,
    params: Svm,
}

impl Classifier for Svm {
    fn name(&self) -> &'static str {
        "SVM"
    }

    fn fit(&self, data: &Dataset, rows: &[usize]) -> Result<Box<dyn TrainedModel>, ClassifierError> {
        let n_classes = check_fit_preconditions("SVM", data, rows, 4)?;
        let (encoder, x) = DenseEncoder::fit(data, rows, true);
        let labels = data.labels_for(rows);
        // One-vs-one over the classes actually present.
        let counts = data.class_counts_for(rows);
        let present: Vec<u32> = (0..n_classes as u32)
            .filter(|&c| counts[c as usize] > 0)
            .collect();
        let mut machines = Vec::new();
        'pairs: for i in 0..present.len() {
            for j in (i + 1)..present.len() {
                // Expired trial: stop scheduling new binary subproblems
                // once at least one machine exists (a usable, if weaker,
                // one-vs-one committee).
                if !machines.is_empty() && smartml_runtime::faults::trial_should_stop() {
                    break 'pairs;
                }
                let (pos, neg) = (present[i], present[j]);
                let sub: Vec<usize> = (0..labels.len())
                    .filter(|&r| labels[r] == pos || labels[r] == neg)
                    .collect();
                let y: Vec<f64> = sub
                    .iter()
                    .map(|&r| if labels[r] == pos { 1.0 } else { -1.0 })
                    .collect();
                if let Some(machine) = smo_train(self, &x, &sub, &y, pos, neg) {
                    machines.push(machine);
                }
            }
        }
        if machines.is_empty() {
            return Err(ClassifierError::Numerical {
                algorithm: "SVM",
                detail: "no binary subproblem could be trained".into(),
            });
        }
        Ok(Box::new(TrainedSvm {
            encoder,
            x,
            machines,
            n_classes,
            params: Svm {
                kernel: self.kernel,
                cost: self.cost,
                gamma: self.gamma,
                degree: self.degree,
                coef0: self.coef0,
            },
        }))
    }
}

/// Simplified SMO on the rows `sub` of `x` with ±1 targets `y`.
fn smo_train(
    params: &Svm,
    x: &Matrix,
    sub: &[usize],
    y: &[f64],
    pos: u32,
    neg: u32,
) -> Option<BinarySvm> {
    let n = sub.len();
    if n < 2 {
        return None;
    }
    let c = params.cost;
    let tol = 1e-3;
    let max_passes = 8;
    let max_total_iters = 300 * n; // hard cap keeps SMAC loops bounded
    let mut alpha = vec![0.0f64; n];
    let mut bias = 0.0f64;
    let mut rng = StdRng::seed_from_u64(0xD1CE ^ (pos as u64) << 16 ^ neg as u64);
    // Precompute the kernel sub-matrix (n ≤ a few hundred in this workspace).
    // The O(n²·d) build dominates small-trial cost, so it honours the opt-in
    // f32 path: rows are rounded once, kernels run on f32 lanes with f64
    // accumulators.
    let mut kmat = vec![0.0f64; n * n];
    if kernels::use_f32_path() {
        let d = x.cols();
        let mut subx: Vec<f32> = Vec::with_capacity(n * d);
        for &r in sub {
            subx.extend(x.row(r).iter().map(|&v| v as f32));
        }
        for i in 0..n {
            for j in i..n {
                let v = params.kernel_eval_f32(&subx[i * d..(i + 1) * d], &subx[j * d..(j + 1) * d]);
                kmat[i * n + j] = v;
                kmat[j * n + i] = v;
            }
        }
    } else {
        for i in 0..n {
            for j in i..n {
                let v = params.kernel_eval(x.row(sub[i]), x.row(sub[j]));
                kmat[i * n + j] = v;
                kmat[j * n + i] = v;
            }
        }
    }
    let f = |alpha: &[f64], bias: f64, kmat: &[f64], y: &[f64], i: usize| -> f64 {
        let mut s = bias;
        for (t, &a) in alpha.iter().enumerate() {
            if a != 0.0 {
                s += a * y[t] * kmat[t * n + i];
            }
        }
        s
    };
    let mut passes = 0;
    let mut total = 0usize;
    while passes < max_passes && total < max_total_iters {
        // SMO converges monotonically, so an expired trial can stop after
        // any full pass and still hand back a consistent machine.
        if passes > 0 && smartml_runtime::faults::trial_should_stop() {
            break;
        }
        let mut changed = 0;
        for i in 0..n {
            total += 1;
            let ei = f(&alpha, bias, &kmat, y, i) - y[i];
            if (y[i] * ei < -tol && alpha[i] < c) || (y[i] * ei > tol && alpha[i] > 0.0) {
                // Pick a random j ≠ i.
                let mut j = rng.gen_range(0..n - 1);
                if j >= i {
                    j += 1;
                }
                let ej = f(&alpha, bias, &kmat, y, j) - y[j];
                let (ai_old, aj_old) = (alpha[i], alpha[j]);
                let (lo, hi) = if (y[i] - y[j]).abs() > 1e-12 {
                    ((aj_old - ai_old).max(0.0), (c + aj_old - ai_old).min(c))
                } else {
                    ((ai_old + aj_old - c).max(0.0), (ai_old + aj_old).min(c))
                };
                if hi - lo < 1e-12 {
                    continue;
                }
                let eta = 2.0 * kmat[i * n + j] - kmat[i * n + i] - kmat[j * n + j];
                if eta >= -1e-12 {
                    continue;
                }
                let mut aj = aj_old - y[j] * (ei - ej) / eta;
                aj = aj.clamp(lo, hi);
                if (aj - aj_old).abs() < 1e-7 {
                    continue;
                }
                let ai = ai_old + y[i] * y[j] * (aj_old - aj);
                alpha[i] = ai;
                alpha[j] = aj;
                let b1 = bias - ei
                    - y[i] * (ai - ai_old) * kmat[i * n + i]
                    - y[j] * (aj - aj_old) * kmat[i * n + j];
                let b2 = bias - ej
                    - y[i] * (ai - ai_old) * kmat[i * n + j]
                    - y[j] * (aj - aj_old) * kmat[j * n + j];
                bias = if ai > 0.0 && ai < c {
                    b1
                } else if aj > 0.0 && aj < c {
                    b2
                } else {
                    0.5 * (b1 + b2)
                };
                changed += 1;
            }
        }
        if changed == 0 {
            passes += 1;
        } else {
            passes = 0;
        }
    }
    let mut sv_rows = Vec::new();
    let mut alpha_y = Vec::new();
    for (t, &a) in alpha.iter().enumerate() {
        if a > 1e-8 {
            sv_rows.push(sub[t]);
            alpha_y.push(a * y[t]);
        }
    }
    if sv_rows.is_empty() {
        // Degenerate solve: fall back to a bias-only machine voting for the
        // majority of this pair.
        let pos_count = y.iter().filter(|&&v| v > 0.0).count();
        bias = if pos_count * 2 >= n { 1.0 } else { -1.0 };
    }
    Some(BinarySvm { sv_rows, alpha_y, bias, pos, neg })
}

impl TrainedModel for TrainedSvm {
    fn predict_proba(&self, data: &Dataset, rows: &[usize]) -> Vec<Vec<f64>> {
        let xq = self.encoder.encode(data, rows);
        (0..xq.rows())
            .map(|q| {
                let qrow = xq.row(q);
                let mut votes = vec![0.0; self.n_classes];
                for m in &self.machines {
                    let mut score = m.bias;
                    for (&sv, &ay) in m.sv_rows.iter().zip(&m.alpha_y) {
                        score += ay * self.params.kernel_eval(self.x.row(sv), qrow);
                    }
                    if score >= 0.0 {
                        votes[m.pos as usize] += 1.0;
                    } else {
                        votes[m.neg as usize] += 1.0;
                    }
                }
                normalize_scores(votes)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartml_data::accuracy;
    use smartml_data::synth::{gaussian_blobs, two_spirals};

    fn holdout(clf: &Svm, d: &Dataset) -> f64 {
        let (train, test): (Vec<usize>, Vec<usize>) = (0..d.n_rows()).partition(|i| i % 2 == 0);
        let model = clf.fit(d, &train).unwrap();
        accuracy(&d.labels_for(&test), &model.predict(d, &test))
    }

    fn rbf() -> Svm {
        Svm { kernel: Kernel::Radial, cost: 1.0, gamma: 0.5, degree: 3, coef0: 0.0 }
    }

    #[test]
    fn linear_kernel_separable_blobs() {
        let d = gaussian_blobs("b", 200, 3, 2, 0.5, 1);
        let svm = Svm { kernel: Kernel::Linear, ..rbf() };
        assert!(holdout(&svm, &d) > 0.9);
    }

    #[test]
    fn rbf_solves_spirals() {
        let d = two_spirals("s", 300, 0.05, 2);
        let svm = Svm { gamma: 1.0, cost: 10.0, ..rbf() };
        let acc = holdout(&svm, &d);
        assert!(acc > 0.8, "acc {acc}");
    }

    #[test]
    fn multiclass_one_vs_one() {
        let d = gaussian_blobs("b", 240, 4, 4, 0.6, 3);
        let acc = holdout(&rbf(), &d);
        assert!(acc > 0.8, "acc {acc}");
    }

    #[test]
    fn polynomial_and_sigmoid_run() {
        let d = gaussian_blobs("b", 120, 3, 2, 0.8, 4);
        let poly = Svm { kernel: Kernel::Polynomial, gamma: 0.05, cost: 1.0, coef0: 1.0, degree: 2 };
        assert!(holdout(&poly, &d) > 0.6, "poly acc {}", holdout(&poly, &d));
        // Sigmoid kernels are notoriously fragile; require validity plus
        // not-catastrophic accuracy only.
        let sig = Svm { kernel: Kernel::Sigmoid, coef0: 1.0, ..rbf() };
        assert!(holdout(&sig, &d) >= 0.4, "sigmoid acc {}", holdout(&sig, &d));
    }

    #[test]
    fn probabilities_valid() {
        let d = gaussian_blobs("b", 90, 2, 3, 1.0, 5);
        let rows = d.all_rows();
        let model = rbf().fit(&d, &rows).unwrap();
        for p in model.predict_proba(&d, &rows) {
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn from_config_parses_kernel() {
        let cfg = ParamConfig::default().with("kernel", crate::params::ParamValue::Cat("linear".into()));
        assert_eq!(Svm::from_config(&cfg).kernel, Kernel::Linear);
        assert_eq!(Svm::from_config(&ParamConfig::default()).kernel, Kernel::Radial);
    }

    #[test]
    fn too_few_rows_rejected() {
        let d = gaussian_blobs("b", 10, 2, 2, 0.5, 6);
        assert!(rbf().fit(&d, &[0, 1]).is_err());
    }
}
