//! DeepBoost (paper: the `deepboost` R package, after Cortes, Mohri &
//! Syed 2014; 1 categorical + 4 numeric parameters).
//!
//! Deep boosting is boosting over a hypothesis family of trees whose
//! *complexity enters the objective*: each round's tree is scored by its
//! weighted error **plus** a capacity penalty `λ·leaves + β`, and the round
//! weight α is derived from the penalised error. Multiclass is handled with
//! SAMME, the same reduction the R package uses. `loss` switches between the
//! exponential and logistic weight updates of the original paper.

use crate::api::{check_fit_preconditions, normalize_scores, Classifier, ClassifierError, TrainedModel};
use crate::common::tree::{DecisionTree, Pruning, SplitCriterion, TreeConfig};
use crate::params::ParamConfig;
use smartml_data::Dataset;
use smartml_linalg::vecops;

/// Loss used for the instance-weight update.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoostLoss {
    /// AdaBoost-style exponential reweighting.
    Exponential,
    /// Bounded logistic reweighting (more noise-tolerant).
    Logistic,
}

/// A configured DeepBoost ensemble.
pub struct DeepBoost {
    /// Weight-update loss.
    pub loss: BoostLoss,
    /// Flat complexity penalty β added to each round's penalised error.
    pub beta: f64,
    /// Per-leaf complexity penalty λ.
    pub lambda: f64,
    /// Base-tree depth.
    pub tree_depth: usize,
    /// Boosting rounds.
    pub num_iter: usize,
}

impl DeepBoost {
    /// Builds from a [`ParamConfig`]
    /// (`loss`, `beta`, `lambda`, `tree_depth`, `num_iter`).
    pub fn from_config(config: &ParamConfig) -> Self {
        DeepBoost {
            loss: if config.str_or("loss", "exponential") == "logistic" {
                BoostLoss::Logistic
            } else {
                BoostLoss::Exponential
            },
            beta: config.f64_or("beta", 1e-4).max(0.0),
            lambda: config.f64_or("lambda", 1e-4).max(0.0),
            tree_depth: config.i64_or("tree_depth", 3).clamp(1, 12) as usize,
            num_iter: config.i64_or("num_iter", 30).clamp(1, 500) as usize,
        }
    }
}

struct TrainedDeepBoost {
    trees: Vec<(DecisionTree, f64)>,
    n_classes: usize,
}

impl Classifier for DeepBoost {
    fn name(&self) -> &'static str {
        "DeepBoost"
    }

    fn fit(&self, data: &Dataset, rows: &[usize]) -> Result<Box<dyn TrainedModel>, ClassifierError> {
        let n_classes = check_fit_preconditions("DeepBoost", data, rows, 4)?;
        let n = rows.len() as f64;
        let k = n_classes as f64;
        // Natural-unit weights (sum = n): keeps tree count thresholds valid.
        let mut weights = vec![0.0; data.n_rows()];
        for &r in rows {
            weights[r] = 1.0;
        }
        let mut trees: Vec<(DecisionTree, f64)> = Vec::with_capacity(self.num_iter);
        for t in 0..self.num_iter {
            // Expired trial: keep the rounds boosted so far (at least one).
            if t > 0 && smartml_runtime::faults::trial_should_stop() {
                break;
            }
            let config = TreeConfig {
                criterion: SplitCriterion::GainRatio,
                max_depth: self.tree_depth,
                min_split: 2.0,
                min_leaf: 1.0,
                cp: 0.0,
                mtry: None,
                seed: t as u64,
                pruning: Pruning::None,
                max_bins: 0,
            };
            let tree = DecisionTree::fit_weighted(data, rows, &weights, &config);
            let mut err = 0.0;
            let mut total = 0.0;
            let mut miss = Vec::with_capacity(rows.len());
            for &r in rows {
                let p = tree.row_proba(data, r);
                let pred = vecops::argmax(&p).unwrap_or(0) as u32;
                let wrong = pred != data.label(r);
                miss.push(wrong);
                total += weights[r];
                if wrong {
                    err += weights[r];
                }
            }
            let raw_err = err / total.max(1e-300);
            // Capacity-penalised error — the deep-boosting objective: richer
            // trees must earn their complexity.
            let penalised =
                (raw_err + self.lambda * tree.n_leaves() as f64 / n + self.beta).clamp(1e-6, 1.0 - 1e-6);
            if penalised >= 1.0 - 1.0 / k {
                if trees.is_empty() {
                    trees.push((tree, 1.0));
                }
                break;
            }
            let alpha = ((1.0 - penalised) / penalised).ln() + (k - 1.0).ln();
            // Weight update.
            let mut new_total = 0.0;
            for (i, &r) in rows.iter().enumerate() {
                if miss[i] {
                    let bump = match self.loss {
                        BoostLoss::Exponential => alpha.exp().min(1e6),
                        // Logistic: bounded multiplicative update.
                        BoostLoss::Logistic => 1.0 + alpha.min(20.0),
                    };
                    weights[r] *= bump;
                }
                new_total += weights[r];
            }
            let renorm = n / new_total;
            for &r in rows {
                weights[r] *= renorm;
            }
            trees.push((tree, alpha));
            if raw_err < 1e-5 {
                break;
            }
        }
        Ok(Box::new(TrainedDeepBoost { trees, n_classes }))
    }
}

impl TrainedModel for TrainedDeepBoost {
    fn predict_proba(&self, data: &Dataset, rows: &[usize]) -> Vec<Vec<f64>> {
        rows.iter()
            .map(|&r| {
                let mut scores = vec![0.0; self.n_classes];
                for (tree, alpha) in &self.trees {
                    let p = tree.row_proba(data, r);
                    let winner = vecops::argmax(&p).unwrap_or(0);
                    scores[winner] += alpha;
                }
                normalize_scores(scores)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartml_data::accuracy;
    use smartml_data::synth::{gaussian_blobs, two_spirals};

    fn holdout(clf: &dyn Classifier, d: &Dataset) -> f64 {
        let (train, test): (Vec<usize>, Vec<usize>) = (0..d.n_rows()).partition(|i| i % 2 == 0);
        let model = clf.fit(d, &train).unwrap();
        accuracy(&d.labels_for(&test), &model.predict(d, &test))
    }

    fn db() -> DeepBoost {
        DeepBoost {
            loss: BoostLoss::Exponential,
            beta: 1e-4,
            lambda: 1e-4,
            tree_depth: 3,
            num_iter: 30,
        }
    }

    #[test]
    fn learns_blobs() {
        let d = gaussian_blobs("b", 200, 3, 2, 0.8, 1);
        assert!(holdout(&db(), &d) > 0.85);
    }

    #[test]
    fn shallow_trees_boost_past_a_single_shallow_tree() {
        // Spirals: depth-3 trees are weak alone; boosting composes them
        // into a fine-grained boundary. (XOR is NOT used here: greedy trees
        // have zero first-split gain on parity data.)
        let d = two_spirals("s", 400, 0.15, 2);
        let single = crate::algorithms::RpartClassifier {
            cp: 0.0,
            minsplit: 2.0,
            minbucket: 1.0,
            maxdepth: 3,
            max_bins: 0,
        };
        let a_single = holdout(&single, &d);
        let a_boost = holdout(&db(), &d);
        assert!(a_boost > a_single + 0.05, "boost {a_boost} vs single depth-3 {a_single}");
        assert!(a_boost > 0.8, "boost {a_boost}");
    }

    #[test]
    fn heavy_penalty_shrinks_effective_ensemble() {
        let d = gaussian_blobs("b", 150, 3, 2, 1.5, 3);
        let rows = d.all_rows();
        let light = db().fit(&d, &rows).unwrap();
        let heavy = DeepBoost { lambda: 0.5, beta: 0.3, ..db() }.fit(&d, &rows).unwrap();
        // Both predict; heavy-penalty alphas are much smaller so the
        // ensemble is flatter. Just verify validity and a working fit.
        for p in heavy.predict_proba(&d, &rows).iter().chain(light.predict_proba(&d, &rows).iter()) {
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn logistic_loss_variant_runs() {
        let d = two_spirals("s", 300, 0.2, 4);
        let clf = DeepBoost { loss: BoostLoss::Logistic, ..db() };
        let acc = holdout(&clf, &d);
        assert!(acc > 0.6, "acc {acc}");
    }

    #[test]
    fn from_config_parses_loss() {
        let cfg = ParamConfig::default().with("loss", crate::params::ParamValue::Cat("logistic".into()));
        assert_eq!(DeepBoost::from_config(&cfg).loss, BoostLoss::Logistic);
        assert_eq!(DeepBoost::from_config(&ParamConfig::default()).loss, BoostLoss::Exponential);
    }
}
