//! k-nearest neighbours (paper: the `FNN` R package; 1 numeric parameter).

use super::encode::DenseEncoder;
use crate::api::{check_fit_preconditions, Classifier, ClassifierError, TrainedModel};
use crate::params::ParamConfig;
use smartml_data::Dataset;
use smartml_linalg::kernels;
use smartml_linalg::Matrix;

/// Brute-force k-NN over standardised dense features.
pub struct Knn {
    /// Number of neighbours.
    pub k: usize,
}

impl Knn {
    /// Builds from a [`ParamConfig`] (`k`).
    pub fn from_config(config: &ParamConfig) -> Self {
        Knn { k: config.i64_or("k", 5).max(1) as usize }
    }
}

struct TrainedKnn {
    encoder: DenseEncoder,
    x: Matrix,
    /// Flattened f32 copy of `x`, present when the opt-in reduced-precision
    /// distance path was enabled at fit time ([`kernels::set_f32_kernels`]).
    xf: Option<Vec<f32>>,
    y: Vec<u32>,
    k: usize,
    n_classes: usize,
}

impl Classifier for Knn {
    fn name(&self) -> &'static str {
        "KNN"
    }

    fn fit(&self, data: &Dataset, rows: &[usize]) -> Result<Box<dyn TrainedModel>, ClassifierError> {
        let n_classes = check_fit_preconditions("KNN", data, rows, 2)?;
        let (encoder, x) = DenseEncoder::fit(data, rows, true);
        let xf = kernels::use_f32_path().then(|| kernels::to_f32(x.as_slice()));
        Ok(Box::new(TrainedKnn {
            encoder,
            x,
            xf,
            y: data.labels_for(rows),
            k: self.k.min(rows.len()),
            n_classes,
        }))
    }
}

impl TrainedModel for TrainedKnn {
    fn predict_proba(&self, data: &Dataset, rows: &[usize]) -> Vec<Vec<f64>> {
        let xq = self.encoder.encode(data, rows);
        let n_train = self.x.rows();
        let d = self.x.cols();
        let mut out = Vec::with_capacity(rows.len());
        // (distance², train index) pairs, partially selected per query.
        let mut dists: Vec<(f64, usize)> = Vec::with_capacity(n_train);
        let mut qf32: Vec<f32> = Vec::new();
        for q in 0..xq.rows() {
            dists.clear();
            let qrow = xq.row(q);
            if let Some(xf) = &self.xf {
                qf32.clear();
                qf32.extend(qrow.iter().map(|&v| v as f32));
                for t in 0..n_train {
                    let d2 = kernels::squared_distance_f32(&qf32, &xf[t * d..(t + 1) * d]);
                    dists.push((d2, t));
                }
            } else {
                for t in 0..n_train {
                    let d2 = kernels::squared_distance(qrow, self.x.row(t));
                    dists.push((d2, t));
                }
            }
            let k = self.k.min(dists.len());
            dists.select_nth_unstable_by(k - 1, |a, b| a.0.partial_cmp(&b.0).unwrap());
            let mut votes = vec![0.0; self.n_classes];
            for &(_, t) in &dists[..k] {
                votes[self.y[t] as usize] += 1.0;
            }
            let total: f64 = votes.iter().sum();
            for v in &mut votes {
                *v /= total;
            }
            out.push(votes);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartml_data::synth::{gaussian_blobs, two_spirals};
    use smartml_data::accuracy;

    fn holdout_accuracy(clf: &dyn Classifier, d: &Dataset) -> f64 {
        let (train, test): (Vec<usize>, Vec<usize>) = (0..d.n_rows()).partition(|i| i % 2 == 0);
        let model = clf.fit(d, &train).unwrap();
        accuracy(&d.labels_for(&test), &model.predict(d, &test))
    }

    #[test]
    fn blobs_high_accuracy() {
        let d = gaussian_blobs("b", 200, 3, 2, 0.5, 1);
        assert!(holdout_accuracy(&Knn { k: 5 }, &d) > 0.9);
    }

    #[test]
    fn spirals_knn_shines() {
        // Local method: spirals are easy for k-NN, unlike linear models.
        let d = two_spirals("s", 300, 0.05, 2);
        assert!(holdout_accuracy(&Knn { k: 3 }, &d) > 0.85);
    }

    #[test]
    fn k_larger_than_train_is_clamped() {
        let d = gaussian_blobs("b", 20, 2, 2, 0.5, 3);
        let rows = d.all_rows();
        let model = Knn { k: 1000 }.fit(&d, &rows).unwrap();
        let proba = model.predict_proba(&d, &[0]);
        assert!((proba[0].iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn k1_memorises_training_data() {
        let d = gaussian_blobs("b", 60, 3, 3, 1.0, 4);
        let rows = d.all_rows();
        let model = Knn { k: 1 }.fit(&d, &rows).unwrap();
        assert_eq!(accuracy(&d.labels_for(&rows), &model.predict(&d, &rows)), 1.0);
    }

    #[test]
    fn from_config_defaults() {
        let knn = Knn::from_config(&ParamConfig::default());
        assert_eq!(knn.k, 5);
    }
}
