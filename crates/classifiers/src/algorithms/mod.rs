//! The 15 classifier implementations of paper Table 3.

mod deepboost;
mod discriminant;
pub(crate) mod encode;
mod ensemble;
mod knn;
mod lmt;
mod naive_bayes;
mod neuralnet;
mod plsda;
mod rules;
mod svm;
mod trees;

pub use deepboost::DeepBoost;
pub use discriminant::{Lda, Rda};
pub use ensemble::{BaggingClassifier, RandomForest};
pub use knn::Knn;
pub use lmt::LmtClassifier;
pub use naive_bayes::NaiveBayes;
pub use neuralnet::NeuralNet;
pub use plsda::Plsda;
pub use rules::PartClassifier;
pub use svm::{Kernel, Svm};
pub use trees::{C50Classifier, J48Classifier, RpartClassifier};
