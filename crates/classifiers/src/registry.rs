//! The algorithm registry: paper Table 3 as code.
//!
//! Each [`Algorithm`] knows its hyperparameter space (with the same
//! categorical/numeric split as Table 3) and how to construct a configured
//! [`Classifier`]. The SMAC tuner, the knowledge base, and the SmartML
//! pipeline all address classifiers through this registry.

use crate::algorithms::*;
use crate::api::{ClassifierError, TrainedModel};
use crate::params::{ParamConfig, ParamSpace, ParamSpec};
use crate::Classifier;
use serde::{Deserialize, Serialize};
use smartml_data::Dataset;
use smartml_obs::{span, Histogram};

static FIT_US: Histogram = Histogram::new("clf.fit_us");

/// Transparent fit-timing wrapper around a built classifier: records a
/// `clf.fit` span and a `clf.fit_us` histogram sample per training call.
/// Inert (one relaxed load per fit) while observability is disabled.
struct TimedClassifier {
    inner: Box<dyn Classifier>,
}

impl Classifier for TimedClassifier {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn fit(&self, data: &Dataset, rows: &[usize]) -> Result<Box<dyn TrainedModel>, ClassifierError> {
        if !smartml_obs::metrics_enabled() && !smartml_obs::tracing_enabled() {
            return self.inner.fit(data, rows);
        }
        let _s = span!("clf.fit", algo = self.inner.name(), rows = rows.len());
        let start = std::time::Instant::now();
        let out = self.inner.fit(data, rows);
        FIT_US.record_duration(start.elapsed());
        out
    }
}

/// The 15 classification algorithms of paper Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Algorithm {
    /// Support vector machine (paper: e1071).
    Svm,
    /// Naive Bayes (paper: klaR).
    NaiveBayes,
    /// k-nearest neighbours (paper: FNN).
    Knn,
    /// Bagged CART trees (paper: ipred).
    Bagging,
    /// PART rule learner (paper: RWeka).
    Part,
    /// C4.5 decision tree (paper: RWeka).
    J48,
    /// Random forest (paper: randomForest).
    RandomForest,
    /// C5.0 boosted trees (paper: C50).
    C50,
    /// CART decision tree (paper: rpart).
    Rpart,
    /// Linear discriminant analysis (paper: MASS).
    Lda,
    /// Partial least squares discriminant analysis (paper: caret).
    Plsda,
    /// Logistic model tree (paper: RWeka).
    Lmt,
    /// Regularised discriminant analysis (paper: klaR).
    Rda,
    /// Single-hidden-layer neural network (paper: nnet).
    NeuralNet,
    /// Deep boosting (paper: deepboost).
    DeepBoost,
}

impl Algorithm {
    /// All 15 algorithms, in paper Table 3 order.
    pub const ALL: [Algorithm; 15] = [
        Algorithm::Svm,
        Algorithm::NaiveBayes,
        Algorithm::Knn,
        Algorithm::Bagging,
        Algorithm::Part,
        Algorithm::J48,
        Algorithm::RandomForest,
        Algorithm::C50,
        Algorithm::Rpart,
        Algorithm::Lda,
        Algorithm::Plsda,
        Algorithm::Lmt,
        Algorithm::Rda,
        Algorithm::NeuralNet,
        Algorithm::DeepBoost,
    ];

    /// The algorithm name as printed in paper Table 3.
    pub fn paper_name(self) -> &'static str {
        match self {
            Algorithm::Svm => "SVM",
            Algorithm::NaiveBayes => "NaiveBayes",
            Algorithm::Knn => "KNN",
            Algorithm::Bagging => "Bagging",
            Algorithm::Part => "part",
            Algorithm::J48 => "J48",
            Algorithm::RandomForest => "RandomForest",
            Algorithm::C50 => "c50",
            Algorithm::Rpart => "rpart",
            Algorithm::Lda => "LDA",
            Algorithm::Plsda => "PLSDA",
            Algorithm::Lmt => "LMT",
            Algorithm::Rda => "RDA",
            Algorithm::NeuralNet => "NeuralNet",
            Algorithm::DeepBoost => "DeepBoost",
        }
    }

    /// The R package the paper wraps for this algorithm (Table 3 column 4).
    pub fn paper_package(self) -> &'static str {
        match self {
            Algorithm::Svm => "e1071",
            Algorithm::NaiveBayes => "klaR",
            Algorithm::Knn => "FNN",
            Algorithm::Bagging => "ipred",
            Algorithm::Part => "RWeka",
            Algorithm::J48 => "RWeka",
            Algorithm::RandomForest => "randomForest",
            Algorithm::C50 => "C50",
            Algorithm::Rpart => "rpart",
            Algorithm::Lda => "MASS",
            Algorithm::Plsda => "caret",
            Algorithm::Lmt => "RWeka",
            Algorithm::Rda => "klaR",
            Algorithm::NeuralNet => "nnet",
            Algorithm::DeepBoost => "deepboost",
        }
    }

    /// Parses a paper name back to the id.
    pub fn parse(s: &str) -> Option<Algorithm> {
        Algorithm::ALL.into_iter().find(|a| a.paper_name() == s)
    }

    /// The hyperparameter space (categorical/numeric counts match Table 3).
    pub fn param_space(self) -> ParamSpace {
        let real = |name: &str, lo: f64, hi: f64, log: bool| ParamSpec::Real {
            name: name.into(),
            lo,
            hi,
            log,
        };
        let int = |name: &str, lo: i64, hi: i64, log: bool| ParamSpec::Int {
            name: name.into(),
            lo,
            hi,
            log,
        };
        let cat = |name: &str, choices: &[&str]| ParamSpec::Cat {
            name: name.into(),
            choices: choices.iter().map(|s| s.to_string()).collect(),
        };
        match self {
            // 1 categorical + 4 numeric.
            Algorithm::Svm => ParamSpace::new(vec![
                cat("kernel", &["linear", "radial", "polynomial", "sigmoid"]),
                real("cost", 1e-2, 1e3, true),
                real("gamma", 1e-4, 10.0, true),
                int("degree", 2, 5, false),
                real("coef0", 0.0, 1.0, false),
            ]),
            // 0 + 2.
            Algorithm::NaiveBayes => ParamSpace::new(vec![
                real("laplace", 0.0, 10.0, false),
                real("adjust", 0.25, 4.0, true),
            ]),
            // 0 + 1.
            Algorithm::Knn => ParamSpace::new(vec![int("k", 1, 50, true)]),
            // 0 + 5.
            Algorithm::Bagging => ParamSpace::new(vec![
                int("nbagg", 5, 60, true),
                int("maxdepth", 1, 30, false),
                int("minsplit", 2, 20, false),
                int("minbucket", 1, 10, false),
                real("cp", 1e-4, 0.1, true),
            ]),
            // 1 + 2.
            Algorithm::Part => ParamSpace::new(vec![
                cat("pruned", &["yes", "no"]),
                real("confidence", 0.05, 0.5, false),
                int("min_obj", 1, 10, false),
            ]),
            // 1 + 2.
            Algorithm::J48 => ParamSpace::new(vec![
                cat("pruned", &["yes", "no"]),
                real("confidence", 0.05, 0.5, false),
                int("min_obj", 1, 10, false),
            ]),
            // 0 + 3.
            Algorithm::RandomForest => ParamSpace::new(vec![
                int("ntree", 10, 150, true),
                int("mtry", 1, 24, true),
                int("nodesize", 1, 10, false),
            ]),
            // 3 + 2.
            Algorithm::C50 => ParamSpace::new(vec![
                cat("winnow", &["yes", "no"]),
                cat("rules", &["yes", "no"]),
                cat("global_pruning", &["yes", "no"]),
                int("trials", 1, 30, true),
                real("cf", 0.05, 0.5, false),
            ]),
            // 0 + 4.
            Algorithm::Rpart => ParamSpace::new(vec![
                real("cp", 1e-4, 0.2, true),
                int("minsplit", 2, 20, false),
                int("minbucket", 1, 10, false),
                int("maxdepth", 2, 30, false),
            ]),
            // 1 + 1.
            Algorithm::Lda => ParamSpace::new(vec![
                cat("method", &["moment", "shrinkage"]),
                real("tol", 1e-6, 0.5, true),
            ]),
            // 1 + 1.
            Algorithm::Plsda => ParamSpace::new(vec![
                cat("prob_method", &["softmax", "bayes"]),
                int("ncomp", 1, 10, false),
            ]),
            // 0 + 1.
            Algorithm::Lmt => ParamSpace::new(vec![int("min_instances", 5, 60, true)]),
            // 0 + 2.
            Algorithm::Rda => ParamSpace::new(vec![
                real("gamma", 0.0, 1.0, false),
                real("lambda", 0.0, 1.0, false),
            ]),
            // 0 + 1.
            Algorithm::NeuralNet => ParamSpace::new(vec![int("size", 1, 24, true)]),
            // 1 + 4.
            Algorithm::DeepBoost => ParamSpace::new(vec![
                cat("loss", &["exponential", "logistic"]),
                real("beta", 1e-6, 0.1, true),
                real("lambda", 1e-6, 0.1, true),
                int("tree_depth", 1, 6, false),
                int("num_iter", 10, 80, true),
            ]),
        }
    }

    /// Builds a configured, untrained classifier. Out-of-domain or missing
    /// values are repaired against the space first, so any KB-stored
    /// configuration is safe to use.
    pub fn build(self, config: &ParamConfig) -> Box<dyn Classifier> {
        Box::new(TimedClassifier { inner: self.build_untimed(config) })
    }

    fn build_untimed(self, config: &ParamConfig) -> Box<dyn Classifier> {
        let config = self.param_space().repair(config);
        match self {
            Algorithm::Svm => Box::new(Svm::from_config(&config)),
            Algorithm::NaiveBayes => Box::new(NaiveBayes::from_config(&config)),
            Algorithm::Knn => Box::new(Knn::from_config(&config)),
            Algorithm::Bagging => Box::new(BaggingClassifier::from_config(&config)),
            Algorithm::Part => Box::new(PartClassifier::from_config(&config)),
            Algorithm::J48 => Box::new(J48Classifier::from_config(&config)),
            Algorithm::RandomForest => Box::new(RandomForest::from_config(&config)),
            Algorithm::C50 => Box::new(C50Classifier::from_config(&config)),
            Algorithm::Rpart => Box::new(RpartClassifier::from_config(&config)),
            Algorithm::Lda => Box::new(Lda::from_config(&config)),
            Algorithm::Plsda => Box::new(Plsda::from_config(&config)),
            Algorithm::Lmt => Box::new(LmtClassifier::from_config(&config)),
            Algorithm::Rda => Box::new(Rda::from_config(&config)),
            Algorithm::NeuralNet => Box::new(NeuralNet::from_config(&config)),
            Algorithm::DeepBoost => Box::new(DeepBoost::from_config(&config)),
        }
    }

    /// Full spec (space + metadata) for display.
    pub fn spec(self) -> AlgorithmSpec {
        let space = self.param_space();
        AlgorithmSpec {
            algorithm: self,
            n_categorical: space.n_categorical(),
            n_numeric: space.n_numeric(),
            space,
        }
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.paper_name())
    }
}

/// An algorithm's registry entry.
#[derive(Debug, Clone)]
pub struct AlgorithmSpec {
    /// Which algorithm.
    pub algorithm: Algorithm,
    /// Number of categorical hyperparameters (paper Table 3).
    pub n_categorical: usize,
    /// Number of numeric hyperparameters (paper Table 3).
    pub n_numeric: usize,
    /// The full space.
    pub space: ParamSpace,
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Paper Table 3 (categorical, numeric) counts, in `Algorithm::ALL` order.
    const PAPER_COUNTS: [(usize, usize); 15] = [
        (1, 4), // SVM
        (0, 2), // NaiveBayes
        (0, 1), // KNN
        (0, 5), // Bagging
        (1, 2), // part
        (1, 2), // J48
        (0, 3), // RandomForest
        (3, 2), // c50
        (0, 4), // rpart
        (1, 1), // LDA
        (1, 1), // PLSDA
        (0, 1), // LMT
        (0, 2), // RDA
        (0, 1), // NeuralNet
        (1, 4), // DeepBoost
    ];

    #[test]
    fn param_counts_match_paper_table3() {
        for (alg, &(cat, num)) in Algorithm::ALL.iter().zip(&PAPER_COUNTS) {
            let space = alg.param_space();
            assert_eq!(space.n_categorical(), cat, "{alg} categorical count");
            assert_eq!(space.n_numeric(), num, "{alg} numeric count");
        }
    }

    #[test]
    fn there_are_15_classifiers() {
        assert_eq!(Algorithm::ALL.len(), 15);
    }

    #[test]
    fn names_roundtrip() {
        for alg in Algorithm::ALL {
            assert_eq!(Algorithm::parse(alg.paper_name()), Some(alg));
        }
        assert_eq!(Algorithm::parse("xgboost"), None);
    }

    #[test]
    fn packages_match_paper() {
        assert_eq!(Algorithm::Svm.paper_package(), "e1071");
        assert_eq!(Algorithm::Lmt.paper_package(), "RWeka");
        assert_eq!(Algorithm::DeepBoost.paper_package(), "deepboost");
    }

    #[test]
    fn build_works_from_default_configs() {
        for alg in Algorithm::ALL {
            let config = alg.param_space().default_config();
            let clf = alg.build(&config);
            assert_eq!(clf.name(), alg.paper_name());
        }
    }

    #[test]
    fn build_repairs_empty_config() {
        for alg in Algorithm::ALL {
            let clf = alg.build(&ParamConfig::default());
            assert_eq!(clf.name(), alg.paper_name());
        }
    }

    #[test]
    fn serde_roundtrip() {
        let json = serde_json::to_string(&Algorithm::J48).unwrap();
        let back: Algorithm = serde_json::from_str(&json).unwrap();
        assert_eq!(back, Algorithm::J48);
    }
}
