//! The SmartML classifier zoo — the 15 algorithms of paper Table 3, each
//! re-implemented from scratch in Rust with the same hyperparameter space
//! *shape* (categorical/numeric parameter counts) as the R package the paper
//! wraps. See `DESIGN.md`, substitution 2.
//!
//! | Algorithm     | cat | num | R package     | here                         |
//! |---------------|-----|-----|---------------|------------------------------|
//! | SVM           | 1   | 4   | e1071         | SMO, one-vs-one              |
//! | NaiveBayes    | 0   | 2   | klaR          | Gaussian + categorical NB    |
//! | KNN           | 0   | 1   | FNN           | brute-force k-NN             |
//! | Bagging       | 0   | 5   | ipred         | bagged CART trees            |
//! | part          | 1   | 2   | RWeka         | rule list from C4.5 trees    |
//! | J48           | 1   | 2   | RWeka         | C4.5 (gain ratio + pruning)  |
//! | RandomForest  | 0   | 3   | randomForest  | random forest                |
//! | c50           | 3   | 2   | C50           | boosted C4.5                 |
//! | rpart         | 0   | 4   | rpart         | CART (Gini + cp)             |
//! | LDA           | 1   | 1   | MASS          | linear discriminant          |
//! | PLSDA         | 1   | 1   | caret         | PLS-DA (NIPALS)              |
//! | LMT           | 0   | 1   | RWeka         | logistic model tree          |
//! | RDA           | 0   | 2   | klaR          | regularised discriminant     |
//! | NeuralNet     | 0   | 1   | nnet          | 1-hidden-layer MLP           |
//! | DeepBoost     | 1   | 4   | deepboost     | margin-penalised boosting    |
//!
//! All classifiers implement [`Classifier`]; the registry maps
//! [`Algorithm`] ids to hyperparameter spaces ([`ParamSpace`]) and
//! constructors, which is the interface the SMAC tuner and the knowledge
//! base operate through.

//! ```
//! use smartml_classifiers::{Algorithm, ParamConfig, ParamValue};
//! use smartml_data::synth::gaussian_blobs;
//! use smartml_data::accuracy;
//!
//! let data = gaussian_blobs("demo", 200, 3, 2, 0.6, 1);
//! let (train, test): (Vec<usize>, Vec<usize>) = (0..200).partition(|i| i % 2 == 0);
//! let config = ParamConfig::default().with("ntree", ParamValue::Int(40));
//! let model = Algorithm::RandomForest.build(&config).fit(&data, &train).unwrap();
//! let acc = accuracy(&data.labels_for(&test), &model.predict(&data, &test));
//! assert!(acc > 0.9);
//! ```

pub mod algorithms;
mod api;
pub mod common;
mod params;
mod registry;

pub use api::{Classifier, ClassifierError, TrainedModel};
pub use params::{ParamConfig, ParamSpace, ParamSpec, ParamValue};
pub use registry::{Algorithm, AlgorithmSpec};
