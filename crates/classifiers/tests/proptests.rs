//! Property-based tests for the classifier substrate: decision-tree
//! invariants, hyperparameter-space laws, and the registry contract.

use proptest::prelude::*;
use smartml_classifiers::common::tree::{DecisionTree, Pruning, SplitCriterion, TreeConfig};
use smartml_classifiers::{Algorithm, ParamConfig, ParamValue};
use smartml_data::synth::SynthSpec;
use smartml_data::Dataset;

fn blob(n: usize, d: usize, k: usize, spread: f64, seed: u64) -> Dataset {
    SynthSpec::Blobs { n, d, k, spread }.generate("prop", seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn tree_depth_and_leaf_bounds_hold(
        n in 30usize..150,
        max_depth in 1usize..8,
        min_leaf in 1usize..6,
        seed in 0u64..500,
    ) {
        let data = blob(n, 3, 2, 1.5, seed);
        let config = TreeConfig {
            max_depth,
            min_leaf: min_leaf as f64,
            min_split: 2.0 * min_leaf as f64,
            ..TreeConfig::default()
        };
        let rows = data.all_rows();
        let tree = DecisionTree::fit(&data, &rows, &config);
        prop_assert!(tree.depth() <= max_depth);
        // A binary tree of depth D has at most 2^D leaves; min_leaf bounds
        // leaves by n/min_leaf.
        prop_assert!(tree.n_leaves() <= (1usize << max_depth.min(20)));
        prop_assert!(tree.n_leaves() <= n / min_leaf + 1);
    }

    #[test]
    fn tree_probabilities_are_distributions(
        n in 30usize..120,
        k in 2usize..5,
        seed in 0u64..500,
    ) {
        let data = blob(n, 3, k, 1.0, seed);
        let rows = data.all_rows();
        let tree = DecisionTree::fit(&data, &rows, &TreeConfig::default());
        for p in tree.predict_proba(&data, &rows) {
            let total: f64 = p.iter().sum();
            prop_assert!((total - 1.0).abs() < 1e-9);
            prop_assert_eq!(p.len(), k);
        }
    }

    #[test]
    fn pruned_tree_never_larger(
        n in 40usize..150,
        spread in 1.0f64..4.0,
        seed in 0u64..500,
    ) {
        let data = blob(n, 3, 2, spread, seed);
        let rows = data.all_rows();
        let unpruned = DecisionTree::fit(&data, &rows, &TreeConfig::default());
        let pruned = DecisionTree::fit(
            &data,
            &rows,
            &TreeConfig { pruning: Pruning::Pessimistic { cf: 0.25 }, ..TreeConfig::default() },
        );
        prop_assert!(pruned.n_leaves() <= unpruned.n_leaves());
    }

    #[test]
    fn gain_ratio_and_gini_both_learn_separable_data(seed in 0u64..200) {
        let data = blob(120, 3, 2, 0.4, seed);
        let rows = data.all_rows();
        for criterion in [SplitCriterion::Gini, SplitCriterion::GainRatio] {
            let tree = DecisionTree::fit(
                &data,
                &rows,
                &TreeConfig { criterion, ..TreeConfig::default() },
            );
            let correct = rows
                .iter()
                .filter(|&&r| {
                    let p = tree.row_proba(&data, r);
                    smartml_linalg::vecops::argmax(&p).unwrap() as u32 == data.label(r)
                })
                .count();
            prop_assert!(
                correct as f64 / rows.len() as f64 > 0.9,
                "{criterion:?}: train accuracy {}",
                correct as f64 / rows.len() as f64
            );
        }
    }

    #[test]
    fn rules_partition_matches_leaf_count(
        n in 30usize..100,
        seed in 0u64..300,
    ) {
        let data = blob(n, 2, 2, 1.0, seed);
        let rows = data.all_rows();
        let tree = DecisionTree::fit(&data, &rows, &TreeConfig::default());
        let rules = tree.extract_rules();
        prop_assert_eq!(rules.len(), tree.n_leaves());
        let coverage: f64 = rules.iter().map(|r| r.coverage()).sum();
        prop_assert!((coverage - n as f64).abs() < 1e-9);
    }

    #[test]
    fn every_space_samples_neighbours_encodes(
        alg_idx in 0usize..15,
        seed in 0u64..1000,
    ) {
        let alg = Algorithm::ALL[alg_idx];
        let space = alg.param_space();
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let config = space.sample(&mut rng);
        prop_assert!(space.validates(&config));
        let neighbour = space.neighbor(&config, 0.5, &mut rng);
        prop_assert!(space.validates(&neighbour));
        let encoded = space.encode(&config);
        prop_assert_eq!(encoded.len(), space.n_params());
        prop_assert!(encoded.iter().all(|v| (-1e-9..=1.0 + 1e-9).contains(v)));
    }

    #[test]
    fn repair_is_idempotent(
        alg_idx in 0usize..15,
        junk in -1e6f64..1e6,
        seed in 0u64..1000,
    ) {
        let alg = Algorithm::ALL[alg_idx];
        let space = alg.param_space();
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let mut broken = space.sample(&mut rng);
        // Corrupt one parameter with an arbitrary real.
        if let Some(name) = space.params.first().map(|p| p.name().to_string()) {
            broken.values.insert(name, ParamValue::Real(junk));
        }
        let fixed = space.repair(&broken);
        prop_assert!(space.validates(&fixed), "{alg}: {fixed}");
        prop_assert_eq!(space.repair(&fixed), fixed.clone());
    }

    #[test]
    fn repaired_empty_config_builds_every_algorithm(alg_idx in 0usize..15) {
        let alg = Algorithm::ALL[alg_idx];
        let clf = alg.build(&ParamConfig::default());
        prop_assert_eq!(clf.name(), alg.paper_name());
    }
}
