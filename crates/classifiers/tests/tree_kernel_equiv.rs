//! Equivalence properties for the presorted tree-training kernel: on the
//! exact path (`max_bins: 0`), [`DecisionTree::fit_weighted`] must be
//! *bitwise* identical to the retained naive grower
//! (`common::tree::oracle`) — same splits, same thresholds, same leaf
//! probabilities — across random datasets with heavy ties, missing values
//! (numeric NaN and categorical `MISSING_CODE`), non-uniform weights, and
//! both split criteria.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use smartml_classifiers::common::tree::{oracle, DecisionTree, Pruning, SplitCriterion, TreeConfig};
use smartml_data::dataset::{Dataset, Feature, MISSING_CODE};

/// Random mixed-type dataset with small value alphabets (so ties are the
/// norm, not the exception) and `nan_pct`% missing cells, plus per-row
/// weights in {0.5, 1.0, 1.5, 2.0}.
fn random_dataset(
    seed: u64,
    n: usize,
    n_num: usize,
    n_cat: usize,
    k: usize,
    nan_pct: u64,
) -> (Dataset, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut features = Vec::new();
    for f in 0..n_num {
        let alphabet = rng.gen_range(2..8u32);
        let values = (0..n)
            .map(|_| {
                if rng.gen_range(0..100u64) < nan_pct {
                    f64::NAN
                } else {
                    rng.gen_range(0..alphabet) as f64 * 0.37 - 1.0
                }
            })
            .collect();
        features.push(Feature::Numeric { name: format!("x{f}"), values });
    }
    for f in 0..n_cat {
        let n_levels = rng.gen_range(2..5u32);
        let codes = (0..n)
            .map(|_| {
                if rng.gen_range(0..100u64) < nan_pct {
                    MISSING_CODE
                } else {
                    rng.gen_range(0..n_levels)
                }
            })
            .collect();
        features.push(Feature::Categorical {
            name: format!("c{f}"),
            codes,
            levels: (0..n_levels).map(|l| format!("l{l}")).collect(),
        });
    }
    let labels: Vec<u32> = (0..n).map(|_| rng.gen_range(0..k as u32)).collect();
    let weights: Vec<f64> = (0..n).map(|_| rng.gen_range(1..5u32) as f64 * 0.5).collect();
    let class_names = (0..k).map(|c| format!("k{c}")).collect();
    (Dataset::new("equiv", features, labels, class_names).unwrap(), weights)
}

fn assert_trees_identical(data: &Dataset, new: &DecisionTree, old: &DecisionTree) {
    let rows = data.all_rows();
    assert_eq!(new.n_leaves(), old.n_leaves(), "leaf count diverged");
    assert_eq!(new.depth(), old.depth(), "depth diverged");
    assert_eq!(new.feature_usage(), old.feature_usage(), "split features diverged");
    // Bitwise: Vec<Vec<f64>> equality is exact f64 equality per cell.
    assert_eq!(new.predict_proba(data, &rows), old.predict_proba(data, &rows), "probas diverged");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn presorted_tree_matches_oracle_bitwise(
        seed in 0u64..100_000,
        n in 20usize..90,
        n_num in 1usize..4,
        n_cat in 0usize..3,
        k in 2usize..4,
        knobs in 0u64..3360, // mixed radix: nan_pct(30) · crit(2) · depth(7) · mtry(2) · prune(2)
    ) {
        let nan_pct = knobs % 30;
        let crit = (knobs / 30) % 2;
        let max_depth = 2 + ((knobs / 60) % 7) as usize;
        let use_mtry = (knobs / 420) % 2;
        let prune = (knobs / 840) % 2;
        let (data, weights) = random_dataset(seed, n, n_num, n_cat, k, nan_pct);
        let config = TreeConfig {
            criterion: if crit == 0 { SplitCriterion::Gini } else { SplitCriterion::GainRatio },
            max_depth,
            min_split: 2.0,
            min_leaf: 1.0,
            cp: 0.0,
            mtry: if use_mtry == 1 { Some((n_num + n_cat).div_ceil(2)) } else { None },
            seed,
            pruning: if prune == 1 { Pruning::Pessimistic { cf: 0.25 } } else { Pruning::None },
            max_bins: 0,
        };
        let rows = data.all_rows();
        let new = DecisionTree::fit_weighted(&data, &rows, &weights, &config);
        let old = oracle::fit_weighted(&data, &rows, &weights, &config);
        assert_trees_identical(&data, &new, &old);
    }

    #[test]
    fn presorted_tree_matches_oracle_on_row_subsets(
        seed in 0u64..100_000,
        n in 30usize..80,
        stride in 2usize..4,
    ) {
        // Fitting on a strict subset exercises the fit-row → slot indirection.
        let (data, weights) = random_dataset(seed, n, 3, 1, 3, 10);
        let rows: Vec<usize> = (0..n).step_by(stride).collect();
        let config = TreeConfig { seed, ..TreeConfig::default() };
        let new = DecisionTree::fit_weighted(&data, &rows, &weights, &config);
        let old = oracle::fit_weighted(&data, &rows, &weights, &config);
        assert_trees_identical(&data, &new, &old);
    }
}
