//! Opt-in f32 compute path: cross-model agreement with the default f64
//! path. Lives in its own test binary because [`kernels::set_f32_kernels`]
//! is process-wide — an isolated process keeps the knob from leaking into
//! unrelated suites.
//!
//! The contract under test: with the knob on, kNN and SVM run their
//! distance/kernel evaluations through the f32 kernels (f32 lanes, f64
//! accumulators) and must still predict (near-)identically to the f64
//! path on well-separated data — reduced precision trades ulps, not
//! decisions.

use smartml_classifiers::{Algorithm, ParamConfig};
use smartml_data::synth::gaussian_blobs;
use smartml_linalg::kernels;

fn agreement(a: &[u32], b: &[u32]) -> f64 {
    let same = a.iter().zip(b).filter(|(x, y)| x == y).count();
    same as f64 / a.len() as f64
}

#[test]
fn f32_path_matches_f64_decisions() {
    assert!(!kernels::f32_kernels_enabled(), "f32 path must be opt-in");
    let data = gaussian_blobs("f32-blobs", 300, 6, 3, 0.7, 11);
    let (train, test): (Vec<usize>, Vec<usize>) = (0..data.n_rows()).partition(|i| i % 2 == 0);
    let truth = data.labels_for(&test);

    for alg in [Algorithm::Knn, Algorithm::Svm] {
        let name = format!("{alg}");
        let clf = alg.build(&ParamConfig::default());
        let f64_model = clf.fit(&data, &train).unwrap();
        let f64_pred = f64_model.predict(&data, &test);

        kernels::set_f32_kernels(true);
        let f32_model = clf.fit(&data, &train).unwrap();
        let f32_pred = f32_model.predict(&data, &test);
        kernels::set_f32_kernels(false);

        // ulp-level kernel differences may flip a point sitting exactly on
        // a decision boundary, but nothing more.
        let agree = agreement(&f64_pred, &f32_pred);
        assert!(agree >= 0.97, "{name}: f32 vs f64 agreement {agree}");
        // And both paths must actually solve the (easy) task.
        let acc64 = agreement(&truth, &f64_pred);
        let acc32 = agreement(&truth, &f32_pred);
        assert!(acc64 > 0.9 && acc32 > 0.9, "{name}: acc64 {acc64} acc32 {acc32}");
    }
}

#[test]
fn f32_path_bumps_path_counters() {
    let data = gaussian_blobs("f32-counter", 80, 4, 2, 0.8, 5);
    let rows = data.all_rows();
    kernels::set_f32_kernels(true);
    let before = kernels::use_f32_path(); // bumps linalg.kernel.f32_path
    kernels::set_f32_kernels(false);
    assert!(before, "knob on => f32 path chosen");
    assert!(!kernels::use_f32_path(), "knob off => f64 path chosen");
    // The models themselves consult the knob exactly once per fit/predict
    // cycle; a knob-off fit must not retain any f32 state.
    let model = Algorithm::Knn.build(&ParamConfig::default()).fit(&data, &rows).unwrap();
    let pred = model.predict(&data, &rows);
    assert_eq!(pred.len(), rows.len());
}
