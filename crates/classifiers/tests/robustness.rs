//! Robustness suite: every one of the 15 classifiers against degenerate
//! and adversarial inputs. The contract: `fit` either succeeds (and then
//! `predict_proba` returns valid distributions) or returns a structured
//! error — never a panic, never NaN probabilities.

use smartml_classifiers::{Algorithm, ParamConfig};
use smartml_data::dataset::MISSING_CODE;
use smartml_data::synth::{categorical_mixture, gaussian_blobs};
use smartml_data::{Dataset, Feature};

/// Checks the contract for one algorithm on one dataset.
fn check(alg: Algorithm, data: &Dataset, label: &str) {
    let rows = data.all_rows();
    let clf = alg.build(&ParamConfig::default());
    match clf.fit(data, &rows) {
        Ok(model) => {
            let proba = model.predict_proba(data, &rows);
            assert_eq!(proba.len(), rows.len(), "{alg} on {label}: row count");
            for (i, p) in proba.iter().enumerate() {
                assert_eq!(p.len(), data.n_classes(), "{alg} on {label}: class count");
                let total: f64 = p.iter().sum();
                assert!(
                    (total - 1.0).abs() < 1e-6,
                    "{alg} on {label}: row {i} sums to {total}"
                );
                assert!(
                    p.iter().all(|v| v.is_finite() && *v >= -1e-12),
                    "{alg} on {label}: row {i} has invalid probabilities {p:?}"
                );
            }
            let preds = model.predict(data, &rows);
            assert!(
                preds.iter().all(|&c| (c as usize) < data.n_classes()),
                "{alg} on {label}: out-of-range class prediction"
            );
        }
        Err(e) => {
            // Structured failure is acceptable on degenerate input.
            assert!(!e.to_string().is_empty(), "{alg} on {label}: empty error");
        }
    }
}

fn all_algorithms(data: &Dataset, label: &str) {
    for alg in Algorithm::ALL {
        check(alg, data, label);
    }
}

#[test]
fn constant_features() {
    let d = Dataset::new(
        "constant",
        vec![
            Feature::Numeric { name: "c1".into(), values: vec![1.0; 40] },
            Feature::Numeric { name: "c2".into(), values: vec![-3.5; 40] },
        ],
        (0..40).map(|i| (i % 2) as u32).collect(),
        vec!["a".into(), "b".into()],
    )
    .unwrap();
    all_algorithms(&d, "constant features");
}

#[test]
fn minimum_viable_dataset() {
    // Four rows, two per class — the smallest thing most fitters accept.
    let d = Dataset::new(
        "tiny",
        vec![Feature::Numeric { name: "x".into(), values: vec![0.0, 0.1, 5.0, 5.1] }],
        vec![0, 0, 1, 1],
        vec!["a".into(), "b".into()],
    )
    .unwrap();
    all_algorithms(&d, "4-row dataset");
}

#[test]
fn all_categorical_features() {
    let d = categorical_mixture("all-cat", 120, 5, 0, 3, 4, 1);
    assert_eq!(d.numeric_feature_indices().len(), 0);
    all_algorithms(&d, "all-categorical");
}

#[test]
fn heavy_missingness() {
    // 40% missing cells in both column types.
    let n = 100;
    let mut numeric: Vec<f64> = (0..n).map(|i| (i % 2) as f64 * 4.0 + (i % 7) as f64 * 0.1).collect();
    let mut codes: Vec<u32> = (0..n).map(|i| (i % 3) as u32).collect();
    for i in 0..n {
        if i % 5 < 2 {
            numeric[i] = f64::NAN;
            codes[i] = MISSING_CODE;
        }
    }
    let d = Dataset::new(
        "missing",
        vec![
            Feature::Numeric { name: "x".into(), values: numeric },
            Feature::Categorical {
                name: "c".into(),
                codes,
                levels: vec!["p".into(), "q".into(), "r".into()],
            },
        ],
        (0..n).map(|i| (i % 2) as u32).collect(),
        vec!["a".into(), "b".into()],
    )
    .unwrap();
    all_algorithms(&d, "40% missing");
}

#[test]
fn severe_class_imbalance() {
    // 95:5 imbalance with 100 rows.
    let labels: Vec<u32> = (0..100).map(|i| u32::from(i >= 95)).collect();
    let values: Vec<f64> = labels.iter().map(|&l| l as f64 * 3.0 + (l as f64 + 1.0) * 0.01).collect();
    let jitter: Vec<f64> = (0..100).map(|i| ((i * 37) % 13) as f64 * 0.05).collect();
    let d = Dataset::new(
        "imbalanced",
        vec![
            Feature::Numeric { name: "x".into(), values },
            Feature::Numeric { name: "j".into(), values: jitter },
        ],
        labels,
        vec!["major".into(), "minor".into()],
    )
    .unwrap();
    all_algorithms(&d, "95:5 imbalance");
}

#[test]
fn many_classes_few_rows_each() {
    // 8 classes x 6 rows.
    let d = gaussian_blobs("many-classes", 48, 3, 8, 0.5, 3);
    all_algorithms(&d, "8 classes x 6 rows");
}

#[test]
fn duplicated_rows() {
    // Every row appears 5 times: ties everywhere in sort-based code paths.
    let base = gaussian_blobs("dup-base", 20, 2, 2, 1.0, 4);
    let rows: Vec<usize> = (0..20).flat_map(|r| std::iter::repeat_n(r, 5)).collect();
    let d = base.subset(&rows);
    all_algorithms(&d, "duplicated rows");
}

#[test]
fn extreme_feature_scales() {
    // One feature in 1e9 units, one in 1e-9 — standardisation must cope.
    let labels: Vec<u32> = (0..60).map(|i| (i % 2) as u32).collect();
    let big: Vec<f64> = labels.iter().enumerate().map(|(i, &l)| 1e9 * (l as f64 + 1.0) + i as f64).collect();
    let small: Vec<f64> = labels.iter().enumerate().map(|(i, &l)| 1e-9 * (l as f64 + 1.0) + 1e-12 * i as f64).collect();
    let d = Dataset::new(
        "scales",
        vec![
            Feature::Numeric { name: "big".into(), values: big },
            Feature::Numeric { name: "small".into(), values: small },
        ],
        labels,
        vec!["a".into(), "b".into()],
    )
    .unwrap();
    all_algorithms(&d, "extreme scales");
}

#[test]
fn unseen_categorical_level_at_predict_time() {
    // Train on rows where level "z" never appears; predict on a row with it.
    let levels = vec!["x".into(), "y".into(), "z".into()];
    let codes: Vec<u32> = (0..60).map(|i| (i % 2) as u32).chain(std::iter::once(2)).collect();
    let numeric: Vec<f64> = (0..61).map(|i| (i % 2) as f64 * 2.0 + (i % 5) as f64 * 0.1).collect();
    let labels: Vec<u32> = (0..61).map(|i| (i % 2) as u32).collect();
    let d = Dataset::new(
        "unseen-level",
        vec![
            Feature::Categorical { name: "c".into(), codes, levels },
            Feature::Numeric { name: "x".into(), values: numeric },
        ],
        labels,
        vec!["a".into(), "b".into()],
    )
    .unwrap();
    let train: Vec<usize> = (0..60).collect();
    for alg in Algorithm::ALL {
        let clf = alg.build(&ParamConfig::default());
        if let Ok(model) = clf.fit(&d, &train) {
            // Row 60 carries the never-seen level "z".
            let p = model.predict_proba(&d, &[60]);
            let total: f64 = p[0].iter().sum();
            assert!(
                (total - 1.0).abs() < 1e-6 && p[0].iter().all(|v| v.is_finite()),
                "{alg}: unseen level broke prediction: {:?}",
                p[0]
            );
        }
    }
}
