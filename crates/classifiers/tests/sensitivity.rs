//! Hyperparameter sensitivity: the parameters SMAC tunes must actually
//! change model behaviour. For each algorithm family, two configurations at
//! the extremes of a key parameter must produce measurably different models
//! — otherwise tuning that parameter is theatre.

use smartml_classifiers::{Algorithm, Classifier, ParamConfig, ParamValue};
use smartml_data::synth::{gaussian_blobs, two_spirals};
use smartml_data::{accuracy, Dataset};

fn holdout(clf: &dyn Classifier, data: &Dataset) -> f64 {
    let (train, test): (Vec<usize>, Vec<usize>) = (0..data.n_rows()).partition(|i| i % 2 == 0);
    match clf.fit(data, &train) {
        Ok(model) => accuracy(&data.labels_for(&test), &model.predict(data, &test)),
        Err(_) => f64::NAN,
    }
}

/// Two configs of the same algorithm whose holdout predictions differ.
fn assert_predictions_differ(alg: Algorithm, a: ParamConfig, b: ParamConfig, data: &Dataset) {
    let (train, test): (Vec<usize>, Vec<usize>) = (0..data.n_rows()).partition(|i| i % 2 == 0);
    let ma = alg.build(&a).fit(data, &train).expect("config a fits");
    let mb = alg.build(&b).fit(data, &train).expect("config b fits");
    let pa = ma.predict(data, &test);
    let pb = mb.predict(data, &test);
    assert_ne!(pa, pb, "{alg}: configs {a} and {b} predict identically");
}

#[test]
fn knn_k_controls_smoothness() {
    // k=1 memorises; k=49 over-smooths a fine-grained boundary.
    let d = two_spirals("knn-k", 300, 0.1, 1);
    let k1 = ParamConfig::default().with("k", ParamValue::Int(1));
    let k49 = ParamConfig::default().with("k", ParamValue::Int(49));
    let a1 = holdout(&*Algorithm::Knn.build(&k1), &d);
    let a49 = holdout(&*Algorithm::Knn.build(&k49), &d);
    assert!(a1 > a49 + 0.05, "k=1 {a1} vs k=49 {a49} on spirals");
}

#[test]
fn svm_kernel_choice_matters() {
    // Spirals: linear fails, RBF works.
    let d = two_spirals("svm-kernel", 300, 0.1, 2);
    let linear = ParamConfig::default()
        .with("kernel", ParamValue::Cat("linear".into()))
        .with("cost", ParamValue::Real(1.0));
    let rbf = ParamConfig::default()
        .with("kernel", ParamValue::Cat("radial".into()))
        .with("cost", ParamValue::Real(10.0))
        .with("gamma", ParamValue::Real(1.0));
    let a_lin = holdout(&*Algorithm::Svm.build(&linear), &d);
    let a_rbf = holdout(&*Algorithm::Svm.build(&rbf), &d);
    assert!(a_rbf > a_lin + 0.1, "rbf {a_rbf} vs linear {a_lin} on spirals");
}

#[test]
fn rpart_maxdepth_limits_capacity() {
    let d = two_spirals("rpart-depth", 300, 0.1, 3);
    let shallow = ParamConfig::default()
        .with("maxdepth", ParamValue::Int(2))
        .with("cp", ParamValue::Real(1e-4));
    let deep = ParamConfig::default()
        .with("maxdepth", ParamValue::Int(20))
        .with("cp", ParamValue::Real(1e-4))
        .with("minsplit", ParamValue::Int(2))
        .with("minbucket", ParamValue::Int(1));
    let a_shallow = holdout(&*Algorithm::Rpart.build(&shallow), &d);
    let a_deep = holdout(&*Algorithm::Rpart.build(&deep), &d);
    assert!(a_deep > a_shallow + 0.05, "deep {a_deep} vs shallow {a_shallow}");
}

#[test]
fn random_forest_ntree_stabilises() {
    // More trees should not hurt, and usually helps, on noisy data.
    let d = two_spirals("rf-ntree", 300, 0.4, 4);
    let few = ParamConfig::default()
        .with("ntree", ParamValue::Int(10))
        .with("mtry", ParamValue::Int(1));
    let many = ParamConfig::default()
        .with("ntree", ParamValue::Int(120))
        .with("mtry", ParamValue::Int(1));
    let a_few = holdout(&*Algorithm::RandomForest.build(&few), &d);
    let a_many = holdout(&*Algorithm::RandomForest.build(&many), &d);
    assert!(a_many >= a_few - 0.03, "120 trees {a_many} vs 10 trees {a_few}");
}

#[test]
fn nb_adjust_changes_probability_sharpness() {
    let d = gaussian_blobs("nb-adjust", 150, 3, 2, 1.5, 5);
    let rows = d.all_rows();
    let sharp = Algorithm::NaiveBayes
        .build(&ParamConfig::default().with("adjust", ParamValue::Real(0.25)))
        .fit(&d, &rows)
        .unwrap();
    let smooth = Algorithm::NaiveBayes
        .build(&ParamConfig::default().with("adjust", ParamValue::Real(4.0)))
        .fit(&d, &rows)
        .unwrap();
    // Wider likelihoods → probabilities closer to uniform.
    let conf = |m: &dyn smartml_classifiers::TrainedModel| {
        m.predict_proba(&d, &rows)
            .iter()
            .map(|p| p.iter().copied().fold(0.0, f64::max))
            .sum::<f64>()
    };
    assert!(
        conf(sharp.as_ref()) > conf(smooth.as_ref()),
        "bandwidth adjust had no effect on confidence"
    );
}

#[test]
fn neuralnet_size_changes_capacity() {
    let d = two_spirals("nn-size", 300, 0.1, 6);
    assert_predictions_differ(
        Algorithm::NeuralNet,
        ParamConfig::default().with("size", ParamValue::Int(1)),
        ParamConfig::default().with("size", ParamValue::Int(20)),
        &d,
    );
    let a1 = holdout(
        &*Algorithm::NeuralNet.build(&ParamConfig::default().with("size", ParamValue::Int(1))),
        &d,
    );
    let a20 = holdout(
        &*Algorithm::NeuralNet.build(&ParamConfig::default().with("size", ParamValue::Int(20))),
        &d,
    );
    assert!(a20 > a1, "size=20 {a20} not better than size=1 {a1} on spirals");
}

#[test]
fn deepboost_iterations_matter() {
    let d = two_spirals("db-iter", 300, 0.15, 7);
    let one = ParamConfig::default()
        .with("num_iter", ParamValue::Int(1))
        .with("tree_depth", ParamValue::Int(2));
    let many = ParamConfig::default()
        .with("num_iter", ParamValue::Int(60))
        .with("tree_depth", ParamValue::Int(2));
    let a1 = holdout(&*Algorithm::DeepBoost.build(&one), &d);
    let a60 = holdout(&*Algorithm::DeepBoost.build(&many), &d);
    assert!(a60 > a1 + 0.05, "60 rounds {a60} vs 1 round {a1}");
}

#[test]
fn rda_regularisation_helps_when_d_is_large() {
    // 40 features, 80 rows: raw per-class covariance is singular territory.
    let d = gaussian_blobs("rda-reg", 80, 40, 2, 1.0, 8);
    let raw = ParamConfig::default()
        .with("gamma", ParamValue::Real(0.0))
        .with("lambda", ParamValue::Real(0.0));
    let reg = ParamConfig::default()
        .with("gamma", ParamValue::Real(0.6))
        .with("lambda", ParamValue::Real(0.8));
    let a_raw = holdout(&*Algorithm::Rda.build(&raw), &d);
    let a_reg = holdout(&*Algorithm::Rda.build(&reg), &d);
    // raw may fail (NaN) or underperform; regularised must work well.
    assert!(a_reg > 0.8, "regularised RDA {a_reg}");
    assert!(a_raw.is_nan() || a_reg >= a_raw - 0.05, "raw {a_raw} reg {a_reg}");
}

#[test]
fn plsda_ncomp_matters() {
    let d = gaussian_blobs("pls-ncomp", 160, 10, 3, 1.0, 9);
    assert_predictions_differ(
        Algorithm::Plsda,
        ParamConfig::default().with("ncomp", ParamValue::Int(1)),
        ParamConfig::default().with("ncomp", ParamValue::Int(6)),
        &d,
    );
}

#[test]
fn j48_min_obj_controls_leaf_granularity() {
    let d = two_spirals("j48-minobj", 240, 0.2, 10);
    assert_predictions_differ(
        Algorithm::J48,
        ParamConfig::default().with("min_obj", ParamValue::Int(1)),
        ParamConfig::default().with("min_obj", ParamValue::Int(10)),
        &d,
    );
}

#[test]
fn lmt_min_instances_trades_tree_vs_logistic() {
    let d = two_spirals("lmt-min", 240, 0.2, 11);
    assert_predictions_differ(
        Algorithm::Lmt,
        ParamConfig::default().with("min_instances", ParamValue::Int(5)),
        ParamConfig::default().with("min_instances", ParamValue::Int(60)),
        &d,
    );
}

#[test]
fn bagging_nbagg_changes_predictions() {
    let d = two_spirals("bag-n", 240, 0.3, 12);
    assert_predictions_differ(
        Algorithm::Bagging,
        ParamConfig::default().with("nbagg", ParamValue::Int(5)),
        ParamConfig::default().with("nbagg", ParamValue::Int(60)),
        &d,
    );
}
