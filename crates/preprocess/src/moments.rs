//! Moment-based transforms: `center`, `scale`, `range`, and `zv`
//! (paper Table 2, rows 1–4).

use crate::transform::{
    map_numeric_columns, numeric_train_column, FittedTransform, PreprocessError, Transform,
};
use smartml_data::{Dataset, Feature};
use smartml_linalg::vecops;

/// `center` — subtract the training mean from every numeric value.
pub struct Center;

struct FittedCenter {
    means: Vec<f64>,
}

impl Transform for Center {
    fn name(&self) -> &'static str {
        "center"
    }
    fn fit(
        &self,
        data: &Dataset,
        rows: &[usize],
    ) -> Result<Box<dyn FittedTransform>, PreprocessError> {
        let means = numeric_column_stats(data, rows, vecops::mean);
        Ok(Box::new(FittedCenter { means }))
    }
}

impl FittedTransform for FittedCenter {
    fn apply(&self, data: &Dataset) -> Dataset {
        map_numeric_columns(data, |i, v| v - self.means[i])
    }
}

/// `scale` — divide every numeric value by the training standard deviation.
/// Constant columns (σ = 0) pass through unchanged.
pub struct Scale;

struct FittedScale {
    stds: Vec<f64>,
}

impl Transform for Scale {
    fn name(&self) -> &'static str {
        "scale"
    }
    fn fit(
        &self,
        data: &Dataset,
        rows: &[usize],
    ) -> Result<Box<dyn FittedTransform>, PreprocessError> {
        let stds = numeric_column_stats(data, rows, vecops::std_dev);
        Ok(Box::new(FittedScale { stds }))
    }
}

impl FittedTransform for FittedScale {
    fn apply(&self, data: &Dataset) -> Dataset {
        map_numeric_columns(data, |i, v| {
            let s = self.stds[i];
            if s > 1e-300 {
                v / s
            } else {
                v
            }
        })
    }
}

/// `range` — min-max normalise numeric values to `[0, 1]` using training
/// extremes. Constant columns map to 0. Validation rows outside the training
/// range extrapolate linearly (standard caret behaviour).
pub struct Range;

struct FittedRange {
    mins: Vec<f64>,
    spans: Vec<f64>,
}

impl Transform for Range {
    fn name(&self) -> &'static str {
        "range"
    }
    fn fit(
        &self,
        data: &Dataset,
        rows: &[usize],
    ) -> Result<Box<dyn FittedTransform>, PreprocessError> {
        let mins = numeric_column_stats(data, rows, vecops::min);
        let maxs = numeric_column_stats(data, rows, vecops::max);
        let spans = mins.iter().zip(&maxs).map(|(lo, hi)| hi - lo).collect();
        Ok(Box::new(FittedRange { mins, spans }))
    }
}

impl FittedTransform for FittedRange {
    fn apply(&self, data: &Dataset) -> Dataset {
        map_numeric_columns(data, |i, v| {
            let span = self.spans[i];
            if span > 1e-300 && span.is_finite() {
                (v - self.mins[i]) / span
            } else {
                0.0
            }
        })
    }
}

/// `zv` — remove attributes with zero variance on the training rows.
/// Numeric columns with σ = 0 and categorical columns where a single level
/// covers all training rows are dropped.
pub struct ZeroVariance;

struct FittedZeroVariance {
    /// Feature indices (into the input dataset) to keep, in order.
    keep: Vec<usize>,
}

impl Transform for ZeroVariance {
    fn name(&self) -> &'static str {
        "zv"
    }
    fn fit(
        &self,
        data: &Dataset,
        rows: &[usize],
    ) -> Result<Box<dyn FittedTransform>, PreprocessError> {
        let mut keep = Vec::with_capacity(data.n_features());
        for (idx, feat) in data.features().iter().enumerate() {
            let varies = match feat {
                Feature::Numeric { values, .. } => {
                    let col = numeric_train_column(values, rows);
                    vecops::variance(&col) > 1e-300
                }
                Feature::Categorical { codes, .. } => {
                    let mut seen: Option<u32> = None;
                    let mut varies = false;
                    for &r in rows {
                        let c = codes[r];
                        match seen {
                            None => seen = Some(c),
                            Some(prev) if prev != c => {
                                varies = true;
                                break;
                            }
                            _ => {}
                        }
                    }
                    varies
                }
            };
            if varies {
                keep.push(idx);
            }
        }
        Ok(Box::new(FittedZeroVariance { keep }))
    }
}

impl FittedTransform for FittedZeroVariance {
    fn apply(&self, data: &Dataset) -> Dataset {
        let features = self.keep.iter().map(|&i| data.feature(i).clone()).collect();
        data.with_features(features)
    }
}

/// Computes `stat` over the training rows of each numeric column, in
/// numeric-column order (the order [`map_numeric_columns`] indexes with).
fn numeric_column_stats(
    data: &Dataset,
    rows: &[usize],
    stat: impl Fn(&[f64]) -> f64,
) -> Vec<f64> {
    data.features()
        .iter()
        .filter_map(|f| match f {
            Feature::Numeric { values, .. } => Some(stat(&numeric_train_column(values, rows))),
            _ => None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset(cols: Vec<Vec<f64>>) -> Dataset {
        let n = cols[0].len();
        let features = cols
            .into_iter()
            .enumerate()
            .map(|(i, values)| Feature::Numeric { name: format!("f{i}"), values })
            .collect();
        Dataset::new("t", features, vec![0; n], vec!["a".into()]).unwrap()
    }

    fn col(d: &Dataset, i: usize) -> &[f64] {
        match d.feature(i) {
            Feature::Numeric { values, .. } => values,
            _ => panic!("expected numeric"),
        }
    }

    #[test]
    fn center_zeroes_train_mean() {
        let d = dataset(vec![vec![1.0, 2.0, 3.0, 100.0]]);
        // Fit on first three rows only; mean = 2.
        let f = Center.fit(&d, &[0, 1, 2]).unwrap();
        let out = f.apply(&d);
        assert_eq!(col(&out, 0), &[-1.0, 0.0, 1.0, 98.0]);
    }

    #[test]
    fn scale_unit_variance() {
        let d = dataset(vec![vec![0.0, 2.0, 4.0]]);
        let f = Scale.fit(&d, &[0, 1, 2]).unwrap();
        let out = f.apply(&d);
        let s = vecops::std_dev(&[0.0, 2.0, 4.0]);
        assert!((col(&out, 0)[2] - 4.0 / s).abs() < 1e-12);
    }

    #[test]
    fn scale_constant_column_passthrough() {
        let d = dataset(vec![vec![5.0, 5.0, 5.0]]);
        let f = Scale.fit(&d, &[0, 1, 2]).unwrap();
        let out = f.apply(&d);
        assert_eq!(col(&out, 0), &[5.0, 5.0, 5.0]);
    }

    #[test]
    fn range_maps_to_unit_interval() {
        let d = dataset(vec![vec![10.0, 20.0, 30.0]]);
        let f = Range.fit(&d, &[0, 1, 2]).unwrap();
        let out = f.apply(&d);
        assert_eq!(col(&out, 0), &[0.0, 0.5, 1.0]);
    }

    #[test]
    fn range_extrapolates_outside_train() {
        let d = dataset(vec![vec![10.0, 20.0, 40.0]]);
        let f = Range.fit(&d, &[0, 1]).unwrap(); // train range [10, 20]
        let out = f.apply(&d);
        assert_eq!(col(&out, 0), &[0.0, 1.0, 3.0]);
    }

    #[test]
    fn zv_drops_constant_numeric() {
        let d = dataset(vec![vec![1.0, 2.0], vec![7.0, 7.0]]);
        let f = ZeroVariance.fit(&d, &[0, 1]).unwrap();
        let out = f.apply(&d);
        assert_eq!(out.n_features(), 1);
        assert_eq!(out.feature(0).name(), "f0");
    }

    #[test]
    fn zv_drops_single_level_categorical() {
        let d = Dataset::new(
            "t",
            vec![
                Feature::Categorical {
                    name: "const".into(),
                    codes: vec![0, 0],
                    levels: vec!["a".into(), "b".into()],
                },
                Feature::Categorical {
                    name: "varies".into(),
                    codes: vec![0, 1],
                    levels: vec!["a".into(), "b".into()],
                },
            ],
            vec![0, 1],
            vec!["x".into(), "y".into()],
        )
        .unwrap();
        let f = ZeroVariance.fit(&d, &[0, 1]).unwrap();
        let out = f.apply(&d);
        assert_eq!(out.n_features(), 1);
        assert_eq!(out.feature(0).name(), "varies");
    }

    #[test]
    fn zv_variance_judged_on_train_rows_only() {
        // Column varies overall but is constant on the training rows.
        let d = dataset(vec![vec![3.0, 3.0, 9.0]]);
        let f = ZeroVariance.fit(&d, &[0, 1]).unwrap();
        let out = f.apply(&d);
        assert_eq!(out.n_features(), 0);
    }
}
