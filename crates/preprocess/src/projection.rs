//! Projection transforms: `pca` and `ica` (paper Table 2, rows 7–8).
//!
//! Both operate on the numeric columns only: the fitted projection replaces
//! all numeric columns with component columns (`PC1..`, `IC1..`) and keeps
//! categorical columns unchanged.

use crate::transform::{FittedTransform, PreprocessError, Transform};
use smartml_data::{Dataset, Feature};
use smartml_linalg::{covariance_matrix, eigh, Matrix};

/// `pca` — principal component analysis via the covariance eigenproblem.
pub struct Pca {
    /// Keep the smallest number of components explaining at least this
    /// fraction of total variance (capped by `max_components`).
    pub variance_to_keep: f64,
    /// Hard cap on the number of components (0 = no cap).
    pub max_components: usize,
}

impl Default for Pca {
    fn default() -> Self {
        Pca { variance_to_keep: 0.95, max_components: 0 }
    }
}

struct FittedPca {
    means: Vec<f64>,
    /// `d x k` projection: columns are the kept eigenvectors.
    components: Matrix,
}

impl Transform for Pca {
    fn name(&self) -> &'static str {
        "pca"
    }
    fn fit(
        &self,
        data: &Dataset,
        rows: &[usize],
    ) -> Result<Box<dyn FittedTransform>, PreprocessError> {
        let (x, means) = numeric_train_matrix(data, rows, "pca")?;
        if x.rows() < 2 {
            return Err(PreprocessError::TooFewRows { step: "pca", needed: 2, got: x.rows() });
        }
        let cov = covariance_matrix(&x);
        let (vals, vecs) = eigh(&cov);
        let total: f64 = vals.iter().map(|v| v.max(0.0)).sum();
        let mut k = 0usize;
        if total > 1e-300 {
            let mut acc = 0.0;
            for &v in &vals {
                acc += v.max(0.0);
                k += 1;
                if acc / total >= self.variance_to_keep {
                    break;
                }
            }
        } else {
            k = 1; // degenerate data: keep a single (arbitrary) direction
        }
        if self.max_components > 0 {
            k = k.min(self.max_components);
        }
        k = k.max(1);
        let d = cov.rows();
        let mut components = Matrix::zeros(d, k);
        for c in 0..k {
            for r in 0..d {
                components[(r, c)] = vecs[(r, c)];
            }
        }
        Ok(Box::new(FittedPca { means, components }))
    }
}

impl FittedTransform for FittedPca {
    fn apply(&self, data: &Dataset) -> Dataset {
        project(data, &self.means, &self.components, "PC")
    }
}

/// `ica` — FastICA with the tanh contrast function and symmetric
/// decorrelation, after PCA whitening.
pub struct FastIca {
    /// Number of independent components (0 = as many as whitened dims, ≤ 10).
    pub n_components: usize,
    /// Maximum fixed-point iterations.
    pub max_iter: usize,
}

impl Default for FastIca {
    fn default() -> Self {
        FastIca { n_components: 0, max_iter: 200 }
    }
}

struct FittedIca {
    means: Vec<f64>,
    /// Combined whitening + unmixing projection, `d x k`.
    projection: Matrix,
}

impl Transform for FastIca {
    fn name(&self) -> &'static str {
        "ica"
    }
    fn fit(
        &self,
        data: &Dataset,
        rows: &[usize],
    ) -> Result<Box<dyn FittedTransform>, PreprocessError> {
        let (x, means) = numeric_train_matrix(data, rows, "ica")?;
        let n = x.rows();
        if n < 3 {
            return Err(PreprocessError::TooFewRows { step: "ica", needed: 3, got: n });
        }
        // Whiten: keep eigendirections with non-negligible variance.
        let cov = covariance_matrix(&x);
        let (vals, vecs) = eigh(&cov);
        let d = cov.rows();
        let usable: usize = vals.iter().filter(|&&v| v > 1e-10).count();
        if usable == 0 {
            return Err(PreprocessError::Numerical {
                step: "ica",
                detail: "all numeric columns are constant".into(),
            });
        }
        let mut k = if self.n_components == 0 { usable.min(10) } else { self.n_components };
        k = k.min(usable).max(1);
        // Whitening matrix W_white: d x k, columns = v_i / sqrt(λ_i).
        let mut white = Matrix::zeros(d, k);
        for c in 0..k {
            let scale = 1.0 / vals[c].sqrt();
            for r in 0..d {
                white[(r, c)] = vecs[(r, c)] * scale;
            }
        }
        // Centered data, whitened: z = (x - mean) * white, n x k.
        let centered = center(&x, &means);
        let z = centered.matmul(&white);
        // FastICA fixed-point with symmetric decorrelation.
        let mut w = deterministic_orthogonal_init(k);
        for _ in 0..self.max_iter {
            let prev = w.clone();
            // For each component i: w_i <- E[z g(w_i·z)] - E[g'(w_i·z)] w_i.
            let mut new_w = Matrix::zeros(k, k);
            for i in 0..k {
                let wi: Vec<f64> = (0..k).map(|j| w[(i, j)]).collect();
                let mut ezg = vec![0.0; k];
                let mut eg_prime = 0.0;
                for r in 0..z.rows() {
                    let zr = z.row(r);
                    let s: f64 = zr.iter().zip(&wi).map(|(a, b)| a * b).sum();
                    let g = s.tanh();
                    let g_prime = 1.0 - g * g;
                    eg_prime += g_prime;
                    for (e, &zv) in ezg.iter_mut().zip(zr) {
                        *e += zv * g;
                    }
                }
                let nf = z.rows() as f64;
                for j in 0..k {
                    new_w[(i, j)] = ezg[j] / nf - eg_prime / nf * wi[j];
                }
            }
            w = symmetric_decorrelate(&new_w);
            // Convergence: every |<w_i, w_i_prev>| near 1.
            let mut converged = true;
            for i in 0..k {
                let dot: f64 = (0..k).map(|j| w[(i, j)] * prev[(i, j)]).sum();
                if (dot.abs() - 1.0).abs() > 1e-6 {
                    converged = false;
                    break;
                }
            }
            if converged {
                break;
            }
        }
        // Full projection: centered_x * white * wᵀ  →  d x k overall.
        let projection = white.matmul(&w.transpose());
        Ok(Box::new(FittedIca { means, projection }))
    }
}

impl FittedTransform for FittedIca {
    fn apply(&self, data: &Dataset) -> Dataset {
        project(data, &self.means, &self.projection, "IC")
    }
}

/// Symmetric decorrelation: `W <- (W Wᵀ)^{-1/2} W`.
fn symmetric_decorrelate(w: &Matrix) -> Matrix {
    let wwt = w.matmul(&w.transpose());
    let (vals, vecs) = eigh(&wwt);
    let k = wwt.rows();
    let mut inv_sqrt = Matrix::zeros(k, k);
    for i in 0..k {
        let v = vals[i].max(1e-12);
        inv_sqrt[(i, i)] = 1.0 / v.sqrt();
    }
    vecs.matmul(&inv_sqrt).matmul(&vecs.transpose()).matmul(w)
}

/// Deterministic full-rank starting matrix (seedless reproducibility):
/// identity plus small off-diagonal ripple, then decorrelated.
fn deterministic_orthogonal_init(k: usize) -> Matrix {
    let mut m = Matrix::identity(k);
    for i in 0..k {
        for j in 0..k {
            if i != j {
                m[(i, j)] = 0.1 * ((i * 31 + j * 17) % 7) as f64 / 7.0;
            }
        }
    }
    symmetric_decorrelate(&m)
}

/// Gathers numeric columns over training rows into a matrix; NaNs replaced by
/// train means (imputation is expected to have run first; this is a safety net).
fn numeric_train_matrix(
    data: &Dataset,
    rows: &[usize],
    step: &'static str,
) -> Result<(Matrix, Vec<f64>), PreprocessError> {
    let numeric_cols: Vec<&Vec<f64>> = data
        .features()
        .iter()
        .filter_map(|f| match f {
            Feature::Numeric { values, .. } => Some(values),
            _ => None,
        })
        .collect();
    if numeric_cols.is_empty() {
        return Err(PreprocessError::NoNumericColumns { step });
    }
    let d = numeric_cols.len();
    let mut means = vec![0.0; d];
    let mut m = Matrix::zeros(rows.len(), d);
    for (c, colv) in numeric_cols.iter().enumerate() {
        let mut sum = 0.0;
        let mut count = 0usize;
        for &r in rows {
            if !colv[r].is_nan() {
                sum += colv[r];
                count += 1;
            }
        }
        let mean = if count > 0 { sum / count as f64 } else { 0.0 };
        means[c] = mean;
        for (i, &r) in rows.iter().enumerate() {
            m[(i, c)] = if colv[r].is_nan() { mean } else { colv[r] };
        }
    }
    Ok((m, means))
}

fn center(x: &Matrix, means: &[f64]) -> Matrix {
    let mut out = x.clone();
    for r in 0..out.rows() {
        let row = out.row_mut(r);
        for (v, &m) in row.iter_mut().zip(means) {
            *v -= m;
        }
    }
    out
}

/// Applies a fitted projection to every row, producing `prefix{1..k}` numeric
/// columns and passing categorical columns through.
fn project(data: &Dataset, means: &[f64], projection: &Matrix, prefix: &str) -> Dataset {
    let n = data.n_rows();
    let k = projection.cols();
    // Gather all numeric values row-wise (NaN → fitted mean).
    let numeric_cols: Vec<&Vec<f64>> = data
        .features()
        .iter()
        .filter_map(|f| match f {
            Feature::Numeric { values, .. } => Some(values),
            _ => None,
        })
        .collect();
    let mut out_cols = vec![vec![0.0; n]; k];
    let mut row_buf = vec![0.0; numeric_cols.len()];
    for r in 0..n {
        for (c, colv) in numeric_cols.iter().enumerate() {
            let v = colv[r];
            row_buf[c] = if v.is_nan() { means[c] } else { v } - means[c];
        }
        for (c, out) in out_cols.iter_mut().enumerate() {
            let mut s = 0.0;
            for (j, &rv) in row_buf.iter().enumerate() {
                s += rv * projection[(j, c)];
            }
            out[r] = s;
        }
    }
    let mut features: Vec<Feature> = out_cols
        .into_iter()
        .enumerate()
        .map(|(i, values)| Feature::Numeric { name: format!("{prefix}{}", i + 1), values })
        .collect();
    for f in data.features() {
        if let Feature::Categorical { .. } = f {
            features.push(f.clone());
        }
    }
    data.with_features(features)
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartml_linalg::vecops;

    /// 2-D data stretched along the (1,1) diagonal.
    fn diagonal_data(n: usize) -> Dataset {
        let mut x = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            let t = (i as f64 / n as f64 - 0.5) * 10.0;
            let jitter = ((i * 37) % 11) as f64 / 11.0 - 0.5;
            x.push(t + jitter * 0.3);
            y.push(t - jitter * 0.3);
        }
        Dataset::new(
            "diag",
            vec![
                Feature::Numeric { name: "x".into(), values: x },
                Feature::Numeric { name: "y".into(), values: y },
            ],
            vec![0; n],
            vec!["a".into()],
        )
        .unwrap()
    }

    fn col(d: &Dataset, i: usize) -> &[f64] {
        match d.feature(i) {
            Feature::Numeric { values, .. } => values,
            _ => panic!(),
        }
    }

    #[test]
    fn pca_keeps_dominant_direction() {
        let d = diagonal_data(100);
        let rows = d.all_rows();
        let f = Pca::default().fit(&d, &rows).unwrap();
        let out = f.apply(&d);
        // 95% variance of a strongly diagonal cloud is one component.
        assert_eq!(out.n_features(), 1);
        assert_eq!(out.feature(0).name(), "PC1");
        // The component variance should be close to the total input variance.
        let pc1_var = vecops::variance(col(&out, 0));
        let in_var = vecops::variance(col(&d, 0)) + vecops::variance(col(&d, 1));
        assert!(pc1_var > 0.9 * in_var, "pc1 {pc1_var} vs total {in_var}");
    }

    #[test]
    fn pca_components_are_centered() {
        let d = diagonal_data(60);
        let rows = d.all_rows();
        let f = Pca::default().fit(&d, &rows).unwrap();
        let out = f.apply(&d);
        assert!(vecops::mean(col(&out, 0)).abs() < 1e-9);
    }

    #[test]
    fn pca_max_components_cap() {
        let d = diagonal_data(50);
        let rows = d.all_rows();
        let f = Pca { variance_to_keep: 1.0, max_components: 1 }.fit(&d, &rows).unwrap();
        let out = f.apply(&d);
        assert_eq!(out.n_features(), 1);
    }

    #[test]
    fn pca_rejects_all_categorical() {
        let d = Dataset::new(
            "c",
            vec![Feature::Categorical {
                name: "c".into(),
                codes: vec![0, 1],
                levels: vec!["a".into(), "b".into()],
            }],
            vec![0, 1],
            vec!["x".into(), "y".into()],
        )
        .unwrap();
        assert!(matches!(
            Pca::default().fit(&d, &[0, 1]),
            Err(PreprocessError::NoNumericColumns { .. })
        ));
    }

    #[test]
    fn pca_keeps_categorical_columns() {
        let mut d = diagonal_data(40);
        let mut features: Vec<Feature> = d.features().to_vec();
        features.push(Feature::Categorical {
            name: "cat".into(),
            codes: (0..40).map(|i| (i % 2) as u32).collect(),
            levels: vec!["a".into(), "b".into()],
        });
        d = d.with_features(features);
        let rows = d.all_rows();
        let out = Pca::default().fit(&d, &rows).unwrap().apply(&d);
        assert!(out.features().iter().any(|f| f.name() == "cat"));
    }

    /// Two independent uniform sources mixed linearly: ICA components should
    /// be much less Gaussian (higher |kurtosis|) than the mixed inputs.
    #[test]
    fn ica_unmixes_uniform_sources() {
        let n = 400;
        let mut s1 = Vec::with_capacity(n);
        let mut s2 = Vec::with_capacity(n);
        for i in 0..n {
            // Deterministic pseudo-uniform sources.
            s1.push(((i * 7919) % 1000) as f64 / 1000.0 - 0.5);
            s2.push(((i * 104729) % 1000) as f64 / 1000.0 - 0.5);
        }
        let x: Vec<f64> = s1.iter().zip(&s2).map(|(a, b)| a + 0.5 * b).collect();
        let y: Vec<f64> = s1.iter().zip(&s2).map(|(a, b)| 0.3 * a - b).collect();
        let d = Dataset::new(
            "mix",
            vec![
                Feature::Numeric { name: "x".into(), values: x },
                Feature::Numeric { name: "y".into(), values: y },
            ],
            vec![0; n],
            vec!["a".into()],
        )
        .unwrap();
        let rows = d.all_rows();
        let out = FastIca::default().fit(&d, &rows).unwrap().apply(&d);
        assert_eq!(out.n_features(), 2);
        assert!(out.feature(0).name().starts_with("IC"));
        // Unmixed uniform sources have kurtosis near -1.2; check both
        // components are clearly sub-Gaussian.
        for i in 0..2 {
            let kurt = vecops::kurtosis(col(&out, i));
            assert!(kurt < -0.6, "component {i} kurtosis {kurt} not sub-Gaussian");
        }
    }

    #[test]
    fn ica_components_unit_variance() {
        let d = diagonal_data(100);
        let rows = d.all_rows();
        let out = FastIca::default().fit(&d, &rows).unwrap().apply(&d);
        for i in 0..out.n_features() {
            let v = vecops::variance(col(&out, i));
            assert!((v - 1.0).abs() < 0.2, "component {i} variance {v}");
        }
    }

    #[test]
    fn ica_rejects_constant_data() {
        let d = Dataset::new(
            "k",
            vec![Feature::Numeric { name: "x".into(), values: vec![1.0; 10] }],
            vec![0; 10],
            vec!["a".into()],
        )
        .unwrap();
        let rows = d.all_rows();
        assert!(FastIca::default().fit(&d, &rows).is_err());
    }
}
