//! The fit/apply transform abstraction and pipeline composition.

use smartml_data::Dataset;

/// Errors from fitting preprocessing steps.
#[derive(Debug, Clone, PartialEq)]
pub enum PreprocessError {
    /// The step needs at least this many training rows.
    TooFewRows { step: &'static str, needed: usize, got: usize },
    /// The step needs at least one numeric column (e.g. PCA on all-categorical data).
    NoNumericColumns { step: &'static str },
    /// A numerical failure with context (e.g. eigendecomposition degenerated).
    Numerical { step: &'static str, detail: String },
}

impl std::fmt::Display for PreprocessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PreprocessError::TooFewRows { step, needed, got } => {
                write!(f, "{step}: needs >= {needed} training rows, got {got}")
            }
            PreprocessError::NoNumericColumns { step } => {
                write!(f, "{step}: dataset has no numeric columns")
            }
            PreprocessError::Numerical { step, detail } => write!(f, "{step}: {detail}"),
        }
    }
}

impl std::error::Error for PreprocessError {}

/// A preprocessing step before fitting: holds configuration only.
pub trait Transform {
    /// Stable step name (used in error messages and pipeline descriptions).
    fn name(&self) -> &'static str;

    /// Estimates the step's parameters from `rows` of `data` (training rows).
    fn fit(
        &self,
        data: &Dataset,
        rows: &[usize],
    ) -> Result<Box<dyn FittedTransform>, PreprocessError>;
}

/// A fitted preprocessing step: pure function of datasets.
pub trait FittedTransform: Send {
    /// Applies the fitted parameters to every row of `data`.
    ///
    /// The output has the same row count and label column; only feature
    /// columns change (values transformed, columns dropped, or replaced by
    /// projections).
    fn apply(&self, data: &Dataset) -> Dataset;
}

/// An ordered list of transforms fitted and applied sequentially.
///
/// Fitting step *i+1* sees the output of fitted steps *1..=i* — exactly how
/// the chain behaves at apply time.
pub struct Pipeline {
    steps: Vec<Box<dyn Transform>>,
}

impl Pipeline {
    /// Creates a pipeline from steps applied in order.
    pub fn new(steps: Vec<Box<dyn Transform>>) -> Self {
        Pipeline { steps }
    }

    /// Names of the steps, in order.
    pub fn step_names(&self) -> Vec<&'static str> {
        self.steps.iter().map(|s| s.name()).collect()
    }

    /// Fits every step on `rows` (training rows), chaining outputs.
    pub fn fit(
        &self,
        data: &Dataset,
        rows: &[usize],
    ) -> Result<FittedPipeline, PreprocessError> {
        let mut fitted = Vec::with_capacity(self.steps.len());
        let mut current = data.clone();
        for step in &self.steps {
            let f = step.fit(&current, rows)?;
            current = f.apply(&current);
            fitted.push(f);
        }
        Ok(FittedPipeline { steps: fitted })
    }
}

/// A fitted [`Pipeline`].
pub struct FittedPipeline {
    steps: Vec<Box<dyn FittedTransform>>,
}

impl FittedPipeline {
    /// Applies all fitted steps in order.
    pub fn apply(&self, data: &Dataset) -> Dataset {
        let mut current = data.clone();
        for step in &self.steps {
            current = step.apply(&current);
        }
        current
    }
}

impl FittedTransform for FittedPipeline {
    fn apply(&self, data: &Dataset) -> Dataset {
        FittedPipeline::apply(self, data)
    }
}

/// Helper for steps that rewrite each numeric column independently:
/// applies `f(column_index_in_numeric_order, value) -> value` to every
/// numeric cell and leaves categorical columns untouched.
pub(crate) fn map_numeric_columns(
    data: &Dataset,
    f: impl Fn(usize, f64) -> f64,
) -> Dataset {
    use smartml_data::Feature;
    let mut numeric_idx = 0usize;
    let features = data
        .features()
        .iter()
        .map(|feat| match feat {
            Feature::Numeric { name, values } => {
                let idx = numeric_idx;
                numeric_idx += 1;
                Feature::Numeric {
                    name: name.clone(),
                    values: values.iter().map(|&v| if v.is_nan() { v } else { f(idx, v) }).collect(),
                }
            }
            other => other.clone(),
        })
        .collect();
    data.with_features(features)
}

/// Helper: numeric column values restricted to training rows, skipping NaNs.
pub(crate) fn numeric_train_column(values: &[f64], rows: &[usize]) -> Vec<f64> {
    rows.iter().map(|&r| values[r]).filter(|v| !v.is_nan()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartml_data::Feature;

    struct AddOne;
    struct FittedAddOne;

    impl Transform for AddOne {
        fn name(&self) -> &'static str {
            "add-one"
        }
        fn fit(
            &self,
            _data: &Dataset,
            _rows: &[usize],
        ) -> Result<Box<dyn FittedTransform>, PreprocessError> {
            Ok(Box::new(FittedAddOne))
        }
    }

    impl FittedTransform for FittedAddOne {
        fn apply(&self, data: &Dataset) -> Dataset {
            map_numeric_columns(data, |_, v| v + 1.0)
        }
    }

    fn toy() -> Dataset {
        Dataset::new(
            "t",
            vec![Feature::Numeric { name: "x".into(), values: vec![1.0, 2.0] }],
            vec![0, 1],
            vec!["a".into(), "b".into()],
        )
        .unwrap()
    }

    #[test]
    fn pipeline_chains_steps() {
        let p = Pipeline::new(vec![Box::new(AddOne), Box::new(AddOne)]);
        assert_eq!(p.step_names(), vec!["add-one", "add-one"]);
        let fitted = p.fit(&toy(), &[0, 1]).unwrap();
        let out = fitted.apply(&toy());
        match out.feature(0) {
            Feature::Numeric { values, .. } => assert_eq!(values, &[3.0, 4.0]),
            _ => panic!(),
        }
    }

    #[test]
    fn map_numeric_skips_nan_and_categorical() {
        let d = Dataset::new(
            "t",
            vec![
                Feature::Numeric { name: "x".into(), values: vec![1.0, f64::NAN] },
                Feature::Categorical {
                    name: "c".into(),
                    codes: vec![0, 1],
                    levels: vec!["a".into(), "b".into()],
                },
            ],
            vec![0, 1],
            vec!["a".into(), "b".into()],
        )
        .unwrap();
        let out = map_numeric_columns(&d, |_, v| v * 10.0);
        match out.feature(0) {
            Feature::Numeric { values, .. } => {
                assert_eq!(values[0], 10.0);
                assert!(values[1].is_nan());
            }
            _ => panic!(),
        }
        assert_eq!(out.feature(1), d.feature(1));
    }
}
