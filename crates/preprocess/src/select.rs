//! Feature selection — SmartML's input-definition phase lets the user
//! request feature selection before modelling. Two selectors are provided:
//! a variance floor and supervised mutual-information top-k.

use crate::transform::{numeric_train_column, FittedTransform, PreprocessError, Transform};
use smartml_data::dataset::MISSING_CODE;
use smartml_data::{Dataset, Feature};
use smartml_linalg::vecops;

/// Keep features whose training variance exceeds a threshold (numeric) or
/// that take more than one level (categorical).
pub struct VarianceThreshold {
    /// Minimum variance a numeric column must exceed to be kept.
    pub threshold: f64,
}

impl Default for VarianceThreshold {
    fn default() -> Self {
        VarianceThreshold { threshold: 1e-8 }
    }
}

struct FittedKeep {
    keep: Vec<usize>,
}

impl Transform for VarianceThreshold {
    fn name(&self) -> &'static str {
        "variance-threshold"
    }
    fn fit(
        &self,
        data: &Dataset,
        rows: &[usize],
    ) -> Result<Box<dyn FittedTransform>, PreprocessError> {
        let mut keep = Vec::new();
        for (idx, feat) in data.features().iter().enumerate() {
            let keep_it = match feat {
                Feature::Numeric { values, .. } => {
                    vecops::variance(&numeric_train_column(values, rows)) > self.threshold
                }
                Feature::Categorical { codes, .. } => {
                    let mut first = None;
                    rows.iter().any(|&r| {
                        let c = codes[r];
                        if c == MISSING_CODE {
                            return false;
                        }
                        match first {
                            None => {
                                first = Some(c);
                                false
                            }
                            Some(f) => f != c,
                        }
                    })
                }
            };
            if keep_it {
                keep.push(idx);
            }
        }
        Ok(Box::new(FittedKeep { keep }))
    }
}

impl FittedTransform for FittedKeep {
    fn apply(&self, data: &Dataset) -> Dataset {
        let features = self.keep.iter().map(|&i| data.feature(i).clone()).collect();
        data.with_features(features)
    }
}

/// Keep the `k` features with the highest mutual information with the label,
/// estimated on training rows (numeric features discretised into
/// equal-frequency bins).
pub struct MutualInfoSelect {
    /// Number of features to keep.
    pub k: usize,
    /// Bin count for numeric discretisation.
    pub bins: usize,
}

impl MutualInfoSelect {
    /// Selector keeping the top `k` features with default binning.
    pub fn new(k: usize) -> Self {
        MutualInfoSelect { k, bins: 10 }
    }
}

impl Transform for MutualInfoSelect {
    fn name(&self) -> &'static str {
        "mutual-info-select"
    }
    fn fit(
        &self,
        data: &Dataset,
        rows: &[usize],
    ) -> Result<Box<dyn FittedTransform>, PreprocessError> {
        if rows.len() < 2 {
            return Err(PreprocessError::TooFewRows {
                step: "mutual-info-select",
                needed: 2,
                got: rows.len(),
            });
        }
        let labels: Vec<u32> = rows.iter().map(|&r| data.label(r)).collect();
        let mut scored: Vec<(usize, f64)> = data
            .features()
            .iter()
            .enumerate()
            .map(|(idx, feat)| {
                let bins = discretise(feat, rows, self.bins);
                (idx, mutual_information(&bins, &labels, data.n_classes()))
            })
            .collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        let mut keep: Vec<usize> = scored.iter().take(self.k.max(1)).map(|&(i, _)| i).collect();
        keep.sort_unstable();
        Ok(Box::new(FittedKeep { keep }))
    }
}

/// Discretises a feature over `rows` into small integer bin ids.
fn discretise(feat: &Feature, rows: &[usize], bins: usize) -> Vec<usize> {
    match feat {
        Feature::Categorical { codes, levels, .. } => rows
            .iter()
            .map(|&r| {
                let c = codes[r];
                if c == MISSING_CODE {
                    levels.len() // dedicated missing bin
                } else {
                    c as usize
                }
            })
            .collect(),
        Feature::Numeric { values, .. } => {
            // Equal-frequency binning by rank.
            let mut order: Vec<usize> = (0..rows.len()).collect();
            order.sort_by(|&a, &b| {
                let va = values[rows[a]];
                let vb = values[rows[b]];
                va.partial_cmp(&vb).unwrap_or(std::cmp::Ordering::Equal)
            });
            let mut out = vec![0usize; rows.len()];
            let per_bin = rows.len().div_ceil(bins);
            for (rank, &pos) in order.iter().enumerate() {
                out[pos] = rank / per_bin.max(1);
            }
            out
        }
    }
}

/// Empirical mutual information (nats) between a discretised feature and the
/// class labels.
fn mutual_information(bins: &[usize], labels: &[u32], n_classes: usize) -> f64 {
    debug_assert_eq!(bins.len(), labels.len());
    let n = bins.len() as f64;
    let n_bins = bins.iter().copied().max().map_or(0, |m| m + 1);
    let mut joint = vec![vec![0usize; n_classes]; n_bins];
    let mut bin_counts = vec![0usize; n_bins];
    let mut class_counts = vec![0usize; n_classes];
    for (&b, &l) in bins.iter().zip(labels) {
        joint[b][l as usize] += 1;
        bin_counts[b] += 1;
        class_counts[l as usize] += 1;
    }
    let mut mi = 0.0;
    for (b, row) in joint.iter().enumerate() {
        for (c, &cnt) in row.iter().enumerate() {
            if cnt == 0 {
                continue;
            }
            let p_joint = cnt as f64 / n;
            let p_b = bin_counts[b] as f64 / n;
            let p_c = class_counts[c] as f64 / n;
            mi += p_joint * (p_joint / (p_b * p_c)).ln();
        }
    }
    mi.max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One informative numeric column, one noise column, one constant column.
    fn toy() -> Dataset {
        let n = 100;
        let labels: Vec<u32> = (0..n).map(|i| (i % 2) as u32).collect();
        let informative: Vec<f64> = labels.iter().map(|&l| l as f64 * 5.0 + ((l as f64 + 1.0) * 0.01)).collect();
        let noise: Vec<f64> = (0..n).map(|i| ((i * 37) % 17) as f64).collect();
        Dataset::new(
            "t",
            vec![
                Feature::Numeric { name: "informative".into(), values: informative },
                Feature::Numeric { name: "noise".into(), values: noise },
                Feature::Numeric { name: "constant".into(), values: vec![1.0; n] },
            ],
            labels,
            vec!["a".into(), "b".into()],
        )
        .unwrap()
    }

    #[test]
    fn variance_threshold_drops_constant() {
        let d = toy();
        let rows = d.all_rows();
        let out = VarianceThreshold::default().fit(&d, &rows).unwrap().apply(&d);
        assert_eq!(out.n_features(), 2);
        assert!(out.features().iter().all(|f| f.name() != "constant"));
    }

    #[test]
    fn mutual_info_picks_informative_first() {
        let d = toy();
        let rows = d.all_rows();
        let out = MutualInfoSelect::new(1).fit(&d, &rows).unwrap().apply(&d);
        assert_eq!(out.n_features(), 1);
        assert_eq!(out.feature(0).name(), "informative");
    }

    #[test]
    fn mutual_info_k_larger_than_features_keeps_all() {
        let d = toy();
        let rows = d.all_rows();
        let out = MutualInfoSelect::new(10).fit(&d, &rows).unwrap().apply(&d);
        assert_eq!(out.n_features(), 3);
    }

    #[test]
    fn mutual_info_handles_categorical() {
        let n = 60;
        let labels: Vec<u32> = (0..n).map(|i| (i % 2) as u32).collect();
        let d = Dataset::new(
            "t",
            vec![
                Feature::Categorical {
                    name: "aligned".into(),
                    codes: labels.clone(),
                    levels: vec!["x".into(), "y".into()],
                },
                Feature::Categorical {
                    name: "random".into(),
                    codes: (0..n).map(|i| ((i * 7) % 2) as u32).collect(),
                    levels: vec!["x".into(), "y".into()],
                },
            ],
            labels,
            vec!["a".into(), "b".into()],
        )
        .unwrap();
        let rows = d.all_rows();
        let out = MutualInfoSelect::new(1).fit(&d, &rows).unwrap().apply(&d);
        assert_eq!(out.feature(0).name(), "aligned");
    }

    #[test]
    fn mi_of_perfectly_aligned_is_ln2() {
        let bins: Vec<usize> = (0..50).map(|i| i % 2).collect();
        let labels: Vec<u32> = bins.iter().map(|&b| b as u32).collect();
        let mi = mutual_information(&bins, &labels, 2);
        assert!((mi - 2f64.ln()).abs() < 1e-9, "mi {mi}");
    }

    #[test]
    fn mi_of_independent_is_near_zero() {
        let bins: Vec<usize> = (0..100).map(|i| i % 2).collect();
        let labels: Vec<u32> = (0..100).map(|i| ((i / 2) % 2) as u32).collect();
        let mi = mutual_information(&bins, &labels, 2);
        assert!(mi < 0.01, "mi {mi}");
    }
}
