//! Feature preprocessing for SmartML — the eight operations of paper
//! Table 2 (`center`, `scale`, `range`, `zv`, `boxcox`, `yeojohnson`, `pca`,
//! `ica`) plus the supporting steps the pipeline needs (missing-value
//! imputation and feature selection).
//!
//! Every operation follows a strict fit/apply split: statistics (means,
//! ranges, λ, projection bases, …) are estimated on the **training rows
//! only** and then applied to the whole dataset, so validation data never
//! leaks into fitted parameters. [`Pipeline`] composes steps in order.

//! ```
//! use smartml_preprocess::{fit_apply, Op};
//! use smartml_data::synth::gaussian_blobs;
//!
//! let data = gaussian_blobs("demo", 100, 4, 2, 1.0, 7);
//! let train_rows: Vec<usize> = (0..70).collect(); // fit on train only
//! let out = fit_apply(&data, &train_rows, &[Op::Zv, Op::Center, Op::Scale]).unwrap();
//! assert_eq!(out.n_rows(), data.n_rows());
//! ```

mod impute;
mod moments;
mod power;
mod projection;
mod select;
mod transform;

pub use impute::Impute;
pub use moments::{Center, Range, Scale, ZeroVariance};
pub use power::{BoxCox, YeoJohnson};
pub use projection::{FastIca, Pca};
pub use select::{MutualInfoSelect, VarianceThreshold};
pub use transform::{FittedTransform, Pipeline, PreprocessError, Transform};

use smartml_data::Dataset;

/// The preprocessing operations of paper Table 2, by their paper names.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// Subtract the (training) mean from values.
    Center,
    /// Divide values by the (training) standard deviation.
    Scale,
    /// Normalise values to the `[0, 1]` range.
    Range,
    /// Remove attributes with zero variance.
    Zv,
    /// Box-Cox transform on strictly positive columns.
    BoxCox,
    /// Yeo-Johnson transform on all values.
    YeoJohnson,
    /// Project data onto its principal components.
    Pca,
    /// Project data onto independent components.
    Ica,
}

impl Op {
    /// All eight operations in Table 2 order.
    pub const ALL: [Op; 8] =
        [Op::Center, Op::Scale, Op::Range, Op::Zv, Op::BoxCox, Op::YeoJohnson, Op::Pca, Op::Ica];

    /// The paper's name for the operation.
    pub fn paper_name(self) -> &'static str {
        match self {
            Op::Center => "center",
            Op::Scale => "scale",
            Op::Range => "range",
            Op::Zv => "zv",
            Op::BoxCox => "boxcox",
            Op::YeoJohnson => "yeojohnson",
            Op::Pca => "pca",
            Op::Ica => "ica",
        }
    }

    /// The paper's one-line description (Table 2).
    pub fn description(self) -> &'static str {
        match self {
            Op::Center => "subtract mean from values",
            Op::Scale => "divide values by standard deviation",
            Op::Range => "values normalization",
            Op::Zv => "remove attributes with zero variance",
            Op::BoxCox => "apply box-cox transform to non-zero positive values",
            Op::YeoJohnson => "apply Yeo-Johnson transform to all values",
            Op::Pca => "transform data to the principal components",
            Op::Ica => "transform data to their independent components",
        }
    }

    /// Instantiates the operation with default parameters.
    pub fn to_transform(self) -> Box<dyn Transform> {
        match self {
            Op::Center => Box::new(Center),
            Op::Scale => Box::new(Scale),
            Op::Range => Box::new(Range),
            Op::Zv => Box::new(ZeroVariance),
            Op::BoxCox => Box::new(BoxCox),
            Op::YeoJohnson => Box::new(YeoJohnson),
            Op::Pca => Box::new(Pca::default()),
            Op::Ica => Box::new(FastIca::default()),
        }
    }

    /// Parses a paper name (`"center"`, `"pca"`, …) back into an [`Op`].
    pub fn parse(s: &str) -> Option<Op> {
        Op::ALL.into_iter().find(|op| op.paper_name() == s)
    }
}

/// Builds a pipeline from a list of paper-named operations, always prefixed
/// with missing-value imputation (fitted transforms require complete data).
pub fn pipeline_from_ops(ops: &[Op]) -> Pipeline {
    let mut steps: Vec<Box<dyn Transform>> = vec![Box::new(Impute)];
    steps.extend(ops.iter().map(|op| op.to_transform()));
    Pipeline::new(steps)
}

/// Convenience: fit ops on `train_rows` of `data` and return the fully
/// transformed dataset (same row order/count as the input).
pub fn fit_apply(
    data: &Dataset,
    train_rows: &[usize],
    ops: &[Op],
) -> Result<Dataset, PreprocessError> {
    let pipeline = pipeline_from_ops(ops);
    let fitted = pipeline.fit(data, train_rows)?;
    Ok(fitted.apply(data))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ops_roundtrip_names() {
        for op in Op::ALL {
            assert_eq!(Op::parse(op.paper_name()), Some(op));
        }
        assert_eq!(Op::parse("nope"), None);
    }

    #[test]
    fn descriptions_match_table2() {
        assert_eq!(Op::Center.description(), "subtract mean from values");
        assert_eq!(Op::Zv.description(), "remove attributes with zero variance");
        assert_eq!(Op::ALL.len(), 8);
    }
}
