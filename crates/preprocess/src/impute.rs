//! Missing-value imputation: numeric → training mean, categorical →
//! training mode. Runs first in every SmartML pipeline so downstream fitted
//! transforms see complete data.

use crate::transform::{numeric_train_column, FittedTransform, PreprocessError, Transform};
use smartml_data::dataset::MISSING_CODE;
use smartml_data::{Dataset, Feature};
use smartml_linalg::vecops;

/// Mean/mode imputation fitted on training rows.
pub struct Impute;

enum ColumnFill {
    Numeric(f64),
    Categorical(u32),
}

struct FittedImpute {
    fills: Vec<ColumnFill>,
}

impl Transform for Impute {
    fn name(&self) -> &'static str {
        "impute"
    }
    fn fit(
        &self,
        data: &Dataset,
        rows: &[usize],
    ) -> Result<Box<dyn FittedTransform>, PreprocessError> {
        let fills = data
            .features()
            .iter()
            .map(|feat| match feat {
                Feature::Numeric { values, .. } => {
                    let col = numeric_train_column(values, rows);
                    ColumnFill::Numeric(vecops::mean(&col))
                }
                Feature::Categorical { codes, levels, .. } => {
                    let mut counts = vec![0usize; levels.len()];
                    for &r in rows {
                        let c = codes[r];
                        if c != MISSING_CODE {
                            counts[c as usize] += 1;
                        }
                    }
                    let mode = counts
                        .iter()
                        .enumerate()
                        .max_by_key(|(_, &c)| c)
                        .map_or(0, |(i, _)| i as u32);
                    ColumnFill::Categorical(mode)
                }
            })
            .collect();
        Ok(Box::new(FittedImpute { fills }))
    }
}

impl FittedTransform for FittedImpute {
    fn apply(&self, data: &Dataset) -> Dataset {
        let features = data
            .features()
            .iter()
            .zip(&self.fills)
            .map(|(feat, fill)| match (feat, fill) {
                (Feature::Numeric { name, values }, ColumnFill::Numeric(mean)) => {
                    Feature::Numeric {
                        name: name.clone(),
                        values: values.iter().map(|&v| if v.is_nan() { *mean } else { v }).collect(),
                    }
                }
                (Feature::Categorical { name, codes, levels }, ColumnFill::Categorical(mode)) => {
                    Feature::Categorical {
                        name: name.clone(),
                        codes: codes
                            .iter()
                            .map(|&c| if c == MISSING_CODE { *mode } else { c })
                            .collect(),
                        levels: levels.clone(),
                    }
                }
                // Column types can't change between fit and apply in this
                // pipeline; reaching here is a bug.
                _ => unreachable!("imputer fitted on a different schema"),
            })
            .collect();
        data.with_features(features)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        Dataset::new(
            "t",
            vec![
                Feature::Numeric { name: "x".into(), values: vec![1.0, f64::NAN, 3.0, 100.0] },
                Feature::Categorical {
                    name: "c".into(),
                    codes: vec![0, 0, MISSING_CODE, 1],
                    levels: vec!["a".into(), "b".into()],
                },
            ],
            vec![0, 0, 1, 1],
            vec!["n".into(), "p".into()],
        )
        .unwrap()
    }

    #[test]
    fn numeric_mean_from_train_rows_only() {
        let d = toy();
        // Train on rows 0..3: mean of (1, 3) = 2 (NaN skipped; row 3 excluded).
        let f = Impute.fit(&d, &[0, 1, 2]).unwrap();
        let out = f.apply(&d);
        match out.feature(0) {
            Feature::Numeric { values, .. } => assert_eq!(values, &[1.0, 2.0, 3.0, 100.0]),
            _ => panic!(),
        }
    }

    #[test]
    fn categorical_mode() {
        let d = toy();
        let f = Impute.fit(&d, &[0, 1, 2, 3]).unwrap();
        let out = f.apply(&d);
        match out.feature(1) {
            Feature::Categorical { codes, .. } => assert_eq!(codes, &[0, 0, 0, 1]),
            _ => panic!(),
        }
        assert_eq!(out.missing_cells(), 0);
    }

    #[test]
    fn no_missing_is_identity() {
        let d = toy();
        let f = Impute.fit(&d, &[0, 3]).unwrap();
        let out = f.apply(&d);
        // Rows 0 and 3 had no missing values; they must be unchanged.
        match out.feature(0) {
            Feature::Numeric { values, .. } => {
                assert_eq!(values[0], 1.0);
                assert_eq!(values[3], 100.0);
            }
            _ => panic!(),
        }
    }
}
