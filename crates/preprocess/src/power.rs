//! Power transforms: `boxcox` and `yeojohnson` (paper Table 2, rows 5–6).
//!
//! Both estimate the power parameter λ per column by maximising the profile
//! log-likelihood of the transformed sample over a fixed grid — the same
//! approach `caret::preProcess` uses, with λ ∈ [-2, 2].

use crate::transform::{
    map_numeric_columns, numeric_train_column, FittedTransform, PreprocessError, Transform,
};
use smartml_data::{Dataset, Feature};
use smartml_linalg::vecops;

/// Grid of candidate λ values, [-2, 2] in steps of 0.1.
fn lambda_grid() -> impl Iterator<Item = f64> {
    (-20..=20).map(|i| i as f64 / 10.0)
}

/// Box-Cox: `y = (x^λ - 1) / λ` (λ ≠ 0), `ln x` (λ = 0).
/// Only defined for strictly positive values; columns containing any
/// non-positive training value are left untransformed (λ recorded as `None`),
/// matching the paper's "non-zero positive values" restriction.
#[derive(Default)]
pub struct BoxCox;

struct FittedBoxCox {
    /// Per numeric column: `Some(λ)` when applicable, `None` to pass through.
    lambdas: Vec<Option<f64>>,
}

/// The Box-Cox transform for a single value; caller guarantees `x > 0`.
pub(crate) fn boxcox_value(x: f64, lambda: f64) -> f64 {
    if lambda.abs() < 1e-12 {
        x.ln()
    } else {
        (x.powf(lambda) - 1.0) / lambda
    }
}

/// Profile log-likelihood of Box-Cox at λ (up to constants):
/// `-n/2 · ln σ̂²(y) + (λ-1) Σ ln x`.
fn boxcox_loglik(xs: &[f64], lambda: f64) -> f64 {
    let n = xs.len() as f64;
    let transformed: Vec<f64> = xs.iter().map(|&x| boxcox_value(x, lambda)).collect();
    let var = population_variance(&transformed);
    if var <= 1e-300 {
        return f64::NEG_INFINITY;
    }
    let log_sum: f64 = xs.iter().map(|&x| x.ln()).sum();
    -n / 2.0 * var.ln() + (lambda - 1.0) * log_sum
}

impl Transform for BoxCox {
    fn name(&self) -> &'static str {
        "boxcox"
    }
    fn fit(
        &self,
        data: &Dataset,
        rows: &[usize],
    ) -> Result<Box<dyn FittedTransform>, PreprocessError> {
        let mut lambdas = Vec::new();
        for feat in data.features() {
            if let Feature::Numeric { values, .. } = feat {
                let col = numeric_train_column(values, rows);
                if col.len() < 3 || col.iter().any(|&x| x <= 0.0) {
                    lambdas.push(None);
                    continue;
                }
                let best = lambda_grid()
                    .map(|l| (l, boxcox_loglik(&col, l)))
                    .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
                    .map(|(l, _)| l);
                lambdas.push(best);
            }
        }
        Ok(Box::new(FittedBoxCox { lambdas }))
    }
}

impl FittedTransform for FittedBoxCox {
    fn apply(&self, data: &Dataset) -> Dataset {
        map_numeric_columns(data, |i, v| match self.lambdas[i] {
            // Non-positive values can still appear outside the training rows;
            // leave them unchanged rather than producing NaN.
            Some(l) if v > 0.0 => boxcox_value(v, l),
            _ => v,
        })
    }
}

/// Yeo-Johnson: a Box-Cox extension defined on all reals.
#[derive(Default)]
pub struct YeoJohnson;

struct FittedYeoJohnson {
    lambdas: Vec<f64>,
}

/// The Yeo-Johnson transform for a single value.
pub(crate) fn yeojohnson_value(x: f64, lambda: f64) -> f64 {
    if x >= 0.0 {
        if lambda.abs() < 1e-12 {
            (x + 1.0).ln()
        } else {
            ((x + 1.0).powf(lambda) - 1.0) / lambda
        }
    } else if (lambda - 2.0).abs() < 1e-12 {
        -(-x + 1.0).ln()
    } else {
        -((-x + 1.0).powf(2.0 - lambda) - 1.0) / (2.0 - lambda)
    }
}

/// Profile log-likelihood of Yeo-Johnson at λ (up to constants).
fn yeojohnson_loglik(xs: &[f64], lambda: f64) -> f64 {
    let n = xs.len() as f64;
    let transformed: Vec<f64> = xs.iter().map(|&x| yeojohnson_value(x, lambda)).collect();
    let var = population_variance(&transformed);
    if var <= 1e-300 {
        return f64::NEG_INFINITY;
    }
    let log_jacobian: f64 = xs.iter().map(|&x| x.signum() * (x.abs() + 1.0).ln()).sum();
    -n / 2.0 * var.ln() + (lambda - 1.0) * log_jacobian
}

impl Transform for YeoJohnson {
    fn name(&self) -> &'static str {
        "yeojohnson"
    }
    fn fit(
        &self,
        data: &Dataset,
        rows: &[usize],
    ) -> Result<Box<dyn FittedTransform>, PreprocessError> {
        let mut lambdas = Vec::new();
        for feat in data.features() {
            if let Feature::Numeric { values, .. } = feat {
                let col = numeric_train_column(values, rows);
                if col.len() < 3 || vecops::variance(&col) <= 1e-300 {
                    lambdas.push(1.0); // identity-ish λ
                    continue;
                }
                let best = lambda_grid()
                    .map(|l| (l, yeojohnson_loglik(&col, l)))
                    .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
                    .map(|(l, _)| l)
                    .unwrap_or(1.0);
                lambdas.push(best);
            }
        }
        Ok(Box::new(FittedYeoJohnson { lambdas }))
    }
}

impl FittedTransform for FittedYeoJohnson {
    fn apply(&self, data: &Dataset) -> Dataset {
        map_numeric_columns(data, |i, v| yeojohnson_value(v, self.lambdas[i]))
    }
}

fn population_variance(xs: &[f64]) -> f64 {
    let n = xs.len() as f64;
    if n < 1.0 {
        return 0.0;
    }
    let m = vecops::mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / n
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset(values: Vec<f64>) -> Dataset {
        let n = values.len();
        Dataset::new(
            "t",
            vec![Feature::Numeric { name: "x".into(), values }],
            vec![0; n],
            vec!["a".into()],
        )
        .unwrap()
    }

    fn col(d: &Dataset) -> &[f64] {
        match d.feature(0) {
            Feature::Numeric { values, .. } => values,
            _ => panic!(),
        }
    }

    #[test]
    fn boxcox_value_lambda_zero_is_log() {
        assert!((boxcox_value(std::f64::consts::E, 0.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn boxcox_value_lambda_one_is_shift() {
        assert!((boxcox_value(5.0, 1.0) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn boxcox_reduces_skewness_of_lognormal() {
        // Log-normal-ish sample: exp of a symmetric sample is right-skewed.
        let xs: Vec<f64> = (0..200).map(|i| ((i as f64 / 40.0) - 2.5).exp()).collect();
        let before = vecops::skewness(&xs);
        let d = dataset(xs);
        let rows: Vec<usize> = (0..200).collect();
        let f = BoxCox.fit(&d, &rows).unwrap();
        let out = f.apply(&d);
        let after = vecops::skewness(col(&out));
        assert!(after.abs() < before.abs(), "skew before {before}, after {after}");
    }

    #[test]
    fn boxcox_skips_nonpositive_column() {
        let d = dataset(vec![-1.0, 2.0, 3.0]);
        let f = BoxCox.fit(&d, &[0, 1, 2]).unwrap();
        let out = f.apply(&d);
        assert_eq!(col(&out), &[-1.0, 2.0, 3.0]);
    }

    #[test]
    fn yeojohnson_handles_negatives() {
        let d = dataset(vec![-5.0, -1.0, 0.0, 1.0, 5.0]);
        let f = YeoJohnson.fit(&d, &[0, 1, 2, 3, 4]).unwrap();
        let out = f.apply(&d);
        assert!(col(&out).iter().all(|v| v.is_finite()));
    }

    #[test]
    fn yeojohnson_is_monotone() {
        for lambda in [-2.0, -0.5, 0.0, 0.5, 1.0, 2.0] {
            let pts: Vec<f64> = (-10..=10).map(|i| i as f64 / 2.0).collect();
            let ys: Vec<f64> = pts.iter().map(|&x| yeojohnson_value(x, lambda)).collect();
            for w in ys.windows(2) {
                assert!(w[1] > w[0], "not monotone at λ={lambda}: {:?}", w);
            }
        }
    }

    #[test]
    fn yeojohnson_lambda_one_near_identity() {
        // λ = 1: y = x for x >= 0 and y = x for x < 0.
        assert!((yeojohnson_value(3.0, 1.0) - 3.0).abs() < 1e-12);
        assert!((yeojohnson_value(-3.0, 1.0) + 3.0).abs() < 1e-12);
    }

    #[test]
    fn yeojohnson_reduces_skewness() {
        let xs: Vec<f64> = (0..200).map(|i| ((i as f64 / 40.0) - 2.5).exp() - 0.5).collect();
        let before = vecops::skewness(&xs);
        let d = dataset(xs);
        let rows: Vec<usize> = (0..200).collect();
        let f = YeoJohnson.fit(&d, &rows).unwrap();
        let out = f.apply(&d);
        let after = vecops::skewness(col(&out));
        assert!(after.abs() < before.abs(), "skew before {before}, after {after}");
    }

    #[test]
    fn constant_column_gets_identity_lambda() {
        let d = dataset(vec![2.0, 2.0, 2.0, 2.0]);
        let f = YeoJohnson.fit(&d, &[0, 1, 2, 3]).unwrap();
        let out = f.apply(&d);
        assert_eq!(col(&out), &[2.0, 2.0, 2.0, 2.0]);
    }
}
