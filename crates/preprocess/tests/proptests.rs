//! Property-based tests for preprocessing invariants.

use proptest::prelude::*;
use smartml_data::{Dataset, Feature};
use smartml_preprocess::{fit_apply, Op};
use smartml_linalg::vecops;

/// Strategy: a small numeric dataset with 2 columns and n rows.
fn numeric_dataset() -> impl Strategy<Value = Dataset> {
    (5usize..40).prop_flat_map(|n| {
        (
            prop::collection::vec(-100.0..100.0f64, n),
            prop::collection::vec(0.1..50.0f64, n),
        )
            .prop_map(move |(a, b)| {
                let labels: Vec<u32> = (0..n).map(|i| (i % 2) as u32).collect();
                Dataset::new(
                    "prop",
                    vec![
                        Feature::Numeric { name: "a".into(), values: a },
                        Feature::Numeric { name: "b".into(), values: b },
                    ],
                    labels,
                    vec!["x".into(), "y".into()],
                )
                .unwrap()
            })
    })
}

fn col(d: &Dataset, i: usize) -> &[f64] {
    match d.feature(i) {
        Feature::Numeric { values, .. } => values,
        _ => panic!("expected numeric"),
    }
}

proptest! {
    #[test]
    fn center_makes_train_mean_zero(d in numeric_dataset()) {
        let rows = d.all_rows();
        let out = fit_apply(&d, &rows, &[Op::Center]).unwrap();
        for i in 0..out.n_features() {
            prop_assert!(vecops::mean(col(&out, i)).abs() < 1e-9);
        }
    }

    #[test]
    fn scale_then_center_gives_unit_variance(d in numeric_dataset()) {
        let rows = d.all_rows();
        let out = fit_apply(&d, &rows, &[Op::Center, Op::Scale]).unwrap();
        for i in 0..out.n_features() {
            let v = vecops::variance(col(&out, i));
            // Constant columns stay constant (variance 0); others become 1.
            prop_assert!(v.abs() < 1e-9 || (v - 1.0).abs() < 1e-9, "var {v}");
        }
    }

    #[test]
    fn range_bounds_train_rows(d in numeric_dataset()) {
        let rows = d.all_rows();
        let out = fit_apply(&d, &rows, &[Op::Range]).unwrap();
        for i in 0..out.n_features() {
            for &v in col(&out, i) {
                prop_assert!((-1e-9..=1.0 + 1e-9).contains(&v), "out of range: {v}");
            }
        }
    }

    #[test]
    fn zv_output_has_no_constant_columns(d in numeric_dataset()) {
        let rows = d.all_rows();
        let out = fit_apply(&d, &rows, &[Op::Zv]).unwrap();
        for i in 0..out.n_features() {
            prop_assert!(vecops::variance(col(&out, i)) > 0.0);
        }
    }

    #[test]
    fn yeojohnson_preserves_order(d in numeric_dataset()) {
        let rows = d.all_rows();
        let out = fit_apply(&d, &rows, &[Op::YeoJohnson]).unwrap();
        for i in 0..d.n_features() {
            let before = col(&d, i);
            let after = col(&out, i);
            // Monotone transform preserves pairwise order.
            for j in 1..before.len() {
                if before[j] > before[0] {
                    prop_assert!(after[j] >= after[0] - 1e-9);
                }
            }
        }
    }

    #[test]
    fn boxcox_preserves_order_on_positive(d in numeric_dataset()) {
        let rows = d.all_rows();
        let out = fit_apply(&d, &rows, &[Op::BoxCox]).unwrap();
        // Column b is strictly positive so Box-Cox applies there.
        let before = col(&d, 1);
        let after = col(&out, 1);
        for j in 1..before.len() {
            if before[j] > before[0] {
                prop_assert!(after[j] >= after[0] - 1e-9);
            }
        }
    }

    #[test]
    fn pipeline_preserves_rows_and_labels(d in numeric_dataset()) {
        let rows = d.all_rows();
        let out = fit_apply(&d, &rows, &[Op::Center, Op::Scale, Op::Zv]).unwrap();
        prop_assert_eq!(out.n_rows(), d.n_rows());
        prop_assert_eq!(out.labels(), d.labels());
    }

    #[test]
    fn pca_output_finite_and_row_preserving(d in numeric_dataset()) {
        let rows = d.all_rows();
        let out = fit_apply(&d, &rows, &[Op::Pca]).unwrap();
        prop_assert_eq!(out.n_rows(), d.n_rows());
        prop_assert!(out.n_features() >= 1);
        for i in 0..out.n_features() {
            prop_assert!(col(&out, i).iter().all(|v| v.is_finite()));
        }
    }
}
