#!/usr/bin/env bash
# Stamp the benchmarking host's environment into committed BENCH_*.json
# files so a reviewer can judge whether a recorded speedup transfers:
# core count, CPU affinity of the recording shell, CPU model, and
# kernel. Perf numbers without this context are unfalsifiable.
#
# Usage:
#   scripts/bench_env.sh FILE...   stamp the named JSON files in place
#   scripts/bench_env.sh           stamp every BENCH_*.json in the repo
#
# The "environment" key is replaced if present, so re-running a bench
# and re-stamping is idempotent.
set -euo pipefail
cd "$(dirname "$0")/.."

AFFINITY="$(taskset -pc $$ 2>/dev/null | sed 's/.*: //' || echo unknown)"
CPU_MODEL="$(sed -n 's/^model name[[:space:]]*: //p' /proc/cpuinfo | head -n 1)"
ENV_JSON="$(jq -n \
  --arg nproc "$(nproc)" \
  --arg affinity "$AFFINITY" \
  --arg cpu "${CPU_MODEL:-unknown}" \
  --arg kernel "$(uname -sr)" \
  '{nproc: ($nproc | tonumber), affinity: $affinity, cpu: $cpu, kernel: $kernel}')"

FILES=("$@")
if [ ${#FILES[@]} -eq 0 ]; then
  # Intentionally unquoted-free: top-level committed benchmarks only.
  FILES=(BENCH_*.json)
fi

for f in "${FILES[@]}"; do
  [ -f "$f" ] || { echo "bench_env: no such file: $f" >&2; exit 1; }
  tmp="$(mktemp)"
  jq --argjson env "$ENV_JSON" '. + {environment: $env}' "$f" > "$tmp"
  mv "$tmp" "$f"
  echo "stamped $f"
done
