#!/usr/bin/env bash
# Tier-1 verification: release build, full test suite, and the
# cross-thread-count determinism check. Offline-friendly: never touches
# the network (all dependencies are vendored under vendor/).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline"
cargo build --release --offline

echo "==> cargo test -q --offline"
cargo test -q --offline

echo "==> determinism: identical reports for n_threads in {1, 2, 8}"
cargo test -q --offline -p smartml-integration --test determinism

echo "verify: OK"
