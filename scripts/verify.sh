#!/usr/bin/env bash
# Tier-1 verification: release build, full test suite, and the
# cross-thread-count determinism check. Offline-friendly: never touches
# the network (all dependencies are vendored under vendor/).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline"
cargo build --release --offline

echo "==> cargo test -q --offline"
cargo test -q --offline

echo "==> determinism: identical reports for n_threads in {1, 2, 8}, tracing on and off"
cargo test -q --offline -p smartml-integration --test determinism --test observability

echo "==> determinism: ASHA and Hyperband byte-identical at pool widths {1, 2, 8}"
cargo test -q --offline -p smartml-integration --test asha_determinism

SMOKE_DIR="$(mktemp -d)"
SERVER_PID=""
REPLICA_PID=""
JOBD_PID=""
cleanup() {
  [ -n "$SERVER_PID" ] && kill -9 "$SERVER_PID" 2>/dev/null || true
  [ -n "$REPLICA_PID" ] && kill -9 "$REPLICA_PID" 2>/dev/null || true
  [ -n "$JOBD_PID" ] && kill -9 "$JOBD_PID" 2>/dev/null || true
  rm -rf "$SMOKE_DIR"
}
trap cleanup EXIT

CSV="$SMOKE_DIR/smoke.csv"
{
  echo "f1,f2,f3,label"
  for i in $(seq 0 29); do
    if [ $((i % 2)) -eq 0 ]; then
      echo "$i.1,0.$i,1.5,a"
    else
      echo "$i.7,1.$i,3.5,b"
    fi
  done
} > "$CSV"

CLI=./target/release/smartml-cli
SMARTMLD=./target/release/smartmld

start_server() {
  local io="$1" log="$2"
  "$SMARTMLD" --dir "$SMOKE_DIR/kb-$io" --addr 127.0.0.1:0 --io "$io" > "$log" 2>&1 &
  SERVER_PID=$!
  ADDR=""
  for _ in $(seq 1 100); do
    ADDR="$(sed -n 's/^smartmld: listening on //p' "$log")"
    [ -n "$ADDR" ] && return 0
    sleep 0.1
  done
  echo "smartmld --io $io failed to start:"; cat "$log"; exit 1
}

# Same smoke against both backends: the event-driven server must honour
# every durability and protocol contract the blocking oracle does.
smartmld_smoke() {
  local io="$1"
  echo "==> smartmld --io $io: record, query, METRICS round-trip, kill -9, restart, verify recovery"

  start_server "$io" "$SMOKE_DIR/server1-$io.log"
  "$CLI" kb record "$CSV" --kb "tcp:$ADDR" --algorithm KNN --accuracy 0.91 > /dev/null
  "$CLI" kb record "$CSV" --kb "tcp:$ADDR" --algorithm RandomForest --accuracy 0.88 > /dev/null

  # METRICS verb round-trip against the live server: the raw JSON response
  # must parse (jq) and carry the metrics status; the typed client path via
  # `kb metrics` must agree on the per-verb counters.
  local HOST="${ADDR%:*}" PORT="${ADDR##*:}"
  RESP="$(exec 3<>"/dev/tcp/$HOST/$PORT"; printf '{"op":"metrics"}\n' >&3; head -n 1 <&3)"
  echo "$RESP" | jq -e '.status == "metrics" and (.metrics.requests >= 2)' > /dev/null \
    || { echo "METRICS verb returned malformed or wrong JSON: $RESP"; exit 1; }
  "$CLI" kb metrics --kb "tcp:$ADDR" | grep "record_run" > /dev/null \
    || { echo "kb metrics CLI missing record_run counter"; exit 1; }
  # Plain grep (not -q): grep -q exits at the first match, closing the pipe
  # and SIGPIPE-ing the CLI while it is still printing the neighbour list.
  "$CLI" kb query  "$CSV" --kb "tcp:$ADDR" | grep "KNN" > /dev/null \
    || { echo "live query missing KNN nomination"; exit 1; }

  kill -9 "$SERVER_PID"
  wait "$SERVER_PID" 2>/dev/null || true
  SERVER_PID=""

  start_server "$io" "$SMOKE_DIR/server2-$io.log"
  "$CLI" kb stats --kb "tcp:$ADDR" | grep "1 datasets / 2 runs" > /dev/null \
    || { echo "recovery lost records"; "$CLI" kb stats --kb "tcp:$ADDR"; exit 1; }
  "$CLI" kb query "$CSV" --kb "tcp:$ADDR" | grep "KNN" > /dev/null \
    || { echo "recovered KB missing KNN nomination"; exit 1; }
  kill -9 "$SERVER_PID"
  wait "$SERVER_PID" 2>/dev/null || true
  SERVER_PID=""
  echo "    smartmld --io $io survives kill -9 with no data loss"
}

smartmld_smoke blocking
smartmld_smoke epoll

echo "==> fault injection: panics/hangs at 30% contained, ledger exact, kill-the-trial watchdog"
echo "    (includes ASHA rung-promotion determinism under 30% injected panics)"
cargo test -q --offline --features fault-injection \
  -p smartml-smac --test fault_injection \
  -p smartml-integration --test fault_containment --test asha_determinism

echo "==> kbd: epoll vs blocking byte-identical responses under the fault-injection harness"
echo "    (includes replica catch-up byte-identity under 30% injected pull/apply panics)"
cargo test -q --offline --features fault-injection \
  -p smartml-kbd --test backend_equiv --test replication

echo "==> replication chaos: primary + replica, kill -9 both sides, failover reads"
start_server epoll "$SMOKE_DIR/repl-primary.log"
PRIMARY_PID="$SERVER_PID"
PADDR="$ADDR"
"$CLI" kb record "$CSV" --kb "tcp:$PADDR" --algorithm KNN --accuracy 0.91 > /dev/null
"$CLI" kb record "$CSV" --kb "tcp:$PADDR" --algorithm RandomForest --accuracy 0.88 > /dev/null
PRIMARY_SEQ="$("$CLI" kb stats --kb "tcp:$PADDR" | sed -n 's/.*applied seq \([0-9]*\).*/\1/p')"
[ -n "$PRIMARY_SEQ" ] && [ "$PRIMARY_SEQ" -ge 2 ] \
  || { echo "primary stats missing applied seq"; "$CLI" kb stats --kb "tcp:$PADDR"; exit 1; }

start_replica() {
  local log="$1"
  "$SMARTMLD" --dir "$SMOKE_DIR/kb-replica" --addr 127.0.0.1:0 --io epoll \
    --replica-of "$PADDR" > "$log" 2>&1 &
  REPLICA_PID=$!
  RADDR=""
  for _ in $(seq 1 100); do
    RADDR="$(sed -n 's/^smartmld: listening on //p' "$log")"
    [ -n "$RADDR" ] && return 0
    sleep 0.1
  done
  echo "smartmld --replica-of failed to start:"; cat "$log"; exit 1
}

wait_replica_seq() {
  local want="$1"
  for _ in $(seq 1 100); do
    SEQ="$("$CLI" kb stats --kb "tcp:$RADDR" 2>/dev/null \
      | sed -n 's/.*applied seq \([0-9]*\).*/\1/p')"
    [ "$SEQ" = "$want" ] && return 0
    sleep 0.1
  done
  echo "replica stalled at applied seq ${SEQ:-unknown}, want $want"
  "$CLI" kb stats --kb "tcp:$RADDR" || true
  exit 1
}

# Spawn the replica and kill -9 it mid-catch-up; a re-spawn must resume
# from its own WAL and converge with no operator reset.
start_replica "$SMOKE_DIR/repl-replica1.log"
kill -9 "$REPLICA_PID"
wait "$REPLICA_PID" 2>/dev/null || true
REPLICA_PID=""
start_replica "$SMOKE_DIR/repl-replica2.log"
grep "smartmld: read replica of $PADDR" "$SMOKE_DIR/repl-replica2.log" > /dev/null \
  || { echo "replica did not announce its primary"; cat "$SMOKE_DIR/repl-replica2.log"; exit 1; }
wait_replica_seq "$PRIMARY_SEQ"

# Live tailing: a third record on the primary must reach the replica.
"$CLI" kb record "$CSV" --kb "tcp:$PADDR" --algorithm NaiveBayes --accuracy 0.80 > /dev/null
wait_replica_seq "$((PRIMARY_SEQ + 1))"

# Lose the primary: the replica keeps serving reads, refuses writes with
# a redirect, and the multi-endpoint client fails over transparently.
kill -9 "$PRIMARY_PID"
wait "$PRIMARY_PID" 2>/dev/null || true
SERVER_PID=""
"$CLI" kb query "$CSV" --kb "tcp:$RADDR" | grep "KNN" > /dev/null \
  || { echo "replica lost reads after primary death"; exit 1; }
if "$CLI" kb record "$CSV" --kb "tcp:$RADDR" --algorithm KNN --accuracy 0.5 \
    > "$SMOKE_DIR/repl-write.log" 2>&1; then
  echo "replica accepted a write"; exit 1
fi
grep -i "primary" "$SMOKE_DIR/repl-write.log" > /dev/null \
  || { echo "replica write rejection missing redirect"; cat "$SMOKE_DIR/repl-write.log"; exit 1; }
"$CLI" kb query "$CSV" --kb "tcp:$PADDR,$RADDR" | grep "KNN" > /dev/null \
  || { echo "client failover query failed with the primary down"; exit 1; }

# Promote the survivor with the primary still dead: it must flip to
# primary in place and start accepting writes, with nothing lost.
"$CLI" kb promote --kb "tcp:$RADDR" | grep "promoted" > /dev/null \
  || { echo "kb promote did not flip the replica"; exit 1; }
"$CLI" kb record "$CSV" --kb "tcp:$RADDR" --algorithm LDA --accuracy 0.70 > /dev/null \
  || { echo "promoted replica refused a write"; exit 1; }
"$CLI" kb query "$CSV" --kb "tcp:$RADDR" --top-n 20 | grep "KNN" > /dev/null \
  || { echo "promoted replica lost pre-promotion records"; exit 1; }
"$CLI" kb query "$CSV" --kb "tcp:$RADDR" --top-n 20 | grep "LDA" > /dev/null \
  || { echo "post-promotion write did not land"; exit 1; }
kill -9 "$REPLICA_PID"
wait "$REPLICA_PID" 2>/dev/null || true
REPLICA_PID=""
echo "    replication survives kill -9 on both sides; reads fail over, promote restores writes"

JOBD=./target/release/jobd
start_jobd() {
  local dir="$1" log="$2"; shift 2
  "$JOBD" serve --dir "$dir" --addr 127.0.0.1:0 "$@" > "$log" 2>&1 &
  JOBD_PID=$!
  JADDR=""
  for _ in $(seq 1 100); do
    JADDR="$(sed -n 's/^jobd: listening on //p' "$log")"
    [ -n "$JADDR" ] && return 0
    sleep 0.1
  done
  echo "jobd failed to start:"; cat "$log"; exit 1
}
submit_id() { sed -n 's/^jobd: submitted job \([0-9]*\).*/\1/p'; }

echo "==> jobd: 3 tenants concurrent, quota enforcement, result byte-identical to one-shot CLI"
SPEC='{"blobs":{"n":60,"d":3,"k":2,"spread":0.5}}'
start_jobd "$SMOKE_DIR/jobs" "$SMOKE_DIR/jobd1.log" --workers 2 --quota-trials 12 --no-fsync
ID_A="$("$JOBD" submit --addr "$JADDR" --tenant alpha --name jobsmoke \
  --synth "$SPEC" --seed 7 --trials 4 | submit_id)"
ID_B="$("$JOBD" submit --addr "$JADDR" --tenant beta --name jobsmoke \
  --synth "$SPEC" --seed 7 --trials 4 | submit_id)"
ID_C="$("$JOBD" submit --addr "$JADDR" --tenant gamma --name jobsmoke \
  --synth "$SPEC" --seed 7 --trials 4 | submit_id)"
for id in "$ID_A" "$ID_B" "$ID_C"; do
  "$JOBD" watch --addr "$JADDR" "$id" | grep "jobd: job finished Done" > /dev/null \
    || { echo "job $id did not finish Done"; "$JOBD" jobs --addr "$JADDR"; exit 1; }
done

# Quota: alpha has 12 trials; 4 are spent, two more 4-trial jobs drain
# it, the fourth submission must come back as a typed quota rejection.
"$JOBD" submit --addr "$JADDR" --tenant alpha --name q2 --synth "$SPEC" --trials 4 > /dev/null
"$JOBD" submit --addr "$JADDR" --tenant alpha --name q3 --synth "$SPEC" --trials 4 > /dev/null
if "$JOBD" submit --addr "$JADDR" --tenant alpha --name q4 --synth "$SPEC" --trials 4 \
    > "$SMOKE_DIR/jobd-reject.log" 2>&1; then
  echo "submission beyond the tenant quota was admitted"; exit 1
fi
grep "quota_exhausted" "$SMOKE_DIR/jobd-reject.log" > /dev/null \
  || { echo "quota rejection untyped:"; cat "$SMOKE_DIR/jobd-reject.log"; exit 1; }
# Other tenants are untouched by alpha's exhaustion.
"$JOBD" submit --addr "$JADDR" --tenant beta --name ok --synth "$SPEC" --trials 4 > /dev/null \
  || { echo "quota exhaustion leaked across tenants"; exit 1; }

# Byte-identity: the daemon's report equals the one-shot CLI run over
# the same exported synthetic dataset, modulo wall-clock phase timings.
"$CLI" synth --spec "$SPEC" --seed 7 --name jobsmoke --out "$SMOKE_DIR/jobsmoke.csv" 2> /dev/null
NORM='.phases[].secs = 0 | .timeline = null'
"$JOBD" result --addr "$JADDR" "$ID_A" | jq "$NORM" > "$SMOKE_DIR/job-report.json"
"$CLI" run "$SMOKE_DIR/jobsmoke.csv" --budget 4 --seed 7 --json \
  | sed '1d' | jq "$NORM" > "$SMOKE_DIR/cli-report.json"
diff "$SMOKE_DIR/job-report.json" "$SMOKE_DIR/cli-report.json" > /dev/null \
  || { echo "jobd report diverged from the one-shot CLI run"; \
       diff "$SMOKE_DIR/job-report.json" "$SMOKE_DIR/cli-report.json" | head -20; exit 1; }
"$JOBD" shutdown --addr "$JADDR" > /dev/null
wait "$JOBD_PID" 2>/dev/null || true
JOBD_PID=""
echo "    3 tenants served, quotas enforced per tenant, report byte-identical to smartml-cli run"

echo "==> jobd: kill -9 mid-job; recovery aborts the running job, re-queues and completes the queued one"
start_jobd "$SMOKE_DIR/jobs-chaos" "$SMOKE_DIR/jobd-chaos1.log" --workers 1
BIG='{"blobs":{"n":20000,"d":8,"k":3,"spread":1.0}}'
ID_BIG="$("$JOBD" submit --addr "$JADDR" --tenant chaos --name big \
  --synth "$BIG" --seed 3 --trials 10 | submit_id)"
ID_SMALL="$("$JOBD" submit --addr "$JADDR" --tenant chaos --name small \
  --synth "$SPEC" --seed 5 --trials 4 | submit_id)"
for _ in $(seq 1 100); do
  "$JOBD" status --addr "$JADDR" "$ID_BIG" | grep '"state":"running"' > /dev/null && break
  sleep 0.1
done
kill -9 "$JOBD_PID"
wait "$JOBD_PID" 2>/dev/null || true
JOBD_PID=""
start_jobd "$SMOKE_DIR/jobs-chaos" "$SMOKE_DIR/jobd-chaos2.log" --workers 1
grep "jobd: recovered" "$SMOKE_DIR/jobd-chaos2.log" | grep "(1 aborted, 1 re-queued" > /dev/null \
  || { echo "recovery line wrong:"; cat "$SMOKE_DIR/jobd-chaos2.log"; exit 1; }
"$JOBD" status --addr "$JADDR" "$ID_BIG" | grep '"state":"aborted"' > /dev/null \
  || { echo "running job not aborted after kill -9"; "$JOBD" jobs --addr "$JADDR"; exit 1; }
"$JOBD" watch --addr "$JADDR" "$ID_SMALL" | grep "jobd: job finished Done" > /dev/null \
  || { echo "re-queued job did not complete after recovery"; exit 1; }
"$JOBD" shutdown --addr "$JADDR" > /dev/null
wait "$JOBD_PID" 2>/dev/null || true
JOBD_PID=""
echo "    jobd survives kill -9: running job aborted, queued job re-queued and finished"

echo "==> perf smoke: job service submit-to-running latency + jobs/hour vs committed baseline"
./target/release/job_bench --quick --check BENCH_jobs.json > /dev/null

echo "==> perf smoke: replication catch-up + failover latency vs committed baseline"
./target/release/kb_replication_bench --quick --check BENCH_kb_replication.json > /dev/null

echo "==> perf smoke: kb_service bench vs committed baseline (gates epoll >= 4x blocking at 64 conns)"
./target/release/kb_bench --quick --check BENCH_kb_service.json > /dev/null

echo "==> perf smoke: tree kernels vs committed baseline (fails on panic or >5x regression)"
./target/release/tree_kernels --quick --check BENCH_tree_kernels.json > /dev/null

echo "==> perf smoke: ASHA vs sync halving at width 8 (gates speedup >= 1.2x, 5x watchdog)"
./target/release/asha_bench --quick --check BENCH_asha.json > /dev/null

echo "==> obs: traced run emits a valid Chrome trace and a timeline section"
OBS_CSV="$SMOKE_DIR/obs.csv"
{
  echo "f1,f2,f3,label"
  for i in $(seq 0 59); do
    if [ $((i % 2)) -eq 0 ]; then
      echo "$i.1,0.$i,1.5,a"
    else
      echo "$i.7,1.$i,3.5,b"
    fi
  done
} > "$OBS_CSV"
"$CLI" run "$OBS_CSV" --budget 6 --top-n 2 --seed 13 \
  --trace-out "$SMOKE_DIR/trace.json" --metrics \
  > "$SMOKE_DIR/obs-report.txt" 2> "$SMOKE_DIR/obs-metrics.txt"
./target/release/trace_check "$SMOKE_DIR/trace.json"
grep "Where the time went" "$SMOKE_DIR/obs-report.txt" > /dev/null \
  || { echo "traced report missing its timeline section"; exit 1; }
grep "smac.trial.ok" "$SMOKE_DIR/obs-metrics.txt" > /dev/null \
  || { echo "--metrics dump missing smac.trial.ok"; exit 1; }

echo "==> obs overhead: disabled-path instrumentation within budget (hard 5 ns/op gate)"
./target/release/obs_overhead --quick --check BENCH_obs.json > /dev/null

echo "==> compute kernels: equivalence proptests under default codegen and -C target-cpu=native"
cargo test -q --offline -p smartml-linalg --test kernel_equiv
# The codegen-invariance contract: the same bit patterns must reproduce
# when the compiler is free to use every vector unit on this host. A
# separate target dir keeps the native artifacts from clobbering the
# default-codegen build cache.
CARGO_TARGET_DIR=target/native-verify RUSTFLAGS="-C target-cpu=native" \
  cargo test -q --offline -p smartml-linalg --test kernel_equiv

echo "==> perf smoke: simd kernels vs committed baseline (fails on panic or >5x regression)"
./target/release/simd_kernels --quick --check BENCH_simd.json > /dev/null

echo "verify: OK"
