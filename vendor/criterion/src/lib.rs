//! Offline stand-in for `criterion`: same macro/API surface, simple
//! wall-clock measurement (median of `sample_size` samples), plain-text
//! reporting. Detects cargo's `--test` flag (passed by `cargo test` for
//! `harness = false` targets) and then runs each benchmark once.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 20, test_mode: false }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n >= 2, "sample_size must be >= 2");
        self.sample_size = n;
        self
    }

    /// Reads cargo-supplied CLI flags (`--test`, `--bench`, filters).
    pub fn configure_from_args(mut self) -> Criterion {
        self.test_mode = std::env::args().any(|a| a == "--test");
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.to_string() }
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(name, &mut f);
        self
    }

    fn run_one(&mut self, name: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let mut bencher = Bencher { iters: 1, elapsed: Duration::ZERO };
        if self.test_mode {
            f(&mut bencher);
            println!("test {name} ... ok");
            return;
        }
        // Warm-up & calibration: target ~25 ms per sample.
        f(&mut bencher);
        let per_iter = bencher.elapsed.max(Duration::from_nanos(1));
        let iters = (Duration::from_millis(25).as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;
        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            bencher.iters = iters;
            f(&mut bencher);
            samples.push(bencher.elapsed.as_secs_f64() / iters as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[samples.len() / 2];
        let lo = samples[0];
        let hi = samples[samples.len() - 1];
        println!(
            "{name:<50} time: [{} {} {}]",
            format_time(lo),
            format_time(median),
            format_time(hi)
        );
    }
}

fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.4} s")
    } else if secs >= 1e-3 {
        format!("{:.4} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.4} µs", secs * 1e6)
    } else {
        format!("{:.4} ns", secs * 1e9)
    }
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        self.criterion.run_one(&full, &mut f);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: impl IntoBenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        self.criterion.run_one(&full, &mut |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Benchmark identifier: either a bare name or `name/parameter`.
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId(parameter.to_string())
    }
}

pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.0
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Timing harness handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
