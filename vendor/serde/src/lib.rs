//! Offline stand-in for `serde`, exposing the subset this workspace uses:
//! the `Serialize`/`Deserialize` derive pair plus the trait machinery the
//! derives and `serde_json` build on.
//!
//! Unlike upstream serde's visitor architecture, this implementation routes
//! everything through one JSON-shaped [`Value`] data model — all consumers
//! in this workspace serialise to JSON, so nothing is lost, and the derive
//! macro (`vendor/serde_derive`) stays small enough to audit.

mod de;
mod value;

pub use de::JsonDe;
pub use value::{Number, Value};

use value::{write_escaped, write_float};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Deserialisation failure: a path-free message, JSON-style.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

impl DeError {
    /// Builds a "wrong type" error.
    pub fn expected(what: &str, got: &Value) -> DeError {
        DeError(format!("expected {what}, got {}", got.type_name()))
    }
}

/// Types that can serialise themselves into the [`Value`] data model.
pub trait Serialize {
    /// The value-tree representation of `self`.
    fn to_value(&self) -> Value;

    /// Appends `self` as compact JSON directly to `out` — the streaming
    /// hot path `serde_json::to_string` uses. Must emit exactly the
    /// bytes serialising `self.to_value()` would; the default does
    /// precisely that, while the derive macro generates a writer that
    /// skips the intermediate tree (and its per-key allocations).
    fn serialize_into(&self, out: &mut String) {
        self.to_value().write_json(out)
    }
}

/// Types reconstructible from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Reconstructs from a value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;

    /// Value used when a struct field is absent. `None` means "required";
    /// `Option<T>` overrides this to make itself optional (matching
    /// upstream serde's missing-field behaviour for options).
    fn from_missing() -> Option<Self> {
        None
    }

    /// Reconstructs directly from JSON text — the streaming hot path
    /// `serde_json::from_str` drives. Must accept exactly the documents
    /// `from_value(&parse(text))` would, producing the same result; the
    /// default does precisely that, while the derive macro generates a
    /// single-pass scan that skips the intermediate tree (and its per-key
    /// allocations).
    fn from_json(de: &mut JsonDe<'_>) -> Result<Self, DeError> {
        let v = de.parse_value()?;
        Self::from_value(&v)
    }
}

// ---- Serialize impls for std types ------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }

    fn serialize_into(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }

    fn serialize_into(&self, out: &mut String) {
        write_escaped(self, out);
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }

    fn serialize_into(&self, out: &mut String) {
        write_escaped(self, out);
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(*self))
    }

    fn serialize_into(&self, out: &mut String) {
        write_float(*self, out);
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(*self as f64))
    }

    fn serialize_into(&self, out: &mut String) {
        write_float(*self as f64, out);
    }
}

macro_rules! serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                if (*self as i128) < 0 {
                    Value::Number(Number::Int(*self as i64))
                } else {
                    Value::Number(Number::UInt(*self as u64))
                }
            }

            fn serialize_into(&self, out: &mut String) {
                use std::fmt::Write;
                // Int/UInt render as the same digit string Display
                // emits, so one write matches the tree path.
                let _ = write!(out, "{self}");
            }
        }
    )*};
}
serialize_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }

    fn serialize_into(&self, out: &mut String) {
        (**self).serialize_into(out);
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }

    fn serialize_into(&self, out: &mut String) {
        (**self).serialize_into(out);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }

    fn serialize_into(&self, out: &mut String) {
        match self {
            Some(x) => x.serialize_into(out),
            None => out.push_str("null"),
        }
    }
}

fn serialize_seq_into<T: Serialize>(items: &[T], out: &mut String) {
    out.push('[');
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        item.serialize_into(out);
    }
    out.push(']');
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }

    fn serialize_into(&self, out: &mut String) {
        serialize_seq_into(self, out);
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }

    fn serialize_into(&self, out: &mut String) {
        serialize_seq_into(self, out);
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
    }

    fn serialize_into(&self, out: &mut String) {
        out.push('{');
        for (i, (k, v)) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_escaped(k, out);
            out.push(':');
            v.serialize_into(out);
        }
        out.push('}');
    }
}

impl<V: Serialize> Serialize for std::collections::HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Deterministic output: sort keys like a BTreeMap.
        let mut pairs: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(pairs)
    }

    fn serialize_into(&self, out: &mut String) {
        // Same deterministic key order as the tree path.
        let mut pairs: Vec<(&String, &V)> = self.iter().collect();
        pairs.sort_by(|a, b| a.0.cmp(b.0));
        out.push('{');
        for (i, (k, v)) in pairs.into_iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_escaped(k, out);
            out.push(':');
            v.serialize_into(out);
        }
        out.push('}');
    }
}

macro_rules! serialize_tuple {
    ($(($($n:tt $t:ident),+)),+ $(,)?) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }

            fn serialize_into(&self, out: &mut String) {
                out.push('[');
                let mut first = true;
                $(
                    if !first {
                        out.push(',');
                    }
                    first = false;
                    self.$n.serialize_into(out);
                )+
                let _ = first;
                out.push(']');
            }
        }
    )+};
}
serialize_tuple!(
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
);

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }

    fn serialize_into(&self, out: &mut String) {
        self.write_json(out);
    }
}

// ---- Deserialize impls for std types ----------------------------------

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }

    fn from_json(de: &mut JsonDe<'_>) -> Result<Self, DeError> {
        de.parse_bool()
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }

    fn from_json(de: &mut JsonDe<'_>) -> Result<Self, DeError> {
        de.parse_string()
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Number(n) => Ok(n.as_f64()),
            other => Err(DeError::expected("number", other)),
        }
    }

    fn from_json(de: &mut JsonDe<'_>) -> Result<Self, DeError> {
        de.parse_number().map(|n| n.as_f64())
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|x| x as f32)
    }

    fn from_json(de: &mut JsonDe<'_>) -> Result<Self, DeError> {
        f64::from_json(de).map(|x| x as f32)
    }
}

macro_rules! deserialize_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = match v {
                    Value::Number(n) => n.as_i128().ok_or_else(|| {
                        DeError(format!("expected integer, got float {}", n.as_f64()))
                    })?,
                    other => return Err(DeError::expected("integer", other)),
                };
                <$t>::try_from(n)
                    .map_err(|_| DeError(format!("integer {n} out of range for {}", stringify!($t))))
            }

            fn from_json(de: &mut JsonDe<'_>) -> Result<Self, DeError> {
                let number = de.parse_number()?;
                let n = number.as_i128().ok_or_else(|| {
                    DeError(format!("expected integer, got float {}", number.as_f64()))
                })?;
                <$t>::try_from(n)
                    .map_err(|_| DeError(format!("integer {n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
deserialize_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn from_missing() -> Option<Self> {
        Some(None)
    }

    fn from_json(de: &mut JsonDe<'_>) -> Result<Self, DeError> {
        de.skip_ws();
        if de.try_null() {
            Ok(None)
        } else {
            T::from_json(de).map(Some)
        }
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }

    fn from_json(de: &mut JsonDe<'_>) -> Result<Self, DeError> {
        T::from_json(de).map(Box::new)
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("array", other)),
        }
    }

    fn from_json(de: &mut JsonDe<'_>) -> Result<Self, DeError> {
        let mut items = Vec::new();
        if de.arr_begin()? {
            loop {
                items.push(T::from_json(de)?);
                if !de.arr_next()? {
                    break;
                }
            }
        }
        Ok(items)
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(pairs) => pairs
                .iter()
                .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
                .collect(),
            other => Err(DeError::expected("object", other)),
        }
    }

    fn from_json(de: &mut JsonDe<'_>) -> Result<Self, DeError> {
        let mut map = std::collections::BTreeMap::new();
        if de.obj_begin()? {
            loop {
                let key = de.member_key()?.into_owned();
                let value = V::from_json(de)?;
                // Duplicate keys: last wins, matching what collecting the
                // tree path's pairs into a map does.
                map.insert(key, value);
                if !de.obj_next()? {
                    break;
                }
            }
        }
        Ok(map)
    }
}

impl<V: Deserialize> Deserialize for std::collections::HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(pairs) => pairs
                .iter()
                .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
                .collect(),
            other => Err(DeError::expected("object", other)),
        }
    }

    fn from_json(de: &mut JsonDe<'_>) -> Result<Self, DeError> {
        let mut map = std::collections::HashMap::new();
        if de.obj_begin()? {
            loop {
                let key = de.member_key()?.into_owned();
                let value = V::from_json(de)?;
                map.insert(key, value);
                if !de.obj_next()? {
                    break;
                }
            }
        }
        Ok(map)
    }
}

macro_rules! deserialize_tuple {
    ($(($len:literal, $($n:tt $t:ident),+)),+ $(,)?) => {$(
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Array(items) if items.len() == $len => {
                        Ok(($($t::from_value(&items[$n])?,)+))
                    }
                    other => Err(DeError::expected(
                        concat!("array of length ", stringify!($len)),
                        other,
                    )),
                }
            }
        }
    )+};
}
deserialize_tuple!(
    (1, 0 A),
    (2, 0 A, 1 B),
    (3, 0 A, 1 B, 2 C),
    (4, 0 A, 1 B, 2 C, 3 D),
);

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }

    fn from_json(de: &mut JsonDe<'_>) -> Result<Self, DeError> {
        de.parse_value()
    }
}

// ---- Support functions the derive macro generates calls to ------------

/// Resolution for a field the single-pass object scan never saw:
/// `from_missing` if the type allows absence (`Option`), else an error.
pub fn __missing<T: Deserialize>(name: &str) -> Result<T, DeError> {
    T::from_missing().ok_or_else(|| DeError(format!("missing field `{name}`")))
}

/// Looks a field up in an object value, using `from_missing` for absent
/// fields (so `Option` fields are optional).
pub fn __field<T: Deserialize>(v: &Value, name: &str) -> Result<T, DeError> {
    let pairs = match v {
        Value::Object(pairs) => pairs,
        other => return Err(DeError::expected("object", other)),
    };
    match pairs.iter().find(|(k, _)| k == name) {
        Some((_, val)) => T::from_value(val),
        None => T::from_missing().ok_or_else(|| DeError(format!("missing field `{name}`"))),
    }
}

/// `#[serde(default)]` field lookup: absent fields take `Default::default()`.
pub fn __field_or_default<T: Deserialize + Default>(v: &Value, name: &str) -> Result<T, DeError> {
    let pairs = match v {
        Value::Object(pairs) => pairs,
        other => return Err(DeError::expected("object", other)),
    };
    match pairs.iter().find(|(k, _)| k == name) {
        Some((_, val)) => T::from_value(val),
        None => Ok(T::default()),
    }
}

/// Reads an internally-tagged enum's tag field.
pub fn __tag<'v>(v: &'v Value, tag: &str) -> Result<&'v str, DeError> {
    let pairs = match v {
        Value::Object(pairs) => pairs,
        other => return Err(DeError::expected("object", other)),
    };
    match pairs.iter().find(|(k, _)| k == tag) {
        Some((_, Value::String(s))) => Ok(s),
        Some((_, other)) => Err(DeError::expected("string tag", other)),
        None => Err(DeError(format!("missing tag field `{tag}`"))),
    }
}
