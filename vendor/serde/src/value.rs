//! JSON-shaped value tree shared by the `serde` and `serde_json` stubs.
//!
//! Object fields are stored as an insertion-ordered `Vec` of pairs rather
//! than a map: the derive macro emits fields in declaration order, which
//! keeps serialised output stable and readable.

use std::fmt;
use std::ops::Index;

/// A JSON number. Integers keep their integer-ness so round-trips do not
/// lose precision for u64/i64 values beyond 2^53.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    Int(i64),
    UInt(u64),
    Float(f64),
}

impl Number {
    pub fn as_f64(&self) -> f64 {
        match self {
            Number::Int(i) => *i as f64,
            Number::UInt(u) => *u as f64,
            Number::Float(f) => *f,
        }
    }

    /// Integer view; `None` for floats with a fractional part.
    pub fn as_i128(&self) -> Option<i128> {
        match self {
            Number::Int(i) => Some(*i as i128),
            Number::UInt(u) => Some(*u as i128),
            Number::Float(f) if f.fract() == 0.0 && f.abs() < 9.0e18 => Some(*f as i128),
            Number::Float(_) => None,
        }
    }
}

/// In-memory representation of a JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Human-readable kind, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Object field lookup; `None` if not an object or key absent.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i128().and_then(|i| i64::try_from(i).ok()),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_i128().and_then(|i| u64::try_from(i).ok()),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn is_object(&self) -> bool {
        matches!(self, Value::Object(_))
    }

    pub fn is_array(&self) -> bool {
        matches!(self, Value::Array(_))
    }

    pub fn is_string(&self) -> bool {
        matches!(self, Value::String(_))
    }

    pub fn is_number(&self) -> bool {
        matches!(self, Value::Number(_))
    }

    /// Writes compact JSON into `out`.
    pub(crate) fn write_json(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => write_number(*n, out),
            Value::String(s) => write_escaped(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_json(out);
                }
                out.push(']');
            }
            Value::Object(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write_json(out);
                }
                out.push('}');
            }
        }
    }

    /// Writes pretty JSON (two-space indent, like serde_json) into `out`.
    pub(crate) fn write_json_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Value::Array(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    item.write_json_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Value::Object(pairs) if !pairs.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    write_escaped(k, out);
                    out.push_str(": ");
                    v.write_json_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
            other => other.write_json(out),
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_number(n: Number, out: &mut String) {
    use std::fmt::Write;
    match n {
        Number::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Number::UInt(u) => {
            let _ = write!(out, "{u}");
        }
        Number::Float(f) => write_float(f, out),
    }
}

/// Appends a float in serde_json's format: Rust's shortest round-trip
/// formatting with a trailing ".0" so floats re-parse as floats, and
/// `null` for non-finite values. Writes straight into `out` — no
/// intermediate allocation.
pub(crate) fn write_float(f: f64, out: &mut String) {
    use std::fmt::Write;
    if f.is_finite() {
        let start = out.len();
        let _ = write!(out, "{f}");
        if !out[start..].contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        // serde_json serialises non-finite floats as null.
        out.push_str("null");
    }
}

/// Appends a JSON string literal. Scans for the next byte that needs
/// escaping and bulk-copies the clean span before it (escapes are rare;
/// the common case is one `push_str` of the whole string).
pub(crate) fn write_escaped(s: &str, out: &mut String) {
    use std::fmt::Write;
    out.push('"');
    let bytes = s.as_bytes();
    let mut start = 0;
    let mut i = 0;
    while i < bytes.len() {
        let escape: &str = match bytes[i] {
            b'"' => "\\\"",
            b'\\' => "\\\\",
            b'\n' => "\\n",
            b'\r' => "\\r",
            b'\t' => "\\t",
            0x00..=0x1f => "",
            _ => {
                i += 1;
                continue;
            }
        };
        out.push_str(&s[start..i]);
        if escape.is_empty() {
            let _ = write!(out, "\\u{:04x}", bytes[i]);
        } else {
            out.push_str(escape);
        }
        i += 1;
        start = i;
    }
    out.push_str(&s[start..]);
    out.push('"');
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        if f.alternate() {
            self.write_json_pretty(&mut out, 0);
        } else {
            self.write_json(&mut out);
        }
        f.write_str(&out)
    }
}

/// `value["key"]` — returns `Null` for missing keys / non-objects,
/// matching serde_json's panic-free indexing.
impl Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        const NULL: Value = Value::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

impl Index<usize> for Value {
    type Output = Value;

    fn index(&self, i: usize) -> &Value {
        const NULL: Value = Value::Null;
        match self {
            Value::Array(items) => items.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other.as_str() == Some(*self)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl PartialEq<i64> for Value {
    fn eq(&self, other: &i64) -> bool {
        self.as_i64() == Some(*other)
    }
}

impl PartialEq<u64> for Value {
    fn eq(&self, other: &u64) -> bool {
        self.as_u64() == Some(*other)
    }
}

impl PartialEq<usize> for Value {
    fn eq(&self, other: &usize) -> bool {
        self.as_u64() == Some(*other as u64)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::String(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::String(s)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<f64> for Value {
    fn from(f: f64) -> Value {
        Value::Number(Number::Float(f))
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Value {
        Value::Number(Number::Int(i))
    }
}

impl From<u64> for Value {
    fn from(u: u64) -> Value {
        Value::Number(Number::UInt(u))
    }
}

impl From<i32> for Value {
    fn from(i: i32) -> Value {
        Value::Number(Number::Int(i as i64))
    }
}

impl From<usize> for Value {
    fn from(u: usize) -> Value {
        Value::Number(Number::UInt(u as u64))
    }
}
