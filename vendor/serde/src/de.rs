//! Streaming JSON reader powering the direct (tree-free) deserialisation
//! path. `serde_json::from_str` drives [`crate::Deserialize::from_json`]
//! with one of these; the derive macro generates single-pass object scans
//! against it so hot-path requests never materialise a [`Value`] tree.
//!
//! Semantics mirror the tree parser exactly: number classification
//! (int/uint/float), escape handling with surrogate pairs, duplicate-key
//! first-wins (callers `skip_value` the duplicate), and the same error
//! message shapes.

use crate::value::{Number, Value};
use crate::DeError;
use std::borrow::Cow;

/// Cursor over a JSON document held in memory.
pub struct JsonDe<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonDe<'a> {
    pub fn new(s: &'a str) -> Self {
        JsonDe { bytes: s.as_bytes(), pos: 0 }
    }

    /// Current byte offset — used for error messages and the
    /// trailing-characters check in `serde_json::from_str`.
    pub fn pos(&self) -> usize {
        self.pos
    }

    pub fn at_eof(&self) -> bool {
        self.pos == self.bytes.len()
    }

    pub fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            match b {
                b' ' | b'\t' | b'\n' | b'\r' => self.pos += 1,
                _ => break,
            }
        }
    }

    pub fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), DeError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(DeError(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    /// Consumes `null` if it is next (whitespace already skipped).
    pub fn try_null(&mut self) -> bool {
        self.peek() == Some(b'n') && self.eat_keyword("null")
    }

    pub fn parse_bool(&mut self) -> Result<bool, DeError> {
        self.skip_ws();
        match self.peek() {
            Some(b't') if self.eat_keyword("true") => Ok(true),
            Some(b'f') if self.eat_keyword("false") => Ok(false),
            _ => Err(DeError(format!("expected bool at byte {}", self.pos))),
        }
    }

    // ---- strings -------------------------------------------------------

    /// Parses a JSON string, borrowing from the input when it contains no
    /// escapes (the overwhelmingly common case for keys and enum tags).
    pub fn parse_str(&mut self) -> Result<Cow<'a, str>, DeError> {
        self.expect(b'"')?;
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b == b'"' || b == b'\\' {
                break;
            }
            self.pos += 1;
        }
        if self.peek() == Some(b'"') {
            let s = std::str::from_utf8(&self.bytes[start..self.pos])
                .map_err(|_| DeError("invalid UTF-8 in string".into()))?;
            self.pos += 1;
            return Ok(Cow::Borrowed(s));
        }
        self.pos = start;
        self.parse_str_escaped().map(Cow::Owned)
    }

    /// Slow path: unescapes into an owned buffer. `self.pos` sits just
    /// after the opening quote.
    fn parse_str_escaped(&mut self) -> Result<String, DeError> {
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| DeError("invalid UTF-8 in string".into()))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| DeError("unterminated escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            let code = self.parse_hex4()?;
                            // Surrogate pairs: read the low half if present.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if self.eat_keyword("\\u") {
                                    let low = self.parse_hex4()?;
                                    0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00)
                                } else {
                                    return Err(DeError("lone surrogate".into()));
                                }
                            } else {
                                code
                            };
                            out.push(
                                char::from_u32(c)
                                    .ok_or_else(|| DeError("invalid \\u codepoint".into()))?,
                            );
                        }
                        other => {
                            return Err(DeError(format!("bad escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(DeError("unterminated string".into())),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, DeError> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .and_then(|h| std::str::from_utf8(h).ok())
            .ok_or_else(|| DeError("bad \\u escape".into()))?;
        let code =
            u32::from_str_radix(hex, 16).map_err(|_| DeError("bad \\u escape".into()))?;
        self.pos += 4;
        Ok(code)
    }

    /// Owned-string convenience for map keys and `String` fields.
    pub fn parse_string(&mut self) -> Result<String, DeError> {
        self.skip_ws();
        self.parse_str().map(Cow::into_owned)
    }

    // ---- numbers -------------------------------------------------------

    /// Parses a number with the same int/uint/float classification as the
    /// value tree: a token containing `.`/`e`/`E`/`+`/`-` (past a leading
    /// minus) is a float; otherwise u64 → i64 → f64 in that order.
    pub fn parse_number(&mut self) -> Result<Number, DeError> {
        self.skip_ws();
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        if self.pos == start {
            return Err(DeError(format!("expected number at byte {}", start)));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_float {
            Ok(Number::Float(text.parse::<f64>().map_err(|_| {
                DeError(format!("bad number `{text}`"))
            })?))
        } else if text.starts_with('-') {
            match text.parse::<i64>() {
                Ok(i) => Ok(Number::Int(i)),
                Err(_) => Ok(Number::Float(text.parse::<f64>().map_err(|_| {
                    DeError(format!("bad number `{text}`"))
                })?)),
            }
        } else {
            match text.parse::<u64>() {
                Ok(u) => Ok(Number::UInt(u)),
                Err(_) => Ok(Number::Float(text.parse::<f64>().map_err(|_| {
                    DeError(format!("bad number `{text}`"))
                })?)),
            }
        }
    }

    // ---- composite framing (drives generated single-pass scans) --------

    /// Consumes `{` (and surrounding whitespace). Returns `false` when the
    /// object was empty — the closing `}` is consumed too.
    pub fn obj_begin(&mut self) -> Result<bool, DeError> {
        self.skip_ws();
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(false);
        }
        Ok(true)
    }

    /// After a member value: consumes `,` (another member follows, `true`)
    /// or `}` (object done, `false`).
    pub fn obj_next(&mut self) -> Result<bool, DeError> {
        self.skip_ws();
        match self.peek() {
            Some(b',') => {
                self.pos += 1;
                Ok(true)
            }
            Some(b'}') => {
                self.pos += 1;
                Ok(false)
            }
            _ => Err(DeError(format!("expected `,` or `}}` at byte {}", self.pos))),
        }
    }

    /// Consumes the next member's key and its `:` separator.
    pub fn member_key(&mut self) -> Result<Cow<'a, str>, DeError> {
        self.skip_ws();
        let key = self.parse_str()?;
        self.skip_ws();
        self.expect(b':')?;
        Ok(key)
    }

    /// Consumes `[`. Returns `false` when the array was empty (the `]` is
    /// consumed too).
    pub fn arr_begin(&mut self) -> Result<bool, DeError> {
        self.skip_ws();
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(false);
        }
        Ok(true)
    }

    /// After an element: consumes `,` (`true`) or `]` (`false`).
    pub fn arr_next(&mut self) -> Result<bool, DeError> {
        self.skip_ws();
        match self.peek() {
            Some(b',') => {
                self.pos += 1;
                Ok(true)
            }
            Some(b']') => {
                self.pos += 1;
                Ok(false)
            }
            _ => Err(DeError(format!("expected `,` or `]` at byte {}", self.pos))),
        }
    }

    /// Non-consuming probe: does the next value look like an object whose
    /// first key equals `want`? Used by internally-tagged enums to pick
    /// the streaming fast path when the tag leads (how our own encoder
    /// lays frames out) and fall back to the tree otherwise. Escaped keys
    /// report `false` — the tree path handles them correctly.
    pub fn first_key_is(&self, want: &str) -> bool {
        let b = self.bytes;
        let mut i = self.pos;
        while matches!(b.get(i), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            i += 1;
        }
        if b.get(i) != Some(&b'{') {
            return false;
        }
        i += 1;
        while matches!(b.get(i), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            i += 1;
        }
        if b.get(i) != Some(&b'"') {
            return false;
        }
        i += 1;
        let start = i;
        while i < b.len() && b[i] != b'"' && b[i] != b'\\' {
            i += 1;
        }
        if b.get(i) != Some(&b'"') {
            return false;
        }
        &b[start..i] == want.as_bytes()
    }

    /// Parses and discards the next value. Used for unknown and duplicate
    /// object members; delegates to the tree parser so validation is
    /// identical to the non-streaming path.
    pub fn skip_value(&mut self) -> Result<(), DeError> {
        self.parse_value().map(|_| ())
    }

    // ---- full tree parse (fallback path and `Value`'s deserialiser) ----

    pub fn parse_value(&mut self) -> Result<Value, DeError> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_str().map(|s| Value::String(s.into_owned())),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => {
                self.parse_number().map(Value::Number)
            }
            other => Err(DeError(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, DeError> {
        if !self.arr_begin()? {
            return Ok(Value::Array(Vec::new()));
        }
        let mut items = Vec::with_capacity(8);
        loop {
            items.push(self.parse_value()?);
            if !self.arr_next()? {
                return Ok(Value::Array(items));
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, DeError> {
        if !self.obj_begin()? {
            return Ok(Value::Object(Vec::new()));
        }
        let mut pairs = Vec::with_capacity(8);
        loop {
            let key = self.member_key()?.into_owned();
            let value = self.parse_value()?;
            pairs.push((key, value));
            if !self.obj_next()? {
                return Ok(Value::Object(pairs));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn borrows_plain_strings_and_owns_escaped_ones() {
        let mut de = JsonDe::new(r#""plain""#);
        assert!(matches!(de.parse_str().unwrap(), Cow::Borrowed("plain")));
        let mut de = JsonDe::new(r#""a\nb""#);
        assert!(matches!(de.parse_str().unwrap(), Cow::Owned(ref s) if s == "a\nb"));
    }

    #[test]
    fn number_classification_matches_tree_semantics() {
        let cases: &[(&str, Number)] = &[
            ("5", Number::UInt(5)),
            ("-5", Number::Int(-5)),
            ("5.0", Number::Float(5.0)),
            ("1e3", Number::Float(1000.0)),
            ("18446744073709551615", Number::UInt(u64::MAX)),
        ];
        for (text, want) in cases {
            let mut de = JsonDe::new(text);
            assert_eq!(&de.parse_number().unwrap(), want, "{text}");
        }
    }

    #[test]
    fn first_key_probe_is_non_consuming() {
        let de = JsonDe::new(r#"  { "op" : "stats" }"#);
        assert!(de.first_key_is("op"));
        assert!(!de.first_key_is("status"));
        assert_eq!(de.pos(), 0);
    }

    #[test]
    fn skip_value_validates_like_the_tree_parser() {
        let mut de = JsonDe::new(r#"{"a": [1, {"b": "A"}]} tail"#);
        de.skip_value().unwrap();
        de.skip_ws();
        assert!(!de.at_eof());
        let mut de = JsonDe::new(r#"{"a": [1, }"#);
        assert!(de.skip_value().is_err());
    }
}
