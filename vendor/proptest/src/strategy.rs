//! Value-generation strategies (no shrinking).

use crate::regex_gen;
use crate::test_runner::TestRng;
use rand::Rng;

/// A recipe for generating values of one type.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<U, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        U: Strategy,
        F: Fn(Self::Value) -> U,
    {
        FlatMap { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe indirection for [`BoxedStrategy`] and [`Union`].
trait DynStrategy<T> {
    fn dyn_generate(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.dyn_generate(rng)
    }
}

/// Always yields a clone of one value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for FlatMap<S, F>
where
    S: Strategy,
    U: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U::Value;

    fn generate(&self, rng: &mut TestRng) -> U::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Uniform choice between strategies (the `prop_oneof!` expansion).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

// ---- ranges as strategies ---------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        rng.gen_range(self.start as f64..self.end as f64) as f32
    }
}

// ---- string literals as regex strategies ------------------------------

impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        regex_gen::generate(self, rng)
    }
}

impl Strategy for String {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        regex_gen::generate(self, rng)
    }
}

// ---- tuples of strategies ---------------------------------------------

macro_rules! tuple_strategy {
    ($(($($n:tt $s:ident),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )+};
}
tuple_strategy!(
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
    (0 A, 1 B, 2 C, 3 D, 4 E),
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F),
);

// ---- any::<T>() -------------------------------------------------------

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    type Strategy: Strategy<Value = Self>;

    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

pub struct AnyPrim<T>(std::marker::PhantomData<T>);

macro_rules! arbitrary_prim {
    ($($t:ty),*) => {$(
        impl Strategy for AnyPrim<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen()
            }
        }

        impl Arbitrary for $t {
            type Strategy = AnyPrim<$t>;

            fn arbitrary() -> AnyPrim<$t> {
                AnyPrim(std::marker::PhantomData)
            }
        }
    )*};
}
arbitrary_prim!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64, f32);
