//! Test execution support: per-test configuration and the deterministic RNG.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// RNG handed to strategies. Seeded from the test name, so every run of a
/// given test explores the same case sequence.
pub struct TestRng(StdRng);

impl TestRng {
    pub fn deterministic(test_name: &str) -> TestRng {
        // FNV-1a over the name gives a stable, well-spread seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }
}

impl RngCore for TestRng {
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.0.fill_bytes(dest)
    }
}
