//! Offline stand-in for `proptest`, covering the subset this workspace
//! uses: the `proptest!`/`prop_oneof!`/`prop_assert*` macros, range and
//! regex-literal strategies, tuples, `prop::collection::vec`, `any::<T>()`,
//! and `prop_map`/`prop_flat_map`/`boxed`.
//!
//! Differences from upstream: no shrinking (failures report the assert
//! message, not a minimised counterexample) and a fixed deterministic RNG
//! per test (seeded from the test name), which keeps runs reproducible.

pub mod collection;
pub mod strategy;
pub mod test_runner;

mod regex_gen;

pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespace mirror so call sites can write `prop::collection::vec`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Runs each `#[test] fn name(pat in strategy, ...) { body }` item
/// `config.cases` times with freshly generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    ($config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let strat = ($($strat,)+);
            let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
            for _case in 0..config.cases {
                let ($($pat,)+) = $crate::strategy::Strategy::generate(&strat, &mut rng);
                $body
            }
        }
    )*};
}

/// Uniform choice between heterogeneous strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::Strategy::boxed($s)),+])
    };
}

/// Without shrinking these are plain asserts; the failure message still
/// pinpoints the violated property.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}
