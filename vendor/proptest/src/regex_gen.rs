//! Random string generation from a small regex subset: literals, `.`,
//! character classes `[...]` (with ranges and escapes), groups `(...)`
//! with `|` alternation, and the quantifiers `{m}`, `{m,n}`, `*`, `+`, `?`.

use crate::test_runner::TestRng;
use rand::Rng;

/// One regex atom plus its repetition bounds (inclusive).
struct Piece {
    node: Node,
    min: usize,
    max: usize,
}

enum Node {
    Lit(char),
    /// `.` — printable ASCII, no newline (matches the regex semantics).
    AnyChar,
    /// Expanded character class.
    Class(Vec<char>),
    /// Alternation of sequences.
    Group(Vec<Vec<Piece>>),
}

pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pos = 0;
    let alternatives = parse_alternatives(&chars, &mut pos, false);
    if pos != chars.len() {
        panic!("vendored proptest: unparsed regex tail in `{pattern}` at {pos}");
    }
    let mut out = String::new();
    let i = rng.gen_range(0..alternatives.len());
    emit_sequence(&alternatives[i], rng, &mut out);
    out
}

/// Parses `a|b|c` sequences until end of input or an unmatched `)`.
fn parse_alternatives(chars: &[char], pos: &mut usize, in_group: bool) -> Vec<Vec<Piece>> {
    let mut alternatives = vec![Vec::new()];
    while *pos < chars.len() {
        match chars[*pos] {
            ')' if in_group => break,
            '|' => {
                *pos += 1;
                alternatives.push(Vec::new());
            }
            _ => {
                let node = parse_atom(chars, pos);
                let (min, max) = parse_quantifier(chars, pos);
                alternatives.last_mut().unwrap().push(Piece { node, min, max });
            }
        }
    }
    alternatives
}

fn parse_atom(chars: &[char], pos: &mut usize) -> Node {
    let c = chars[*pos];
    *pos += 1;
    match c {
        '.' => Node::AnyChar,
        '\\' => {
            let esc = chars[*pos];
            *pos += 1;
            Node::Lit(unescape(esc))
        }
        '[' => {
            let mut set = Vec::new();
            while chars[*pos] != ']' {
                let lo = if chars[*pos] == '\\' {
                    *pos += 1;
                    let e = unescape(chars[*pos]);
                    *pos += 1;
                    e
                } else {
                    let ch = chars[*pos];
                    *pos += 1;
                    ch
                };
                // A dash between two chars is a range; elsewhere literal.
                if chars[*pos] == '-' && chars[*pos + 1] != ']' {
                    *pos += 1;
                    let hi = chars[*pos];
                    *pos += 1;
                    for v in (lo as u32)..=(hi as u32) {
                        if let Some(ch) = char::from_u32(v) {
                            set.push(ch);
                        }
                    }
                } else {
                    set.push(lo);
                }
            }
            *pos += 1; // consume ']'
            assert!(!set.is_empty(), "vendored proptest: empty character class");
            Node::Class(set)
        }
        '(' => {
            let alternatives = parse_alternatives(chars, pos, true);
            assert!(
                *pos < chars.len() && chars[*pos] == ')',
                "vendored proptest: unclosed group"
            );
            *pos += 1;
            Node::Group(alternatives)
        }
        other => Node::Lit(other),
    }
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        other => other, // \- \{ \} \\ \. etc: the literal character
    }
}

fn parse_quantifier(chars: &[char], pos: &mut usize) -> (usize, usize) {
    if *pos >= chars.len() {
        return (1, 1);
    }
    match chars[*pos] {
        '{' => {
            *pos += 1;
            let min = parse_number(chars, pos);
            let max = if chars[*pos] == ',' {
                *pos += 1;
                parse_number(chars, pos)
            } else {
                min
            };
            assert!(chars[*pos] == '}', "vendored proptest: malformed {{m,n}}");
            *pos += 1;
            (min, max)
        }
        '*' => {
            *pos += 1;
            (0, 8)
        }
        '+' => {
            *pos += 1;
            (1, 8)
        }
        '?' => {
            *pos += 1;
            (0, 1)
        }
        _ => (1, 1),
    }
}

fn parse_number(chars: &[char], pos: &mut usize) -> usize {
    let start = *pos;
    while chars[*pos].is_ascii_digit() {
        *pos += 1;
    }
    chars[start..*pos].iter().collect::<String>().parse().expect("quantifier number")
}

fn emit_sequence(pieces: &[Piece], rng: &mut TestRng, out: &mut String) {
    for piece in pieces {
        let reps = rng.gen_range(piece.min..=piece.max);
        for _ in 0..reps {
            emit_node(&piece.node, rng, out);
        }
    }
}

fn emit_node(node: &Node, rng: &mut TestRng, out: &mut String) {
    match node {
        Node::Lit(c) => out.push(*c),
        Node::AnyChar => out.push(rng.gen_range(0x20u32..0x7F) as u8 as char),
        Node::Class(set) => out.push(set[rng.gen_range(0..set.len())]),
        Node::Group(alternatives) => {
            let i = rng.gen_range(0..alternatives.len());
            emit_sequence(&alternatives[i], rng, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn generates_matching_shapes() {
        let mut rng = TestRng::deterministic("regex_gen");
        for _ in 0..200 {
            let s = generate("[a-z]{1,5}(,[a-z]{1,5}){0,4}", &mut rng);
            assert!(!s.is_empty());
            for part in s.split(',') {
                assert!((1..=5).contains(&part.len()), "{s:?}");
                assert!(part.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");
            }
        }
    }

    #[test]
    fn alternation_and_escapes() {
        let mut rng = TestRng::deterministic("alt");
        for _ in 0..100 {
            let s = generate("(numeric|\\{a,b\\})\n", &mut rng);
            assert!(s == "numeric\n" || s == "{a,b}\n", "{s:?}");
        }
    }

    #[test]
    fn dot_stays_printable() {
        let mut rng = TestRng::deterministic("dot");
        for _ in 0..100 {
            let s = generate(".{0,400}", &mut rng);
            assert!(s.len() <= 400);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }
}
