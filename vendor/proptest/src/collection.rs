//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// Length specification: an exact size or a half-open range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { min: n, max_inclusive: n }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> SizeRange {
        assert!(r.end > r.start, "empty vec size range");
        SizeRange { min: r.start, max_inclusive: r.end - 1 }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
        SizeRange { min: *r.start(), max_inclusive: *r.end() }
    }
}

/// `Vec` of values from `element`, with length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.min..=self.size.max_inclusive);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
