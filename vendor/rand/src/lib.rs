//! Offline stand-in for the `rand` crate, covering exactly the API surface
//! this workspace uses: `StdRng` + `SeedableRng`, the `Rng` extension trait
//! (`gen_range`, `gen_bool`, `gen`), `seq::SliceRandom::shuffle`, and the
//! `distributions::Distribution` trait.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — a different
//! stream than upstream `StdRng` (ChaCha12), but every consumer in this
//! workspace only relies on *determinism given a seed* and statistical
//! uniformity, never on a specific stream.

use std::ops::{Range, RangeInclusive};

/// Core generator interface: a source of uniform random `u64`s.
pub trait RngCore {
    /// Next uniform `u64`.
    fn next_u64(&mut self) -> u64;

    /// Next uniform `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    /// Seed byte array type.
    type Seed: AsMut<[u8]> + Default;

    /// Constructs from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs from a `u64` (the only constructor this workspace uses).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64: seed expander (public for in-workspace seed derivation).
pub(crate) struct SplitMix64(pub u64);

impl SplitMix64 {
    pub fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = (self.s[0].wrapping_add(self.s[3]))
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(bytes);
            }
            // All-zero state is the one forbidden xoshiro state.
            if s == [0, 0, 0, 0] {
                s = [0x9E3779B97F4A7C15, 0x6A09E667F3BCC909, 0xBB67AE8584CAA73B, 0x3C6EF372FE94F82B];
            }
            StdRng { s }
        }
    }
}

/// Sampling a value of `T` uniformly over its "standard" domain
/// (`[0, 1)` for floats, the full range for integers).
pub trait StandardSample: Sized {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits on [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for bool {
    #[inline]
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            #[inline]
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

#[inline]
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    // Widening-multiply mapping; bias is < span / 2^64, negligible here.
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_u64_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_u64_below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}
range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                self.start + <$t as StandardSample>::standard_sample(rng) * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                lo + <$t as StandardSample>::standard_sample(rng) * (hi - lo)
            }
        }
    )*};
}
range_float!(f32, f64);

/// The user-facing extension trait.
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    #[inline]
    fn gen_range<T, B: SampleRange<T>>(&mut self, range: B) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::standard_sample(self) < p
    }

    /// A standard sample of `T` (`[0,1)` floats, full-range integers).
    #[inline]
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Samples from an explicit distribution.
    #[inline]
    fn sample<T, D: distributions::Distribution<T>>(&mut self, distr: D) -> T
    where
        Self: Sized,
    {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling and sampling.
    pub trait SliceRandom {
        type Item;

        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// One uniformly-chosen element, `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

pub mod distributions {
    use super::RngCore;

    /// A distribution over values of `T`.
    pub trait Distribution<T> {
        /// Draws one sample.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The standard uniform distribution (`[0,1)` floats).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    impl<T: super::StandardSample> Distribution<T> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
            T::standard_sample(rng)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 2);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&x));
            let n: usize = rng.gen_range(0..7);
            assert!(n < 7);
            let m: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&m));
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(4);
        let samples: Vec<f64> = (0..10_000).map(|_| rng.gen::<f64>()).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
        assert!(samples.iter().all(|&x| (0.0..1.0).contains(&x)));
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((hits as f64 / 10_000.0 - 0.3).abs() < 0.03);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }
}
