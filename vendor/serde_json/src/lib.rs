//! Offline stand-in for `serde_json`: JSON text ⇄ the [`Value`] tree from
//! the vendored `serde` crate, plus a `json!` literal macro.

pub use serde::{Number, Value};

use serde::{Deserialize, Serialize};

/// Parse or serialisation failure.
#[derive(Debug, Clone)]
pub struct Error(pub String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Error {
        Error(e.0)
    }
}

/// Serialises to compact JSON. Infallible for tree-shaped data; the
/// `Result` mirrors the upstream signature. Streams through
/// [`Serialize::serialize_into`] — derived types write JSON directly
/// without building an intermediate [`Value`] tree.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::with_capacity(128);
    value.serialize_into(&mut out);
    Ok(out)
}

/// Serialises to pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(format!("{:#}", value.to_value()))
}

/// Converts any serialisable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Parses JSON text into any deserialisable type. Drives the streaming
/// [`Deserialize::from_json`] path — derived types scan the text in a
/// single pass without materialising a [`Value`] tree.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut de = serde::JsonDe::new(s);
    let value = T::from_json(&mut de).map_err(Error::from)?;
    de.skip_ws();
    if !de.at_eof() {
        return Err(Error(format!("trailing characters at byte {}", de.pos())));
    }
    Ok(value)
}

// ---- json! macro ------------------------------------------------------

/// Builds a [`Value`] from JSON-looking syntax. Object values may be
/// nested objects/arrays, `null`, or arbitrary Rust expressions.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::to_value(&$elem) ),* ])
    };
    ({}) => { $crate::Value::Object(Vec::new()) };
    ({ $($body:tt)+ }) => {{
        let mut obj: Vec<(String, $crate::Value)> = Vec::new();
        $crate::json_object_entries!(obj, $($body)+);
        $crate::Value::Object(obj)
    }};
    ($other:expr) => { $crate::to_value(&$other) };
}

/// Internal muncher for `json!` object bodies — not public API.
#[macro_export]
#[doc(hidden)]
macro_rules! json_object_entries {
    ($obj:ident, $key:literal : null $(, $($rest:tt)*)?) => {
        $obj.push(($key.to_string(), $crate::Value::Null));
        $( $crate::json_object_entries!($obj, $($rest)*); )?
    };
    ($obj:ident, $key:literal : { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $obj.push(($key.to_string(), $crate::json!({ $($inner)* })));
        $( $crate::json_object_entries!($obj, $($rest)*); )?
    };
    ($obj:ident, $key:literal : [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $obj.push(($key.to_string(), $crate::json!([ $($inner)* ])));
        $( $crate::json_object_entries!($obj, $($rest)*); )?
    };
    ($obj:ident, $key:literal : $val:expr $(, $($rest:tt)*)?) => {
        $obj.push(($key.to_string(), $crate::to_value(&$val)));
        $( $crate::json_object_entries!($obj, $($rest)*); )?
    };
    ($obj:ident $(,)?) => {};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_document() {
        let text = r#"{"a": [1, 2.5, -3], "b": {"c": null, "d": "x\n\"y\""}, "e": true}"#;
        let v: Value = from_str(text).unwrap();
        assert_eq!(v["a"][1], 2.5_f64);
        assert_eq!(v["b"]["d"], "x\n\"y\"");
        assert!(v["b"]["c"].is_null());
        let back: Value = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn json_macro_builds_nested_values() {
        let name = String::from("toy");
        let xs = vec![1.0_f64, 2.0];
        let v = json!({
            "action": "run",
            "name": name,
            "dataset": {"csv": {"content": format!("{}!", 1), "target": null}},
            "xs": xs,
            "n": 2,
        });
        assert_eq!(v["action"], "run");
        assert_eq!(v["dataset"]["csv"]["content"], "1!");
        assert!(v["dataset"]["csv"]["target"].is_null());
        assert_eq!(v["xs"][1], 2.0_f64);
        assert_eq!(v["n"].as_u64(), Some(2));
    }

    #[test]
    fn floats_keep_a_decimal_point() {
        assert_eq!(to_string(&1.0_f64).unwrap(), "1.0");
        assert_eq!(to_string(&0.5_f64).unwrap(), "0.5");
        let v: Value = from_str("1.0").unwrap();
        assert_eq!(v.as_f64(), Some(1.0));
    }

    #[test]
    fn unicode_escapes_decode() {
        let v: Value = from_str(r#""A😀""#).unwrap();
        assert_eq!(v, "A😀");
    }
}
