//! Offline stand-in for `serde_json`: JSON text ⇄ the [`Value`] tree from
//! the vendored `serde` crate, plus a `json!` literal macro.

pub use serde::{Number, Value};

use serde::{Deserialize, Serialize};

/// Parse or serialisation failure.
#[derive(Debug, Clone)]
pub struct Error(pub String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Error {
        Error(e.0)
    }
}

/// Serialises to compact JSON. Infallible for tree-shaped data; the
/// `Result` mirrors the upstream signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_string())
}

/// Serialises to pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(format!("{:#}", value.to_value()))
}

/// Converts any serialisable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Parses JSON text into any deserialisable type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    T::from_value(&value).map_err(Error::from)
}

// ---- recursive-descent parser -----------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            match b {
                b' ' | b'\t' | b'\n' | b'\r' => self.pos += 1,
                _ => break,
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error("invalid UTF-8 in string".into()))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error("unterminated escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| Error("bad \\u escape".into()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error("bad \\u escape".into()))?;
                            self.pos += 4;
                            // Surrogate pairs: read the low half if present.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if self.eat_keyword("\\u") {
                                    let hex2 = self
                                        .bytes
                                        .get(self.pos..self.pos + 4)
                                        .and_then(|h| std::str::from_utf8(h).ok())
                                        .ok_or_else(|| Error("bad \\u escape".into()))?;
                                    let low = u32::from_str_radix(hex2, 16)
                                        .map_err(|_| Error("bad \\u escape".into()))?;
                                    self.pos += 4;
                                    0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00)
                                } else {
                                    return Err(Error("lone surrogate".into()));
                                }
                            } else {
                                code
                            };
                            out.push(
                                char::from_u32(c)
                                    .ok_or_else(|| Error("invalid \\u codepoint".into()))?,
                            );
                        }
                        other => {
                            return Err(Error(format!("bad escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        let number = if is_float {
            Number::Float(
                text.parse::<f64>()
                    .map_err(|_| Error(format!("bad number `{text}`")))?,
            )
        } else if text.starts_with('-') {
            match text.parse::<i64>() {
                Ok(i) => Number::Int(i),
                Err(_) => Number::Float(
                    text.parse::<f64>()
                        .map_err(|_| Error(format!("bad number `{text}`")))?,
                ),
            }
        } else {
            match text.parse::<u64>() {
                Ok(u) => Number::UInt(u),
                Err(_) => Number::Float(
                    text.parse::<f64>()
                        .map_err(|_| Error(format!("bad number `{text}`")))?,
                ),
            }
        };
        Ok(Value::Number(number))
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }
}

// ---- json! macro ------------------------------------------------------

/// Builds a [`Value`] from JSON-looking syntax. Object values may be
/// nested objects/arrays, `null`, or arbitrary Rust expressions.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::to_value(&$elem) ),* ])
    };
    ({}) => { $crate::Value::Object(Vec::new()) };
    ({ $($body:tt)+ }) => {{
        let mut obj: Vec<(String, $crate::Value)> = Vec::new();
        $crate::json_object_entries!(obj, $($body)+);
        $crate::Value::Object(obj)
    }};
    ($other:expr) => { $crate::to_value(&$other) };
}

/// Internal muncher for `json!` object bodies — not public API.
#[macro_export]
#[doc(hidden)]
macro_rules! json_object_entries {
    ($obj:ident, $key:literal : null $(, $($rest:tt)*)?) => {
        $obj.push(($key.to_string(), $crate::Value::Null));
        $( $crate::json_object_entries!($obj, $($rest)*); )?
    };
    ($obj:ident, $key:literal : { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $obj.push(($key.to_string(), $crate::json!({ $($inner)* })));
        $( $crate::json_object_entries!($obj, $($rest)*); )?
    };
    ($obj:ident, $key:literal : [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $obj.push(($key.to_string(), $crate::json!([ $($inner)* ])));
        $( $crate::json_object_entries!($obj, $($rest)*); )?
    };
    ($obj:ident, $key:literal : $val:expr $(, $($rest:tt)*)?) => {
        $obj.push(($key.to_string(), $crate::to_value(&$val)));
        $( $crate::json_object_entries!($obj, $($rest)*); )?
    };
    ($obj:ident $(,)?) => {};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_document() {
        let text = r#"{"a": [1, 2.5, -3], "b": {"c": null, "d": "x\n\"y\""}, "e": true}"#;
        let v: Value = from_str(text).unwrap();
        assert_eq!(v["a"][1], 2.5_f64);
        assert_eq!(v["b"]["d"], "x\n\"y\"");
        assert!(v["b"]["c"].is_null());
        let back: Value = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn json_macro_builds_nested_values() {
        let name = String::from("toy");
        let xs = vec![1.0_f64, 2.0];
        let v = json!({
            "action": "run",
            "name": name,
            "dataset": {"csv": {"content": format!("{}!", 1), "target": null}},
            "xs": xs,
            "n": 2,
        });
        assert_eq!(v["action"], "run");
        assert_eq!(v["dataset"]["csv"]["content"], "1!");
        assert!(v["dataset"]["csv"]["target"].is_null());
        assert_eq!(v["xs"][1], 2.0_f64);
        assert_eq!(v["n"].as_u64(), Some(2));
    }

    #[test]
    fn floats_keep_a_decimal_point() {
        assert_eq!(to_string(&1.0_f64).unwrap(), "1.0");
        assert_eq!(to_string(&0.5_f64).unwrap(), "0.5");
        let v: Value = from_str("1.0").unwrap();
        assert_eq!(v.as_f64(), Some(1.0));
    }

    #[test]
    fn unicode_escapes_decode() {
        let v: Value = from_str(r#""A😀""#).unwrap();
        assert_eq!(v, "A😀");
    }
}
