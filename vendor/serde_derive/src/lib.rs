//! `#[derive(Serialize, Deserialize)]` for the vendored serde subset.
//!
//! Implemented directly on `proc_macro::TokenTree` (no syn/quote — the
//! vendor tree must build offline with zero external dependencies).
//! Supports exactly the shapes this workspace uses:
//!
//! - structs with named fields, `#[serde(default)]` on fields
//! - externally-tagged enums (unit / newtype / tuple / struct variants)
//! - internally-tagged enums via `#[serde(tag = "...")]` (unit / struct)
//! - `#[serde(rename_all = "snake_case")]` on containers
//!
//! Generics, tuple structs, and other serde attributes are rejected with
//! a panic naming the limitation.

use proc_macro::{Delimiter, Group, TokenStream, TokenTree};

// ---- parsed representation --------------------------------------------

struct Container {
    name: String,
    tag: Option<String>,
    rename_all: Option<String>,
    kind: Kind,
}

enum Kind {
    Struct(Vec<Field>),
    Enum(Vec<Variant>),
}

struct Field {
    name: String,
    default: bool,
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

// ---- parsing ----------------------------------------------------------

fn ident_of(t: &TokenTree) -> Option<String> {
    match t {
        TokenTree::Ident(id) => Some(id.to_string()),
        _ => None,
    }
}

fn is_punct(t: &TokenTree, c: char) -> bool {
    matches!(t, TokenTree::Punct(p) if p.as_char() == c)
}

/// Strips the surrounding quotes from a string literal token.
fn unquote(lit: &str) -> String {
    lit.trim_matches('"').to_string()
}

/// Reads `serde(...)` keys out of one `#[...]` attribute group; non-serde
/// attributes (doc comments, other derives' helpers) are ignored.
fn serde_attr_keys(attr: &Group) -> Vec<(String, Option<String>)> {
    let toks: Vec<TokenTree> = attr.stream().into_iter().collect();
    if toks.first().and_then(ident_of).as_deref() != Some("serde") {
        return Vec::new();
    }
    let inner = match toks.get(1) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g.stream(),
        _ => return Vec::new(),
    };
    let toks: Vec<TokenTree> = inner.into_iter().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let key = match ident_of(&toks[i]) {
            Some(k) => k,
            None => {
                i += 1;
                continue;
            }
        };
        i += 1;
        if i < toks.len() && is_punct(&toks[i], '=') {
            i += 1;
            let val = match &toks[i] {
                TokenTree::Literal(l) => unquote(&l.to_string()),
                other => panic!("vendored serde derive: expected string after `{key} =`, got {other}"),
            };
            i += 1;
            out.push((key, Some(val)));
        } else {
            out.push((key, None));
        }
        if i < toks.len() && is_punct(&toks[i], ',') {
            i += 1;
        }
    }
    out
}

/// Parses the fields of a braced body (struct or struct variant).
fn parse_fields(ts: TokenStream) -> Vec<Field> {
    let toks: Vec<TokenTree> = ts.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let mut default = false;
        while i < toks.len() && is_punct(&toks[i], '#') {
            if let Some(TokenTree::Group(g)) = toks.get(i + 1) {
                for (key, _) in serde_attr_keys(g) {
                    match key.as_str() {
                        "default" => default = true,
                        other => panic!("vendored serde derive: unsupported field attribute `{other}`"),
                    }
                }
                i += 2;
            } else {
                panic!("vendored serde derive: malformed attribute");
            }
        }
        if i >= toks.len() {
            break;
        }
        if ident_of(&toks[i]).as_deref() == Some("pub") {
            i += 1;
            if let Some(TokenTree::Group(g)) = toks.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
        let name = ident_of(&toks[i])
            .unwrap_or_else(|| panic!("vendored serde derive: expected field name, got {}", toks[i]));
        i += 1;
        if !is_punct(&toks[i], ':') {
            panic!("vendored serde derive: expected `:` after field `{name}`");
        }
        i += 1;
        // Skip the type: consume until a comma at angle-bracket depth 0.
        let mut depth: i32 = 0;
        while i < toks.len() {
            match &toks[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(Field { name, default });
    }
    fields
}

/// Counts the top-level types in a tuple-variant's parenthesised list.
fn count_tuple_fields(ts: TokenStream) -> usize {
    let toks: Vec<TokenTree> = ts.into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut depth: i32 = 0;
    let mut count = 1;
    for (i, t) in toks.iter().enumerate() {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                if i + 1 < toks.len() {
                    count += 1; // not a trailing comma
                }
            }
            _ => {}
        }
    }
    count
}

fn parse_variants(ts: TokenStream) -> Vec<Variant> {
    let toks: Vec<TokenTree> = ts.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        while i < toks.len() && is_punct(&toks[i], '#') {
            i += 2; // attribute group; variant-level serde attrs are unused
        }
        if i >= toks.len() {
            break;
        }
        let name = ident_of(&toks[i])
            .unwrap_or_else(|| panic!("vendored serde derive: expected variant name, got {}", toks[i]));
        i += 1;
        let kind = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                i += 1;
                VariantKind::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_fields(g.stream());
                i += 1;
                VariantKind::Struct(fields)
            }
            _ => VariantKind::Unit,
        };
        // Skip to the separating comma (covers `= discriminant` too).
        while i < toks.len() && !is_punct(&toks[i], ',') {
            i += 1;
        }
        i += 1;
        variants.push(Variant { name, kind });
    }
    variants
}

fn parse_container(input: TokenStream) -> Container {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut tag = None;
    let mut rename_all = None;
    let mut i = 0;
    while i < toks.len() && is_punct(&toks[i], '#') {
        if let Some(TokenTree::Group(g)) = toks.get(i + 1) {
            for (key, val) in serde_attr_keys(g) {
                match (key.as_str(), val) {
                    ("tag", Some(v)) => tag = Some(v),
                    ("rename_all", Some(v)) => rename_all = Some(v),
                    (other, _) => {
                        panic!("vendored serde derive: unsupported container attribute `{other}`")
                    }
                }
            }
            i += 2;
        } else {
            panic!("vendored serde derive: malformed attribute");
        }
    }
    if ident_of(&toks[i]).as_deref() == Some("pub") {
        i += 1;
        if let Some(TokenTree::Group(g)) = toks.get(i) {
            if g.delimiter() == Delimiter::Parenthesis {
                i += 1;
            }
        }
    }
    let keyword = ident_of(&toks[i])
        .unwrap_or_else(|| panic!("vendored serde derive: expected struct/enum, got {}", toks[i]));
    i += 1;
    let name = ident_of(&toks[i])
        .unwrap_or_else(|| panic!("vendored serde derive: expected type name, got {}", toks[i]));
    i += 1;
    if i < toks.len() && is_punct(&toks[i], '<') {
        panic!("vendored serde derive: generic type `{name}` is not supported");
    }
    let body = match toks.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        _ => panic!("vendored serde derive: `{name}` must have a braced body (tuple structs unsupported)"),
    };
    let kind = match keyword.as_str() {
        "struct" => Kind::Struct(parse_fields(body)),
        "enum" => Kind::Enum(parse_variants(body)),
        other => panic!("vendored serde derive: cannot derive for `{other}`"),
    };
    Container { name, tag, rename_all, kind }
}

// ---- renaming ---------------------------------------------------------

fn snake_case(name: &str) -> String {
    let mut out = String::new();
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_uppercase() {
            if i > 0 {
                out.push('_');
            }
            out.push(c.to_ascii_lowercase());
        } else {
            out.push(c);
        }
    }
    out
}

fn rename(name: &str, rule: Option<&str>) -> String {
    match rule {
        None => name.to_string(),
        Some("snake_case") => snake_case(name),
        Some("lowercase") => name.to_lowercase(),
        Some(other) => panic!("vendored serde derive: unsupported rename_all rule `{other}`"),
    }
}

// ---- code generation --------------------------------------------------

fn field_to_pairs(fields: &[Field], accessor: &str) -> String {
    fields
        .iter()
        .map(|f| {
            format!(
                "(\"{n}\".to_string(), ::serde::Serialize::to_value({accessor}{n})),",
                n = f.name
            )
        })
        .collect()
}

// NOTE: single-field lookups (`::serde::__field`) were replaced by the
// single-pass scan in `fields_single_pass`; the helpers remain exported
// from the serde stub for compatibility.

/// Emits statements for the streaming `serialize_into` body. Literal
/// JSON fragments (braces, keys, separators) coalesce into single
/// `push_str` calls; field values recurse through `serialize_into`.
#[derive(Default)]
struct StreamWriter {
    code: String,
    pending: String,
}

impl StreamWriter {
    fn lit(&mut self, s: &str) {
        self.pending.push_str(s);
    }

    fn flush(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        let escaped = self.pending.replace('\\', "\\\\").replace('"', "\\\"");
        self.code.push_str("out.push_str(\"");
        self.code.push_str(&escaped);
        self.code.push_str("\");");
        self.pending.clear();
    }

    fn value(&mut self, expr: &str) {
        self.flush();
        self.code.push_str("::serde::Serialize::serialize_into(");
        self.code.push_str(expr);
        self.code.push_str(", out);");
    }

    fn fields(&mut self, fields: &[Field], accessor: &str, leading_comma: bool) {
        for (i, f) in fields.iter().enumerate() {
            if i > 0 || leading_comma {
                self.lit(",");
            }
            self.lit(&format!("\"{n}\":", n = f.name));
            self.value(&format!("{accessor}{n}", n = f.name));
        }
    }

    fn finish(mut self) -> String {
        self.flush();
        self.code
    }
}

/// Generates the single-pass deserialisation block for a braced field
/// set: one scan over the object's pairs fills per-field slots (first
/// occurrence wins, matching the old lookup helpers), then construction
/// resolves absent fields via `__missing` / `Default`.
fn fields_single_pass(fields: &[Field], source: &str, constructor: &str) -> String {
    if fields.is_empty() {
        return format!(
            "match {source} {{ \
               ::serde::Value::Object(_) => Ok({constructor} {{}}), \
               __other => Err(::serde::DeError::expected(\"object\", __other)) \
             }}"
        );
    }
    let decls: String = fields
        .iter()
        .map(|f| format!("let mut __v_{n} = None;", n = f.name))
        .collect();
    let arms: String = fields
        .iter()
        .map(|f| {
            format!(
                "\"{n}\" => if __v_{n}.is_none() {{ \
                   __v_{n} = Some(::serde::Deserialize::from_value(__val)?); \
                 }},",
                n = f.name
            )
        })
        .collect();
    let inits: String = fields
        .iter()
        .map(|f| {
            let fallback = if f.default {
                "::std::default::Default::default()".to_string()
            } else {
                format!("::serde::__missing(\"{n}\")?", n = f.name)
            };
            format!(
                "{n}: match __v_{n} {{ Some(__x) => __x, None => {fallback} }},",
                n = f.name
            )
        })
        .collect();
    format!(
        "{{ let __pairs = match {source} {{ \
             ::serde::Value::Object(__pairs) => __pairs, \
             __other => return Err(::serde::DeError::expected(\"object\", __other)) \
           }}; \
           {decls} \
           for (__k, __val) in __pairs.iter() {{ \
             match __k.as_str() {{ {arms} _ => {{}} }} \
           }} \
           Ok({constructor} {{ {inits} }}) }}"
    )
}

/// The streaming-deserialisation analogue of [`fields_single_pass`]: a
/// block expression that scans one JSON object off `de` and builds
/// `constructor`, first-wins on duplicate keys, unknown keys skipped.
/// With `mid_object` the opening `{` and first member (an enum tag) have
/// already been consumed — the loop starts at the following `,`/`}`.
fn fields_single_pass_json(fields: &[Field], constructor: &str, mid_object: bool) -> String {
    if fields.is_empty() {
        let drain = if mid_object {
            "while de.obj_next()? { let _ = de.member_key()?; de.skip_value()?; }".to_string()
        } else {
            "if de.obj_begin()? { loop { \
               let _ = de.member_key()?; de.skip_value()?; \
               if !de.obj_next()? { break; } } }"
                .to_string()
        };
        return format!("{{ {drain} Ok({constructor} {{}}) }}");
    }
    let decls: String = fields
        .iter()
        .map(|f| format!("let mut __v_{n} = None;", n = f.name))
        .collect();
    let arms: String = fields
        .iter()
        .map(|f| {
            format!(
                "\"{n}\" => if __v_{n}.is_none() {{ \
                   __v_{n} = Some(::serde::Deserialize::from_json(de)?); \
                 }} else {{ de.skip_value()?; }},",
                n = f.name
            )
        })
        .collect();
    let inits: String = fields
        .iter()
        .map(|f| {
            let fallback = if f.default {
                "::std::default::Default::default()".to_string()
            } else {
                format!("::serde::__missing(\"{n}\")?", n = f.name)
            };
            format!(
                "{n}: match __v_{n} {{ Some(__x) => __x, None => {fallback} }},",
                n = f.name
            )
        })
        .collect();
    let scan = if mid_object {
        format!(
            "while de.obj_next()? {{ \
               let __k = de.member_key()?; \
               match &*__k {{ {arms} _ => de.skip_value()?, }} \
             }}"
        )
    } else {
        format!(
            "if de.obj_begin()? {{ loop {{ \
               let __k = de.member_key()?; \
               match &*__k {{ {arms} _ => de.skip_value()?, }} \
               if !de.obj_next()? {{ break; }} }} }}"
        )
    };
    format!("{{ {decls} {scan} Ok({constructor} {{ {inits} }}) }}")
}

/// The streaming `from_json` body — accepts exactly the documents the
/// `from_value` tree path does, without building the tree. Internally
/// tagged enums stream only when the tag is the first key (how our own
/// encoder lays frames out) and fall back to the tree otherwise.
fn gen_from_json(c: &Container) -> String {
    let name = &c.name;
    match &c.kind {
        Kind::Struct(fields) => fields_single_pass_json(fields, name, false),
        Kind::Enum(variants) => {
            let rule = c.rename_all.as_deref();
            match &c.tag {
                Some(tag) => {
                    let arms: String = variants
                        .iter()
                        .map(|v| {
                            let vname = &v.name;
                            let key = rename(vname, rule);
                            match &v.kind {
                                VariantKind::Unit => format!(
                                    "\"{key}\" => {{ \
                                       while de.obj_next()? {{ let _ = de.member_key()?; de.skip_value()?; }} \
                                       Ok({name}::{vname}) }},"
                                ),
                                VariantKind::Struct(fields) => {
                                    let block = fields_single_pass_json(
                                        fields,
                                        &format!("{name}::{vname}"),
                                        true,
                                    );
                                    format!("\"{key}\" => {block},")
                                }
                                VariantKind::Tuple(_) => panic!(
                                    "vendored serde derive: tuple variant `{vname}` not supported with #[serde(tag)]"
                                ),
                            }
                        })
                        .collect();
                    format!(
                        "de.skip_ws(); \
                         if !de.first_key_is(\"{tag}\") {{ \
                           let __v = de.parse_value()?; \
                           return <Self as ::serde::Deserialize>::from_value(&__v); \
                         }} \
                         if !de.obj_begin()? {{ \
                           return Err(::serde::DeError(format!(\"missing `{tag}` tag for {name}\"))); \
                         }} \
                         let _ = de.member_key()?; \
                         de.skip_ws(); \
                         let __tag = de.parse_str()?; \
                         match &*__tag {{ {arms} \
                           __other => Err(::serde::DeError(format!(\"unknown `{tag}` value `{{__other}}` for {name}\"))) }}"
                    )
                }
                None => {
                    let unit_arms: String = variants
                        .iter()
                        .filter(|v| matches!(v.kind, VariantKind::Unit))
                        .map(|v| {
                            let key = rename(&v.name, rule);
                            format!("\"{key}\" => Ok({name}::{vn}),", vn = v.name)
                        })
                        .collect();
                    let obj_arms: String = variants
                        .iter()
                        .filter_map(|v| {
                            let vname = &v.name;
                            let key = rename(vname, rule);
                            match &v.kind {
                                VariantKind::Unit => None,
                                VariantKind::Tuple(1) => Some(format!(
                                    "\"{key}\" => {name}::{vname}(::serde::Deserialize::from_json(de)?),"
                                )),
                                VariantKind::Tuple(n) => {
                                    let items: String = (0..*n)
                                        .map(|i| {
                                            format!("::serde::Deserialize::from_value(&__items[{i}])?,")
                                        })
                                        .collect();
                                    Some(format!(
                                        "\"{key}\" => {{ \
                                           let __items = match de.parse_value()? {{ \
                                             ::serde::Value::Array(__items) if __items.len() == {n} => __items, \
                                             ref __other => return Err(::serde::DeError::expected(\"array of length {n}\", __other)), \
                                           }}; \
                                           {name}::{vname}({items}) }},"
                                    ))
                                }
                                VariantKind::Struct(fields) => {
                                    let block = fields_single_pass_json(
                                        fields,
                                        &format!("{name}::{vname}"),
                                        false,
                                    );
                                    Some(format!("\"{key}\" => ({block})?,"))
                                }
                            }
                        })
                        .collect();
                    format!(
                        "de.skip_ws(); \
                         match de.peek() {{ \
                           Some(b'\"') => {{ \
                             let __s = de.parse_str()?; \
                             #[allow(clippy::match_single_binding)] \
                             match &*__s {{ {unit_arms} \
                               __other => Err(::serde::DeError(format!(\"no variant of {name} matched `{{__other}}`\"))) }} \
                           }} \
                           Some(b'{{') => {{ \
                             if !de.obj_begin()? {{ \
                               return Err(::serde::DeError(\"no variant of {name} matched {{}}\".to_string())); \
                             }} \
                             let __k = de.member_key()?; \
                             #[allow(clippy::match_single_binding, unused_variables)] \
                             let __r = match &*__k {{ {obj_arms} \
                               __other => return Err(::serde::DeError(format!(\"no variant of {name} matched `{{__other}}`\"))) }}; \
                             if de.obj_next()? {{ \
                               return Err(::serde::DeError(format!(\"no variant of {name} matched multi-key object at byte {{}}\", de.pos()))); \
                             }} \
                             Ok(__r) \
                           }} \
                           _ => {{ \
                             let __v = de.parse_value()?; \
                             <Self as ::serde::Deserialize>::from_value(&__v) \
                           }} \
                         }}"
                    )
                }
            }
        }
    }
}

/// The streaming `serialize_into` body — emits exactly the bytes the
/// `to_value` tree serialises to, without building the tree.
fn gen_serialize_into(c: &Container) -> String {
    let name = &c.name;
    match &c.kind {
        Kind::Struct(fields) => {
            let mut w = StreamWriter::default();
            w.lit("{");
            w.fields(fields, "&self.", false);
            w.lit("}");
            w.finish()
        }
        Kind::Enum(variants) => {
            let rule = c.rename_all.as_deref();
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    let key = rename(vname, rule);
                    let mut w = StreamWriter::default();
                    let pattern = match (&c.tag, &v.kind) {
                        (None, VariantKind::Unit) => {
                            w.lit(&format!("\"{key}\""));
                            format!("{name}::{vname}")
                        }
                        (None, VariantKind::Tuple(1)) => {
                            w.lit(&format!("{{\"{key}\":"));
                            w.value("f0");
                            w.lit("}");
                            format!("{name}::{vname}(f0)")
                        }
                        (None, VariantKind::Tuple(n)) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            w.lit(&format!("{{\"{key}\":["));
                            for (i, b) in binds.iter().enumerate() {
                                if i > 0 {
                                    w.lit(",");
                                }
                                w.value(b);
                            }
                            w.lit("]}");
                            format!("{name}::{vname}({})", binds.join(", "))
                        }
                        (None, VariantKind::Struct(fields)) => {
                            w.lit(&format!("{{\"{key}\":{{"));
                            w.fields(fields, "", false);
                            w.lit("}}");
                            let binds: Vec<&str> =
                                fields.iter().map(|f| f.name.as_str()).collect();
                            format!("{name}::{vname} {{ {} }}", binds.join(", "))
                        }
                        (Some(tag), VariantKind::Unit) => {
                            w.lit(&format!("{{\"{tag}\":\"{key}\"}}"));
                            format!("{name}::{vname}")
                        }
                        (Some(tag), VariantKind::Struct(fields)) => {
                            w.lit(&format!("{{\"{tag}\":\"{key}\""));
                            w.fields(fields, "", true);
                            w.lit("}");
                            let binds: Vec<&str> =
                                fields.iter().map(|f| f.name.as_str()).collect();
                            format!("{name}::{vname} {{ {} }}", binds.join(", "))
                        }
                        (Some(_), VariantKind::Tuple(_)) => panic!(
                            "vendored serde derive: tuple variant `{vname}` not supported with #[serde(tag)]"
                        ),
                    };
                    format!("{pattern} => {{ {} }}", w.finish())
                })
                .collect();
            format!("match self {{ {arms} }}")
        }
    }
}

fn gen_serialize(c: &Container) -> String {
    let name = &c.name;
    let body = match &c.kind {
        Kind::Struct(fields) => {
            let pairs = field_to_pairs(fields, "&self.");
            format!("::serde::Value::Object(vec![{pairs}])")
        }
        Kind::Enum(variants) => {
            let rule = c.rename_all.as_deref();
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    let key = rename(vname, rule);
                    match (&c.tag, &v.kind) {
                        (None, VariantKind::Unit) => format!(
                            "{name}::{vname} => ::serde::Value::String(\"{key}\".to_string()),"
                        ),
                        (None, VariantKind::Tuple(1)) => format!(
                            "{name}::{vname}(f0) => ::serde::Value::Object(vec![(\"{key}\".to_string(), ::serde::Serialize::to_value(f0))]),"
                        ),
                        (None, VariantKind::Tuple(n)) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            let items: String = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b}),"))
                                .collect();
                            format!(
                                "{name}::{vname}({binds}) => ::serde::Value::Object(vec![(\"{key}\".to_string(), ::serde::Value::Array(vec![{items}]))]),",
                                binds = binds.join(", ")
                            )
                        }
                        (None, VariantKind::Struct(fields)) => {
                            let binds: Vec<&str> =
                                fields.iter().map(|f| f.name.as_str()).collect();
                            let pairs = field_to_pairs(fields, "");
                            format!(
                                "{name}::{vname} {{ {binds} }} => ::serde::Value::Object(vec![(\"{key}\".to_string(), ::serde::Value::Object(vec![{pairs}]))]),",
                                binds = binds.join(", ")
                            )
                        }
                        (Some(tag), VariantKind::Unit) => format!(
                            "{name}::{vname} => ::serde::Value::Object(vec![(\"{tag}\".to_string(), ::serde::Value::String(\"{key}\".to_string()))]),"
                        ),
                        (Some(tag), VariantKind::Struct(fields)) => {
                            let binds: Vec<&str> =
                                fields.iter().map(|f| f.name.as_str()).collect();
                            let pairs = field_to_pairs(fields, "");
                            format!(
                                "{name}::{vname} {{ {binds} }} => ::serde::Value::Object(vec![(\"{tag}\".to_string(), ::serde::Value::String(\"{key}\".to_string())), {pairs}]),",
                                binds = binds.join(", ")
                            )
                        }
                        (Some(_), VariantKind::Tuple(_)) => panic!(
                            "vendored serde derive: tuple variant `{vname}` not supported with #[serde(tag)]"
                        ),
                    }
                })
                .collect();
            format!("match self {{ {arms} }}")
        }
    };
    let stream = gen_serialize_into(c);
    format!(
        "impl ::serde::Serialize for {name} {{ \
           fn to_value(&self) -> ::serde::Value {{ {body} }} \
           fn serialize_into(&self, out: &mut ::std::string::String) {{ {stream} }} \
         }}"
    )
}

fn gen_deserialize(c: &Container) -> String {
    let name = &c.name;
    let body = match &c.kind {
        Kind::Struct(fields) => fields_single_pass(fields, "v", name),
        Kind::Enum(variants) => {
            let rule = c.rename_all.as_deref();
            match &c.tag {
                Some(tag) => {
                    let arms: String = variants
                        .iter()
                        .map(|v| {
                            let vname = &v.name;
                            let key = rename(vname, rule);
                            match &v.kind {
                                VariantKind::Unit => format!("\"{key}\" => Ok({name}::{vname}),"),
                                VariantKind::Struct(fields) => {
                                    let block = fields_single_pass(
                                        fields,
                                        "v",
                                        &format!("{name}::{vname}"),
                                    );
                                    format!("\"{key}\" => {block},")
                                }
                                VariantKind::Tuple(_) => panic!(
                                    "vendored serde derive: tuple variant `{vname}` not supported with #[serde(tag)]"
                                ),
                            }
                        })
                        .collect();
                    format!(
                        "let tag = ::serde::__tag(v, \"{tag}\")?; \
                         match tag {{ {arms} other => Err(::serde::DeError(format!(\"unknown `{tag}` value `{{other}}` for {name}\"))) }}"
                    )
                }
                None => {
                    let unit_arms: String = variants
                        .iter()
                        .filter(|v| matches!(v.kind, VariantKind::Unit))
                        .map(|v| {
                            let key = rename(&v.name, rule);
                            format!("\"{key}\" => return Ok({name}::{vn}),", vn = v.name)
                        })
                        .collect();
                    let obj_arms: String = variants
                        .iter()
                        .filter_map(|v| {
                            let vname = &v.name;
                            let key = rename(vname, rule);
                            match &v.kind {
                                VariantKind::Unit => None,
                                VariantKind::Tuple(1) => Some(format!(
                                    "\"{key}\" => return Ok({name}::{vname}(::serde::Deserialize::from_value(inner)?)),"
                                )),
                                VariantKind::Tuple(n) => {
                                    let items: String = (0..*n)
                                        .map(|i| {
                                            format!("::serde::Deserialize::from_value(&items[{i}])?,")
                                        })
                                        .collect();
                                    Some(format!(
                                        "\"{key}\" => match inner {{ \
                                           ::serde::Value::Array(items) if items.len() == {n} => \
                                             return Ok({name}::{vname}({items})), \
                                           other => return Err(::serde::DeError::expected(\"array of length {n}\", other)), \
                                         }},"
                                    ))
                                }
                                VariantKind::Struct(fields) => {
                                    let block = fields_single_pass(
                                        fields,
                                        "inner",
                                        &format!("{name}::{vname}"),
                                    );
                                    Some(format!("\"{key}\" => return {block},"))
                                }
                            }
                        })
                        .collect();
                    format!(
                        "if let ::serde::Value::String(s) = v {{ \
                           #[allow(clippy::match_single_binding)] \
                           match s.as_str() {{ {unit_arms} _ => {{}} }} \
                         }} \
                         if let ::serde::Value::Object(pairs) = v {{ \
                           if pairs.len() == 1 {{ \
                             let (k, inner) = &pairs[0]; \
                             #[allow(clippy::match_single_binding, unused_variables)] \
                             match k.as_str() {{ {obj_arms} _ => {{}} }} \
                           }} \
                         }} \
                         Err(::serde::DeError(format!(\"no variant of {name} matched {{v}}\")))"
                    )
                }
            }
        }
    };
    let stream = gen_from_json(c);
    format!(
        "impl ::serde::Deserialize for {name} {{ \
           fn from_value(v: &::serde::Value) -> Result<Self, ::serde::DeError> {{ {body} }} \
           #[allow(unreachable_code)] \
           fn from_json(de: &mut ::serde::JsonDe<'_>) -> Result<Self, ::serde::DeError> {{ {stream} }} \
         }}"
    )
}

// ---- entry points -----------------------------------------------------

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let container = parse_container(input);
    gen_serialize(&container)
        .parse()
        .expect("vendored serde derive: generated Serialize impl failed to parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let container = parse_container(input);
    gen_deserialize(&container)
        .parse()
        .expect("vendored serde derive: generated Deserialize impl failed to parse")
}
