//! Quickstart: hand SmartML a dataset, get back a tuned model.
//!
//! ```text
//! cargo run --release -p smartml-examples --bin quickstart
//! ```

use smartml::{Budget, SmartML, SmartMlOptions};
use smartml_data::synth::gaussian_blobs;

fn main() {
    // Any `smartml_data::Dataset` works — CSV/ARFF files via
    // `smartml_data::io`, or a generator as here.
    let data = gaussian_blobs("quickstart", 300, 5, 3, 1.0, 42);

    let options = SmartMlOptions::default().with_budget(Budget::Trials(20));
    let mut engine = SmartML::new(options); // cold start: empty knowledge base
    let outcome = engine.run(&data).expect("pipeline runs");

    print!("{}", outcome.report.render());

    // The outcome carries a live model: predict on the held-out rows.
    let predictions = outcome.model.predict(&outcome.preprocessed, &outcome.valid_rows);
    println!(
        "\npredicted {} validation rows; first five: {:?}",
        predictions.len(),
        &predictions[..5.min(predictions.len())]
    );
    println!(
        "the run was recorded into the KB: {} dataset(s), {} run(s) — the next\n\
         call to run() on similar data will warm-start from it.",
        engine.kb().len(),
        engine.kb().n_runs()
    );
}
