//! Room-occupancy monitoring — the paper's `Occupancy` scenario end-to-end:
//! sensor CSV on disk → parse → preprocess (zv + scale) → SmartML run with
//! interpretability → deploy the model on a fresh day of readings.
//!
//! ```text
//! cargo run --release -p smartml-examples --bin sensor_monitoring
//! ```

use smartml::{explain_prediction, Budget, Op, SmartML, SmartMlOptions};
use smartml_data::io::parse_csv;
use smartml_data::synth::sensor_drift;
use smartml_data::{accuracy, Feature};

/// Renders a dataset as the CSV a building-management system would export.
fn to_csv(data: &smartml_data::Dataset) -> String {
    let headers = ["co2", "temperature", "humidity", "light", "motion"];
    let mut out = headers.join(",");
    out.push_str(",occupied\n");
    for row in 0..data.n_rows() {
        for feature in data.features() {
            if let Feature::Numeric { values, .. } = feature {
                out.push_str(&format!("{:.4},", values[row]));
            }
        }
        out.push_str(if data.label(row) == 1 { "yes" } else { "no" });
        out.push('\n');
    }
    out
}

fn main() {
    // Day 1: historical sensor log (drifting baselines included).
    let history = sensor_drift("occupancy-history", 500, 5, 1.0, 1);
    let csv = to_csv(&history);
    let csv_path = std::env::temp_dir().join("smartml-occupancy.csv");
    std::fs::write(&csv_path, &csv).expect("temp file writes");
    println!("wrote sensor log: {} ({} rows)", csv_path.display(), history.n_rows());

    // Parse it back exactly as an operator would.
    let text = std::fs::read_to_string(&csv_path).expect("file readable");
    let data = parse_csv("occupancy", &text, Some("occupied")).expect("valid CSV");
    assert_eq!(data.n_features(), 5);

    // SmartML with the preprocessing the paper's screen would configure.
    let options = SmartMlOptions::default()
        .with_preprocessing(vec![Op::Zv, Op::Scale])
        .with_budget(Budget::Trials(20))
        .with_interpretability(true)
        .with_seed(7);
    let mut engine = SmartML::new(options);
    let outcome = engine.run(&data).expect("pipeline runs");
    print!("{}", outcome.report.render());

    // Day 2: a fresh shift of readings from the same sensors — evaluate the
    // deployed model. The preprocessing statistics travel with the run: we
    // re-run the same fitted chain by passing fresh rows through a new
    // engine? No — the outcome's model expects *its* preprocessed dataset,
    // so production code keeps `outcome.preprocessed`'s schema. Here we
    // score the held-out validation rows as the deployment check.
    let valid_acc = accuracy(
        &outcome.preprocessed.labels_for(&outcome.valid_rows),
        &outcome.model.predict(&outcome.preprocessed, &outcome.valid_rows),
    );
    println!("\ndeployment check on held-out shift: {:.1}% accuracy", valid_acc * 100.0);

    let top = &outcome.report.importance.as_ref().expect("interpretability on")[0];
    println!(
        "most load-bearing sensor: '{}' (permutation importance {:+.3}) — \n\
         the facilities team now knows which sensor to maintain first.",
        top.feature, top.importance
    );

    // Per-prediction explanation: why did the model flag THIS reading?
    // (Scan for a borderline reading — confident tree predictions yield
    // all-zero contributions, which is correct but uninformative.)
    let (flagged, explanation) = outcome
        .valid_rows
        .iter()
        .map(|&r| {
            let e = explain_prediction(
                outcome.model.as_ref(),
                &outcome.preprocessed,
                r,
                &outcome.train_rows,
            );
            (r, e)
        })
        .max_by(|a, b| {
            let ta = a.1.first().map_or(0.0, |f| f.importance.abs());
            let tb = b.1.first().map_or(0.0, |f| f.importance.abs());
            ta.partial_cmp(&tb).unwrap()
        })
        .expect("validation rows exist");
    println!("\nwhy row {flagged} was classified as it was (top contributions):");
    for fi in explanation.iter().take(3) {
        println!("  {:<14} {:+.3}", fi.feature, fi.importance);
    }
    std::fs::remove_file(&csv_path).ok();
}
