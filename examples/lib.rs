//! Runnable examples for SmartML. Each binary is a self-contained scenario:
//!
//! - `quickstart` — the 20-line happy path: dataset in, best model out.
//! - `sensor_monitoring` — a room-occupancy-style deployment: CSV workflow,
//!   preprocessing, interpretability, and prediction on fresh data.
//! - `text_categorization` — sparse bag-of-words data: feature selection,
//!   ensembling, and why the KB nominates naive Bayes there.
//! - `kb_lifecycle` — the meta-learning loop: bootstrap, persist, reload,
//!   and watch recommendations improve.
//! - `automl_shootout` — SmartML vs the Auto-Weka simulation vs TPOT-lite
//!   on the same dataset and budget.
//!
//! Run with `cargo run --release -p smartml-examples --bin <name>`.
