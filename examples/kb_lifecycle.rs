//! The meta-learning lifecycle: bootstrap a knowledge base, persist it to
//! disk, reload it in a "new session", and watch algorithm selection use
//! the accumulated experience — the paper's "SmartML gets smarter by
//! getting more experience" loop.
//!
//! ```text
//! cargo run --release -p smartml-examples --bin kb_lifecycle
//! ```

use smartml::bootstrap::{bootstrap_dataset, BootstrapProfile};
use smartml::{Budget, KnowledgeBase, SmartML, SmartMlOptions};
use smartml_data::synth::{gaussian_blobs, xor_parity};
use smartml_kb::QueryOptions;
use smartml_metafeatures::extract;

fn main() {
    let kb_path = std::env::temp_dir().join("smartml-lifecycle-kb.json");

    // Session 1: bootstrap from a handful of past tasks and persist.
    let mut kb = KnowledgeBase::new();
    let profile = BootstrapProfile { configs_per_algorithm: 2, ..BootstrapProfile::fast() };
    for seed in 0..4u64 {
        let blobs = gaussian_blobs(&format!("past-blobs-{seed}"), 200, 4, 2, 0.8, seed);
        bootstrap_dataset(&mut kb, &blobs, &profile);
        let xor = xor_parity(&format!("past-xor-{seed}"), 300, 2, 10, 0.02, seed);
        bootstrap_dataset(&mut kb, &xor, &profile);
    }
    kb.save(&kb_path).expect("KB saves");
    println!(
        "session 1: bootstrapped {} datasets / {} runs, saved to {}\n",
        kb.len(),
        kb.n_runs(),
        kb_path.display()
    );

    // Session 2: a fresh process reloads the KB and asks for advice.
    let kb = KnowledgeBase::load(&kb_path).expect("KB loads");
    let new_task = xor_parity("new-task", 320, 2, 12, 0.02, 77);
    let meta = extract(&new_task, &new_task.all_rows());
    let recommendation = kb.recommend(&meta, &QueryOptions::default());
    println!("session 2: KB advice for '{}' (xor-like):", new_task.name);
    for rec in &recommendation.algorithms {
        println!(
            "  {:<14} score {:.3}  ({} warm-start configs)",
            rec.algorithm.paper_name(),
            rec.score,
            rec.warm_starts.len()
        );
    }

    // Run the full pipeline with the reloaded KB; the run itself grows it.
    let options = SmartMlOptions::default().with_budget(Budget::Trials(15)).with_seed(3);
    let mut engine = SmartML::with_kb(kb, options);
    let before = engine.kb().n_runs();
    let outcome = engine.run(&new_task).expect("pipeline runs");
    println!(
        "\nwinner: {} at {:.1}% validation accuracy",
        outcome.report.best.algorithm.paper_name(),
        outcome.report.best.validation_accuracy * 100.0
    );
    let kb = engine.into_kb();
    println!(
        "KB grew {} -> {} runs; persisting for session 3.",
        before,
        kb.n_runs()
    );
    kb.save(&kb_path).expect("KB saves again");
    std::fs::remove_file(&kb_path).ok();
}
