//! The meta-learning lifecycle over the durable, WAL-backed knowledge
//! base: bootstrap experience into a write-ahead log, "crash" by
//! dropping the handle, recover in a new session, run the pipeline
//! against the durable store, and compact it into a snapshot — the
//! paper's "SmartML gets smarter by getting more experience" loop, made
//! restart-proof.
//!
//! ```text
//! cargo run --release -p smartml-examples --bin kb_lifecycle
//! ```

use smartml::bootstrap::{bootstrap_dataset, BootstrapProfile};
use smartml::{Budget, KnowledgeBase, SmartML, SmartMlOptions};
use smartml_data::synth::{gaussian_blobs, xor_parity};
use smartml_kb::QueryOptions;
use smartml_kbd::DurableKb;
use smartml_metafeatures::extract;

fn main() {
    let kb_dir = std::env::temp_dir().join("smartml-lifecycle-kb");
    let _ = std::fs::remove_dir_all(&kb_dir);

    // Session 1: bootstrap from a handful of past tasks, then stream the
    // experience into the write-ahead log record by record.
    let mut bootstrapped = KnowledgeBase::new();
    let profile = BootstrapProfile { configs_per_algorithm: 2, ..BootstrapProfile::fast() };
    for seed in 0..4u64 {
        let blobs = gaussian_blobs(&format!("past-blobs-{seed}"), 200, 4, 2, 0.8, seed);
        bootstrap_dataset(&mut bootstrapped, &blobs, &profile);
        let xor = xor_parity(&format!("past-xor-{seed}"), 300, 2, 10, 0.02, seed);
        bootstrap_dataset(&mut bootstrapped, &xor, &profile);
    }
    let mut durable = DurableKb::open(&kb_dir).expect("WAL dir opens");
    for entry in bootstrapped.entries() {
        for run in &entry.runs {
            durable
                .record_run(&entry.dataset_id, &entry.meta_features, run.clone())
                .expect("WAL append");
        }
    }
    println!(
        "session 1: bootstrapped {} datasets / {} runs into wal:{} (active segment {})\n",
        durable.kb().len(),
        durable.kb().n_runs(),
        kb_dir.display(),
        durable.active_segment()
    );
    // "Crash": no save() call — the WAL already has every record.
    drop(durable);

    // Session 2: a fresh process recovers the log and asks for advice.
    let durable = DurableKb::open(&kb_dir).expect("WAL recovers");
    let recovery = durable.recovery().clone();
    println!(
        "session 2: recovered {} records from {} segments (snapshot: {:?})",
        recovery.records_replayed, recovery.segments_replayed, recovery.snapshot_seq
    );
    let new_task = xor_parity("new-task", 320, 2, 12, 0.02, 77);
    let meta = extract(&new_task, &new_task.all_rows());
    let recommendation = durable.kb().recommend(&meta, &QueryOptions::default());
    println!("KB advice for '{}' (xor-like):", new_task.name);
    for rec in &recommendation.algorithms {
        println!(
            "  {:<14} score {:.3}  ({} warm-start configs)",
            rec.algorithm.paper_name(),
            rec.score,
            rec.warm_starts.len()
        );
    }

    // Run the full pipeline against the durable backend; every KB update
    // the run makes is WAL-logged before it is applied.
    let options = SmartMlOptions::default().with_budget(Budget::Trials(15)).with_seed(3);
    let mut engine = SmartML::with_backend(durable, options);
    let before = engine.kb().kb().n_runs();
    let outcome = engine.run(&new_task).expect("pipeline runs");
    println!(
        "\nwinner: {} at {:.1}% validation accuracy",
        outcome.report.best.algorithm.paper_name(),
        outcome.report.best.validation_accuracy * 100.0
    );
    let mut durable = engine.into_kb();
    println!("KB grew {} -> {} runs; compacting.", before, durable.kb().n_runs());

    // Compact: fold the log into a snapshot; old segments are deleted and
    // the next open replays nothing.
    let covered = durable.snapshot().expect("snapshot");
    drop(durable);
    let durable = DurableKb::open(&kb_dir).expect("reopen from snapshot");
    println!(
        "session 3: snapshot at segment {covered}; reopened with {} records replayed, {} datasets / {} runs",
        durable.recovery().records_replayed,
        durable.kb().len(),
        durable.kb().n_runs()
    );
    std::fs::remove_dir_all(&kb_dir).ok();
}
