//! Text categorisation — the paper's `amazon` scenario: sparse bag-of-words
//! counts, many classes. Shows feature selection, ensembling, and how a
//! seeded knowledge base steers selection toward naive-Bayes-family models
//! on count data.
//!
//! ```text
//! cargo run --release -p smartml-examples --bin text_categorization
//! ```

use smartml::bootstrap::{bootstrap_dataset, BootstrapProfile};
use smartml::{Algorithm, Budget, KnowledgeBase, SmartML, SmartMlOptions};
use smartml_data::synth::sparse_counts;

fn main() {
    // Seed a small KB with count-data experience (three "past corpora").
    let mut kb = KnowledgeBase::new();
    let profile = BootstrapProfile {
        algorithms: vec![
            Algorithm::NaiveBayes,
            Algorithm::Knn,
            Algorithm::Svm,
            Algorithm::RandomForest,
            Algorithm::Lda,
        ],
        configs_per_algorithm: 2,
        ..BootstrapProfile::fast()
    };
    for seed in 0..3u64 {
        let past = sparse_counts(&format!("past-corpus-{seed}"), 240, 60, 6, 30, seed);
        bootstrap_dataset(&mut kb, &past, &profile);
    }
    println!(
        "seeded KB with {} past corpora ({} runs)\n",
        kb.len(),
        kb.n_runs()
    );

    // The new corpus to categorise: 8 topics, 100 vocabulary terms.
    let corpus = sparse_counts("support-tickets", 320, 100, 8, 40, 99);
    let options = SmartMlOptions::default()
        .with_budget(Budget::Trials(18))
        .with_ensembling(true)
        .with_top_n(3)
        .with_seed(5);
    let mut engine = SmartML::with_kb(kb, {
        let mut o = options;
        // Bag-of-words: keep the 40 most informative terms before modelling.
        o.feature_selection = Some(40);
        o
    });
    let outcome = engine.run(&corpus).expect("pipeline runs");
    print!("{}", outcome.report.render());

    println!("\nKB neighbours consulted (all count-data corpora):");
    for (id, dist) in &outcome.report.kb_neighbors {
        println!("  {id:<16} distance {dist:.3}");
    }
    let nominated: Vec<&str> = outcome
        .report
        .tuning
        .iter()
        .map(|t| t.algorithm.paper_name())
        .collect();
    println!(
        "\nnominated algorithms {nominated:?} — chosen because the new corpus's\n\
         meta-features (sparsity, class count, dimensionality) land next to the\n\
         seeded count-data corpora, so their best performers get the vote."
    );
}
