//! AutoML shootout: SmartML vs the Auto-Weka simulation vs random-search
//! AutoML vs TPOT-lite — all four systems, one dataset, identical budget.
//! A miniature of the paper's Table 4 protocol on a single task.
//!
//! ```text
//! cargo run --release -p smartml-examples --bin automl_shootout
//! ```

use smartml::bootstrap::{bootstrap_dataset, BootstrapProfile};
use smartml::{Budget, KnowledgeBase, SmartML, SmartMlOptions};
use smartml_baselines::{AutoWekaSim, RandomSearchAutoML, TpotLite};
use smartml_data::synth::{imbalanced_mixture, SynthSpec};
use smartml_data::train_valid_split;

const BUDGET: usize = 18;

fn main() {
    // The contested dataset: yeast-like (10 imbalanced overlapping classes).
    let data = imbalanced_mixture("shootout", 450, 8, 10, 2.0, 21);
    let (train, valid) = train_valid_split(&data, 0.3, 7);
    println!(
        "dataset: {} rows, {} features, {} classes; budget {} evaluations each\n",
        data.n_rows(),
        data.n_features(),
        data.n_classes(),
        BUDGET
    );

    // SmartML gets a small KB of related past tasks (its defining asset).
    let mut kb = KnowledgeBase::new();
    let profile = BootstrapProfile { configs_per_algorithm: 2, ..BootstrapProfile::fast() };
    for seed in 0..4u64 {
        let spec = SynthSpec::ImbalancedMixture { n: 300, d: 8, k: 10, overlap: 1.8 };
        let past = spec.generate(&format!("past-{seed}"), seed);
        bootstrap_dataset(&mut kb, &past, &profile);
    }
    let options = SmartMlOptions {
        budget: Budget::Trials(BUDGET),
        top_n_algorithms: 3,
        valid_fraction: 0.3,
        seed: 7,
        ..Default::default()
    };
    let smartml_acc = SmartML::with_kb(kb, options)
        .run(&data)
        .map(|o| o.report.best.validation_accuracy)
        .unwrap_or(0.0);

    let autoweka = AutoWekaSim { cv_folds: 3, seed: 11, ..Default::default() }
        .run(&data, &train, &valid, BUDGET, None);
    let random = RandomSearchAutoML { cv_folds: 3, seed: 13 }
        .run(&data, &train, &valid, BUDGET, None);
    let (tpot_champion, tpot_acc, _) = TpotLite { seed: 17, ..Default::default() }
        .run(&data, &train, &valid, BUDGET, None);

    println!("results (validation accuracy):");
    println!("  SmartML (KB + warm-started SMAC)   {:>6.2}%", smartml_acc * 100.0);
    println!(
        "  Auto-Weka sim (joint SMAC)         {:>6.2}%   winner: {}",
        autoweka.validation_accuracy * 100.0,
        autoweka.algorithm.paper_name()
    );
    println!(
        "  Random-search AutoML (Vizier)      {:>6.2}%   winner: {}",
        random.validation_accuracy * 100.0,
        random.algorithm.paper_name()
    );
    println!(
        "  TPOT-lite (genetic programming)    {:>6.2}%   winner: {} (+{:?})",
        tpot_acc * 100.0,
        tpot_champion.algorithm.paper_name(),
        tpot_champion.preprocess.map(|o| o.paper_name())
    );
    println!(
        "\nAt this small budget the KB's head start is SmartML's edge — exactly the\n\
         regime the paper demonstrates (\"especially at small running time budgets\")."
    );
}
